#include "lint.h"

#include <cstdio>
#include <exception>

int main(int argc, char** argv) {
  // Directory walks and file reads can throw (std::filesystem_error on a
  // permission wall, bad_alloc on a pathological file); a lint driver
  // should report that as a tool error, not abort.
  try {
    return repro_lint::run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "repro_lint: fatal: %s\n", e.what());
    return 2;
  }
}
