#include "lint.h"

int main(int argc, char** argv) { return repro_lint::run_cli(argc, argv); }
