#include "internal.h"

#include <algorithm>
#include <cctype>

namespace repro_lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses "repro-lint: allow(a, b)" / "repro-lint: allow-file(a)" occurrences
// inside a comment and records them for `line`.
void scan_comment(const std::string& comment, int line, Source& out) {
  const std::string marker = "repro-lint:";
  std::size_t pos = comment.find(marker);
  while (pos != std::string::npos) {
    std::size_t p = pos + marker.size();
    while (p < comment.size() && comment[p] == ' ') ++p;
    bool file_wide = false;
    if (comment.compare(p, 10, "allow-file") == 0) {
      file_wide = true;
      p += 10;
    } else if (comment.compare(p, 5, "allow") == 0) {
      p += 5;
    } else {
      pos = comment.find(marker, p);
      continue;
    }
    while (p < comment.size() && comment[p] == ' ') ++p;
    if (p < comment.size() && comment[p] == '(') {
      const std::size_t close = comment.find(')', p);
      if (close != std::string::npos) {
        std::string name;
        for (std::size_t i = p + 1; i <= close; ++i) {
          const char c = comment[i];
          if (c == ',' || c == ')') {
            if (!name.empty()) {
              if (file_wide) {
                out.file_allow.insert(name);
              } else {
                out.line_allow[line].insert(name);
              }
            }
            name.clear();
          } else if (c != ' ') {
            name += c;
          }
        }
        p = close + 1;
      }
    }
    pos = comment.find(marker, p);
  }
}

}  // namespace

Source tokenize(const std::string& src) {
  Source out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto advance_newlines = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to; ++k) {
      if (src[k] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor directive: capture the whole logical line.
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::string text;
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          text += ' ';
          continue;
        }
        text += src[i++];
      }
      out.directives.push_back({text, start_line});
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t end = src.find('\n', i);
      const std::size_t stop = (end == std::string::npos) ? n : end;
      scan_comment(src.substr(i, stop - i), line, out);
      i = stop;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t end = src.find("*/", i + 2);
      const std::size_t stop = (end == std::string::npos) ? n : end + 2;
      scan_comment(src.substr(i, stop - i), line, out);
      advance_newlines(i, stop);
      i = stop;
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src.find(closer, p);
      const std::size_t stop =
          (end == std::string::npos) ? n : end + closer.size();
      out.tokens.push_back({Kind::kString, src.substr(i, stop - i), line});
      advance_newlines(i, stop);
      i = stop;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      while (p < n && src[p] != quote) {
        if (src[p] == '\\' && p + 1 < n) ++p;
        if (src[p] == '\n') ++line;
        ++p;
      }
      const std::size_t stop = (p < n) ? p + 1 : n;
      out.tokens.push_back({quote == '"' ? Kind::kString : Kind::kChar,
                            src.substr(i, stop - i), line});
      i = stop;
      continue;
    }
    if (ident_start(c)) {
      std::size_t p = i + 1;
      while (p < n && ident_char(src[p])) ++p;
      out.tokens.push_back({Kind::kIdent, src.substr(i, p - i), line});
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t p = i + 1;
      // Digit separators (1'000'000) are part of the literal — without this
      // the lone quote would open a bogus char literal that swallows
      // everything up to the next quote in the file.
      while (p < n && (ident_char(src[p]) || src[p] == '.' ||
                       (src[p] == '\'' && p + 1 < n &&
                        std::isxdigit(static_cast<unsigned char>(src[p + 1]))) ||
                       ((src[p] == '+' || src[p] == '-') &&
                        (src[p - 1] == 'e' || src[p - 1] == 'E')))) {
        ++p;
      }
      out.tokens.push_back({Kind::kNumber, src.substr(i, p - i), line});
      i = p;
      continue;
    }
    // Punctuation; multi-char operators the checks care about.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({Kind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({Kind::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

IncludeLine parse_include(const Directive& d) {
  IncludeLine out;
  std::size_t p = 1;  // past '#'
  while (p < d.text.size() &&
         std::isspace(static_cast<unsigned char>(d.text[p]))) {
    ++p;
  }
  if (d.text.compare(p, 7, "include") != 0) return out;
  p += 7;
  while (p < d.text.size() &&
         std::isspace(static_cast<unsigned char>(d.text[p]))) {
    ++p;
  }
  if (p >= d.text.size()) return out;
  const char open = d.text[p];
  const char close = (open == '<') ? '>' : (open == '"') ? '"' : '\0';
  if (close == '\0') return out;
  const std::size_t end = d.text.find(close, p + 1);
  if (end == std::string::npos) return out;
  out.angle = (open == '<');
  out.name = d.text.substr(p + 1, end - p - 1);
  out.line = d.line;
  return out;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == Kind::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == Kind::kIdent && t.text == text;
}

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], opener)) ++depth;
    if (is_punct(toks[i], closer) && --depth == 0) return i;
  }
  return toks.size();
}

std::string normalize_path(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool path_contains(const std::string& normalized, const std::string& needle) {
  return normalized.find(needle) != std::string::npos;
}

bool is_header(const std::string& normalized) {
  return normalized.size() >= 2 &&
         (normalized.rfind(".h") == normalized.size() - 2 ||
          (normalized.size() >= 4 &&
           normalized.rfind(".hpp") == normalized.size() - 4));
}

}  // namespace repro_lint
