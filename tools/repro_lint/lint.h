// repro_lint: project-invariant static analysis for the reproduction.
//
// The repository's correctness story — bit-identical parallel Monte Carlo,
// deterministic fault injection, per-chunk telemetry accumulation, contract
// checks on every numeric entry point — rests on conventions that a compiler
// cannot enforce.  This standalone analyzer (a tokenizer plus a lightweight
// scope tracker; no libclang) turns them into machine-checked invariants:
//
//   determinism         rand()/srand(), std::random_device, time(), clock(),
//                       system_clock, std:: engines (mt19937, ...) anywhere
//                       in checked sources.  util::Rng is the only sanctioned
//                       randomness source; steady_clock timing is exempt.
//   parallel-rng        a parallel_for body calling RNG methods on a
//                       generator it did not derive locally (the captured-
//                       generator bug: results then depend on chunk schedule).
//   parallel-telemetry  telemetry::count/set_gauge/Span directly inside a
//                       parallel_for body instead of the local-accumulate-
//                       then-flush pattern (core/monte_carlo.cpp).
//   contracts           a public function in src/linalg/ or src/core/ taking
//                       a Matrix/Vector that never invokes REPRO_CHECK /
//                       REPRO_CHECK_DIM (src/util/contracts.h).
//   pragma-once         a header without #pragma once.
//   banned-include      includes that smuggle in nondeterminism or bloat:
//                       <ctime>, <time.h>, <sys/time.h>, <random>, plus
//                       <iostream> in headers (use <iosfwd>).
//   include-order       unsorted includes within a block, or angle includes
//                       after quoted ones in the same block.
//   simd-confinement    raw vector intrinsics (<immintrin.h>/<arm_neon.h>
//                       includes, _mm*/__m* / NEON identifiers) outside
//                       src/linalg/simd/.  Every other layer goes through
//                       the dispatched KernelOps table, so the scalar
//                       reference tier stays the single source of truth.
//
// Any finding is suppressible in-source with
//
//     // repro-lint: allow(check-a, check-b)  -- same line or line above
//     // repro-lint: allow-file(check-a)      -- whole file
//
// so true exceptions are visible and reviewable at the use site.
#pragma once

#include <string>
#include <vector>

namespace repro_lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string check;
  std::string message;
};

struct Options {
  // Files or directories to scan (directories recurse over .h/.hpp/.cpp/.cc).
  std::vector<std::string> roots;
  // Exit code 1 from run_cli when findings remain after suppression.
  bool error_on_findings = false;
  // A file whose normalized path contains one of these substrings is subject
  // to the `contracts` check (implementation files of the public numeric
  // API).
  std::vector<std::string> contract_dirs = {"src/linalg/", "src/core/"};
  // Normalized-path substrings excluded from scanning entirely (the lint
  // test fixtures are deliberate violations).
  std::vector<std::string> skip = {"lint_fixtures"};
  // Files under these normalized-path substrings may use raw vector
  // intrinsics; everywhere else they are `simd-confinement` findings.
  std::vector<std::string> simd_dirs = {"src/linalg/simd/"};
};

struct Report {
  std::vector<Finding> findings;
  int files_scanned = 0;
  int suppressed = 0;
};

// Lints one in-memory source buffer (unit-test entry point).  `path` decides
// header-only checks and `contracts` applicability.
Report lint_source(const std::string& path, const std::string& content,
                   const Options& options);

// Expands options.roots, lints every checked file, and merges the reports
// (findings sorted by file, then line).
Report run_lint(const Options& options);

// Full command-line front end (see --help).  Returns the process exit code:
// 0 clean (or findings without --error-on-findings), 1 findings, 2 usage or
// I/O error.
int run_cli(int argc, const char* const* argv);

}  // namespace repro_lint
