// repro_lint: project-invariant static analysis for the reproduction.
//
// The repository's correctness story — bit-identical parallel Monte Carlo,
// deterministic fault injection, per-chunk telemetry accumulation, contract
// checks on every numeric entry point — rests on conventions that a compiler
// cannot enforce.  This standalone analyzer (a tokenizer plus a lightweight
// scope tracker; no libclang) turns them into machine-checked invariants:
//
//   determinism         rand()/srand(), std::random_device, time(), clock(),
//                       system_clock, std:: engines (mt19937, ...) anywhere
//                       in checked sources.  util::Rng is the only sanctioned
//                       randomness source; steady_clock timing is exempt.
//   parallel-rng        a parallel_for body calling RNG methods on a
//                       generator it did not derive locally (the captured-
//                       generator bug: results then depend on chunk schedule).
//   parallel-telemetry  telemetry::count/set_gauge/Span directly inside a
//                       parallel_for body instead of the local-accumulate-
//                       then-flush pattern (core/monte_carlo.cpp).
//   contracts           a public function in src/linalg/ or src/core/ taking
//                       a Matrix/Vector that never invokes REPRO_CHECK /
//                       REPRO_CHECK_DIM (src/util/contracts.h).
//   pragma-once         a header without #pragma once.
//   banned-include      includes that smuggle in nondeterminism or bloat:
//                       <ctime>, <time.h>, <sys/time.h>, <random>, plus
//                       <iostream> in headers (use <iosfwd>).
//   include-order       unsorted includes within a block, or angle includes
//                       after quoted ones in the same block.
//   simd-confinement    raw vector intrinsics (<immintrin.h>/<arm_neon.h>
//                       includes, _mm*/__m* / NEON identifiers) outside
//                       src/linalg/simd/.  Every other layer goes through
//                       the dispatched KernelOps table, so the scalar
//                       reference tier stays the single source of truth.
//
// On top of the per-file checks, the analyzer runs a two-pass cross-TU
// layer: pass 1 (index.{h,cpp}) builds a project-wide symbol index and
// approximate call graph; pass 2 (global_checks.{h,cpp}) reasons over it.
// Whole-program checks, each reported with the call chain that justifies
// the finding:
//
//   lock-order           a cycle in the global mutex acquisition-order
//                        graph (A held while taking B here, B held while
//                        transitively taking A elsewhere), or the same
//                        mutex re-acquired on one path — potential deadlock.
//   blocking-under-lock  socket I/O, submit(...).get(), parallel_for,
//                        joins, sleeps or flushes reachable while a
//                        lock_guard/unique_lock/raw .lock() is live.
//   cv-wait-predicate    condition_variable::wait(lk) without a predicate
//                        overload — lost/spurious-wakeup hazard.
//   noexcept-boundary    throw-capable code (throw, REPRO_CHECK*,
//                        rethrow_exception, transitively) reachable from a
//                        noexcept function, a destructor, or a configured
//                        entry point, outside any try/catch.
//   hot-path-alloc       allocation or container growth inside
//                        src/linalg/simd/ kernels or configured hot
//                        functions (the packed-panel GEMM driver).
//
// Any finding is suppressible in-source with
//
//     // repro-lint: allow(check-a, check-b)  -- same line or line above
//     // repro-lint: allow-file(check-a)      -- whole file
//
// so true exceptions are visible and reviewable at the use site.
#pragma once

#include <string>
#include <vector>

namespace repro_lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string check;
  std::string message;
  // Cross-TU call chain justifying the finding (outermost frame first),
  // empty for per-file checks.  Frames read "Qualified::name (file:line)".
  std::vector<std::string> chain;
};

struct Options {
  // Files or directories to scan (directories recurse over .h/.hpp/.cpp/.cc).
  std::vector<std::string> roots;
  // Exit code 1 from run_cli when findings remain after suppression.
  bool error_on_findings = false;
  // A file whose normalized path contains one of these substrings is subject
  // to the `contracts` check (implementation files of the public numeric
  // API).
  std::vector<std::string> contract_dirs = {"src/linalg/", "src/core/"};
  // Normalized-path substrings excluded from scanning entirely (the lint
  // test fixtures are deliberate violations).
  std::vector<std::string> skip = {"lint_fixtures"};
  // Files under these normalized-path substrings may use raw vector
  // intrinsics; everywhere else they are `simd-confinement` findings.
  std::vector<std::string> simd_dirs = {"src/linalg/simd/"};
  // `hot-path-alloc` scope: files under these substrings, plus functions
  // whose simple or qualified name matches an entry below.  The panel-source
  // fill_rows implementations are the per-shard inner loops of the sharded
  // selection pipeline (core/panel_source.h documents the no-allocation
  // contract); listing them here makes a silent allocation a lint failure.
  std::vector<std::string> hot_alloc_dirs = {"src/linalg/simd/"};
  std::vector<std::string> hot_alloc_functions = {
      "gemm_packed", "MatrixPanelSource::fill_rows",
      "FunctionPanelSource::fill_rows"};
  // Extra `noexcept-boundary` entry points beyond noexcept functions and
  // destructors, by qualified name: code past these must not leak
  // exceptions (reader strands answer kInternal instead of unwinding; the
  // batcher must never strand queued followers).
  std::vector<std::string> exception_boundaries = {
      "Server::handle_connection", "PredictBatcher::predict_block"};
};

struct Report {
  std::vector<Finding> findings;
  int files_scanned = 0;
  int suppressed = 0;
};

// Lints one in-memory source buffer (unit-test entry point).  `path` decides
// header-only checks and `contracts` applicability.
Report lint_source(const std::string& path, const std::string& content,
                   const Options& options);

// Expands options.roots, lints every checked file, and merges the reports
// (findings sorted by file, then line).
Report run_lint(const Options& options);

// Full command-line front end (see --help).  Returns the process exit code:
// 0 clean (or findings without --error-on-findings), 1 findings, 2 usage or
// I/O error.
int run_cli(int argc, const char* const* argv);

}  // namespace repro_lint
