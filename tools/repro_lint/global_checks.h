// Pass 2 of the cross-TU analyzer: whole-program checks over the Index.
//
//   lock-order           cycles (and self-cycles) in the global mutex
//                        acquisition-order graph, propagated through calls
//   blocking-under-lock  blocking operations reachable while a lock is held
//   cv-wait-predicate    condition_variable::wait without a predicate
//   noexcept-boundary    throw-capable code reachable from noexcept
//                        functions, destructors, or configured entry points
//   hot-path-alloc       allocation / container growth in SIMD kernels and
//                        configured hot functions
//
// Every finding carries the cross-TU call chain that justifies it.
#pragma once

#include <vector>

#include "index.h"
#include "lint.h"

namespace repro_lint {

void run_global_checks(const Index& index, const Options& options,
                       std::vector<Finding>& out);

}  // namespace repro_lint
