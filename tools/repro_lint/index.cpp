#include "index.h"

#include <algorithm>

namespace repro_lint {
namespace {

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",    "switch",   "catch",   "return",
      "static_assert",        "sizeof",   "alignof",  "decltype", "throw",
      "new",      "delete",   "operator", "co_await", "co_return", "assert",
      "defined",  "case",     "do",       "else",     "typeid"};
  return kw.count(s) != 0;
}

bool is_mutex_type(const std::string& s) {
  static const std::set<std::string> types = {
      "mutex", "shared_mutex", "timed_mutex", "recursive_mutex",
      "recursive_timed_mutex", "shared_timed_mutex"};
  return types.count(s) != 0;
}

bool is_cv_type(const std::string& s) {
  return s == "condition_variable" || s == "condition_variable_any";
}

bool is_guard_type(const std::string& s) {
  static const std::set<std::string> types = {"lock_guard", "unique_lock",
                                              "scoped_lock", "shared_lock"};
  return types.count(s) != 0;
}

// Operations that can park the calling thread.  Socket I/O, pool fan-out,
// joins, sleeps and stream flushes; `submit(...).get()` chains are matched
// structurally in extract_events.
bool is_blocking_name(const std::string& s) {
  static const std::set<std::string> names = {
      "poll",        "select",    "accept",      "connect",   "send",
      "recv",        "sendto",    "recvfrom",    "send_all",  "recv_all",
      "read_exact",  "read_line", "peek_byte",   "accept_connection",
      "join",        "parallel_for", "sleep_for", "sleep_until", "flush"};
  return names.count(s) != 0;
}

// Member calls that grow or allocate storage.
bool is_growth_name(const std::string& s) {
  static const std::set<std::string> names = {
      "push_back", "emplace_back", "resize", "reserve", "insert", "assign",
      "emplace",   "append"};
  return names.count(s) != 0;
}

// Walks back from `i` (exclusive) over an `a.b->c` style receiver chain and
// returns its source text.  `i` points at the `.` / `->` before the member.
std::string receiver_text(const std::vector<Token>& toks, std::size_t i,
                          std::size_t lo) {
  // Collect tokens of the postfix expression ending at i-1: idents joined by
  // `.` / `->` / `::`, possibly with (...) / [...] groups we render as-is.
  std::vector<std::string> parts;
  std::size_t k = i;
  bool expect_name = true;
  while (k > lo) {
    const Token& t = toks[k - 1];
    if (expect_name) {
      if (t.kind == Kind::kIdent || is_ident(t, "this")) {
        parts.push_back(t.text);
        expect_name = false;
        --k;
        continue;
      }
      break;
    }
    if (is_punct(t, ".") || is_punct(t, "->") || is_punct(t, "::")) {
      parts.push_back(t.text);
      expect_name = true;
      --k;
      continue;
    }
    break;
  }
  if (parts.empty()) return "";
  // A dangling separator (expression started mid-chain) — drop it.
  if (expect_name && !parts.empty() &&
      (parts.back() == "." || parts.back() == "->" || parts.back() == "::")) {
    parts.pop_back();
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) out += *it;
  return out;
}

// Splits the top-level comma-separated arguments of the group opened at
// `open` (a "(" token); returns the token ranges [first, last) of each arg.
std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& toks, std::size_t open, std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  int paren = 0, brace = 0, bracket = 0, angle = 0;
  std::size_t start = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "(")) ++paren;
    if (is_punct(t, ")")) --paren;
    if (is_punct(t, "{")) ++brace;
    if (is_punct(t, "}")) --brace;
    if (is_punct(t, "[")) ++bracket;
    if (is_punct(t, "]")) --bracket;
    if (is_punct(t, "<")) ++angle;
    if (is_punct(t, ">")) --angle;
    if (is_punct(t, ",") && paren == 0 && brace == 0 && bracket == 0 &&
        angle <= 0) {
      args.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (start < close) args.emplace_back(start, close);
  return args;
}

std::string range_text(const std::vector<Token>& toks, std::size_t lo,
                       std::size_t hi) {
  std::string out;
  for (std::size_t i = lo; i < hi; ++i) {
    if (!out.empty() && toks[i].kind == Kind::kIdent &&
        toks[i - 1].kind == Kind::kIdent) {
      out += ' ';
    }
    out += toks[i].text;
  }
  return out;
}

// A live lock guard (or a raw `m.lock()` pseudo-guard, named by its mutex
// expression) inside one function body.
struct Guard {
  std::string name;                 // variable name; expr text for raw locks
  std::vector<std::string> mutexes; // raw mutex expressions it holds
  int depth = 0;                    // brace depth of the declaration
  bool active = false;              // false for defer_lock / after unlock()
};

struct Extractor {
  const std::vector<Token>& toks;
  FunctionInfo& fn;

  std::vector<Guard> guards;
  // [lo, hi) token ranges protected by a try-with-catch.
  std::vector<std::pair<std::size_t, std::size_t>> protected_ranges;

  bool is_protected(std::size_t i) const {
    for (const auto& r : protected_ranges) {
      if (i >= r.first && i < r.second) return true;
    }
    return false;
  }

  std::vector<std::string> held() const {
    std::vector<std::string> out;
    for (const Guard& g : guards) {
      if (!g.active) continue;
      for (const std::string& m : g.mutexes) {
        if (std::find(out.begin(), out.end(), m) == out.end()) {
          out.push_back(m);
        }
      }
    }
    return out;
  }

  Guard* find_guard(const std::string& name) {
    for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
      if (it->name == name) return &*it;
    }
    return nullptr;
  }

  void emit(Event::Type type, int line, std::string detail,
            std::vector<std::string> held_now, std::size_t tok_index) {
    fn.events.push_back({type, line, std::move(detail), std::move(held_now),
                         is_protected(tok_index)});
  }
};

// Records `try { ... } catch` body ranges (catch bodies stay unprotected).
void scan_try_ranges(const std::vector<Token>& toks, std::size_t lo,
                     std::size_t hi, Extractor& ex) {
  for (std::size_t i = lo; i < hi; ++i) {
    if (!is_ident(toks[i], "try")) continue;
    std::size_t open = i + 1;
    if (open >= hi || !is_punct(toks[open], "{")) continue;
    const std::size_t close = match_forward(toks, open, "{", "}");
    if (close >= hi) continue;
    if (close + 1 < hi && is_ident(toks[close + 1], "catch")) {
      ex.protected_ranges.emplace_back(open, close);
    }
  }
}

// If `i` opens a lambda introducer (`[caps](params){...}` / `[caps]{...}`),
// returns the token indices of the body braces; otherwise {npos, npos}.
// Subscripts are told apart by their context: `a[i]` follows a value token.
std::pair<std::size_t, std::size_t> lambda_body(const std::vector<Token>& toks,
                                                std::size_t i,
                                                std::size_t lo) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  if (!is_punct(toks[i], "[")) return {npos, npos};
  if (i > lo) {
    const Token& prev = toks[i - 1];
    if (prev.kind == Kind::kIdent || is_punct(prev, ")") ||
        is_punct(prev, "]")) {
      return {npos, npos};  // subscript
    }
  }
  std::size_t k = match_forward(toks, i, "[", "]");
  if (k >= toks.size()) return {npos, npos};
  ++k;
  if (k < toks.size() && is_punct(toks[k], "(")) {
    k = match_forward(toks, k, "(", ")") + 1;
  }
  // Specifiers / trailing return type before the body.
  while (k < toks.size() &&
         (toks[k].kind == Kind::kIdent || is_punct(toks[k], "->") ||
          is_punct(toks[k], "::") || is_punct(toks[k], "<") ||
          is_punct(toks[k], ">") || is_punct(toks[k], "&") ||
          is_punct(toks[k], "*"))) {
    ++k;
  }
  if (k >= toks.size() || !is_punct(toks[k], "{")) return {npos, npos};
  return {k, match_forward(toks, k, "{", "}")};
}

// Extracts the ordered event list from one function body [open, close].
// Lambda bodies are NOT attributed to the enclosing function — a lambda
// usually runs on another thread (pool workers, std::thread) or later, so
// its calls and waits must not count as synchronous work under the
// enclosing function's locks.  Each lambda becomes its own anonymous
// FunctionInfo in `extra` so direct findings inside it still surface.
void extract_events(const std::vector<Token>& toks, std::size_t body_open,
                    std::size_t body_close, FunctionInfo& fn,
                    std::vector<FunctionInfo>& extra) {
  Extractor ex{toks, fn, {}, {}};
  scan_try_ranges(toks, body_open, body_close, ex);

  int depth = 0;
  for (std::size_t i = body_open; i <= body_close && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "[")) {
      const auto [lb, le] = lambda_body(toks, i, body_open);
      if (lb != static_cast<std::size_t>(-1) && le <= body_close) {
        FunctionInfo sub;
        sub.qualified = fn.qualified + "::<lambda:" +
                        std::to_string(toks[i].line) + ">";
        sub.simple = "<lambda>";
        sub.cls = fn.cls;  // captured `this` keeps member names resolvable
        sub.file = fn.file;
        sub.line = toks[i].line;
        extract_events(toks, lb, le, sub, extra);
        extra.push_back(std::move(sub));
        i = le;  // skip the whole lambda, including its braces
        continue;
      }
    }
    if (is_punct(t, "{")) {
      ++depth;
      continue;
    }
    if (is_punct(t, "}")) {
      --depth;
      // Guards declared deeper than the scope we just left die with it.
      while (!ex.guards.empty() && ex.guards.back().depth > depth) {
        ex.guards.pop_back();
      }
      continue;
    }
    if (t.kind != Kind::kIdent) continue;

    // Local mutex declaration: [std::] mutex_type name ;
    if (is_mutex_type(t.text) && i + 1 < body_close &&
        toks[i + 1].kind == Kind::kIdent &&
        (i + 2 >= toks.size() || is_punct(toks[i + 2], ";"))) {
      fn.local_mutexes.insert(toks[i + 1].text);
      continue;
    }

    // Guard declaration: guard_type [<...>] name ( args ) / { args }
    if (is_guard_type(t.text)) {
      std::size_t k = i + 1;
      if (k < toks.size() && is_punct(toks[k], "<")) {
        k = match_forward(toks, k, "<", ">") + 1;
      }
      if (k >= toks.size() || toks[k].kind != Kind::kIdent) continue;
      const std::string name = toks[k].text;
      std::size_t open = k + 1;
      const bool paren = open < toks.size() && is_punct(toks[open], "(");
      const bool brace = open < toks.size() && is_punct(toks[open], "{");
      if (!paren && !brace) continue;
      const std::size_t close = paren ? match_forward(toks, open, "(", ")")
                                      : match_forward(toks, open, "{", "}");
      Guard g;
      g.name = name;
      g.depth = depth;
      g.active = true;
      for (const auto& [lo, hi] : split_args(toks, open, close)) {
        const std::string text = range_text(toks, lo, hi);
        if (text.find("defer_lock") != std::string::npos) {
          g.active = false;
          continue;
        }
        if (text.find("adopt_lock") != std::string::npos ||
            text.find("try_to_lock") != std::string::npos) {
          continue;
        }
        g.mutexes.push_back(text);
      }
      if (g.active) {
        for (const std::string& m : g.mutexes) {
          ex.emit(Event::Type::kAcquire, toks[k].line, m, ex.held(), k);
        }
      }
      ex.guards.push_back(std::move(g));
      i = close;
      continue;
    }

    // Member calls: receiver . name ( ... )
    const bool member_call =
        i > body_open &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(");
    const std::size_t call_open = i + 1;
    const std::size_t call_close =
        (i + 1 < toks.size() && is_punct(toks[i + 1], "("))
            ? match_forward(toks, call_open, "(", ")")
            : toks.size();

    if (member_call && (t.text == "lock" || t.text == "unlock")) {
      const std::string recv = receiver_text(toks, i - 1, body_open);
      if (recv.empty()) continue;
      Guard* g = ex.find_guard(recv);
      if (t.text == "lock") {
        if (g) {
          if (!g->active) {
            // Snapshot the held set before reactivating, or the relock
            // would appear to acquire the guard's own mutex while held.
            const std::vector<std::string> h = ex.held();
            g->active = true;
            for (const std::string& m : g->mutexes) {
              ex.emit(Event::Type::kAcquire, t.line, m, h, i);
            }
          }
        } else {
          // Raw mutex lock: a pseudo-guard keyed by the expression itself.
          std::vector<std::string> h = ex.held();
          ex.emit(Event::Type::kAcquire, t.line, recv, h, i);
          Guard raw;
          raw.name = recv;
          raw.mutexes = {recv};
          raw.depth = depth;
          raw.active = true;
          ex.guards.push_back(std::move(raw));
        }
      } else {  // unlock
        if (g) g->active = false;
      }
      i = call_close;
      continue;
    }

    // Condition-variable wait: cv.wait(lk [, pred]) — recognized by its
    // first argument being a live guard, so no receiver-type lookup needed.
    if (member_call &&
        (t.text == "wait" || t.text == "wait_for" || t.text == "wait_until")) {
      const auto args = split_args(toks, call_open, call_close);
      if (!args.empty()) {
        const std::string first = range_text(toks, args[0].first,
                                             args[0].second);
        Guard* g = ex.find_guard(first);
        if (g) {
          // wait() releases its own lock; only *other* held locks block.
          std::vector<std::string> h;
          for (const std::string& m : ex.held()) {
            if (std::find(g->mutexes.begin(), g->mutexes.end(), m) ==
                g->mutexes.end()) {
              h.push_back(m);
            }
          }
          const std::string recv = receiver_text(toks, i - 1, body_open);
          ex.emit(Event::Type::kBlocking, t.line, recv + "." + t.text, h, i);
          if (t.text == "wait" && args.size() == 1) {
            ex.emit(Event::Type::kCvWaitNoPred, t.line, recv, h, i);
          }
          i = call_open;  // still walk the predicate body for events
          continue;
        }
      }
    }

    // Blocking call (direct or member): name(...).
    if (i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        is_blocking_name(t.text)) {
      ex.emit(Event::Type::kBlocking, t.line, t.text, ex.held(), i);
      i = call_open;  // walk arguments too (parallel_for lambdas)
      continue;
    }

    // submit(...).get() — a pool future consumed inline.
    if (i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        t.text == "submit" && call_close + 3 < toks.size() &&
        is_punct(toks[call_close + 1], ".") &&
        is_ident(toks[call_close + 2], "get") &&
        is_punct(toks[call_close + 3], "(")) {
      ex.emit(Event::Type::kBlocking, t.line, "submit(...).get", ex.held(), i);
      i = call_open;
      continue;
    }

    // Throw sites.  REPRO_CHECK* macros expand to `throw ContractViolation`.
    if (t.text == "throw" || t.text == "rethrow_exception" ||
        t.text.rfind("REPRO_CHECK", 0) == 0) {
      ex.emit(Event::Type::kThrow, t.line, t.text, ex.held(), i);
      continue;
    }

    // Allocation sites.
    if (t.text == "new") {
      // No placement/operator-new filtering: any `new` in a hot path is a
      // finding.
      ex.emit(Event::Type::kAlloc, t.line, "new", ex.held(), i);
      continue;
    }
    if ((t.text == "malloc" || t.text == "calloc" || t.text == "realloc") &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      ex.emit(Event::Type::kAlloc, t.line, t.text, ex.held(), i);
      continue;
    }
    if (member_call && is_growth_name(t.text)) {
      ex.emit(Event::Type::kAlloc, t.line, "." + t.text, ex.held(), i);
      continue;
    }
    // Container construction: [std::] vector<...> name ( / { with args.
    if (t.text == "vector" && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "<")) {
      const std::size_t gt = match_forward(toks, i + 1, "<", ">");
      if (gt + 1 < toks.size() && toks[gt + 1].kind == Kind::kIdent &&
          gt + 2 < toks.size() &&
          (is_punct(toks[gt + 2], "(") || is_punct(toks[gt + 2], "{"))) {
        ex.emit(Event::Type::kAlloc, t.line,
                "vector " + toks[gt + 1].text + " construction", ex.held(),
                i);
        i = gt + 1;
        continue;
      }
    }

    // Plain calls feeding the call graph.
    if (i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        !is_keyword(t.text) && t.text.rfind("REPRO_", 0) != 0) {
      std::string detail;
      if (i > body_open && is_punct(toks[i - 1], "::")) {
        if (i >= 2 && toks[i - 2].kind == Kind::kIdent) {
          const std::string& qual = toks[i - 2].text;
          if (qual == "std" || qual == "chrono") {
            i = call_open;
            continue;
          }
          detail = qual + "::" + t.text;
        }
      } else if (member_call) {
        detail = "." + t.text;
      } else if (i > body_open && toks[i - 1].kind == Kind::kIdent) {
        // `Type name(` — a declaration, not a call.
        i = call_open;
        continue;
      } else {
        detail = t.text;
      }
      if (!detail.empty()) {
        ex.emit(Event::Type::kCall, t.line, detail, ex.held(), i);
      }
      // Do not skip the argument range: nested calls are events too.
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// Class scan: class/struct bodies -> lockable members.
// ---------------------------------------------------------------------------

void scan_classes(const std::vector<Token>& toks, Index& index) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i], "class") && !is_ident(toks[i], "struct")) continue;
    if (i > 0 && is_ident(toks[i - 1], "enum")) continue;
    if (i + 1 >= toks.size() || toks[i + 1].kind != Kind::kIdent) continue;
    const std::string name = toks[i + 1].text;
    // Find the body '{', bailing at ';' (forward declaration) or '('.
    std::size_t k = i + 2;
    int angle = 0;
    while (k < toks.size() && !is_punct(toks[k], ";") &&
           !is_punct(toks[k], ")")) {
      if (is_punct(toks[k], "<")) ++angle;
      if (is_punct(toks[k], ">")) --angle;
      if (is_punct(toks[k], "{") && angle <= 0) break;
      ++k;
    }
    if (k >= toks.size() || !is_punct(toks[k], "{")) continue;
    const std::size_t body_end = match_forward(toks, k, "{", "}");
    ClassInfo& info = index.classes[name];
    // Shallow scan: members at depth 1 only (nested bodies are skipped here;
    // the outer loop reaches nested classes on its own).
    int depth = 0;
    for (std::size_t p = k; p < body_end; ++p) {
      if (is_punct(toks[p], "{")) {
        ++depth;
        continue;
      }
      if (is_punct(toks[p], "}")) {
        --depth;
        continue;
      }
      if (depth != 1 || toks[p].kind != Kind::kIdent) continue;
      if (p + 1 < body_end && toks[p + 1].kind == Kind::kIdent &&
          p + 2 <= body_end && is_punct(toks[p + 2], ";")) {
        if (is_mutex_type(toks[p].text)) {
          info.mutex_members.insert(toks[p + 1].text);
        } else if (is_cv_type(toks[p].text)) {
          info.cv_members.insert(toks[p + 1].text);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Function scan: definitions with qualified names and event lists.
// ---------------------------------------------------------------------------

// After the parameter list's ')', steps over cv/ref/noexcept qualifiers,
// trailing return types and constructor initializer lists; returns the index
// of the body '{', or toks.size() when this is not a definition.
std::size_t find_body_open(const std::vector<Token>& toks,
                           std::size_t params_end, bool& out_noexcept) {
  std::size_t k = params_end + 1;
  out_noexcept = false;
  while (k < toks.size()) {
    const Token& t = toks[k];
    if (is_ident(t, "const") || is_ident(t, "override") ||
        is_ident(t, "final") || is_ident(t, "mutable") ||
        is_punct(t, "&")) {
      ++k;
      continue;
    }
    if (is_ident(t, "noexcept")) {
      if (k + 1 < toks.size() && is_punct(toks[k + 1], "(")) {
        const std::size_t close = match_forward(toks, k + 1, "(", ")");
        std::string inner = range_text(toks, k + 2, close);
        out_noexcept = (inner != "false");
        k = close + 1;
      } else {
        out_noexcept = true;
        ++k;
      }
      continue;
    }
    if (is_punct(t, "->")) {  // trailing return type
      ++k;
      while (k < toks.size() && !is_punct(toks[k], "{") &&
             !is_punct(toks[k], ";")) {
        ++k;
      }
      continue;
    }
    if (is_punct(t, ":")) {  // constructor initializer list
      ++k;
      int paren = 0;
      while (k < toks.size()) {
        if (is_punct(toks[k], "(")) ++paren;
        if (is_punct(toks[k], ")")) --paren;
        if (is_punct(toks[k], ";")) return toks.size();
        if (is_punct(toks[k], "{") && paren == 0) {
          // `member{...}` init braces follow an identifier; the body brace
          // follows ')' / '}' / the ':' itself.
          if (toks[k - 1].kind == Kind::kIdent) {
            k = match_forward(toks, k, "{", "}") + 1;
            continue;
          }
          return k;
        }
        ++k;
      }
      return toks.size();
    }
    if (is_punct(t, "{")) return k;
    return toks.size();  // ';', '=', ',' ... declaration or expression
  }
  return toks.size();
}

void scan_functions(const std::string& path, const std::vector<Token>& toks,
                    Index& index) {
  // Track class bodies so inline method definitions get their class, and so
  // we can tell methods from free functions.
  struct OpenClass {
    std::string name;
    std::size_t body_end;
  };
  std::vector<OpenClass> open_classes;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    while (!open_classes.empty() && i > open_classes.back().body_end) {
      open_classes.pop_back();
    }
    const Token& t = toks[i];
    if ((is_ident(t, "class") || is_ident(t, "struct")) &&
        !(i > 0 && is_ident(toks[i - 1], "enum")) && i + 1 < toks.size() &&
        toks[i + 1].kind == Kind::kIdent) {
      std::size_t k = i + 2;
      int angle = 0;
      while (k < toks.size() && !is_punct(toks[k], ";") &&
             !is_punct(toks[k], ")")) {
        if (is_punct(toks[k], "<")) ++angle;
        if (is_punct(toks[k], ">")) --angle;
        if (is_punct(toks[k], "{") && angle <= 0) break;
        ++k;
      }
      if (k < toks.size() && is_punct(toks[k], "{")) {
        open_classes.push_back(
            {toks[i + 1].text, match_forward(toks, k, "{", "}")});
        i = k;  // descend into the class body
      }
      continue;
    }

    if (!is_punct(t, "(")) continue;
    if (i == 0 || toks[i - 1].kind != Kind::kIdent) continue;
    const std::string simple = toks[i - 1].text;
    if (is_keyword(simple) || is_guard_type(simple)) continue;
    const std::size_t name_idx = i - 1;

    // Qualification: `Class :: name (` or `~` for destructors.
    std::string cls;
    std::string qualified = simple;
    std::string display_simple = simple;
    bool is_dtor = false;
    std::size_t before = name_idx;
    if (before > 0 && is_punct(toks[before - 1], "~")) {
      is_dtor = true;
      display_simple = "~" + simple;
      --before;
    }
    if (before > 1 && is_punct(toks[before - 1], "::") &&
        toks[before - 2].kind == Kind::kIdent) {
      cls = toks[before - 2].text;
      if (cls == "std" || cls == "chrono") continue;
      qualified = cls + "::" + display_simple;
    } else if (!open_classes.empty()) {
      cls = open_classes.back().name;
      qualified = cls + "::" + display_simple;
    } else {
      qualified = display_simple;
    }

    const std::size_t params_end = match_forward(toks, i, "(", ")");
    if (params_end >= toks.size()) break;
    bool fn_noexcept = false;
    const std::size_t body_open =
        find_body_open(toks, params_end, fn_noexcept);
    if (body_open >= toks.size()) {
      i = params_end;
      continue;
    }
    const std::size_t body_end = match_forward(toks, body_open, "{", "}");

    FunctionInfo fn;
    fn.qualified = qualified;
    fn.simple = display_simple;
    fn.cls = cls;
    fn.file = path;
    fn.line = toks[name_idx].line;
    fn.is_noexcept = fn_noexcept;
    fn.is_destructor = is_dtor;
    std::vector<FunctionInfo> lambdas;
    extract_events(toks, body_open, body_end, fn, lambdas);

    const std::size_t idx = index.functions.size();
    index.functions.push_back(std::move(fn));
    index.by_simple[display_simple].push_back(idx);
    index.by_qualified[qualified].push_back(idx);
    // Lambdas are indexed for their own direct findings, but are not call
    // targets (nothing resolves to "<lambda>").
    for (FunctionInfo& lam : lambdas) {
      const std::size_t li = index.functions.size();
      index.by_qualified[lam.qualified].push_back(li);
      index.functions.push_back(std::move(lam));
    }

    i = body_end;
  }
}

void scan_file_mutexes(const std::string& path,
                       const std::vector<Token>& toks, Index& index) {
  // Namespace-scope mutex variables: `std::mutex name;` outside any brace
  // nesting deeper than namespace blocks is hard to tell apart cheaply, so
  // approximate: any `mutex name ;` sequence whose name is not also a class
  // member lands in the file set.  Duplicates with members are harmless —
  // member resolution runs first.
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind == Kind::kIdent && is_mutex_type(toks[i].text) &&
        toks[i + 1].kind == Kind::kIdent && is_punct(toks[i + 2], ";")) {
      index.file_mutexes[path].insert(toks[i + 1].text);
    }
  }
}

}  // namespace

void Index::add_file(const std::string& path, const Source& src) {
  scan_classes(src.tokens, *this);
  scan_functions(path, src.tokens, *this);
  scan_file_mutexes(path, src.tokens, *this);
}

}  // namespace repro_lint
