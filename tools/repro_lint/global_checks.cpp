#include "global_checks.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>

namespace repro_lint {
namespace {

// ---------------------------------------------------------------------------
// Resolution: raw expression text -> stable whole-program keys.
// ---------------------------------------------------------------------------

bool is_bare_ident(const std::string& expr) {
  if (expr.empty()) return false;
  for (char c : expr) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

std::string last_member(const std::string& expr) {
  std::size_t pos = expr.size();
  while (pos > 0) {
    const char c = expr[pos - 1];
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') break;
    --pos;
  }
  return expr.substr(pos);
}

// The class (if exactly one) declaring a mutex member with this name.
const std::string* unique_mutex_class(const Index& index,
                                      const std::string& member) {
  const std::string* found = nullptr;
  for (const auto& [cls, info] : index.classes) {
    if (info.mutex_members.count(member)) {
      if (found) return nullptr;  // ambiguous
      found = &cls;
    }
  }
  return found;
}

// Maps a raw mutex expression from `fn` to a whole-program identity key.
// Resolution order: function-local declaration, enclosing-class member,
// globally-unique member name, file-scope variable, then a file:expression
// fallback that at least keeps distinct expressions distinct.
std::string resolve_mutex(const Index& index, const FunctionInfo& fn,
                          const std::string& expr) {
  if (is_bare_ident(expr)) {
    if (fn.local_mutexes.count(expr)) {
      return fn.file + ":" + fn.qualified + ":" + expr;
    }
    if (!fn.cls.empty()) {
      const auto it = index.classes.find(fn.cls);
      if (it != index.classes.end() && it->second.mutex_members.count(expr)) {
        return fn.cls + "::" + expr;
      }
    }
    if (const std::string* cls = unique_mutex_class(index, expr)) {
      return *cls + "::" + expr;
    }
    const auto fit = index.file_mutexes.find(fn.file);
    if (fit != index.file_mutexes.end() && fit->second.count(expr)) {
      return fn.file + ":" + expr;
    }
    return fn.file + ":" + expr;
  }
  const std::string member = last_member(expr);
  if (!member.empty()) {
    if (const std::string* cls = unique_mutex_class(index, member)) {
      return *cls + "::" + member;
    }
  }
  return fn.file + ":" + expr;
}

std::vector<std::string> resolve_held(const Index& index,
                                      const FunctionInfo& fn,
                                      const std::vector<std::string>& held) {
  std::vector<std::string> out;
  for (const std::string& h : held) {
    const std::string key = resolve_mutex(index, fn, h);
    if (std::find(out.begin(), out.end(), key) == out.end()) {
      out.push_back(key);
    }
  }
  return out;
}

// Maps an Event::kCall detail to candidate function indices.  Unresolvable
// or ambiguous names (same simple name on unrelated classes) resolve to
// nothing — the analyses assume unknown callees neither block nor throw.
std::vector<std::size_t> resolve_callees(const Index& index,
                                         const FunctionInfo& fn,
                                         const std::string& detail) {
  auto exact = [&](const std::string& q) -> const std::vector<std::size_t>* {
    const auto it = index.by_qualified.find(q);
    return it == index.by_qualified.end() ? nullptr : &it->second;
  };
  const std::size_t sep = detail.find("::");
  if (sep != std::string::npos) {
    if (const auto* v = exact(detail)) return *v;
    return {};
  }
  std::string simple = detail;
  const bool member = !simple.empty() && simple[0] == '.';
  if (member) simple.erase(0, 1);
  if (!member) {
    // Bare call: a method of the enclosing class shadows free functions.
    if (!fn.cls.empty()) {
      if (const auto* v = exact(fn.cls + "::" + simple)) return *v;
    }
    if (const auto* v = exact(simple)) return *v;
  }
  // Fall back to the simple-name table, but only when every candidate is
  // the same function (overload set of one qualified name).
  const auto it = index.by_simple.find(simple);
  if (it == index.by_simple.end()) return {};
  std::set<std::string> quals;
  for (std::size_t i : it->second) quals.insert(index.functions[i].qualified);
  if (quals.size() == 1) return it->second;
  return {};
}

std::string frame(const FunctionInfo& fn, int line) {
  return fn.qualified + " (" + fn.file + ":" + std::to_string(line) + ")";
}

std::string join_keys(const std::vector<std::string>& keys) {
  std::string out;
  for (const std::string& k : keys) {
    if (!out.empty()) out += ", ";
    out += "'" + k + "'";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fixpoints: can_block / can_throw / transitive lock acquisition, each with
// a witness chain.  Memoized DFS; recursion cycles are cut by treating an
// in-progress function as not-yet-known (sound for "may" analyses seeded by
// at least one concrete site).
// ---------------------------------------------------------------------------

struct Analysis {
  const Index& index;
  // 0 unknown, 1 computing, 2 done.
  std::vector<int> block_state, throw_state, acq_state;
  std::vector<bool> blocks, throws;
  std::vector<std::vector<std::string>> block_chain, throw_chain;
  // mutex key -> witness chain of the acquisition (frames outer->inner).
  std::vector<std::map<std::string, std::vector<std::string>>> acquires;

  explicit Analysis(const Index& idx)
      : index(idx),
        block_state(idx.functions.size(), 0),
        throw_state(idx.functions.size(), 0),
        acq_state(idx.functions.size(), 0),
        blocks(idx.functions.size(), false),
        throws(idx.functions.size(), false),
        block_chain(idx.functions.size()),
        throw_chain(idx.functions.size()),
        acquires(idx.functions.size()) {}

  bool can_block(std::size_t i) {
    if (block_state[i] == 2) return blocks[i];
    if (block_state[i] == 1) return false;  // cycle cut
    block_state[i] = 1;
    const FunctionInfo& fn = index.functions[i];
    for (const Event& e : fn.events) {
      if (e.type == Event::Type::kBlocking) {
        blocks[i] = true;
        block_chain[i] = {frame(fn, e.line) + " blocks in '" + e.detail +
                          "'"};
        break;
      }
      if (e.type == Event::Type::kCall) {
        for (std::size_t c : resolve_callees(index, fn, e.detail)) {
          if (c != i && can_block(c)) {
            blocks[i] = true;
            block_chain[i].push_back(frame(fn, e.line));
            block_chain[i].insert(block_chain[i].end(),
                                  block_chain[c].begin(),
                                  block_chain[c].end());
            break;
          }
        }
        if (blocks[i]) break;
      }
    }
    block_state[i] = 2;
    return blocks[i];
  }

  bool can_throw(std::size_t i) {
    if (throw_state[i] == 2) return throws[i];
    if (throw_state[i] == 1) return false;
    throw_state[i] = 1;
    const FunctionInfo& fn = index.functions[i];
    for (const Event& e : fn.events) {
      if (e.protected_by_try) continue;
      if (e.type == Event::Type::kThrow) {
        throws[i] = true;
        throw_chain[i] = {frame(fn, e.line) + " throws ('" + e.detail +
                          "')"};
        break;
      }
      if (e.type == Event::Type::kCall) {
        for (std::size_t c : resolve_callees(index, fn, e.detail)) {
          if (c != i && can_throw(c)) {
            throws[i] = true;
            throw_chain[i].push_back(frame(fn, e.line));
            throw_chain[i].insert(throw_chain[i].end(),
                                  throw_chain[c].begin(),
                                  throw_chain[c].end());
            break;
          }
        }
        if (throws[i]) break;
      }
    }
    throw_state[i] = 2;
    return throws[i];
  }

  const std::map<std::string, std::vector<std::string>>& acquired(
      std::size_t i) {
    static const std::map<std::string, std::vector<std::string>> empty;
    if (acq_state[i] == 2) return acquires[i];
    if (acq_state[i] == 1) return empty;
    acq_state[i] = 1;
    const FunctionInfo& fn = index.functions[i];
    for (const Event& e : fn.events) {
      if (e.type == Event::Type::kAcquire) {
        const std::string key = resolve_mutex(index, fn, e.detail);
        acquires[i].emplace(key, std::vector<std::string>{
                                     frame(fn, e.line) + " acquires '" + key +
                                     "'"});
      } else if (e.type == Event::Type::kCall) {
        for (std::size_t c : resolve_callees(index, fn, e.detail)) {
          if (c == i) continue;
          for (const auto& [key, chain] : acquired(c)) {
            auto [it, inserted] =
                acquires[i].emplace(key, std::vector<std::string>{});
            if (inserted) {
              it->second.push_back(frame(fn, e.line));
              it->second.insert(it->second.end(), chain.begin(), chain.end());
            }
          }
        }
      }
    }
    acq_state[i] = 2;
    return acquires[i];
  }
};

// ---------------------------------------------------------------------------
// Checks.
// ---------------------------------------------------------------------------

struct Edge {
  std::string file;
  int line = 0;
  std::vector<std::string> chain;
};

void check_lock_order(const Index& index, Analysis& an,
                      std::vector<Finding>& out) {
  // Directed acquisition-order graph: edge A->B when B is acquired (maybe
  // via calls) while A is held.  First witness per edge wins.
  std::map<std::pair<std::string, std::string>, Edge> edges;

  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    const FunctionInfo& fn = index.functions[i];
    for (const Event& e : fn.events) {
      if (e.type == Event::Type::kAcquire) {
        const std::vector<std::string> held =
            resolve_held(index, fn, e.held);
        const std::string to = resolve_mutex(index, fn, e.detail);
        for (const std::string& h : held) {
          edges.emplace(std::make_pair(h, to),
                        Edge{fn.file, e.line, {frame(fn, e.line)}});
        }
      } else if (e.type == Event::Type::kCall && !e.held.empty()) {
        const std::vector<std::string> held =
            resolve_held(index, fn, e.held);
        for (std::size_t c : resolve_callees(index, fn, e.detail)) {
          if (c == i) continue;
          for (const auto& [key, chain] : an.acquired(c)) {
            for (const std::string& h : held) {
              std::vector<std::string> witness = {frame(fn, e.line)};
              witness.insert(witness.end(), chain.begin(), chain.end());
              edges.emplace(std::make_pair(h, key),
                            Edge{fn.file, e.line, std::move(witness)});
            }
          }
        }
      }
    }
  }

  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [key, edge] : edges) {
    (void)edge;
    if (key.first != key.second) adj[key.first].insert(key.second);
  }
  auto reachable = [&](const std::string& from, const std::string& to) {
    std::set<std::string> seen;
    std::vector<std::string> stack = {from};
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      if (cur == to) return true;
      if (!seen.insert(cur).second) continue;
      const auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (const std::string& next : it->second) stack.push_back(next);
    }
    return false;
  };

  for (const auto& [key, edge] : edges) {
    const auto& [from, to] = key;
    if (from == to) {
      out.push_back({edge.file, edge.line, "lock-order",
                     "mutex '" + from +
                         "' acquired while already held on this path "
                         "(std mutexes are non-recursive: self-deadlock)",
                     edge.chain});
      continue;
    }
    if (reachable(to, from)) {
      out.push_back({edge.file, edge.line, "lock-order",
                     "lock acquisition order cycle: '" + from +
                         "' is held while acquiring '" + to +
                         "' here, but elsewhere '" + to +
                         "' is held while (transitively) acquiring '" + from +
                         "' — a potential deadlock; pick one global order",
                     edge.chain});
    }
  }
}

void check_blocking_under_lock(const Index& index, Analysis& an,
                               std::vector<Finding>& out) {
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    const FunctionInfo& fn = index.functions[i];
    for (const Event& e : fn.events) {
      if (e.held.empty()) continue;
      const std::vector<std::string> held = resolve_held(index, fn, e.held);
      if (e.type == Event::Type::kBlocking) {
        out.push_back({fn.file, e.line, "blocking-under-lock",
                       "blocking operation '" + e.detail +
                           "' while holding " + join_keys(held) +
                           "; move the wait outside the critical section",
                       {frame(fn, e.line)}});
      } else if (e.type == Event::Type::kCall) {
        for (std::size_t c : resolve_callees(index, fn, e.detail)) {
          if (c == i || !an.can_block(c)) continue;
          std::vector<std::string> chain = {frame(fn, e.line)};
          chain.insert(chain.end(), an.block_chain[c].begin(),
                       an.block_chain[c].end());
          out.push_back({fn.file, e.line, "blocking-under-lock",
                         "call to '" + index.functions[c].qualified +
                             "' can block while holding " + join_keys(held) +
                             "; move the call outside the critical section",
                         std::move(chain)});
          break;
        }
      }
    }
  }
}

void check_cv_wait_predicate(const Index& index, std::vector<Finding>& out) {
  for (const FunctionInfo& fn : index.functions) {
    for (const Event& e : fn.events) {
      if (e.type != Event::Type::kCvWaitNoPred) continue;
      out.push_back({fn.file, e.line, "cv-wait-predicate",
                     "condition_variable wait on '" + e.detail +
                         "' without a predicate: spurious or lost wakeups "
                         "break the protocol; use cv.wait(lk, [&]{ return "
                         "<condition>; })",
                     {frame(fn, e.line)}});
    }
  }
}

void check_noexcept_boundary(const Index& index, Analysis& an,
                             const Options& options,
                             std::vector<Finding>& out) {
  std::set<std::string> boundaries(options.exception_boundaries.begin(),
                                   options.exception_boundaries.end());
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    const FunctionInfo& fn = index.functions[i];
    const bool configured = boundaries.count(fn.qualified) != 0;
    if (!fn.is_noexcept && !fn.is_destructor && !configured) continue;
    if (!an.can_throw(i)) continue;
    const char* why = configured
                          ? "a configured no-throw entry point"
                          : (fn.is_noexcept ? "declared noexcept"
                                            : "a destructor (implicitly "
                                              "noexcept)");
    out.push_back({fn.file, fn.line, "noexcept-boundary",
                   "'" + fn.qualified + "' is " + std::string(why) +
                       " but can reach a throw; catch at this boundary or "
                       "make the callee non-throwing",
                   an.throw_chain[i]});
  }
}

void check_hot_path_alloc(const Index& index, const Options& options,
                          std::vector<Finding>& out) {
  std::set<std::string> hot_fns(options.hot_alloc_functions.begin(),
                                options.hot_alloc_functions.end());
  for (const FunctionInfo& fn : index.functions) {
    bool hot = hot_fns.count(fn.qualified) || hot_fns.count(fn.simple);
    // Lambdas defined inside a hot function inherit its hot scope (their
    // qualified name is "<hot>::<lambda:line>").
    for (const std::string& name : options.hot_alloc_functions) {
      if (fn.qualified.rfind(name + "::<lambda", 0) == 0) hot = true;
    }
    for (const std::string& dir : options.hot_alloc_dirs) {
      if (path_contains(fn.file, dir)) hot = true;
    }
    if (!hot) continue;
    for (const Event& e : fn.events) {
      if (e.type != Event::Type::kAlloc) continue;
      out.push_back({fn.file, e.line, "hot-path-alloc",
                     "allocation in hot path: '" + e.detail + "' inside '" +
                         fn.qualified +
                         "'; pre-size buffers outside the kernel or hoist "
                         "into the caller",
                     {frame(fn, e.line)}});
    }
  }
}

}  // namespace

void run_global_checks(const Index& index, const Options& options,
                       std::vector<Finding>& out) {
  Analysis an(index);
  check_lock_order(index, an, out);
  check_blocking_under_lock(index, an, out);
  check_cv_wait_predicate(index, out);
  check_noexcept_boundary(index, an, options, out);
  check_hot_path_alloc(index, options, out);
}

}  // namespace repro_lint
