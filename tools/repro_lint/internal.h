// Shared tokenizer and token helpers for the repro_lint translation units.
//
// The analyzer stays a tokenizer plus lightweight structural trackers — no
// libclang, no preprocessor — so everything downstream (the per-file checks
// in lint.cpp, the cross-TU index in index.cpp, the whole-program checks in
// global_checks.cpp) works off this one token stream representation.
// Internal header: nothing here is part of the lint.h public API.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace repro_lint {

enum class Kind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  Kind kind;
  std::string text;
  int line;
};

struct Directive {
  std::string text;  // whole logical line, backslash-continuations joined
  int line;
};

struct Source {
  std::vector<Token> tokens;
  std::vector<Directive> directives;
  // line -> checks suppressed on that line (and the line below).
  std::map<int, std::set<std::string>> line_allow;
  std::set<std::string> file_allow;
};

// Tokenizes one source buffer.  Comments and preprocessor directives are
// captured separately: comments feed the suppression map, directives feed the
// hygiene checks, and neither appears in the main token stream.
Source tokenize(const std::string& src);

// "#include <x>" -> {angle, "x"}; empty name when not an include.
struct IncludeLine {
  bool angle = false;
  std::string name;
  int line = 0;
};
IncludeLine parse_include(const Directive& d);

bool is_punct(const Token& t, const char* text);
bool is_ident(const Token& t, const char* text);

// Index of the token matching the opener at `open` ("(" / "{" / "["), or
// tokens.size() when unbalanced.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer);

std::string normalize_path(const std::string& path);
bool path_contains(const std::string& normalized, const std::string& needle);
bool is_header(const std::string& normalized);

}  // namespace repro_lint
