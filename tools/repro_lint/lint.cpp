#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace repro_lint {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer.  Comments and preprocessor directives are captured separately:
// comments feed the suppression map, directives feed the hygiene checks, and
// neither appears in the main token stream the semantic checks walk.
// ---------------------------------------------------------------------------

enum class Kind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  Kind kind;
  std::string text;
  int line;
};

struct Directive {
  std::string text;  // whole logical line, backslash-continuations joined
  int line;
};

struct Source {
  std::vector<Token> tokens;
  std::vector<Directive> directives;
  // line -> checks suppressed on that line (and the line below).
  std::map<int, std::set<std::string>> line_allow;
  std::set<std::string> file_allow;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses "repro-lint: allow(a, b)" / "repro-lint: allow-file(a)" occurrences
// inside a comment and records them for `line`.
void scan_comment(const std::string& comment, int line, Source& out) {
  const std::string marker = "repro-lint:";
  std::size_t pos = comment.find(marker);
  while (pos != std::string::npos) {
    std::size_t p = pos + marker.size();
    while (p < comment.size() && comment[p] == ' ') ++p;
    bool file_wide = false;
    if (comment.compare(p, 10, "allow-file") == 0) {
      file_wide = true;
      p += 10;
    } else if (comment.compare(p, 5, "allow") == 0) {
      p += 5;
    } else {
      pos = comment.find(marker, p);
      continue;
    }
    while (p < comment.size() && comment[p] == ' ') ++p;
    if (p < comment.size() && comment[p] == '(') {
      const std::size_t close = comment.find(')', p);
      if (close != std::string::npos) {
        std::string name;
        for (std::size_t i = p + 1; i <= close; ++i) {
          const char c = comment[i];
          if (c == ',' || c == ')') {
            if (!name.empty()) {
              if (file_wide) {
                out.file_allow.insert(name);
              } else {
                out.line_allow[line].insert(name);
              }
            }
            name.clear();
          } else if (c != ' ') {
            name += c;
          }
        }
        p = close + 1;
      }
    }
    pos = comment.find(marker, p);
  }
}

Source tokenize(const std::string& src) {
  Source out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto advance_newlines = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to; ++k) {
      if (src[k] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor directive: capture the whole logical line.
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::string text;
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          text += ' ';
          continue;
        }
        text += src[i++];
      }
      out.directives.push_back({text, start_line});
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t end = src.find('\n', i);
      const std::size_t stop = (end == std::string::npos) ? n : end;
      scan_comment(src.substr(i, stop - i), line, out);
      i = stop;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t end = src.find("*/", i + 2);
      const std::size_t stop = (end == std::string::npos) ? n : end + 2;
      scan_comment(src.substr(i, stop - i), line, out);
      advance_newlines(i, stop);
      i = stop;
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src.find(closer, p);
      const std::size_t stop =
          (end == std::string::npos) ? n : end + closer.size();
      out.tokens.push_back({Kind::kString, src.substr(i, stop - i), line});
      advance_newlines(i, stop);
      i = stop;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      while (p < n && src[p] != quote) {
        if (src[p] == '\\' && p + 1 < n) ++p;
        if (src[p] == '\n') ++line;
        ++p;
      }
      const std::size_t stop = (p < n) ? p + 1 : n;
      out.tokens.push_back({quote == '"' ? Kind::kString : Kind::kChar,
                            src.substr(i, stop - i), line});
      i = stop;
      continue;
    }
    if (ident_start(c)) {
      std::size_t p = i + 1;
      while (p < n && ident_char(src[p])) ++p;
      out.tokens.push_back({Kind::kIdent, src.substr(i, p - i), line});
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t p = i + 1;
      while (p < n && (ident_char(src[p]) || src[p] == '.' ||
                       ((src[p] == '+' || src[p] == '-') &&
                        (src[p - 1] == 'e' || src[p - 1] == 'E')))) {
        ++p;
      }
      out.tokens.push_back({Kind::kNumber, src.substr(i, p - i), line});
      i = p;
      continue;
    }
    // Punctuation; multi-char operators the checks care about.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({Kind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({Kind::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared token helpers.
// ---------------------------------------------------------------------------

bool is_punct(const Token& t, const char* text) {
  return t.kind == Kind::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == Kind::kIdent && t.text == text;
}

// Index of the token matching the opener at `open` ("(" / "{" / "["), or
// tokens.size() when unbalanced.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], opener)) ++depth;
    if (is_punct(toks[i], closer) && --depth == 0) return i;
  }
  return toks.size();
}

bool path_contains(const std::string& normalized, const std::string& needle) {
  return normalized.find(needle) != std::string::npos;
}

std::string normalize_path(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool is_header(const std::string& normalized) {
  return normalized.size() >= 2 &&
         (normalized.rfind(".h") == normalized.size() - 2 ||
          (normalized.size() >= 4 &&
           normalized.rfind(".hpp") == normalized.size() - 4));
}

// ---------------------------------------------------------------------------
// Check 1: determinism.
// ---------------------------------------------------------------------------

void check_determinism(const std::string& path, const Source& src,
                       std::vector<Finding>& out) {
  static const std::set<std::string> banned_idents = {
      "random_device",         "system_clock", "mt19937",
      "mt19937_64",            "minstd_rand",  "minstd_rand0",
      "default_random_engine", "random_shuffle"};
  static const std::set<std::string> banned_calls = {"rand", "srand", "time",
                                                     "clock"};
  const auto& toks = src.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Kind::kIdent) continue;
    // Member access (x.time(), p->clock()) is not the libc symbol.
    if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      continue;
    }
    // Qualified names other than std:: (e.g. Foo::time) are project symbols.
    if (i > 1 && is_punct(toks[i - 1], "::") && !is_ident(toks[i - 2], "std") &&
        !is_ident(toks[i - 2], "chrono")) {
      continue;
    }
    const bool called =
        i + 1 < toks.size() && is_punct(toks[i + 1], "(");
    if (banned_idents.count(toks[i].text) ||
        (called && banned_calls.count(toks[i].text))) {
      out.push_back(
          {path, toks[i].line, "determinism",
           "nondeterministic source '" + toks[i].text +
               "': every draw must come from util::Rng (seeded, or "
               "Rng::stream(seed, index)); wall-clock timing belongs in "
               "telemetry spans (steady_clock)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Check 2: parallel-region discipline.
// ---------------------------------------------------------------------------

void check_parallel(const std::string& path, const Source& src,
                    std::vector<Finding>& out) {
  static const std::set<std::string> rng_methods = {
      "next_u64", "uniform", "uniform_index", "normal", "shuffle", "fork"};
  const auto& toks = src.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "parallel_for") || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t call_end = match_forward(toks, i + 1, "(", ")");
    // First lambda inside the call's argument list.
    std::size_t intro = toks.size();
    for (std::size_t k = i + 2; k < call_end; ++k) {
      if (is_punct(toks[k], "[")) {
        intro = k;
        break;
      }
    }
    if (intro >= call_end) continue;
    const std::size_t intro_end = match_forward(toks, intro, "[", "]");
    std::size_t body_open = toks.size();
    for (std::size_t k = intro_end + 1; k < call_end; ++k) {
      if (is_punct(toks[k], "{")) {
        body_open = k;
        break;
      }
    }
    if (body_open >= call_end) continue;
    const std::size_t body_end = match_forward(toks, body_open, "{", "}");

    // Generators derived inside the body (`Rng x = ...`, or
    // `auto x = ...stream/fork(...)`) are chunk-local and fine.
    std::set<std::string> local_rngs;
    for (std::size_t k = body_open; k < body_end; ++k) {
      if (is_ident(toks[k], "Rng") && k + 1 < body_end &&
          toks[k + 1].kind == Kind::kIdent) {
        local_rngs.insert(toks[k + 1].text);
      }
      if (is_ident(toks[k], "auto") && k + 2 < body_end &&
          toks[k + 1].kind == Kind::kIdent && is_punct(toks[k + 2], "=")) {
        for (std::size_t p = k + 3; p < body_end && !is_punct(toks[p], ";");
             ++p) {
          if (is_ident(toks[p], "stream") || is_ident(toks[p], "fork")) {
            local_rngs.insert(toks[k + 1].text);
            break;
          }
        }
      }
    }

    for (std::size_t k = body_open; k + 3 < body_end; ++k) {
      // captured_rng.normal(...) / ptr->uniform(...)
      if (toks[k].kind == Kind::kIdent &&
          (is_punct(toks[k + 1], ".") || is_punct(toks[k + 1], "->")) &&
          toks[k + 2].kind == Kind::kIdent &&
          rng_methods.count(toks[k + 2].text) && is_punct(toks[k + 3], "(") &&
          !local_rngs.count(toks[k].text)) {
        out.push_back(
            {path, toks[k].line, "parallel-rng",
             "parallel_for body draws from captured generator '" +
                 toks[k].text + "." + toks[k + 2].text +
                 "()': results then depend on the chunk schedule; derive a "
                 "chunk-local stream with util::Rng::stream(seed, index)"});
      }
      // telemetry::count / telemetry::set_gauge / telemetry::Span
      if (is_ident(toks[k], "telemetry") && is_punct(toks[k + 1], "::") &&
          toks[k + 2].kind == Kind::kIdent) {
        const std::string& member = toks[k + 2].text;
        if (member == "count" || member == "set_gauge" || member == "Span") {
          out.push_back(
              {path, toks[k].line, "parallel-telemetry",
               "telemetry::" + member +
                   " inside a parallel_for body: accumulate into a per-chunk "
                   "local and flush once after the join (core/monte_carlo.cpp "
                   "pattern) so hot loops never touch the registry"});
        }
      }
    }
    i = body_end;
  }
}

// ---------------------------------------------------------------------------
// Check 3: contract coverage.
//
// Walks namespace-scope function definitions in the numeric implementation
// files; any public (non-static, non-anonymous-namespace) definition whose
// parameter list mentions Matrix or Vector must invoke REPRO_CHECK* in its
// body.  Class bodies are skipped wholesale (the public numeric API is free
// functions and out-of-line methods).
// ---------------------------------------------------------------------------

bool is_control_keyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",     "for",           "while",   "switch", "catch",
      "return", "static_assert", "sizeof",  "alignof", "decltype",
      "throw",  "new",           "delete",  "operator"};
  return kw.count(s) != 0;
}

void check_contracts(const std::string& path, const Source& src,
                     std::vector<Finding>& out) {
  const auto& toks = src.tokens;
  struct Scope {
    bool anonymous_namespace = false;
  };
  std::vector<Scope> scopes;  // one entry per currently-open brace
  bool anon_depth = false;

  auto in_anon = [&] {
    for (const Scope& s : scopes) {
      if (s.anonymous_namespace) return true;
    }
    return false;
  };
  (void)anon_depth;

  std::size_t stmt_start = 0;  // token index where the current decl began
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, ";")) {
      stmt_start = i + 1;
      continue;
    }
    if (is_punct(t, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      stmt_start = i + 1;
      continue;
    }
    // namespace [name] { ... }
    if (is_ident(t, "namespace")) {
      std::size_t k = i + 1;
      bool anonymous = true;
      while (k < toks.size() && !is_punct(toks[k], "{") &&
             !is_punct(toks[k], ";") && !is_punct(toks[k], "=")) {
        if (toks[k].kind == Kind::kIdent) anonymous = false;
        ++k;
      }
      if (k < toks.size() && is_punct(toks[k], "{")) {
        scopes.push_back({anonymous});
        i = k;
        stmt_start = k + 1;
      }
      continue;
    }
    // class/struct/union/enum body: skip entirely.
    if ((is_ident(t, "class") || is_ident(t, "struct") ||
         is_ident(t, "union") || is_ident(t, "enum"))) {
      std::size_t k = i + 1;
      int angle = 0;
      while (k < toks.size() && !is_punct(toks[k], ";")) {
        if (is_punct(toks[k], "<")) ++angle;
        if (is_punct(toks[k], ">")) --angle;
        if (is_punct(toks[k], "{") && angle <= 0) break;
        // An '=' before the body means this is actually a variable of class
        // type (`struct X x = ...` does not occur here) — bail to ';'.
        ++k;
      }
      if (k < toks.size() && is_punct(toks[k], "{")) {
        const std::size_t end = match_forward(toks, k, "{", "}");
        i = end;
        stmt_start = end + 1;
      } else {
        i = k;
        stmt_start = k + 1;
      }
      continue;
    }
    if (!is_punct(t, "(")) continue;

    // Candidate function definition: <qualified-name> ( params ) ... {
    // Resolve the name by walking back over `ident (:: ident)*`.
    std::size_t name_idx = i;
    std::string simple_name;
    if (i >= 1 && toks[i - 1].kind == Kind::kIdent) {
      name_idx = i - 1;
      simple_name = toks[i - 1].text;
    } else if (i >= 2 && toks[i - 1].kind == Kind::kPunct &&
               is_ident(toks[i - 2], "operator")) {
      name_idx = i - 2;
      simple_name = "operator" + toks[i - 1].text;
    } else {
      // e.g. a cast or parenthesized expression.
      const std::size_t close = match_forward(toks, i, "(", ")");
      i = close;
      continue;
    }
    if (is_control_keyword(simple_name) && simple_name != "operator") {
      const std::size_t close = match_forward(toks, i, "(", ")");
      i = close;
      continue;
    }
    const std::size_t params_end = match_forward(toks, i, "(", ")");
    if (params_end >= toks.size()) break;
    // After the parameter list: const/noexcept/ref-qualifiers, then `{` for
    // a definition (`;`, `=`, `,` etc. mean declaration or expression).
    std::size_t k = params_end + 1;
    while (k < toks.size() &&
           (is_ident(toks[k], "const") || is_ident(toks[k], "noexcept") ||
            is_ident(toks[k], "override") || is_ident(toks[k], "final") ||
            is_punct(toks[k], "&"))) {
      ++k;
    }
    if (k >= toks.size() || !is_punct(toks[k], "{")) {
      i = params_end;
      continue;
    }
    const std::size_t body_end = match_forward(toks, k, "{", "}");

    bool takes_matrix_or_vector = false;
    for (std::size_t p = i + 1; p < params_end; ++p) {
      if (is_ident(toks[p], "Matrix") || is_ident(toks[p], "Vector")) {
        takes_matrix_or_vector = true;
        break;
      }
    }
    bool is_static = false;
    for (std::size_t p = stmt_start; p < name_idx && p < toks.size(); ++p) {
      if (is_ident(toks[p], "static")) is_static = true;
    }
    if (takes_matrix_or_vector && !is_static && !in_anon()) {
      bool has_check = false;
      for (std::size_t p = k; p < body_end; ++p) {
        if (toks[p].kind == Kind::kIdent &&
            toks[p].text.rfind("REPRO_CHECK", 0) == 0) {
          has_check = true;
          break;
        }
      }
      if (!has_check) {
        out.push_back(
            {path, toks[name_idx].line, "contracts",
             "public function '" + simple_name +
                 "' takes Matrix/Vector but invokes no REPRO_CHECK / "
                 "REPRO_CHECK_DIM (src/util/contracts.h); state its "
                 "preconditions or suppress with a reason"});
      }
    }
    i = body_end;
    stmt_start = body_end + 1;
  }
}

// ---------------------------------------------------------------------------
// Check 4: header hygiene.
// ---------------------------------------------------------------------------

// "#include <x>" -> {angle, "x"}; empty name when not an include.
struct IncludeLine {
  bool angle = false;
  std::string name;
  int line = 0;
};

IncludeLine parse_include(const Directive& d) {
  IncludeLine out;
  std::size_t p = 1;  // past '#'
  while (p < d.text.size() && std::isspace(static_cast<unsigned char>(
                                  d.text[p]))) {
    ++p;
  }
  if (d.text.compare(p, 7, "include") != 0) return out;
  p += 7;
  while (p < d.text.size() && std::isspace(static_cast<unsigned char>(
                                  d.text[p]))) {
    ++p;
  }
  if (p >= d.text.size()) return out;
  const char open = d.text[p];
  const char close = (open == '<') ? '>' : (open == '"') ? '"' : '\0';
  if (close == '\0') return out;
  const std::size_t end = d.text.find(close, p + 1);
  if (end == std::string::npos) return out;
  out.angle = (open == '<');
  out.name = d.text.substr(p + 1, end - p - 1);
  out.line = d.line;
  return out;
}

void check_hygiene(const std::string& path, const Source& src,
                   std::vector<Finding>& out) {
  const bool header = is_header(path);
  if (header) {
    bool pragma_once = false;
    for (const Directive& d : src.directives) {
      std::string squeezed;
      for (char c : d.text) {
        if (!std::isspace(static_cast<unsigned char>(c))) squeezed += c;
      }
      if (squeezed == "#pragmaonce") {
        pragma_once = true;
        break;
      }
    }
    if (!pragma_once) {
      out.push_back({path, 1, "pragma-once",
                     "header is missing #pragma once (every header in this "
                     "repository uses it as the include guard)"});
    }
  }

  static const std::set<std::string> banned = {"ctime", "time.h", "sys/time.h",
                                               "random"};
  std::vector<IncludeLine> includes;
  for (const Directive& d : src.directives) {
    IncludeLine inc = parse_include(d);
    if (inc.name.empty()) continue;
    if (inc.angle && banned.count(inc.name)) {
      out.push_back({path, inc.line, "banned-include",
                     "#include <" + inc.name +
                         ">: wall-clock and std random engines are banned "
                         "(util::Rng for randomness, telemetry spans / "
                         "steady_clock for timing)"});
    }
    if (inc.angle && header && inc.name == "iostream") {
      out.push_back({path, inc.line, "banned-include",
                     "#include <iostream> in a header: include <iosfwd> in "
                     "the header and <iostream>/<ostream> in the .cpp"});
    }
    includes.push_back(inc);
  }

  // Include order, per contiguous block (blank or non-include lines break a
  // block).  The first block of a .cpp is exempt when it is a single quoted
  // include (the convention places the file's own header there).
  std::vector<std::vector<IncludeLine>> blocks;
  for (const IncludeLine& inc : includes) {
    if (blocks.empty() || inc.line != blocks.back().back().line + 1) {
      blocks.emplace_back();
    }
    blocks.back().push_back(inc);
  }
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const auto& block = blocks[b];
    if (b == 0 && !header && block.size() == 1 && !block[0].angle) continue;
    bool seen_quote = false;
    const IncludeLine* prev_angle = nullptr;
    const IncludeLine* prev_quote = nullptr;
    for (const IncludeLine& inc : block) {
      if (inc.angle) {
        if (seen_quote) {
          out.push_back({path, inc.line, "include-order",
                         "angle include <" + inc.name +
                             "> after a quoted include in the same block; "
                             "system headers go in their own earlier block"});
        }
        if (prev_angle && prev_angle->name > inc.name) {
          out.push_back({path, inc.line, "include-order",
                         "includes not alphabetized: <" + inc.name +
                             "> after <" + prev_angle->name + ">"});
        }
        prev_angle = &inc;
      } else {
        seen_quote = true;
        if (prev_quote && prev_quote->name > inc.name) {
          out.push_back({path, inc.line, "include-order",
                         "includes not alphabetized: \"" + inc.name +
                             "\" after \"" + prev_quote->name + "\""});
        }
        prev_quote = &inc;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 5: SIMD confinement.
//
// Raw vector intrinsics are allowed only under options.simd_dirs (the
// micro-kernel layer, src/linalg/simd/).  Everywhere else they bypass the
// runtime dispatch table — and with it the scalar reference tier, the
// REPRO_KERNEL override, and the per-tier determinism contract — so both
// the intrinsic headers and the intrinsic identifiers are findings.
// ---------------------------------------------------------------------------

bool is_intrinsic_ident(const std::string& s) {
  // x86: _mm_/_mm256_/_mm512_ calls and the __m128/__m256/__m512 types.
  if (s.compare(0, 3, "_mm") == 0) return true;
  if (s.size() >= 4 && s.compare(0, 3, "__m") == 0 &&
      std::isdigit(static_cast<unsigned char>(s[3]))) {
    return true;
  }
  // NEON: load/store/fma intrinsics and the lane-vector types.
  for (const char* prefix : {"vld1", "vst1", "vfma", "vfms", "vaddv",
                             "float64x", "float32x"}) {
    const std::size_t len = std::char_traits<char>::length(prefix);
    if (s.compare(0, len, prefix) == 0) return true;
  }
  return false;
}

void check_simd_confinement(const std::string& path, const Source& src,
                            std::vector<Finding>& out) {
  static const std::set<std::string> intrinsic_headers = {
      "immintrin.h", "x86intrin.h", "arm_neon.h",  "emmintrin.h",
      "xmmintrin.h", "pmmintrin.h", "tmmintrin.h", "smmintrin.h",
      "nmmintrin.h", "wmmintrin.h", "avxintrin.h"};
  for (const Directive& d : src.directives) {
    const IncludeLine inc = parse_include(d);
    if (!inc.name.empty() && intrinsic_headers.count(inc.name)) {
      out.push_back({path, inc.line, "simd-confinement",
                     "#include <" + inc.name +
                         "> outside src/linalg/simd/: raw intrinsics are "
                         "confined to the micro-kernel layer; call through "
                         "the dispatched simd::ops() table instead"});
    }
  }
  for (const Token& t : src.tokens) {
    if (t.kind == Kind::kIdent && is_intrinsic_ident(t.text)) {
      out.push_back({path, t.line, "simd-confinement",
                     "raw vector intrinsic '" + t.text +
                         "' outside src/linalg/simd/: add a kernel to the "
                         "KernelOps table (per-tier, with a scalar "
                         "reference) instead of open-coding SIMD here"});
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

bool checked_extension(const std::string& normalized) {
  for (const char* ext : {".h", ".hpp", ".cpp", ".cc"}) {
    const std::string e = ext;
    if (normalized.size() >= e.size() &&
        normalized.compare(normalized.size() - e.size(), e.size(), e) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

Report lint_source(const std::string& path, const std::string& content,
                   const Options& options) {
  const std::string normalized = normalize_path(path);
  const Source src = tokenize(content);

  std::vector<Finding> raw;
  check_determinism(path, src, raw);
  check_parallel(path, src, raw);
  for (const std::string& dir : options.contract_dirs) {
    if (path_contains(normalized, dir) && !is_header(normalized)) {
      check_contracts(path, src, raw);
      break;
    }
  }
  check_hygiene(normalized, src, raw);
  bool simd_exempt = false;
  for (const std::string& dir : options.simd_dirs) {
    if (path_contains(normalized, dir)) simd_exempt = true;
  }
  if (!simd_exempt) check_simd_confinement(path, src, raw);

  Report report;
  report.files_scanned = 1;
  for (Finding& f : raw) {
    f.file = path;
    bool suppressed = src.file_allow.count(f.check) ||
                      src.file_allow.count("all");
    for (int l : {f.line, f.line - 1}) {
      const auto it = src.line_allow.find(l);
      if (it != src.line_allow.end() &&
          (it->second.count(f.check) || it->second.count("all"))) {
        suppressed = true;
      }
    }
    if (suppressed) {
      ++report.suppressed;
    } else {
      report.findings.push_back(std::move(f));
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check) <
                     std::tie(b.file, b.line, b.check);
            });
  return report;
}

Report run_lint(const Options& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : options.roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        files.push_back(it->path().string());
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  Report merged;
  for (const std::string& file : files) {
    const std::string normalized = normalize_path(file);
    if (!checked_extension(normalized)) continue;
    bool skipped = false;
    for (const std::string& s : options.skip) {
      if (path_contains(normalized, s)) skipped = true;
    }
    if (skipped) continue;
    std::ifstream in(file, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    Report r = lint_source(file, buf.str(), options);
    merged.files_scanned += r.files_scanned;
    merged.suppressed += r.suppressed;
    merged.findings.insert(merged.findings.end(),
                           std::make_move_iterator(r.findings.begin()),
                           std::make_move_iterator(r.findings.end()));
  }
  return merged;
}

int run_cli(int argc, const char* const* argv) {
  Options options;
  std::string root;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--error-on-findings") {
      options.error_on_findings = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "repro_lint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: repro_lint [--root DIR] [--error-on-findings] "
             "[paths...]\n\n"
             "Scans src/, bench/, examples/, tests/ under --root (default\n"
             "current directory) unless explicit paths are given.  Checks:\n"
             "determinism, parallel-rng, parallel-telemetry, contracts,\n"
             "pragma-once, banned-include, include-order, simd-confinement.\n"
             "Suppress with\n"
             "  // repro-lint: allow(<check>)       (same line or line above)\n"
             "  // repro-lint: allow-file(<check>)  (whole file)\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "repro_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    if (root.empty()) root = ".";
    for (const char* sub : {"src", "bench", "examples", "tests"}) {
      options.roots.push_back(root + "/" + sub);
    }
  } else {
    for (std::string& p : paths) {
      options.roots.push_back(root.empty() ? p : root + "/" + p);
    }
  }

  const Report report = run_lint(options);
  for (const Finding& f : report.findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.check << "] "
              << f.message << "\n";
  }
  std::cout << "repro_lint: " << report.findings.size() << " finding(s), "
            << report.suppressed << " suppressed, " << report.files_scanned
            << " file(s) scanned\n";
  if (report.files_scanned == 0) {
    std::cerr << "repro_lint: nothing to scan (check --root / paths)\n";
    return 2;
  }
  return (options.error_on_findings && !report.findings.empty()) ? 1 : 0;
}

}  // namespace repro_lint
