#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "global_checks.h"
#include "index.h"
#include "internal.h"

namespace repro_lint {
namespace {

// ---------------------------------------------------------------------------
// Check 1: determinism.
// ---------------------------------------------------------------------------

void check_determinism(const std::string& path, const Source& src,
                       std::vector<Finding>& out) {
  static const std::set<std::string> banned_idents = {
      "random_device",         "system_clock", "mt19937",
      "mt19937_64",            "minstd_rand",  "minstd_rand0",
      "default_random_engine", "random_shuffle"};
  static const std::set<std::string> banned_calls = {"rand", "srand", "time",
                                                     "clock"};
  const auto& toks = src.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Kind::kIdent) continue;
    // Member access (x.time(), p->clock()) is not the libc symbol.
    if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      continue;
    }
    // Qualified names other than std:: (e.g. Foo::time) are project symbols.
    if (i > 1 && is_punct(toks[i - 1], "::") && !is_ident(toks[i - 2], "std") &&
        !is_ident(toks[i - 2], "chrono")) {
      continue;
    }
    const bool called =
        i + 1 < toks.size() && is_punct(toks[i + 1], "(");
    if (banned_idents.count(toks[i].text) ||
        (called && banned_calls.count(toks[i].text))) {
      out.push_back(
          {path, toks[i].line, "determinism",
           "nondeterministic source '" + toks[i].text +
               "': every draw must come from util::Rng (seeded, or "
               "Rng::stream(seed, index)); wall-clock timing belongs in "
               "telemetry spans (steady_clock)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Check 2: parallel-region discipline.
// ---------------------------------------------------------------------------

void check_parallel(const std::string& path, const Source& src,
                    std::vector<Finding>& out) {
  static const std::set<std::string> rng_methods = {
      "next_u64", "uniform", "uniform_index", "normal", "shuffle", "fork"};
  const auto& toks = src.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "parallel_for") || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t call_end = match_forward(toks, i + 1, "(", ")");
    // First lambda inside the call's argument list.
    std::size_t intro = toks.size();
    for (std::size_t k = i + 2; k < call_end; ++k) {
      if (is_punct(toks[k], "[")) {
        intro = k;
        break;
      }
    }
    if (intro >= call_end) continue;
    const std::size_t intro_end = match_forward(toks, intro, "[", "]");
    std::size_t body_open = toks.size();
    for (std::size_t k = intro_end + 1; k < call_end; ++k) {
      if (is_punct(toks[k], "{")) {
        body_open = k;
        break;
      }
    }
    if (body_open >= call_end) continue;
    const std::size_t body_end = match_forward(toks, body_open, "{", "}");

    // Generators derived inside the body (`Rng x = ...`, or
    // `auto x = ...stream/fork(...)`) are chunk-local and fine.
    std::set<std::string> local_rngs;
    for (std::size_t k = body_open; k < body_end; ++k) {
      if (is_ident(toks[k], "Rng") && k + 1 < body_end &&
          toks[k + 1].kind == Kind::kIdent) {
        local_rngs.insert(toks[k + 1].text);
      }
      if (is_ident(toks[k], "auto") && k + 2 < body_end &&
          toks[k + 1].kind == Kind::kIdent && is_punct(toks[k + 2], "=")) {
        for (std::size_t p = k + 3; p < body_end && !is_punct(toks[p], ";");
             ++p) {
          if (is_ident(toks[p], "stream") || is_ident(toks[p], "fork")) {
            local_rngs.insert(toks[k + 1].text);
            break;
          }
        }
      }
    }

    for (std::size_t k = body_open; k + 3 < body_end; ++k) {
      // captured_rng.normal(...) / ptr->uniform(...)
      if (toks[k].kind == Kind::kIdent &&
          (is_punct(toks[k + 1], ".") || is_punct(toks[k + 1], "->")) &&
          toks[k + 2].kind == Kind::kIdent &&
          rng_methods.count(toks[k + 2].text) && is_punct(toks[k + 3], "(") &&
          !local_rngs.count(toks[k].text)) {
        out.push_back(
            {path, toks[k].line, "parallel-rng",
             "parallel_for body draws from captured generator '" +
                 toks[k].text + "." + toks[k + 2].text +
                 "()': results then depend on the chunk schedule; derive a "
                 "chunk-local stream with util::Rng::stream(seed, index)"});
      }
      // telemetry::count / telemetry::set_gauge / telemetry::Span
      if (is_ident(toks[k], "telemetry") && is_punct(toks[k + 1], "::") &&
          toks[k + 2].kind == Kind::kIdent) {
        const std::string& member = toks[k + 2].text;
        if (member == "count" || member == "set_gauge" || member == "Span") {
          out.push_back(
              {path, toks[k].line, "parallel-telemetry",
               "telemetry::" + member +
                   " inside a parallel_for body: accumulate into a per-chunk "
                   "local and flush once after the join (core/monte_carlo.cpp "
                   "pattern) so hot loops never touch the registry"});
        }
      }
    }
    i = body_end;
  }
}

// ---------------------------------------------------------------------------
// Check 3: contract coverage.
//
// Walks namespace-scope function definitions in the numeric implementation
// files; any public (non-static, non-anonymous-namespace) definition whose
// parameter list mentions Matrix or Vector must invoke REPRO_CHECK* in its
// body.  Class bodies are skipped wholesale (the public numeric API is free
// functions and out-of-line methods).
// ---------------------------------------------------------------------------

bool is_control_keyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",     "for",           "while",   "switch", "catch",
      "return", "static_assert", "sizeof",  "alignof", "decltype",
      "throw",  "new",           "delete",  "operator"};
  return kw.count(s) != 0;
}

void check_contracts(const std::string& path, const Source& src,
                     std::vector<Finding>& out) {
  const auto& toks = src.tokens;
  struct Scope {
    bool anonymous_namespace = false;
  };
  std::vector<Scope> scopes;  // one entry per currently-open brace

  auto in_anon = [&] {
    for (const Scope& s : scopes) {
      if (s.anonymous_namespace) return true;
    }
    return false;
  };

  std::size_t stmt_start = 0;  // token index where the current decl began
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, ";")) {
      stmt_start = i + 1;
      continue;
    }
    if (is_punct(t, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      stmt_start = i + 1;
      continue;
    }
    // namespace [name] { ... }
    if (is_ident(t, "namespace")) {
      std::size_t k = i + 1;
      bool anonymous = true;
      while (k < toks.size() && !is_punct(toks[k], "{") &&
             !is_punct(toks[k], ";") && !is_punct(toks[k], "=")) {
        if (toks[k].kind == Kind::kIdent) anonymous = false;
        ++k;
      }
      if (k < toks.size() && is_punct(toks[k], "{")) {
        scopes.push_back({anonymous});
        i = k;
        stmt_start = k + 1;
      }
      continue;
    }
    // class/struct/union/enum body: skip entirely.
    if ((is_ident(t, "class") || is_ident(t, "struct") ||
         is_ident(t, "union") || is_ident(t, "enum"))) {
      std::size_t k = i + 1;
      int angle = 0;
      while (k < toks.size() && !is_punct(toks[k], ";")) {
        if (is_punct(toks[k], "<")) ++angle;
        if (is_punct(toks[k], ">")) --angle;
        if (is_punct(toks[k], "{") && angle <= 0) break;
        ++k;
      }
      if (k < toks.size() && is_punct(toks[k], "{")) {
        const std::size_t end = match_forward(toks, k, "{", "}");
        i = end;
        stmt_start = end + 1;
      } else {
        i = k;
        stmt_start = k + 1;
      }
      continue;
    }
    if (!is_punct(t, "(")) continue;

    // Candidate function definition: <qualified-name> ( params ) ... {
    // Resolve the name by walking back over `ident (:: ident)*`.
    std::size_t name_idx = i;
    std::string simple_name;
    if (i >= 1 && toks[i - 1].kind == Kind::kIdent) {
      name_idx = i - 1;
      simple_name = toks[i - 1].text;
    } else if (i >= 2 && toks[i - 1].kind == Kind::kPunct &&
               is_ident(toks[i - 2], "operator")) {
      name_idx = i - 2;
      simple_name = "operator" + toks[i - 1].text;
    } else {
      // e.g. a cast or parenthesized expression.
      const std::size_t close = match_forward(toks, i, "(", ")");
      i = close;
      continue;
    }
    if (is_control_keyword(simple_name) && simple_name != "operator") {
      const std::size_t close = match_forward(toks, i, "(", ")");
      i = close;
      continue;
    }
    const std::size_t params_end = match_forward(toks, i, "(", ")");
    if (params_end >= toks.size()) break;
    // After the parameter list: const/noexcept/ref-qualifiers, then `{` for
    // a definition (`;`, `=`, `,` etc. mean declaration or expression).
    std::size_t k = params_end + 1;
    while (k < toks.size() &&
           (is_ident(toks[k], "const") || is_ident(toks[k], "noexcept") ||
            is_ident(toks[k], "override") || is_ident(toks[k], "final") ||
            is_punct(toks[k], "&"))) {
      ++k;
    }
    if (k >= toks.size() || !is_punct(toks[k], "{")) {
      i = params_end;
      continue;
    }
    const std::size_t body_end = match_forward(toks, k, "{", "}");

    bool takes_matrix_or_vector = false;
    for (std::size_t p = i + 1; p < params_end; ++p) {
      if (is_ident(toks[p], "Matrix") || is_ident(toks[p], "Vector")) {
        takes_matrix_or_vector = true;
        break;
      }
    }
    bool is_static = false;
    for (std::size_t p = stmt_start; p < name_idx && p < toks.size(); ++p) {
      if (is_ident(toks[p], "static")) is_static = true;
    }
    if (takes_matrix_or_vector && !is_static && !in_anon()) {
      bool has_check = false;
      for (std::size_t p = k; p < body_end; ++p) {
        if (toks[p].kind == Kind::kIdent &&
            toks[p].text.rfind("REPRO_CHECK", 0) == 0) {
          has_check = true;
          break;
        }
      }
      if (!has_check) {
        out.push_back(
            {path, toks[name_idx].line, "contracts",
             "public function '" + simple_name +
                 "' takes Matrix/Vector but invokes no REPRO_CHECK / "
                 "REPRO_CHECK_DIM (src/util/contracts.h); state its "
                 "preconditions or suppress with a reason"});
      }
    }
    i = body_end;
    stmt_start = body_end + 1;
  }
}

// ---------------------------------------------------------------------------
// Check 4: header hygiene.
// ---------------------------------------------------------------------------

void check_hygiene(const std::string& path, const Source& src,
                   std::vector<Finding>& out) {
  const bool header = is_header(path);
  if (header) {
    bool pragma_once = false;
    for (const Directive& d : src.directives) {
      std::string squeezed;
      for (char c : d.text) {
        if (!std::isspace(static_cast<unsigned char>(c))) squeezed += c;
      }
      if (squeezed == "#pragmaonce") {
        pragma_once = true;
        break;
      }
    }
    if (!pragma_once) {
      out.push_back({path, 1, "pragma-once",
                     "header is missing #pragma once (every header in this "
                     "repository uses it as the include guard)"});
    }
  }

  static const std::set<std::string> banned = {"ctime", "time.h", "sys/time.h",
                                               "random"};
  std::vector<IncludeLine> includes;
  for (const Directive& d : src.directives) {
    IncludeLine inc = parse_include(d);
    if (inc.name.empty()) continue;
    if (inc.angle && banned.count(inc.name)) {
      out.push_back({path, inc.line, "banned-include",
                     "#include <" + inc.name +
                         ">: wall-clock and std random engines are banned "
                         "(util::Rng for randomness, telemetry spans / "
                         "steady_clock for timing)"});
    }
    if (inc.angle && header && inc.name == "iostream") {
      out.push_back({path, inc.line, "banned-include",
                     "#include <iostream> in a header: include <iosfwd> in "
                     "the header and <iostream>/<ostream> in the .cpp"});
    }
    includes.push_back(inc);
  }

  // Include order, per contiguous block (blank or non-include lines break a
  // block).  The first block of a .cpp is exempt when it is a single quoted
  // include (the convention places the file's own header there).
  std::vector<std::vector<IncludeLine>> blocks;
  for (const IncludeLine& inc : includes) {
    if (blocks.empty() || inc.line != blocks.back().back().line + 1) {
      blocks.emplace_back();
    }
    blocks.back().push_back(inc);
  }
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const auto& block = blocks[b];
    if (b == 0 && !header && block.size() == 1 && !block[0].angle) continue;
    bool seen_quote = false;
    const IncludeLine* prev_angle = nullptr;
    const IncludeLine* prev_quote = nullptr;
    for (const IncludeLine& inc : block) {
      if (inc.angle) {
        if (seen_quote) {
          out.push_back({path, inc.line, "include-order",
                         "angle include <" + inc.name +
                             "> after a quoted include in the same block; "
                             "system headers go in their own earlier block"});
        }
        if (prev_angle && prev_angle->name > inc.name) {
          out.push_back({path, inc.line, "include-order",
                         "includes not alphabetized: <" + inc.name +
                             "> after <" + prev_angle->name + ">"});
        }
        prev_angle = &inc;
      } else {
        seen_quote = true;
        if (prev_quote && prev_quote->name > inc.name) {
          out.push_back({path, inc.line, "include-order",
                         "includes not alphabetized: \"" + inc.name +
                             "\" after \"" + prev_quote->name + "\""});
        }
        prev_quote = &inc;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 5: SIMD confinement.
//
// Raw vector intrinsics are allowed only under options.simd_dirs (the
// micro-kernel layer, src/linalg/simd/).  Everywhere else they bypass the
// runtime dispatch table — and with it the scalar reference tier, the
// REPRO_KERNEL override, and the per-tier determinism contract — so both
// the intrinsic headers and the intrinsic identifiers are findings.
// ---------------------------------------------------------------------------

bool is_intrinsic_ident(const std::string& s) {
  // x86: _mm_/_mm256_/_mm512_ calls and the __m128/__m256/__m512 types.
  if (s.compare(0, 3, "_mm") == 0) return true;
  if (s.size() >= 4 && s.compare(0, 3, "__m") == 0 &&
      std::isdigit(static_cast<unsigned char>(s[3]))) {
    return true;
  }
  // NEON: load/store/fma intrinsics and the lane-vector types.
  for (const char* prefix : {"vld1", "vst1", "vfma", "vfms", "vaddv",
                             "float64x", "float32x"}) {
    const std::size_t len = std::char_traits<char>::length(prefix);
    if (s.compare(0, len, prefix) == 0) return true;
  }
  return false;
}

void check_simd_confinement(const std::string& path, const Source& src,
                            std::vector<Finding>& out) {
  static const std::set<std::string> intrinsic_headers = {
      "immintrin.h", "x86intrin.h", "arm_neon.h",  "emmintrin.h",
      "xmmintrin.h", "pmmintrin.h", "tmmintrin.h", "smmintrin.h",
      "nmmintrin.h", "wmmintrin.h", "avxintrin.h"};
  for (const Directive& d : src.directives) {
    const IncludeLine inc = parse_include(d);
    if (!inc.name.empty() && intrinsic_headers.count(inc.name)) {
      out.push_back({path, inc.line, "simd-confinement",
                     "#include <" + inc.name +
                         "> outside src/linalg/simd/: raw intrinsics are "
                         "confined to the micro-kernel layer; call through "
                         "the dispatched simd::ops() table instead"});
    }
  }
  for (const Token& t : src.tokens) {
    if (t.kind == Kind::kIdent && is_intrinsic_ident(t.text)) {
      out.push_back({path, t.line, "simd-confinement",
                     "raw vector intrinsic '" + t.text +
                         "' outside src/linalg/simd/: add a kernel to the "
                         "KernelOps table (per-tier, with a scalar "
                         "reference) instead of open-coding SIMD here"});
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

bool checked_extension(const std::string& normalized) {
  for (const char* ext : {".h", ".hpp", ".cpp", ".cc"}) {
    const std::string e = ext;
    if (normalized.size() >= e.size() &&
        normalized.compare(normalized.size() - e.size(), e.size(), e) == 0) {
      return true;
    }
  }
  return false;
}

// Per-file (pass 0) checks on one tokenized source.
void run_file_checks(const std::string& path, const std::string& normalized,
                     const Source& src, const Options& options,
                     std::vector<Finding>& raw) {
  check_determinism(path, src, raw);
  check_parallel(path, src, raw);
  for (const std::string& dir : options.contract_dirs) {
    if (path_contains(normalized, dir) && !is_header(normalized)) {
      check_contracts(path, src, raw);
      break;
    }
  }
  check_hygiene(normalized, src, raw);
  bool simd_exempt = false;
  for (const std::string& dir : options.simd_dirs) {
    if (path_contains(normalized, dir)) simd_exempt = true;
  }
  if (!simd_exempt) check_simd_confinement(path, src, raw);
}

// Moves `raw` findings into the report, dropping the ones suppressed by
// their file's allow comments.  `sources` maps finding file -> its Source.
void apply_suppressions(
    const std::map<std::string, const Source*>& sources,
    std::vector<Finding>& raw, Report& report) {
  for (Finding& f : raw) {
    const auto sit = sources.find(f.file);
    bool suppressed = false;
    if (sit != sources.end()) {
      const Source& src = *sit->second;
      suppressed =
          src.file_allow.count(f.check) || src.file_allow.count("all");
      for (int l : {f.line, f.line - 1}) {
        const auto it = src.line_allow.find(l);
        if (it != src.line_allow.end() &&
            (it->second.count(f.check) || it->second.count("all"))) {
          suppressed = true;
        }
      }
    }
    if (suppressed) {
      ++report.suppressed;
    } else {
      report.findings.push_back(std::move(f));
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check) <
                     std::tie(b.file, b.line, b.check);
            });
}

}  // namespace

Report lint_source(const std::string& path, const std::string& content,
                   const Options& options) {
  const std::string normalized = normalize_path(path);
  const Source src = tokenize(content);

  std::vector<Finding> raw;
  run_file_checks(path, normalized, src, options, raw);

  // Single-file cross-TU layer: index this buffer alone and run the
  // whole-program checks over it (the unit-test entry point).
  Index index;
  index.add_file(path, src);
  run_global_checks(index, options, raw);

  Report report;
  report.files_scanned = 1;
  std::map<std::string, const Source*> sources = {{path, &src}};
  apply_suppressions(sources, raw, report);
  return report;
}

Report run_lint(const Options& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : options.roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        files.push_back(it->path().string());
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 1: tokenize every checked file once; run the per-file checks and
  // feed the cross-TU index as we go.
  Report merged;
  std::vector<Finding> raw;
  std::map<std::string, Source> sources;
  Index index;
  for (const std::string& file : files) {
    const std::string normalized = normalize_path(file);
    if (!checked_extension(normalized)) continue;
    bool skipped = false;
    for (const std::string& s : options.skip) {
      if (path_contains(normalized, s)) skipped = true;
    }
    if (skipped) continue;
    std::ifstream in(file, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    Source src = tokenize(buf.str());
    ++merged.files_scanned;
    run_file_checks(file, normalized, src, options, raw);
    index.add_file(file, src);
    sources.emplace(file, std::move(src));
  }

  // Pass 2: whole-program checks over the merged index, then suppression
  // against each finding's own file.
  run_global_checks(index, options, raw);

  std::map<std::string, const Source*> source_ptrs;
  for (const auto& [path, src] : sources) source_ptrs.emplace(path, &src);
  apply_suppressions(source_ptrs, raw, merged);
  return merged;
}

int run_cli(int argc, const char* const* argv) {
  Options options;
  std::string root;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--error-on-findings") {
      options.error_on_findings = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "repro_lint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: repro_lint [--root DIR] [--error-on-findings] "
             "[paths...]\n\n"
             "Scans src/, bench/, examples/, tests/ under --root (default\n"
             "current directory) unless explicit paths are given.\n\n"
             "Per-file checks: determinism, parallel-rng, parallel-telemetry,\n"
             "contracts, pragma-once, banned-include, include-order,\n"
             "simd-confinement.\n"
             "Cross-TU checks (two-pass symbol index + call graph):\n"
             "lock-order, blocking-under-lock, cv-wait-predicate,\n"
             "noexcept-boundary, hot-path-alloc.  Findings print the call\n"
             "chain that justifies them.\n"
             "Suppress with\n"
             "  // repro-lint: allow(<check>)       (same line or line above)\n"
             "  // repro-lint: allow-file(<check>)  (whole file)\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "repro_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    if (root.empty()) root = ".";
    for (const char* sub : {"src", "bench", "examples", "tests"}) {
      options.roots.push_back(root + "/" + sub);
    }
  } else {
    for (std::string& p : paths) {
      options.roots.push_back(root.empty() ? p : root + "/" + p);
    }
  }

  const Report report = run_lint(options);
  for (const Finding& f : report.findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.check << "] "
              << f.message << "\n";
    for (const std::string& hop : f.chain) {
      std::cout << "    via " << hop << "\n";
    }
  }
  std::cout << "repro_lint: " << report.findings.size() << " finding(s), "
            << report.suppressed << " suppressed, " << report.files_scanned
            << " file(s) scanned\n";
  if (report.files_scanned == 0) {
    std::cerr << "repro_lint: nothing to scan (check --root / paths)\n";
    return 2;
  }
  return (options.error_on_findings && !report.findings.empty()) ? 1 : 0;
}

}  // namespace repro_lint
