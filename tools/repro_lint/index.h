// Pass 1 of the cross-TU analyzer: a project-wide symbol index and
// approximate call graph.
//
// The index is built from the same token streams the per-file checks walk.
// It records, per translation unit:
//
//   * classes and which of their members are mutexes / condition variables,
//   * every function definition (free functions and methods, keyed by
//     qualified name `Class::method` / `name`), and
//   * per function, an ordered event list: lock acquisitions with the set of
//     locks already held, calls, blocking operations, condition-variable
//     waits, throw sites, and allocation sites.
//
// Mutex identities and callees are recorded as raw expression text here;
// resolution against the whole-program index (enclosing-class members,
// globally-unique member names, file-scoped fallbacks) happens in pass 2
// (global_checks.cpp), once every file has been scanned.
//
// This is deliberately approximate — a tokenizer, not a compiler.  The
// false-positive policy for each downstream check is documented in
// DESIGN.md §9.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "internal.h"

namespace repro_lint {

struct Event {
  enum class Type {
    kAcquire,    // detail = raw mutex expression
    kCall,       // detail = callee (see below)
    kBlocking,   // detail = blocking operation name
    kCvWaitNoPred,  // detail = condition-variable expression
    kThrow,      // detail = "throw" | "REPRO_CHECK..." | "rethrow_exception"
    kAlloc,      // detail = allocation description
  };
  Type type;
  int line = 0;
  std::string detail;
  // Raw mutex expressions held when the event fires, in acquisition order.
  // For kCvWaitNoPred / cv-originated kBlocking the wait's own lock has
  // already been removed (wait releases it).
  std::vector<std::string> held;
  // True when the event sits inside a `try` block that has at least one
  // catch clause (catch bodies themselves are NOT protected).
  bool protected_by_try = false;
};

// Callee encoding in Event::detail for kCall:
//   "name"        bare call — free function, or method of the enclosing class
//   ".name"       member call through an object (receiver type unknown)
//   "Cls::name"   explicitly qualified call
// std:: calls are not recorded (assumed non-blocking / non-throwing; the
// ones that matter — lock primitives, waits — have dedicated event types).

struct FunctionInfo {
  std::string qualified;    // "Class::name" or "name"; dtors "Class::~Class"
  std::string simple;       // "name" / "~Class"
  std::string cls;          // enclosing class, "" for free functions
  std::string file;
  int line = 0;
  bool is_noexcept = false;    // declared noexcept (and not noexcept(false))
  bool is_destructor = false;  // implicitly noexcept
  std::set<std::string> local_mutexes;  // function-local mutex declarations
  std::vector<Event> events;
};

struct ClassInfo {
  std::set<std::string> mutex_members;
  std::set<std::string> cv_members;
};

struct Index {
  // Class simple name -> lockable members.  Collisions across namespaces
  // merge (acceptable: member-name resolution falls back to file:expr keys
  // when ambiguous anyway).
  std::map<std::string, ClassInfo> classes;
  std::vector<FunctionInfo> functions;
  // simple name -> indices into `functions` (overloads and same-named
  // methods of different classes all listed).
  std::map<std::string, std::vector<std::size_t>> by_simple;
  // qualified name -> indices into `functions`.
  std::map<std::string, std::vector<std::size_t>> by_qualified;
  // file -> namespace-scope mutex variable names declared in that file.
  std::map<std::string, std::set<std::string>> file_mutexes;

  // Scans one tokenized file into the index (classes, then functions with
  // their event lists).  `path` should already be normalized.
  void add_file(const std::string& path, const Source& src);
};

}  // namespace repro_lint
