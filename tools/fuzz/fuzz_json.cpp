// Fuzz harness for the strict JSON parser (src/util/json.h).  The server's
// line-delimited debugging front end feeds it raw client bytes, so parse()
// must never crash, hang, or recurse past its 64-level limit on any input.
//
// On accepted documents the harness walks the whole tree (touching every
// node the parser built) and exercises the lookup helpers; on rejected
// input it requires a non-empty error message.  The first 8 input bytes
// also drive json_double's round-trip contract: the rendering of a finite
// double must strtod back to the identical bit pattern, and non-finite
// values must render as "null".
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "util/json.h"

namespace {

using repro::util::json::Value;

void require(bool ok) {
  if (!ok) std::abort();
}

std::size_t walk(const Value& v, std::size_t depth) {
  require(depth <= 64);  // parse() promises to reject deeper nesting
  std::size_t nodes = 1;
  for (const Value& item : v.items) nodes += walk(item, depth + 1);
  for (const auto& [key, member] : v.members) {
    // Strict parsing rejects duplicate keys, so lookup by the stored key
    // must find exactly this member.
    require(v.find(key) != nullptr);
    nodes += walk(member, depth + 1);
  }
  (void)v.number_or("epsilon", 0.0);
  (void)v.string_or("benchmark", "");
  return nodes;
}

void check_json_double(const std::uint8_t* data, std::size_t size) {
  if (size < 8) return;
  double d;
  std::memcpy(&d, data, 8);
  const std::string s = repro::util::json::json_double(d);
  if (std::isfinite(d)) {
    const double back = std::strtod(s.c_str(), nullptr);
    require(std::memcmp(&back, &d, 8) == 0);
  } else {
    require(s == "null");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  Value v;
  std::string error;
  if (repro::util::json::parse(text, v, error)) {
    (void)walk(v, 0);
  } else {
    require(!error.empty());
  }
  check_json_double(data, size);
  return 0;
}
