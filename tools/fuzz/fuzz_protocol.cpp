// Fuzz harness for the wire protocol (src/server/protocol.h): every payload
// decoder plus the frame reader.  These parse bytes straight off a socket,
// so they are the repository's primary untrusted-input surface — the header
// promises "never a crash, never a hang" and this harness holds it to that.
//
// Beyond not crashing, successful decodes are checked for encode/decode
// idempotence: decode(x) -> encode -> decode must succeed and re-encode to
// the same bytes.  (encode(decode(x)) == x does NOT hold in general — a
// decoder may accept a payload and stop before trailing bytes it rejects —
// so the harness asserts the fixed point, not inversion.)
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "server/protocol.h"
#include "util/socket.h"

namespace {

using namespace repro::server;

void require(bool ok) {
  if (!ok) std::abort();  // the fuzzer treats abort as a finding
}

void check_open_session(std::string_view payload) {
  SessionConfig cfg;
  if (!decode_open_session(payload, cfg)) return;
  const std::string re = encode_open_session(cfg);
  SessionConfig cfg2;
  require(decode_open_session(re, cfg2));
  require(encode_open_session(cfg2) == re);
}

void check_session_info(std::string_view payload) {
  SessionInfo info;
  if (!decode_session_info(payload, info)) return;
  const std::string re = encode_session_info(info);
  SessionInfo info2;
  require(decode_session_info(re, info2));
  require(encode_session_info(info2) == re);
}

void check_predict(std::string_view payload) {
  std::uint32_t session = 0;
  std::vector<double> measured;
  if (!decode_predict(payload, session, measured)) return;
  const std::string re = encode_predict(session, measured);
  std::uint32_t s2 = 0;
  std::vector<double> m2;
  require(decode_predict(re, s2, m2));
  require(encode_predict(s2, m2) == re);
}

void check_observe(std::string_view payload) {
  std::uint32_t session = 0;
  std::vector<double> measured;
  std::vector<std::uint8_t> valid;
  if (!decode_observe(payload, session, measured, valid)) return;
  const std::string re = encode_observe(session, measured, valid);
  std::uint32_t s2 = 0;
  std::vector<double> m2;
  std::vector<std::uint8_t> v2;
  require(decode_observe(re, s2, m2, v2));
  require(encode_observe(s2, m2, v2) == re);
}

void check_f64_vector(std::string_view payload) {
  std::vector<double> v;
  if (!decode_f64_vector(payload, v)) return;
  const std::string re = encode_f64_vector(v);
  std::vector<double> v2;
  require(decode_f64_vector(re, v2));
  require(encode_f64_vector(v2) == re);
}

void check_observe_outcome(std::string_view payload) {
  ObserveOutcome o;
  if (!decode_observe_outcome(payload, o)) return;
  const std::string re = encode_observe_outcome(o);
  ObserveOutcome o2;
  require(decode_observe_outcome(re, o2));
  require(encode_observe_outcome(o2) == re);
}

void check_error(std::string_view payload) {
  ErrorCode code{};
  std::string message;
  if (!decode_error(payload, code, message)) return;
  const std::string re = encode_error(code, message);
  ErrorCode c2{};
  std::string m2;
  require(decode_error(re, c2, m2));
  require(encode_error(c2, m2) == re);
}

// Frame-level: feed the raw bytes through a socketpair so read_frame sees
// them exactly as it would from a client, then drain until EOF/violation.
// AF_UNIX socket buffers hold ~200 KB; inputs are capped well below so the
// single send never blocks against our own reader.
void check_frame_stream(const std::uint8_t* data, std::size_t size) {
  if (size > 60000) return;
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return;
  (void)::send(sv[1], data, size, 0);
  ::close(sv[1]);  // EOF after the payload: read_frame must terminate
  repro::util::BufferedReader in(sv[0]);
  Frame frame;
  for (int frames = 0; frames < 4096; ++frames) {
    (void)has_complete_buffered_frame(in);
    if (read_frame(in, frame) != FrameReadStatus::kOk) break;
    require(frame.payload.size() <= kMaxFrameLen);
  }
  ::close(sv[0]);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view payload(reinterpret_cast<const char*>(data), size);
  check_open_session(payload);
  check_session_info(payload);
  check_predict(payload);
  check_observe(payload);
  check_f64_vector(payload);
  check_observe_outcome(payload);
  check_error(payload);
  check_frame_stream(data, size);
  return 0;
}
