// Corpus-replay driver used when the toolchain has no libFuzzer (GCC, or
// clang without compiler-rt).  Each argv entry is a corpus file or a
// directory of corpus files; every file is replayed once through
// LLVMFuzzerTestOneInput.  No mutation happens here — coverage-guided
// exploration needs the real libFuzzer build — but the harness logic still
// compiles everywhere and the seed corpora still run under ASan/UBSan.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz: cannot read %s\n", path.c_str());
    return 1;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <corpus-file-or-dir>...\n"
                 "(replay driver; build with clang for coverage-guided "
                 "fuzzing)\n",
                 argv[0]);
    return 2;
  }
  std::size_t replayed = 0;
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      // Deterministic replay order regardless of directory enumeration.
      std::sort(files.begin(), files.end());
      for (const auto& f : files) {
        rc |= run_file(f);
        ++replayed;
      }
    } else {
      rc |= run_file(p);
      ++replayed;
    }
  }
  std::printf("fuzz: replayed %zu input(s)\n", replayed);
  return rc;
} catch (const std::exception& e) {
  // Filesystem iteration can throw; a replay driver reports, not aborts.
  // (Harness-detected findings still abort() by design — that is the
  // fuzzer's failure signal.)
  std::fprintf(stderr, "fuzz: fatal: %s\n", e.what());
  return 1;
}
