#!/usr/bin/env python3
"""Validate BENCH_<name>.json telemetry records (bench/bench_common.h schema).

Usage: validate_bench_json.py <dir-or-file> [...]

Checks every record parses as JSON, carries schema_version 1, and has the
required top-level and telemetry keys.  Exits non-zero on the first problem
so CI fails loudly instead of uploading broken artifacts.
"""
import glob
import json
import math
import os
import sys

REQUIRED_KEYS = (
    "schema_version",
    "bench",
    "git",
    "threads",
    "scale_mode",
    "wall_s",
    "ok",
    "metrics",
    "telemetry",
)
TELEMETRY_KEYS = ("counters", "gauges", "spans")
SCALE_MODES = ("fast", "default", "full")
# Per-bench metrics the perf trajectory depends on: a record missing one of
# these is a silent hole in the cross-PR history, so fail loudly instead.
REQUIRED_METRICS = {
    "selection_sweep": ("speedup_vs_reference", "panel_speedup",
                        "allocs_per_call", "results_match",
                        "kernel_tier", "gram_gflops", "gram_peak_fraction"),
    "kernels": ("dispatched_tier", "forced_tier", "scalar_timed", "kernel_n",
                "gemm_gflops", "gemm_peak_fraction",
                "syrk_gflops", "syrk_peak_fraction",
                "trsm_gflops", "trsm_peak_fraction",
                "gemm_speedup_vs_scalar", "syrk_speedup_vs_scalar",
                "trsm_speedup_vs_scalar"),
    "streaming": ("streaming_e1", "batch_e1", "e1_ratio", "e1_ratio_budget",
                  "guardband_monotone", "clean_false_alarms",
                  "drift_detected", "drift_latency_dies",
                  "drift_budget_dies"),
    "server": ("requests_per_s", "concurrent_sessions",
               "batched_speedup_vs_serial", "batch_mean_size",
               "bit_identical", "cache_hit_zero_refactor"),
    "shard_scale": ("n_paths", "shards", "levels", "eps_r", "tolerance_met",
                    "repair_promotions", "peak_panel_bytes",
                    "mem_budget_bytes", "dense_bytes", "mem_ok",
                    "parity_factor", "parity_ratio_path", "parity_ratio_gate",
                    "parity_ok", "thread_invariant"),
}
# Perf-regression gate: minimum dispatched-tier-over-scalar speedups, keyed
# by bench.  Ratios cancel the runner's clock, so the floors hold on any
# throttled CI machine.  Enforced only when the sweep actually timed a
# scalar leg (scalar_timed; any forced REPRO_KERNEL tier skips the scalar
# leg and reports speedup 1.0 by construction) AND the dispatched tier is a
# SIMD tier — scalar-vs-scalar is identically 1.0.  Records predating
# scalar_timed fall back to the dispatched_tier test alone.
SPEEDUP_FLOORS = {
    "kernels": {
        "gemm_speedup_vs_scalar": 1.5,
        "syrk_speedup_vs_scalar": 1.5,
        "trsm_speedup_vs_scalar": 1.05,
    },
}


def reject_constant(name):
    # Python's json module accepts bare NaN/Infinity by default; a record (or
    # scraped metrics document) carrying one is NOT valid JSON and every
    # strict consumer downstream would choke on it.
    raise ValueError(f"non-finite JSON constant {name!r} (invalid JSON)")


def strict_load(f):
    return json.load(f, parse_constant=reject_constant)


def check_metric_values(metrics, prefix="metrics"):
    """Every metric scalar must be machine-consumable: numbers finite,
    nothing unparsable hiding inside nested metric_json blocks."""
    for key, value in metrics.items():
        where = f"{prefix}[{key!r}]"
        if isinstance(value, float) and not math.isfinite(value):
            raise ValueError(f"{where} is non-finite ({value!r})")
        if isinstance(value, dict):
            check_metric_values(value, where)
        elif isinstance(value, list):
            check_metric_values(dict(enumerate(value)), where)


def collect(args):
    paths = []
    for arg in args:
        if os.path.isdir(arg):
            paths.extend(sorted(glob.glob(os.path.join(arg, "BENCH_*.json"))))
        else:
            paths.append(arg)
    return paths


def validate(path):
    with open(path) as f:
        rec = strict_load(f)
    for key in REQUIRED_KEYS:
        if key not in rec:
            raise ValueError(f"missing key {key!r}")
    if rec["schema_version"] != 1:
        raise ValueError(f"schema_version {rec['schema_version']!r} != 1")
    if rec["scale_mode"] not in SCALE_MODES:
        raise ValueError(f"scale_mode {rec['scale_mode']!r} not in {SCALE_MODES}")
    if not isinstance(rec["metrics"], dict):
        raise ValueError("metrics is not an object")
    if not rec["metrics"]:
        raise ValueError("metrics is empty: every bench must report at least "
                         "one scalar")
    check_metric_values(rec["metrics"])
    for metric in REQUIRED_METRICS.get(rec["bench"], ()):
        if metric not in rec["metrics"]:
            raise ValueError(f"metrics missing {metric!r} "
                             f"(required for bench {rec['bench']!r})")
    floors = SPEEDUP_FLOORS.get(rec["bench"], {})
    scalar_timed = bool(rec["metrics"].get("scalar_timed", True))
    if (floors and scalar_timed
            and rec["metrics"].get("dispatched_tier") != "scalar"):
        for metric, floor in floors.items():
            value = float(rec["metrics"][metric])
            if value < floor:
                raise ValueError(
                    f"perf regression: {metric} = {value:.3g} below the "
                    f"{floor} floor (dispatched_tier = "
                    f"{rec['metrics'].get('dispatched_tier')!r})")
    if rec["bench"] == "streaming":
        # Robustness gate for the streaming calibrator (ISSUE 7 acceptance):
        # streaming accuracy must track the batch robust predictor, the
        # adaptive guard-band must never inflate on a clean stream, the
        # drift detector must flag the injected shift inside the latency
        # budget, and the clean stream must produce zero false alarms.
        met = rec["metrics"]
        ratio = float(met["e1_ratio"])
        ratio_budget = float(met["e1_ratio_budget"])
        if ratio > ratio_budget:
            raise ValueError(
                f"streaming regression: e1_ratio = {ratio:.3f} above the "
                f"{ratio_budget} budget (streaming e1 no longer tracks the "
                f"batch robust predictor)")
        if not met["guardband_monotone"]:
            raise ValueError("streaming regression: adaptive guard-band "
                             "inflated on the clean stream")
        if int(met["clean_false_alarms"]) != 0:
            raise ValueError(
                f"streaming regression: {met['clean_false_alarms']} drift "
                f"false alarm(s) on the clean stream")
        if not met["drift_detected"]:
            raise ValueError("streaming regression: injected drift was "
                             "never flagged")
        latency = int(met["drift_latency_dies"])
        budget = int(met["drift_budget_dies"])
        if latency < 0 or latency > budget:
            raise ValueError(
                f"streaming regression: drift latency {latency} dies "
                f"exceeds the {budget}-die budget")
    if rec["bench"] == "server":
        # Selection-service gate (ISSUE 8 acceptance): batched answers must
        # be bit-identical to serial ones, a cached session must do zero
        # re-selection work, and at default scale the panel path must beat
        # per-request predicts by >= 2x with >= 8 concurrent sessions.
        # (REPRO_FAST pools are too small for the speedup floor to be
        # meaningful, so the perf half of the gate binds at default scale.)
        met = rec["metrics"]
        if not met["bit_identical"]:
            raise ValueError("server regression: batched predictions are not "
                             "bit-identical to serial predictions")
        if not met["cache_hit_zero_refactor"]:
            raise ValueError("server regression: a cached session repeated "
                             "O(n*r^2) selection work on a repeat query")
        if rec["scale_mode"] == "default":
            sessions = int(met["concurrent_sessions"])
            if sessions < 8:
                raise ValueError(f"server record used {sessions} concurrent "
                                 f"sessions (need >= 8)")
            speedup = float(met["batched_speedup_vs_serial"])
            if speedup < 2.0:
                raise ValueError(
                    f"server regression: batched_speedup_vs_serial = "
                    f"{speedup:.3g} below the 2.0 floor at default scale")
    if rec["bench"] == "shard_scale":
        # Sharded out-of-core gate (ISSUE 10 acceptance): the pipeline must
        # meet the global tolerance after repair, stay bit-identical across
        # thread counts, and keep sharded quality within the pinned parity
        # factor of the monolithic greedy sweep.  The memory ceiling is the
        # point of the bench: peak leased panel bytes must stay under the
        # harness budget at every scale, and at default/full scale (the
        # million-path pools) strictly under a quarter of the dense n*m
        # footprint the monolithic route would need.
        met = rec["metrics"]
        if not met["tolerance_met"]:
            raise ValueError("shard regression: global tolerance not met "
                             "after the verify/repair pass")
        if not met["thread_invariant"]:
            raise ValueError("shard regression: sharded selection is not "
                             "bit-identical across thread counts")
        if not met["parity_ok"]:
            raise ValueError(
                f"shard regression: sharded quality outside the "
                f"{met['parity_factor']}x parity envelope (path ratio "
                f"{float(met['parity_ratio_path']):.3f}, gate ratio "
                f"{float(met['parity_ratio_gate']):.3f})")
        peak = int(met["peak_panel_bytes"])
        budget = int(met["mem_budget_bytes"])
        if not met["mem_ok"] or peak > budget:
            raise ValueError(
                f"shard regression: peak panel memory {peak} bytes above "
                f"the {budget}-byte ceiling")
        if rec["scale_mode"] in ("default", "full"):
            dense = int(met["dense_bytes"])
            if peak * 4 > dense:
                raise ValueError(
                    f"shard regression: peak panel memory {peak} bytes is "
                    f"not out-of-core (>= 1/4 of the {dense}-byte dense "
                    f"footprint)")
    for key in TELEMETRY_KEYS:
        if key not in rec["telemetry"]:
            raise ValueError(f"telemetry missing {key!r}")
    # An enabled run whose snapshot is empty means the registry was reset or
    # never flushed — a broken record, not a quiet one.  Older records lack
    # the flag; fall back to the environment the validator runs under.
    enabled = rec.get("telemetry_enabled",
                      os.environ.get("REPRO_TELEMETRY", "1") != "0")
    if enabled and not any(rec["telemetry"][key] for key in TELEMETRY_KEYS):
        raise ValueError("telemetry_enabled but the snapshot is empty "
                         "(no counters, gauges, or spans)")
    return rec


def main(argv):
    if argv[1:2] == ["--raw"]:
        # Strict-parse arbitrary JSON documents (no bench schema): used by
        # the CI server-smoke job on scraped /metrics responses.  Rejects
        # NaN/Infinity literals, so a non-finite gauge that leaked into the
        # wire format fails the job.
        for path in argv[2:]:
            with open(path) as f:
                strict_load(f)
            print(f"{path}: strict JSON ok")
        if not argv[2:]:
            print("--raw needs at least one file", file=sys.stderr)
            return 1
        return 0
    paths = collect(argv[1:] or ["."])
    if not paths:
        print("no BENCH_*.json records found", file=sys.stderr)
        return 1
    for path in paths:
        try:
            rec = validate(path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"{path}: FAIL: {e}", file=sys.stderr)
            return 1
        tele = rec["telemetry"]
        print(
            f"{path}: ok ({rec['bench']}, {len(tele['spans'])} spans, "
            f"{len(tele['counters'])} counters, wall {rec['wall_s']}s)"
        )
    print(f"{len(paths)} record(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
