#include "server/client.h"

#include <utility>

namespace repro::server {

bool Client::connect(const std::string& path) {
  fd_ = util::unix_connect(path);
  if (!fd_.valid()) return false;
  return send_preamble();
}

bool Client::adopt(util::Fd fd) {
  fd_ = std::move(fd);
  if (!fd_.valid()) return false;
  return send_preamble();
}

bool Client::send_preamble() {
  reader_ = std::make_unique<util::BufferedReader>(fd_.get());
  if (!util::send_all(fd_.get(), kBinaryMagic, sizeof(kBinaryMagic))) {
    set_transport_error();
    return false;
  }
  return true;
}

void Client::set_transport_error() {
  last_error_ = ErrorCode::kInternal;
  last_error_message_ = "connection lost";
  close();
}

bool Client::read_expected(MsgType expected, Frame& response) {
  if (reader_ == nullptr) {
    set_transport_error();
    return false;
  }
  if (read_frame(*reader_, response) != FrameReadStatus::kOk) {
    set_transport_error();
    return false;
  }
  if (response.type == MsgType::kError) {
    std::string message;
    ErrorCode code = ErrorCode::kInternal;
    if (decode_error(response.payload, code, message)) {
      last_error_ = code;
      last_error_message_ = message;
    } else {
      last_error_ = ErrorCode::kInternal;
      last_error_message_ = "undecodable error frame";
    }
    return false;
  }
  if (response.type != expected) {
    last_error_ = ErrorCode::kInternal;
    last_error_message_ = "unexpected response type";
    return false;
  }
  return true;
}

bool Client::flush_pipeline() {
  if (pipeline_buf_.empty()) return true;
  const bool sent =
      util::send_all(fd_.get(), pipeline_buf_.data(), pipeline_buf_.size());
  pipeline_buf_.clear();
  if (!sent) {
    set_transport_error();
    return false;
  }
  return true;
}

bool Client::roundtrip(MsgType request, std::string_view payload,
                       MsgType expected, Frame& response) {
  if (!fd_.valid()) {
    set_transport_error();
    return false;
  }
  // Queued pipelined predicts go first so responses keep request order.
  if (!flush_pipeline()) return false;
  const std::uint32_t seq = next_seq_++;
  if (!send_frame(fd_.get(), request, seq, payload)) {
    set_transport_error();
    return false;
  }
  return read_expected(expected, response);
}

bool Client::open_session(const SessionConfig& cfg, SessionInfo& info) {
  Frame response;
  if (!roundtrip(MsgType::kOpenSession, encode_open_session(cfg),
                 MsgType::kSessionOpened, response)) {
    return false;
  }
  if (!decode_session_info(response.payload, info)) {
    last_error_ = ErrorCode::kBadFrame;
    last_error_message_ = "undecodable session info";
    return false;
  }
  return true;
}

bool Client::predict(std::uint32_t session,
                     const std::vector<double>& measured,
                     std::vector<double>& predicted) {
  Frame response;
  if (!roundtrip(MsgType::kPredict, encode_predict(session, measured),
                 MsgType::kPredictResult, response)) {
    return false;
  }
  if (!decode_f64_vector(response.payload, predicted)) {
    last_error_ = ErrorCode::kBadFrame;
    last_error_message_ = "undecodable prediction";
    return false;
  }
  return true;
}

bool Client::observe(std::uint32_t session,
                     const std::vector<double>& measured,
                     const std::vector<std::uint8_t>& valid,
                     ObserveOutcome& out) {
  Frame response;
  if (!roundtrip(MsgType::kObserve, encode_observe(session, measured, valid),
                 MsgType::kObserveResult, response)) {
    return false;
  }
  if (!decode_observe_outcome(response.payload, out)) {
    last_error_ = ErrorCode::kBadFrame;
    last_error_message_ = "undecodable observe outcome";
    return false;
  }
  return true;
}

bool Client::session_info(std::uint32_t session, SessionInfo& info) {
  std::string payload;
  put_u32(payload, session);
  Frame response;
  if (!roundtrip(MsgType::kSessionInfo, payload, MsgType::kSessionInfoResult,
                 response)) {
    return false;
  }
  if (!decode_session_info(response.payload, info)) {
    last_error_ = ErrorCode::kBadFrame;
    last_error_message_ = "undecodable session info";
    return false;
  }
  return true;
}

bool Client::metrics(std::string& json) {
  Frame response;
  if (!roundtrip(MsgType::kMetrics, {}, MsgType::kMetricsResult, response)) {
    return false;
  }
  json = std::move(response.payload);
  return true;
}

bool Client::ping() {
  Frame response;
  return roundtrip(MsgType::kPing, {}, MsgType::kPong, response);
}

bool Client::shutdown_server() {
  Frame response;
  return roundtrip(MsgType::kShutdown, {}, MsgType::kShutdownAck, response);
}

bool Client::send_predict(std::uint32_t session,
                          const std::vector<double>& measured,
                          std::uint32_t& seq) {
  if (!fd_.valid()) {
    set_transport_error();
    return false;
  }
  seq = next_seq_++;
  append_frame(pipeline_buf_, MsgType::kPredict, seq,
               encode_predict(session, measured));
  // A burst larger than the socket buffer gains nothing from more
  // coalescing; cap the client-side memory it holds.
  if (pipeline_buf_.size() >= 64u * 1024u) return flush_pipeline();
  return true;
}

bool Client::recv_predict(std::vector<double>& predicted,
                          std::uint32_t& seq) {
  if (!flush_pipeline()) return false;
  Frame response;
  if (!read_expected(MsgType::kPredictResult, response)) return false;
  seq = response.seq;
  if (!decode_f64_vector(response.payload, predicted)) {
    last_error_ = ErrorCode::kBadFrame;
    last_error_message_ = "undecodable prediction";
    return false;
  }
  return true;
}

}  // namespace repro::server
