#include "server/session.h"

#include <thread>

#include "core/measurement.h"
#include "core/panel_source.h"
#include "core/sharded_selection.h"
#include "linalg/gemm.h"
#include "util/telemetry.h"

namespace repro::server {

bool PredictBatcher::predict(const std::vector<double>& measured,
                             std::vector<double>& out) {
  std::vector<std::vector<double>> rows(1, measured);
  std::vector<std::vector<double>> outs;
  if (!predict_block(rows, outs)) return false;
  out = std::move(outs[0]);
  return true;
}

bool PredictBatcher::predict_block(
    const std::vector<std::vector<double>>& rows,
    std::vector<std::vector<double>>& outs) {
  Pending mine;
  mine.ins = &rows;
  mine.outs = &outs;

  std::unique_lock<std::mutex> lk(mu_);
  queue_.push_back(&mine);
  // Wait for an active leader to answer us, or inherit leadership.  The
  // predicate form re-checks the protocol state on every wakeup, so a
  // spurious wakeup (or a notify consumed out of order) can never leak a
  // follower out of the wait with stale state.
  cv_.wait(lk, [&] { return mine.done || !leader_active_; });
  if (mine.done) return !mine.failed;

  leader_active_ = true;
  // Give runnable strands one scheduling window to enqueue before the first
  // panel is cut — on few-core hosts the leader would otherwise finish its
  // sub-microsecond panel-of-one before anyone else ran.  Unloaded, the
  // yield is a near-free syscall, so the serial path barely pays for it.
  lk.unlock();
  std::this_thread::yield();
  lk.lock();
  while (!queue_.empty()) {
    std::vector<Pending*> batch(queue_.begin(), queue_.end());
    queue_.clear();
    std::size_t total = 0;
    for (const Pending* p : batch) total += p->ins->size();
    panels_ += 1;
    dies_ += total;
    lk.unlock();

    bool failed = false;
    linalg::Matrix result;
    std::size_t at = 0;
    // The try spans the whole unlocked compute section, panel assembly
    // included: if anything here threw outside the try, the batch would
    // never be marked done and every queued follower would wait forever.
    try {
      const std::size_t n_meas = predictor_->mu_meas.size();
      linalg::Matrix panel(total, n_meas);
      for (const Pending* p : batch) {
        for (const std::vector<double>& in : *p->ins) {
          const auto row = panel.row(at++);
          for (std::size_t j = 0; j < n_meas; ++j) row[j] = in[j];
        }
      }
      result = core::predict_panel(*predictor_, panel);
    } catch (...) {
      failed = true;
    }
    util::telemetry::count("server.predict.requests", total);

    lk.lock();
    at = 0;
    for (Pending* p : batch) {
      const std::size_t count = p->ins->size();
      if (!failed) {
        p->outs->resize(count);
        for (std::size_t d = 0; d < count; ++d) {
          const auto row = result.row(at + d);
          (*p->outs)[d].assign(row.begin(), row.end());
        }
      }
      at += count;
      p->failed = failed;
      p->done = true;
    }
    cv_.notify_all();
  }
  leader_active_ = false;
  // A request that raced past the drain while we still held leadership is
  // parked in wait(); hand it the leader role.
  cv_.notify_all();
  return !mine.failed;
}

std::uint64_t PredictBatcher::panels() const {
  std::lock_guard<std::mutex> lk(mu_);
  return panels_;
}

std::uint64_t PredictBatcher::dies() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dies_;
}

SessionInfo Session::info(bool cached) const {
  SessionInfo out;
  out.session = id;
  out.rank = static_cast<std::uint32_t>(selector->rank());
  out.n_meas = static_cast<std::uint32_t>(predictor.measured_paths.size());
  out.n_rem = static_cast<std::uint32_t>(predictor.remaining.size());
  out.eps_r = selection.eps_r;
  out.cached = cached;
  out.representatives.assign(selection.representatives.begin(),
                             selection.representatives.end());
  return out;
}

std::shared_ptr<Session> build_session(const SessionConfig& cfg,
                                       std::uint32_t id) {
  core::ExperimentConfig ec = core::default_experiment_config(cfg.benchmark);
  if (cfg.max_target_paths > 0) ec.max_target_paths = cfg.max_target_paths;
  if (cfg.max_candidates > 0) ec.max_candidates = cfg.max_candidates;
  if (cfg.yield_samples > 0) ec.yield_mc_samples = cfg.yield_samples;

  auto s = std::make_shared<Session>();
  s->id = id;
  s->config = cfg;
  s->experiment = std::make_unique<core::Experiment>(ec);

  const linalg::Matrix& a = s->experiment->model().a();
  const linalg::Vector& mu = s->experiment->model().mu_paths();
  const linalg::Matrix gram = linalg::gram(a);
  s->selector = std::make_unique<core::SubsetSelector>(
      core::make_subset_selector(a, gram));

  core::PathSelectionOptions opt;
  opt.epsilon = cfg.epsilon;
  opt.kappa = cfg.kappa;
  opt.strategy = static_cast<core::SelectionStrategy>(cfg.strategy);
  opt.min_r = cfg.min_r;
  if (cfg.num_shards > 1) {
    // Sharded out-of-core route (DESIGN.md §14): partition the pool, select
    // per shard, verify/repair globally.  The pool here is in memory
    // already, so this is the service's capacity escape hatch for configs
    // whose dense Gram would not fit — and the protocol surface for
    // operating the pipeline remotely.
    core::ShardedSelectionOptions sopt;
    sopt.num_shards = cfg.num_shards;
    sopt.selection = opt;
    const core::MatrixPanelSource source(a);
    const core::ShardedSelectionResult sharded = core::select_paths_sharded(
        source, s->experiment->t_cons_ps(), sopt);
    s->selection.representatives = sharded.representatives;
    s->selection.exact_rank = s->selector->rank();
    s->selection.eps_r = sharded.eps_r;
    s->selection.errors = core::selection_errors_from_gram(
        gram, sharded.representatives, s->experiment->t_cons_ps(), opt.kappa);
  } else {
    s->selection = core::select_representative_paths(
        *s->selector, gram, s->experiment->t_cons_ps(), opt);
  }

  s->predictor =
      core::make_path_predictor(a, mu, s->selection.representatives);

  // Streamed dies go through the robust gate; backups come from the greedy
  // pivot order and the noise prior matches the default tester fault model.
  core::RobustOptions ropt;
  ropt.backup_order = s->selector->greedy_order(gram);
  ropt.measurement_sigma_ps =
      core::expected_noise_sigma(core::default_fault_spec(),
                                 s->predictor.mu_meas);
  const core::RobustPredictor robust = core::make_robust_path_predictor(
      a, mu, s->selection.representatives, {}, ropt);
  s->calibrator = std::make_unique<core::StreamingCalibrator>(robust);

  s->batcher = std::make_unique<PredictBatcher>(&s->predictor);
  return s;
}

std::shared_ptr<Session> SessionCache::open(const SessionConfig& cfg,
                                            bool& was_cached) {
  const std::string key = cfg.cache_key();
  std::shared_ptr<Entry> entry;
  std::uint32_t id = 0;
  bool created = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = by_key_.find(key);
    if (it == by_key_.end()) {
      it = by_key_.emplace(key, std::make_shared<Entry>()).first;
      created = true;
    }
    entry = it->second;
    if (created) id = next_id_++;
  }

  std::lock_guard<std::mutex> build_lk(entry->build_mu);
  if (entry->session) {
    was_cached = true;
    util::telemetry::count("server.sessions.cache_hits");
    return entry->session;
  }
  // Either this open created the entry, or an earlier build failed and was
  // evicted while we waited; (re)build single-flight under build_mu.
  if (!created) {
    std::lock_guard<std::mutex> lk(mu_);
    id = next_id_++;
  }
  try {
    entry->session = build_session(cfg, id);
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end() && it->second == entry) by_key_.erase(it);
    throw;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    by_id_[id] = entry->session;
  }
  was_cached = false;
  util::telemetry::count("server.sessions.built");
  return entry->session;
}

std::shared_ptr<Session> SessionCache::find(std::uint32_t id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::size_t SessionCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return by_id_.size();
}

}  // namespace repro::server
