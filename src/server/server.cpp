#include "server/server.h"

#include <cstring>
#include <exception>
#include <limits>
#include <utility>

#include "util/json.h"
#include "util/telemetry.h"

namespace repro::server {
namespace {

using util::json::Value;

constexpr std::size_t kMaxJsonLine = 1u << 20;
// Pool-override ceilings: far beyond paper scale, but a hostile open must
// not be able to request an absurd build.
constexpr std::uint32_t kMaxPoolOverride = 1u << 20;

std::optional<std::string> validate_config(const SessionConfig& cfg,
                                           const ServerOptions& options) {
  if (cfg.benchmark.empty() || cfg.benchmark.size() > 64) {
    return "benchmark name must be 1..64 characters";
  }
  for (const char c : cfg.benchmark) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return "benchmark name has invalid characters";
  }
  if (!(cfg.epsilon > 0.0) || !(cfg.epsilon < 1.0)) {
    return "epsilon must be in (0, 1)";
  }
  if (!(cfg.kappa > 0.0) || !(cfg.kappa <= 100.0)) {
    return "kappa must be in (0, 100]";
  }
  if (cfg.strategy > 2) {
    return "strategy must be 0 (linear), 1 (bisection), or 2 (greedy)";
  }
  if (cfg.min_r < 1 || cfg.min_r > kMaxPoolOverride) {
    return "min_r out of range";
  }
  if (cfg.max_target_paths > kMaxPoolOverride ||
      cfg.max_candidates > kMaxPoolOverride ||
      cfg.yield_samples > kMaxPoolOverride) {
    return "pool override out of range";
  }
  // Operator-configured admission ceilings: reject an oversized build here,
  // structurally, instead of discovering it as an OOM mid-session-build.
  if (cfg.max_target_paths > options.max_pool_paths ||
      cfg.max_candidates > options.max_pool_paths) {
    return "pool override exceeds server max_pool_paths limit";
  }
  if (cfg.num_shards > options.max_shards) {
    return "num_shards exceeds server max_shards limit";
  }
  return std::nullopt;
}

// JSON measurement arrays may use null for a dead/dropped slot; it maps to
// NaN, which the robust path treats as missing (mirrors json_double's
// non-finite -> null rendering on the way out).
bool parse_measured(const Value* v, std::vector<double>& out) {
  if (v == nullptr || v->kind != util::json::Kind::kArray) return false;
  out.clear();
  out.reserve(v->items.size());
  for (const Value& item : v->items) {
    if (item.kind == util::json::Kind::kNumber) {
      out.push_back(item.number);
    } else if (item.kind == util::json::Kind::kNull) {
      out.push_back(std::numeric_limits<double>::quiet_NaN());
    } else {
      return false;
    }
  }
  return true;
}

void append_doubles(std::string& out, const std::vector<double>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    out += util::json::json_double(v[i]);
  }
  out += ']';
}

std::string json_error(std::uint32_t id, ErrorCode code,
                       std::string_view message) {
  std::string out = "{\"id\":";
  out += std::to_string(id);
  out += ",\"ok\":false,\"code\":";
  out += std::to_string(static_cast<std::uint32_t>(code));
  out += ",\"error\":\"";
  out += util::json::escape(to_string(code));
  out += ": ";
  out += util::json::escape(message);
  out += "\"}";
  return out;
}

void append_session_info(std::string& out, const SessionInfo& info) {
  out += "\"session\":";
  out += std::to_string(info.session);
  out += ",\"rank\":";
  out += std::to_string(info.rank);
  out += ",\"n_meas\":";
  out += std::to_string(info.n_meas);
  out += ",\"n_rem\":";
  out += std::to_string(info.n_rem);
  out += ",\"eps_r\":";
  out += util::json::json_double(info.eps_r);
  out += ",\"cached\":";
  out += info.cached ? "true" : "false";
  out += ",\"representatives\":[";
  for (std::size_t i = 0; i < info.representatives.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(info.representatives[i]);
  }
  out += ']';
}

bool parse_strategy(const Value& req, std::uint8_t& strategy) {
  const Value* v = req.find("strategy");
  if (v == nullptr) return true;  // keep default
  if (v->kind == util::json::Kind::kNumber) {
    if (v->number < 0 || v->number > 2) return false;
    strategy = static_cast<std::uint8_t>(v->number);
    return true;
  }
  if (v->kind == util::json::Kind::kString) {
    if (v->string == "linear") {
      strategy = 0;
    } else if (v->string == "bisection") {
      strategy = 1;
    } else if (v->string == "greedy") {
      strategy = 2;
    } else {
      return false;
    }
    return true;
  }
  return false;
}

std::uint32_t u32_field(const Value& req, std::string_view key,
                        std::uint32_t fallback) {
  const double v = req.number_or(key, static_cast<double>(fallback));
  if (v < 0 || v > static_cast<double>(kMaxPoolOverride)) return fallback;
  return static_cast<std::uint32_t>(v);
}

}  // namespace

Server::Server(ServerOptions options) : options_(options) {}

Server::~Server() { stop(); }

bool Server::listen(const std::string& path) {
  listener_ = util::unix_listen(path, options_.backlog);
  if (!listener_.valid()) return false;
  path_ = path;
  return true;
}

void Server::run() {
  while (!shutting_down_.load()) {
    util::Fd fd = util::accept_connection(listener_.get());
    if (!fd.valid()) break;  // listener shut down or hard error
    if (shutting_down_.load()) break;
    reap_finished();
    serve_fd(std::move(fd));
  }
  drain();
}

void Server::serve_fd(util::Fd fd) {
  if (shutting_down_.load() || !fd.valid()) return;  // fd closes on return
  util::telemetry::count("server.connections");
  auto conn = std::make_unique<Conn>();
  Conn* raw = conn.get();
  raw->fd = std::move(fd);
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.push_back(std::move(conn));
  }
  raw->thread = std::thread([this, raw] {
    handle_connection(raw);
    // Half-close so the peer sees EOF immediately; the fd itself stays
    // open (owned by the Conn) until reap_finished()/drain(), so a
    // concurrent drain() may still safely shutdown_read() it.
    raw->fd.shutdown_write();
    raw->done.store(true);
  });
}

void Server::request_shutdown() {
  shutting_down_.store(true);
  // Unblocks a run() parked in accept; harmless when not listening.
  listener_.shutdown_read();
}

void Server::stop() {
  request_shutdown();
  drain();
}

void Server::reap_finished() {
  // Unlink finished connections under the lock, join outside it: a join is
  // a blocking wait, and holding conns_mu_ through it would stall drain()
  // and the acceptor against a strand that is still flushing its goodbye.
  std::vector<std::unique_ptr<Conn>> finished;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (std::size_t i = 0; i < conns_.size();) {
      if (conns_[i]->done.load()) {
        finished.push_back(std::move(conns_[i]));
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (const auto& c : finished) {
    if (c->thread.joinable()) c->thread.join();
  }
}

void Server::drain() {
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns.swap(conns_);
  }
  // Wake readers parked in recv; their strands answer anything already
  // read, then exit on the EOF.
  for (const auto& c : conns) c->fd.shutdown_read();
  for (const auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
}

void Server::handle_connection(Conn* conn) {
  util::BufferedReader in(conn->fd.get());
  unsigned char first = 0;
  if (!in.peek_byte(first)) return;
  if (first == '{') {
    serve_json(conn, in);
    return;
  }
  char magic[4] = {0, 0, 0, 0};
  if (!in.read_exact(magic, sizeof(magic))) return;
  if (std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    send_frame(conn->fd.get(), MsgType::kError, 0,
               encode_error(ErrorCode::kBadMagic,
                            "expected RPB1 preamble or a JSON line"));
    return;
  }
  serve_binary(conn, in);
}

void Server::serve_binary(Conn* conn, util::BufferedReader& in) {
  std::string out;
  const auto flush = [&] {
    if (out.empty()) return true;
    const bool sent = util::send_all(conn->fd.get(), out.data(), out.size());
    out.clear();
    return sent;
  };
  // Appends the structured framing error (nothing for kEof) and flushes;
  // the connection closes either way.
  const auto framing_exit = [&](FrameReadStatus st) {
    if (st == FrameReadStatus::kTooLarge) {
      // The oversized body was never read: the stream is unrecoverable.
      append_frame(out, MsgType::kError, 0,
                   encode_error(ErrorCode::kFrameTooLarge,
                                "frame length above limit"));
    } else if (st == FrameReadStatus::kMalformed) {
      append_frame(out, MsgType::kError, 0,
                   encode_error(ErrorCode::kBadFrame,
                                "frame length below header size"));
    }
    flush();
  };
  bool have_next = false;
  Frame frame;
  for (;;) {
    if (!have_next) {
      // Flush before any read that could block: if the next frame is not
      // already buffered, the client may be waiting on these responses
      // before it sends more.
      if (!has_complete_buffered_frame(in) && !flush()) return;
      const FrameReadStatus st = read_frame(in, frame);
      if (st != FrameReadStatus::kOk) {
        framing_exit(st);
        return;
      }
    }
    have_next = false;
    if (frame.type == MsgType::kPredict) {
      const FrameReadStatus st =
          gather_predict_run(frame, in, out, have_next);
      if (st != FrameReadStatus::kOk) {
        framing_exit(st);
        return;
      }
      continue;
    }
    dispatch_binary(frame, out);
  }
}

FrameReadStatus Server::gather_predict_run(Frame& frame,
                                           util::BufferedReader& in,
                                           std::string& out,
                                           bool& have_trailing) {
  have_trailing = false;
  std::uint32_t session = 0;
  std::vector<std::vector<double>> rows(1);
  if (!decode_predict(frame.payload, session, rows[0])) {
    dispatch_binary(frame, out);  // single-frame kBadFrame path
    return FrameReadStatus::kOk;
  }
  const std::shared_ptr<Session> s =
      shutting_down_.load() ? nullptr : sessions_.find(session);
  if (s == nullptr || rows[0].size() != s->predictor.mu_meas.size()) {
    dispatch_binary(frame, out);  // structured per-request error path
    return FrameReadStatus::kOk;
  }
  const std::size_t n_meas = s->predictor.mu_meas.size();

  // Sweep the already-buffered tail of the pipeline into this block: every
  // decodable predict for the same session joins; the first frame that
  // does not is handed back to the caller for ordinary dispatch (responses
  // keep request order because the block is answered first).
  std::vector<std::uint32_t> seqs{frame.seq};
  FrameReadStatus status = FrameReadStatus::kOk;
  while (has_complete_buffered_frame(in)) {
    Frame next;
    status = read_frame(in, next);
    if (status != FrameReadStatus::kOk) break;  // run still gets answered
    bool joined = false;
    if (next.type == MsgType::kPredict) {
      std::uint32_t next_session = 0;
      std::vector<double> row;
      if (decode_predict(next.payload, next_session, row) &&
          next_session == session && row.size() == n_meas) {
        rows.push_back(std::move(row));
        seqs.push_back(next.seq);
        joined = true;
      }
    }
    if (!joined) {
      frame = std::move(next);
      have_trailing = true;
      break;
    }
  }

  util::telemetry::count("server.requests", rows.size());
  std::vector<std::vector<double>> outs;
  if (s->batcher->predict_block(rows, outs)) {
    // One response frame per row: 9 header bytes + count + the doubles.
    out.reserve(out.size() +
                seqs.size() * (13u + 8u * s->predictor.mu_rem.size()));
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      append_f64_vector_frame(out, MsgType::kPredictResult, seqs[i], outs[i]);
    }
  } else {
    for (const std::uint32_t seq : seqs) {
      append_frame(out, MsgType::kError, seq,
                   encode_error(ErrorCode::kInternal,
                                "panel prediction failed"));
    }
  }
  return status;
}

void Server::dispatch_binary(const Frame& frame, std::string& out) {
  util::telemetry::count("server.requests");
  const std::uint32_t seq = frame.seq;
  const auto reply = [&](MsgType type, std::string_view payload) {
    append_frame(out, type, seq, payload);
  };
  const auto reply_error = [&](ErrorCode code, std::string_view msg) {
    reply(MsgType::kError, encode_error(code, msg));
  };
  switch (frame.type) {
    case MsgType::kPing:
      return reply(MsgType::kPong, frame.payload);
    case MsgType::kShutdown: {
      // Flag first, then ack: once the client sees the ack, the server is
      // guaranteed to be draining (new opens are already refused).
      request_shutdown();
      return reply(MsgType::kShutdownAck, {});
    }
    case MsgType::kMetrics:
      return reply(MsgType::kMetricsResult, util::telemetry::to_json());
    case MsgType::kOpenSession: {
      SessionConfig cfg;
      if (!decode_open_session(frame.payload, cfg)) {
        return reply_error(ErrorCode::kBadFrame, "open_session payload");
      }
      SessionInfo info;
      if (const auto err = do_open(cfg, info)) {
        return reply_error(err->code, err->message);
      }
      return reply(MsgType::kSessionOpened, encode_session_info(info));
    }
    case MsgType::kPredict: {
      std::uint32_t session = 0;
      std::vector<double> measured;
      if (!decode_predict(frame.payload, session, measured)) {
        return reply_error(ErrorCode::kBadFrame, "predict payload");
      }
      std::vector<double> predicted;
      if (const auto err = do_predict(session, measured, predicted)) {
        return reply_error(err->code, err->message);
      }
      return append_f64_vector_frame(out, MsgType::kPredictResult, seq,
                                     predicted);
    }
    case MsgType::kObserve: {
      std::uint32_t session = 0;
      std::vector<double> measured;
      std::vector<std::uint8_t> valid;
      if (!decode_observe(frame.payload, session, measured, valid)) {
        return reply_error(ErrorCode::kBadFrame, "observe payload");
      }
      ObserveOutcome outcome;
      if (const auto err = do_observe(session, measured, valid, outcome)) {
        return reply_error(err->code, err->message);
      }
      return reply(MsgType::kObserveResult, encode_observe_outcome(outcome));
    }
    case MsgType::kSessionInfo: {
      PayloadReader r(frame.payload);
      std::uint32_t session = 0;
      if (!r.get_u32(session) || !r.exhausted()) {
        return reply_error(ErrorCode::kBadFrame, "session_info payload");
      }
      SessionInfo info;
      if (const auto err = do_session_info(session, info)) {
        return reply_error(err->code, err->message);
      }
      return reply(MsgType::kSessionInfoResult, encode_session_info(info));
    }
    default:
      return reply_error(ErrorCode::kUnknownType, "unrecognized message type");
  }
}

void Server::serve_json(Conn* conn, util::BufferedReader& in) {
  std::string line;
  while (in.read_line(line, kMaxJsonLine)) {
    if (line.empty()) continue;
    std::string response = dispatch_json(line);
    response += '\n';
    if (!util::send_all(conn->fd.get(), response.data(), response.size())) {
      return;
    }
  }
}

std::string Server::dispatch_json(const std::string& line) {
  util::telemetry::count("server.requests");
  Value req;
  std::string parse_err;
  if (!util::json::parse(line, req, parse_err)) {
    return json_error(0, ErrorCode::kBadFrame, parse_err);
  }
  if (req.kind != util::json::Kind::kObject) {
    return json_error(0, ErrorCode::kBadFrame, "request must be an object");
  }
  const double id_raw = req.number_or("id", 0.0);
  const std::uint32_t id =
      (id_raw >= 0 && id_raw <= 4294967295.0)
          ? static_cast<std::uint32_t>(id_raw)
          : 0;
  const std::string op = req.string_or("op", "");
  std::string out = "{\"id\":";
  out += std::to_string(id);
  out += ",\"ok\":true";

  if (op == "ping") {
    out += ",\"pong\":true}";
    return out;
  }
  if (op == "shutdown") {
    request_shutdown();
    out += ",\"shutting_down\":true}";
    return out;
  }
  if (op == "metrics") {
    out += ",\"metrics\":";
    out += util::telemetry::to_json();
    out += '}';
    return out;
  }
  if (op == "open_session") {
    SessionConfig cfg;
    cfg.benchmark = req.string_or("benchmark", cfg.benchmark);
    cfg.epsilon = req.number_or("epsilon", cfg.epsilon);
    cfg.kappa = req.number_or("kappa", cfg.kappa);
    if (!parse_strategy(req, cfg.strategy)) {
      return json_error(id, ErrorCode::kBadRequest, "unknown strategy");
    }
    cfg.min_r = u32_field(req, "min_r", cfg.min_r);
    cfg.max_target_paths = u32_field(req, "max_target_paths", 0);
    cfg.max_candidates = u32_field(req, "max_candidates", 0);
    cfg.yield_samples = u32_field(req, "yield_samples", 0);
    // Not u32_field: an absurd shard count must reject, not silently clamp
    // to the monolithic-route fallback.
    const double raw_shards = req.number_or("num_shards", 0.0);
    if (raw_shards < 0.0 || raw_shards > static_cast<double>(kMaxPoolOverride)) {
      return json_error(id, ErrorCode::kBadRequest, "num_shards out of range");
    }
    cfg.num_shards = static_cast<std::uint32_t>(raw_shards);
    SessionInfo info;
    if (const auto err = do_open(cfg, info)) {
      return json_error(id, err->code, err->message);
    }
    out += ',';
    append_session_info(out, info);
    out += '}';
    return out;
  }
  if (op == "predict" || op == "observe") {
    const double session_raw = req.number_or("session", 0.0);
    const std::uint32_t session = static_cast<std::uint32_t>(session_raw);
    std::vector<double> measured;
    if (!parse_measured(req.find("measured"), measured)) {
      return json_error(id, ErrorCode::kBadRequest,
                        "measured must be an array of numbers/nulls");
    }
    if (op == "predict") {
      std::vector<double> predicted;
      if (const auto err = do_predict(session, measured, predicted)) {
        return json_error(id, err->code, err->message);
      }
      out += ",\"predicted\":";
      append_doubles(out, predicted);
      out += '}';
      return out;
    }
    std::vector<std::uint8_t> valid;
    if (const Value* v = req.find("valid")) {
      if (v->kind != util::json::Kind::kArray) {
        return json_error(id, ErrorCode::kBadRequest, "valid must be an array");
      }
      valid.reserve(v->items.size());
      for (const Value& item : v->items) {
        if (item.kind == util::json::Kind::kBool) {
          valid.push_back(item.boolean ? 1 : 0);
        } else if (item.kind == util::json::Kind::kNumber) {
          valid.push_back(item.number != 0.0 ? 1 : 0);
        } else {
          return json_error(id, ErrorCode::kBadRequest,
                            "valid entries must be bools or numbers");
        }
      }
    }
    ObserveOutcome outcome;
    if (const auto err = do_observe(session, measured, valid, outcome)) {
      return json_error(id, err->code, err->message);
    }
    out += ",\"accepted\":";
    out += outcome.accepted ? "true" : "false";
    out += ",\"gate\":\"";
    out += core::to_string(static_cast<core::StreamGate>(outcome.gate));
    out += "\",\"health\":\"";
    out += core::to_string(static_cast<core::PredictorHealth>(outcome.health));
    out += "\",\"drift_flagged\":";
    out += outcome.drift_flagged ? "true" : "false";
    out += ",\"drift_score\":";
    out += util::json::json_double(outcome.drift_score);
    out += ",\"guardband\":";
    out += util::json::json_double(outcome.guardband);
    out += ",\"predicted\":";
    append_doubles(out, outcome.predicted);
    out += '}';
    return out;
  }
  if (op == "session_info") {
    const std::uint32_t session =
        static_cast<std::uint32_t>(req.number_or("session", 0.0));
    SessionInfo info;
    if (const auto err = do_session_info(session, info)) {
      return json_error(id, err->code, err->message);
    }
    out += ',';
    append_session_info(out, info);
    out += '}';
    return out;
  }
  return json_error(id, ErrorCode::kUnknownType, "unknown op");
}

std::optional<Server::OpError> Server::do_open(const SessionConfig& cfg,
                                               SessionInfo& out) {
  if (shutting_down_.load()) {
    return OpError{ErrorCode::kShuttingDown, "server is draining"};
  }
  if (const auto why = validate_config(cfg, options_)) {
    return OpError{ErrorCode::kBadRequest, *why};
  }
  try {
    bool cached = false;
    const std::shared_ptr<Session> s = sessions_.open(cfg, cached);
    out = s->info(cached);
    return std::nullopt;
  } catch (const std::exception& e) {
    return OpError{ErrorCode::kInternal, e.what()};
  } catch (...) {
    return OpError{ErrorCode::kInternal, "session build failed"};
  }
}

std::optional<Server::OpError> Server::do_predict(
    std::uint32_t session, const std::vector<double>& measured,
    std::vector<double>& out) {
  if (shutting_down_.load()) {
    return OpError{ErrorCode::kShuttingDown, "server is draining"};
  }
  const std::shared_ptr<Session> s = sessions_.find(session);
  if (s == nullptr) {
    return OpError{ErrorCode::kUnknownSession, "no such session"};
  }
  if (measured.size() != s->predictor.mu_meas.size()) {
    return OpError{ErrorCode::kBadRequest,
                   "measured length does not match session slot count"};
  }
  if (!s->batcher->predict(measured, out)) {
    return OpError{ErrorCode::kInternal, "panel prediction failed"};
  }
  return std::nullopt;
}

std::optional<Server::OpError> Server::do_observe(
    std::uint32_t session, const std::vector<double>& measured,
    const std::vector<std::uint8_t>& valid, ObserveOutcome& out) {
  if (shutting_down_.load()) {
    return OpError{ErrorCode::kShuttingDown, "server is draining"};
  }
  const std::shared_ptr<Session> s = sessions_.find(session);
  if (s == nullptr) {
    return OpError{ErrorCode::kUnknownSession, "no such session"};
  }
  if (measured.size() != s->predictor.mu_meas.size()) {
    return OpError{ErrorCode::kBadRequest,
                   "measured length does not match session slot count"};
  }
  if (!valid.empty() && valid.size() != measured.size()) {
    return OpError{ErrorCode::kBadRequest,
                   "valid mask length does not match measured length"};
  }
  std::vector<char> mask(valid.begin(), valid.end());
  std::lock_guard<std::mutex> lk(s->stream_mu);
  // Same exception boundary as do_open: a contract violation or bad_alloc
  // inside the calibrator must become a kInternal reply, not unwind through
  // the reader strand (which would terminate the whole server).
  try {
    const core::DieRecord rec = s->calibrator->observe(
        s->next_die++, measured,
        mask.empty() ? std::span<const char>{}
                     : std::span<const char>(mask.data(), mask.size()));
    out.accepted = rec.accepted;
    out.gate = static_cast<std::uint8_t>(rec.gate);
    out.health = static_cast<std::uint8_t>(rec.prediction_health);
    out.drift_flagged = rec.drift_flagged;
    out.drift_score = rec.drift_score;
    out.guardband = rec.guardband;
    out.predicted.resize(rec.predicted.size());
    for (std::size_t i = 0; i < rec.predicted.size(); ++i) {
      out.predicted[i] = rec.predicted[i];
    }
    return std::nullopt;
  } catch (const std::exception& e) {
    return OpError{ErrorCode::kInternal, e.what()};
  } catch (...) {
    return OpError{ErrorCode::kInternal, "observe failed"};
  }
}

std::optional<Server::OpError> Server::do_session_info(std::uint32_t session,
                                                       SessionInfo& out) {
  const std::shared_ptr<Session> s = sessions_.find(session);
  if (s == nullptr) {
    return OpError{ErrorCode::kUnknownSession, "no such session"};
  }
  out = s->info(true);
  return std::nullopt;
}

}  // namespace repro::server
