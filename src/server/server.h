// Selection-as-a-service daemon: the calibrated-predictor pipeline behind a
// socket.  See DESIGN.md §13 and src/server/protocol.h for the wire format.
//
// Threading model:
//   * one dedicated reader thread per connection, processing that
//     connection's requests strictly FIFO (a strand) — responses on a
//     connection are written only by its own thread, so no write lock;
//   * the compute hot path rides the shared util::ThreadPool underneath:
//     session builds and panel predictions call parallel_for internally.
//     Connection strands are deliberately NOT pool tasks — pool workers are
//     flagged in-parallel-region for their lifetime (their parallel_fors
//     would serialize) and a strand blocks in the predict batcher, which
//     must never eat a pool slot;
//   * concurrent predicts against one session gather in the session's
//     PredictBatcher and are answered through core::predict_panel
//     (bit-identical to serial, see that contract);
//   * observes serialize per session (the calibrator recursion is
//     order-dependent by design).
//
// Shutdown: request_shutdown() (any thread, or a kShutdown request) stops
// the accept loop and fails new sessions/requests with kShuttingDown;
// in-flight requests complete and their responses are flushed before the
// connection threads are joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "server/session.h"
#include "util/socket.h"

namespace repro::server {

struct ServerOptions {
  int backlog = 16;
  // Admission ceilings for open_session: pool-size overrides
  // (max_target_paths / max_candidates / yield_samples) and the sharded
  // route's shard count.  Requests beyond these are rejected with a
  // structured kBadRequest before any pool is built — the operator's OOM
  // guard, tightenable per deployment (selection_serverd flags).  Both are
  // additionally clamped to the protocol-level hard cap (1 << 20).
  std::uint32_t max_pool_paths = 1u << 20;
  std::uint32_t max_shards = 4096;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();  // stop()

  // Binds and listens on an AF_UNIX socket (a stale socket file is
  // replaced).  False on failure (errno describes it).
  bool listen(const std::string& path);

  // Accept loop; returns after request_shutdown() (or listener failure),
  // with every connection drained and joined.
  void run();

  // Adopts an already-connected peer (tests use socketpair); spawns its
  // strand.  A server that is shutting down closes the fd instead.
  void serve_fd(util::Fd fd);

  // Stops accepting and fails new work with kShuttingDown.  Returns
  // immediately; safe from any thread, including connection strands.
  void request_shutdown();

  // request_shutdown() plus drain: blocks until every strand exited.  Not
  // callable from a strand (it would join itself); run() does this on exit,
  // tests call it directly when driving serve_fd without run().
  void stop();

  bool shutting_down() const { return shutting_down_.load(); }
  SessionCache& sessions() { return sessions_; }
  const std::string& socket_path() const { return path_; }

 private:
  struct Conn {
    util::Fd fd;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  struct OpError {
    ErrorCode code = ErrorCode::kInternal;
    std::string message;
  };

  void handle_connection(Conn* conn);
  void serve_binary(Conn* conn, util::BufferedReader& in);
  // Appends the response frame(s) for one request to `out`; serve_binary
  // flushes the accumulated buffer only before a read that could block, so
  // a pipelined burst costs one send per burst instead of one per request.
  void dispatch_binary(const Frame& frame, std::string& out);
  // `frame` starts a predict: sweeps the already-buffered pipeline tail of
  // same-session predicts into one batcher block (one wait, one panel
  // contribution).  On return with `have_trailing`, `frame` holds an
  // already-read frame that did not join the run and must be dispatched
  // next.  Returns the framing status that ended the read-ahead — anything
  // but kOk means the connection must close after the run's responses.
  FrameReadStatus gather_predict_run(Frame& frame, util::BufferedReader& in,
                                     std::string& out, bool& have_trailing);
  void serve_json(Conn* conn, util::BufferedReader& in);
  std::string dispatch_json(const std::string& line);

  // Shared operation cores; both front ends call these.
  std::optional<OpError> do_open(const SessionConfig& cfg, SessionInfo& out);
  std::optional<OpError> do_predict(std::uint32_t session,
                                    const std::vector<double>& measured,
                                    std::vector<double>& out);
  std::optional<OpError> do_observe(std::uint32_t session,
                                    const std::vector<double>& measured,
                                    const std::vector<std::uint8_t>& valid,
                                    ObserveOutcome& out);
  std::optional<OpError> do_session_info(std::uint32_t session,
                                         SessionInfo& out);

  void reap_finished();
  void drain();

  ServerOptions options_;
  util::Fd listener_;
  std::string path_;
  std::atomic<bool> shutting_down_{false};
  SessionCache sessions_;
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace repro::server
