// Wire protocol of the selection service (src/server/server.h).
//
// A connection speaks one of two front ends, chosen by its first byte:
//
//   * Binary (the production path): the client opens with the 4-byte magic
//     "RPB1", then both directions exchange length-prefixed frames
//
//         u32 len   | byte count of everything after this field
//         u8  type  | MsgType
//         u32 seq   | client-chosen correlation id, echoed in the response
//         payload   | len - 5 bytes, layout per type
//
//     All integers are little-endian; doubles travel as their IEEE-754 bit
//     pattern (u64 LE), so NaN measurement slots (dead/dropped on a die)
//     pass through unmangled.  `seq` exists because responses may legally
//     arrive out of order: predict replies are written by whichever batch
//     gathered them.
//
//   * JSON lines (debugging): a first byte of '{' switches the connection
//     to newline-delimited JSON objects, parsed by util::json (strict).
//     Same operations, human-typeable; see DESIGN.md §13.
//
// Any other first byte is answered with a kError frame and the connection
// is dropped.  Malformed frames get structured kError responses; framing
// violations that leave the stream unparseable (oversized length, short
// header) also drop the connection — never a crash, never a hang.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/socket.h"

namespace repro::server {

inline constexpr char kBinaryMagic[4] = {'R', 'P', 'B', '1'};
// Frames larger than this are protocol abuse (the biggest legitimate frame
// is a few-thousand-path prediction, ~tens of KB).
inline constexpr std::uint32_t kMaxFrameLen = 16u * 1024u * 1024u;
// type + seq: the smallest legal `len`.
inline constexpr std::uint32_t kFrameHeaderTail = 5;

enum class MsgType : std::uint8_t {
  // client -> server
  kOpenSession = 0x01,
  kPredict = 0x02,
  kObserve = 0x03,
  kMetrics = 0x04,
  kSessionInfo = 0x05,
  kPing = 0x06,
  kShutdown = 0x07,
  // server -> client
  kSessionOpened = 0x81,
  kPredictResult = 0x82,
  kObserveResult = 0x83,
  kMetricsResult = 0x84,
  kSessionInfoResult = 0x85,
  kPong = 0x86,
  kShutdownAck = 0x87,
  kError = 0xFF,
};

enum class ErrorCode : std::uint32_t {
  kBadMagic = 1,      // connection preamble was neither "RPB1" nor '{'
  kFrameTooLarge = 2,  // len above kMaxFrameLen (connection is dropped)
  kBadFrame = 3,      // payload did not decode for the declared type
  kUnknownType = 4,   // unrecognized MsgType
  kUnknownSession = 5,
  kBadRequest = 6,    // decoded, but semantically invalid (e.g. slot count)
  kShuttingDown = 7,  // server is draining; no new work accepted
  kInternal = 8,      // session build / predict threw
};
const char* to_string(ErrorCode c);

// What a client asks a session to be.  The canonical serialization of every
// field is the session-cache key: two opens agreeing on all fields share one
// session (and all its O(n·r²) selection work).
struct SessionConfig {
  std::string benchmark = "s1423";
  double epsilon = 0.05;
  double kappa = 3.0;
  std::uint8_t strategy = 1;  // core::SelectionStrategy underlying value
  std::uint32_t min_r = 1;
  // Experiment pool overrides; 0 = the scale-mode default.  Tests and the
  // bench shrink these so a session builds in well under a second.
  std::uint32_t max_target_paths = 0;
  std::uint32_t max_candidates = 0;
  std::uint32_t yield_samples = 0;
  // > 1 routes selection through the sharded out-of-core pipeline
  // (core::select_paths_sharded) with this level-0 shard count; 0/1 = the
  // monolithic route.  Bounded by ServerOptions::max_shards.
  std::uint32_t num_shards = 0;

  std::string cache_key() const;
};

// kSessionOpened / kSessionInfoResult payload.
struct SessionInfo {
  std::uint32_t session = 0;
  std::uint32_t rank = 0;
  std::uint32_t n_meas = 0;  // representative (measured) path count
  std::uint32_t n_rem = 0;   // predicted path count
  double eps_r = 0.0;
  bool cached = false;  // true when the open hit the session cache
  // Target-path indices in pivot order.
  std::vector<std::int32_t> representatives;
};

// kObserveResult payload (streamed die fed to the session calibrator).
struct ObserveOutcome {
  bool accepted = false;
  std::uint8_t gate = 0;    // core::StreamGate underlying value
  std::uint8_t health = 0;  // core::PredictorHealth underlying value
  bool drift_flagged = false;
  double drift_score = 0.0;
  double guardband = 0.0;
  std::vector<double> predicted;
};

struct Frame {
  MsgType type = MsgType::kError;
  std::uint32_t seq = 0;
  std::string payload;
};

enum class FrameReadStatus {
  kOk,
  kEof,        // clean close between frames, or peer died mid-frame
  kMalformed,  // header arrived but violates the framing rules
  kTooLarge,   // declared length above kMaxFrameLen
};

// ---- primitive append helpers (little-endian) ----
void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_f64(std::string& out, double v);
void put_string(std::string& out, std::string_view s);  // u32 len + bytes
void put_f64_span(std::string& out, const std::vector<double>& v);

// Bounds-checked payload reader; every get_* returns false once the cursor
// ran out (and from then on — callers may chain and check once).
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}
  bool get_u8(std::uint8_t& v);
  bool get_u32(std::uint32_t& v);
  bool get_f64(double& v);
  bool get_string(std::string& v, std::uint32_t max_len);
  bool get_f64_vector(std::vector<double>& v, std::uint32_t max_count);
  bool get_bytes(std::string& v, std::size_t n);
  bool exhausted() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- frame IO ----
void append_frame(std::string& out, MsgType type, std::uint32_t seq,
                  std::string_view payload);
// append_frame specialised for an f64-vector payload: encodes straight into
// `out` with no intermediate payload string (the predict hot path).
void append_f64_vector_frame(std::string& out, MsgType type, std::uint32_t seq,
                             const std::vector<double>& v);
bool send_frame(int fd, MsgType type, std::uint32_t seq,
                std::string_view payload);
FrameReadStatus read_frame(util::BufferedReader& in, Frame& out);
// True when read_frame would return without blocking: a complete frame (or
// a framing violation it would reject immediately) is already buffered.
// Strands use this to batch response writes — flush accumulated output
// only before a read that could actually block.
bool has_complete_buffered_frame(const util::BufferedReader& in);

// ---- per-message payload codecs ----
std::string encode_open_session(const SessionConfig& cfg);
bool decode_open_session(std::string_view payload, SessionConfig& cfg);

std::string encode_session_info(const SessionInfo& info);
bool decode_session_info(std::string_view payload, SessionInfo& info);

// kPredict / kObserve requests: session id + one die's measurement vector
// (+ optional per-slot validity mask for observe).
std::string encode_predict(std::uint32_t session,
                           const std::vector<double>& measured);
bool decode_predict(std::string_view payload, std::uint32_t& session,
                    std::vector<double>& measured);

std::string encode_observe(std::uint32_t session,
                           const std::vector<double>& measured,
                           const std::vector<std::uint8_t>& valid);
bool decode_observe(std::string_view payload, std::uint32_t& session,
                    std::vector<double>& measured,
                    std::vector<std::uint8_t>& valid);

std::string encode_f64_vector(const std::vector<double>& v);
bool decode_f64_vector(std::string_view payload, std::vector<double>& v);

std::string encode_observe_outcome(const ObserveOutcome& o);
bool decode_observe_outcome(std::string_view payload, ObserveOutcome& o);

std::string encode_error(ErrorCode code, std::string_view message);
bool decode_error(std::string_view payload, ErrorCode& code,
                  std::string& message);

}  // namespace repro::server
