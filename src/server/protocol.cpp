#include "server/protocol.h"

#include <bit>
#include <cstring>

namespace repro::server {
namespace {

// Sanity caps for decoded element counts; each is far above anything the
// pipeline produces but keeps a hostile frame from requesting a huge
// allocation before the payload-length check can catch it.
constexpr std::uint32_t kMaxVectorElems = 1u << 20;
constexpr std::uint32_t kMaxStringLen = 1u << 20;

std::uint32_t load_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kBadMagic:
      return "bad-magic";
    case ErrorCode::kFrameTooLarge:
      return "frame-too-large";
    case ErrorCode::kBadFrame:
      return "bad-frame";
    case ErrorCode::kUnknownType:
      return "unknown-type";
    case ErrorCode::kUnknownSession:
      return "unknown-session";
    case ErrorCode::kBadRequest:
      return "bad-request";
    case ErrorCode::kShuttingDown:
      return "shutting-down";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown-error";
}

std::string SessionConfig::cache_key() const {
  // Field order is fixed; the key doubles as the binary open payload, so two
  // configs share a session exactly when their open frames are identical.
  return encode_open_session(*this);
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, static_cast<std::uint32_t>(bits & 0xFFFFFFFFu));
  put_u32(out, static_cast<std::uint32_t>(bits >> 32));
}

void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void put_f64_span(std::string& out, const std::vector<double>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  if constexpr (std::endian::native == std::endian::little) {
    // The wire format IS the little-endian in-memory layout: bulk-copy the
    // whole span (the per-element path costs ~8 push_backs per double,
    // which dominated the predict hot path).
    out.append(reinterpret_cast<const char*>(v.data()),
               v.size() * sizeof(double));
  } else {
    for (const double x : v) put_f64(out, x);
  }
}

bool PayloadReader::get_u8(std::uint8_t& v) {
  if (!ok_ || data_.size() - pos_ < 1) {
    ok_ = false;
    return false;
  }
  v = static_cast<std::uint8_t>(data_[pos_]);
  pos_ += 1;
  return true;
}

bool PayloadReader::get_u32(std::uint32_t& v) {
  if (!ok_ || data_.size() - pos_ < 4) {
    ok_ = false;
    return false;
  }
  v = load_u32(reinterpret_cast<const unsigned char*>(data_.data() + pos_));
  pos_ += 4;
  return true;
}

bool PayloadReader::get_f64(double& v) {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  if (!get_u32(lo) || !get_u32(hi)) return false;
  const std::uint64_t bits =
      static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool PayloadReader::get_string(std::string& v, std::uint32_t max_len) {
  std::uint32_t len = 0;
  if (!get_u32(len)) return false;
  if (len > max_len || data_.size() - pos_ < len) {
    ok_ = false;
    return false;
  }
  v.assign(data_.substr(pos_, len));
  pos_ += len;
  return true;
}

bool PayloadReader::get_f64_vector(std::vector<double>& v,
                                   std::uint32_t max_count) {
  std::uint32_t count = 0;
  if (!get_u32(count)) return false;
  if (count > max_count || data_.size() - pos_ < 8u * count) {
    ok_ = false;
    return false;
  }
  v.resize(count);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(v.data(), data_.data() + pos_, 8u * count);
    pos_ += 8u * count;
  } else {
    for (std::uint32_t i = 0; i < count; ++i) {
      if (!get_f64(v[i])) return false;
    }
  }
  return true;
}

bool PayloadReader::get_bytes(std::string& v, std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  v.assign(data_.substr(pos_, n));
  pos_ += n;
  return true;
}

void append_frame(std::string& out, MsgType type, std::uint32_t seq,
                  std::string_view payload) {
  put_u32(out, static_cast<std::uint32_t>(kFrameHeaderTail + payload.size()));
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32(out, seq);
  out.append(payload);
}

void append_f64_vector_frame(std::string& out, MsgType type, std::uint32_t seq,
                             const std::vector<double>& v) {
  const std::size_t payload = 4u + 8u * v.size();
  put_u32(out, static_cast<std::uint32_t>(kFrameHeaderTail + payload));
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32(out, seq);
  put_f64_span(out, v);
}

bool send_frame(int fd, MsgType type, std::uint32_t seq,
                std::string_view payload) {
  std::string wire;
  wire.reserve(4 + kFrameHeaderTail + payload.size());
  append_frame(wire, type, seq, payload);
  return util::send_all(fd, wire.data(), wire.size());
}

FrameReadStatus read_frame(util::BufferedReader& in, Frame& out) {
  unsigned char header[4];
  if (!in.read_exact(header, sizeof(header))) return FrameReadStatus::kEof;
  const std::uint32_t len = load_u32(header);
  if (len > kMaxFrameLen) return FrameReadStatus::kTooLarge;
  if (len < kFrameHeaderTail) return FrameReadStatus::kMalformed;
  unsigned char tail[kFrameHeaderTail];
  if (!in.read_exact(tail, sizeof(tail))) return FrameReadStatus::kEof;
  out.type = static_cast<MsgType>(tail[0]);
  out.seq = load_u32(tail + 1);
  out.payload.resize(len - kFrameHeaderTail);
  if (!out.payload.empty() &&
      !in.read_exact(out.payload.data(), out.payload.size())) {
    return FrameReadStatus::kEof;
  }
  return FrameReadStatus::kOk;
}

bool has_complete_buffered_frame(const util::BufferedReader& in) {
  unsigned char header[4];
  if (!in.peek_buffered(header, sizeof(header))) return false;
  const std::uint32_t len = load_u32(header);
  // A violating length makes read_frame fail without reading the body, so
  // it too is "ready" — the caller must not block before handling it.
  if (len > kMaxFrameLen || len < kFrameHeaderTail) return true;
  return in.buffered() >= sizeof(header) + len;
}

std::string encode_open_session(const SessionConfig& cfg) {
  std::string p;
  put_string(p, cfg.benchmark);
  put_f64(p, cfg.epsilon);
  put_f64(p, cfg.kappa);
  put_u8(p, cfg.strategy);
  put_u32(p, cfg.min_r);
  put_u32(p, cfg.max_target_paths);
  put_u32(p, cfg.max_candidates);
  put_u32(p, cfg.yield_samples);
  put_u32(p, cfg.num_shards);
  return p;
}

bool decode_open_session(std::string_view payload, SessionConfig& cfg) {
  PayloadReader r(payload);
  r.get_string(cfg.benchmark, 256);
  r.get_f64(cfg.epsilon);
  r.get_f64(cfg.kappa);
  r.get_u8(cfg.strategy);
  r.get_u32(cfg.min_r);
  r.get_u32(cfg.max_target_paths);
  r.get_u32(cfg.max_candidates);
  r.get_u32(cfg.yield_samples);
  r.get_u32(cfg.num_shards);
  return r.exhausted();
}

std::string encode_session_info(const SessionInfo& info) {
  std::string p;
  put_u32(p, info.session);
  put_u32(p, info.rank);
  put_u32(p, info.n_meas);
  put_u32(p, info.n_rem);
  put_f64(p, info.eps_r);
  put_u8(p, info.cached ? 1 : 0);
  put_u32(p, static_cast<std::uint32_t>(info.representatives.size()));
  for (const std::int32_t idx : info.representatives) {
    put_u32(p, static_cast<std::uint32_t>(idx));
  }
  return p;
}

bool decode_session_info(std::string_view payload, SessionInfo& info) {
  PayloadReader r(payload);
  r.get_u32(info.session);
  r.get_u32(info.rank);
  r.get_u32(info.n_meas);
  r.get_u32(info.n_rem);
  r.get_f64(info.eps_r);
  std::uint8_t cached = 0;
  r.get_u8(cached);
  info.cached = cached != 0;
  std::uint32_t count = 0;
  if (!r.get_u32(count) || count > kMaxVectorElems) return false;
  info.representatives.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t v = 0;
    if (!r.get_u32(v)) return false;
    info.representatives[i] = static_cast<std::int32_t>(v);
  }
  return r.exhausted();
}

std::string encode_predict(std::uint32_t session,
                           const std::vector<double>& measured) {
  std::string p;
  put_u32(p, session);
  put_f64_span(p, measured);
  return p;
}

bool decode_predict(std::string_view payload, std::uint32_t& session,
                    std::vector<double>& measured) {
  PayloadReader r(payload);
  r.get_u32(session);
  r.get_f64_vector(measured, kMaxVectorElems);
  return r.exhausted();
}

std::string encode_observe(std::uint32_t session,
                           const std::vector<double>& measured,
                           const std::vector<std::uint8_t>& valid) {
  std::string p;
  put_u32(p, session);
  put_f64_span(p, measured);
  put_u32(p, static_cast<std::uint32_t>(valid.size()));
  for (const std::uint8_t v : valid) put_u8(p, v);
  return p;
}

bool decode_observe(std::string_view payload, std::uint32_t& session,
                    std::vector<double>& measured,
                    std::vector<std::uint8_t>& valid) {
  PayloadReader r(payload);
  r.get_u32(session);
  r.get_f64_vector(measured, kMaxVectorElems);
  std::uint32_t count = 0;
  if (!r.get_u32(count) || count > kMaxVectorElems) return false;
  valid.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!r.get_u8(valid[i])) return false;
  }
  return r.exhausted();
}

std::string encode_f64_vector(const std::vector<double>& v) {
  std::string p;
  put_f64_span(p, v);
  return p;
}

bool decode_f64_vector(std::string_view payload, std::vector<double>& v) {
  PayloadReader r(payload);
  r.get_f64_vector(v, kMaxVectorElems);
  return r.exhausted();
}

std::string encode_observe_outcome(const ObserveOutcome& o) {
  std::string p;
  put_u8(p, o.accepted ? 1 : 0);
  put_u8(p, o.gate);
  put_u8(p, o.health);
  put_u8(p, o.drift_flagged ? 1 : 0);
  put_f64(p, o.drift_score);
  put_f64(p, o.guardband);
  put_f64_span(p, o.predicted);
  return p;
}

bool decode_observe_outcome(std::string_view payload, ObserveOutcome& o) {
  PayloadReader r(payload);
  std::uint8_t accepted = 0;
  std::uint8_t drift = 0;
  r.get_u8(accepted);
  r.get_u8(o.gate);
  r.get_u8(o.health);
  r.get_u8(drift);
  r.get_f64(o.drift_score);
  r.get_f64(o.guardband);
  r.get_f64_vector(o.predicted, kMaxVectorElems);
  o.accepted = accepted != 0;
  o.drift_flagged = drift != 0;
  return r.exhausted();
}

std::string encode_error(ErrorCode code, std::string_view message) {
  std::string p;
  put_u32(p, static_cast<std::uint32_t>(code));
  put_string(p, message);
  return p;
}

bool decode_error(std::string_view payload, ErrorCode& code,
                  std::string& message) {
  PayloadReader r(payload);
  std::uint32_t c = 0;
  r.get_u32(c);
  r.get_string(message, kMaxStringLen);
  code = static_cast<ErrorCode>(c);
  return r.exhausted();
}

}  // namespace repro::server
