// Blocking binary-protocol client for the selection service.
//
// One Client per connection; calls are synchronous request/response (the
// server strand answers FIFO), except the send_predict / recv_predict pair,
// which pipelines: the bench keeps several predicts in flight per
// connection so concurrent clients fill the server's predict panels.
//
// Transport errors (peer gone) return false with last_error() ==
// kInternal/"connection lost"; protocol errors return false with the
// server's structured code and message.  Nothing here throws.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "util/socket.h"

namespace repro::server {

class Client {
 public:
  Client() = default;

  // Connects to the daemon's AF_UNIX socket and sends the binary preamble.
  bool connect(const std::string& path);
  // Adopts an already-connected fd (socketpair tests) and sends the
  // preamble.
  bool adopt(util::Fd fd);
  bool connected() const { return fd_.valid(); }
  void close() {
    fd_.reset();
    reader_.reset();
    pipeline_buf_.clear();
  }

  bool open_session(const SessionConfig& cfg, SessionInfo& info);
  bool predict(std::uint32_t session, const std::vector<double>& measured,
               std::vector<double>& predicted);
  bool observe(std::uint32_t session, const std::vector<double>& measured,
               const std::vector<std::uint8_t>& valid, ObserveOutcome& out);
  bool session_info(std::uint32_t session, SessionInfo& info);
  bool metrics(std::string& json);
  bool ping();
  // Asks the server to drain and exit; true once the ack arrived.
  bool shutdown_server();

  // Pipelined predicts: queue with send_predict (each gets a fresh seq,
  // returned through `seq`), then collect each response with recv_predict.
  // Responses arrive in request order on one connection.  Queued requests
  // are buffered and written in bursts (flushed once the buffer passes a
  // socket-buffer-sized threshold, at the first recv_predict, or before
  // any synchronous call), so a long pipeline costs a handful of send
  // syscalls instead of one per request; a send failure therefore may
  // surface at the flush rather than at the send_predict that queued it.
  bool send_predict(std::uint32_t session, const std::vector<double>& measured,
                    std::uint32_t& seq);
  bool recv_predict(std::vector<double>& predicted, std::uint32_t& seq);

  ErrorCode last_error() const { return last_error_; }
  const std::string& last_error_message() const { return last_error_message_; }

 private:
  bool send_preamble();
  bool roundtrip(MsgType request, std::string_view payload, MsgType expected,
                 Frame& response);
  bool read_expected(MsgType expected, Frame& response);
  bool flush_pipeline();
  void set_transport_error();

  util::Fd fd_;
  std::unique_ptr<util::BufferedReader> reader_;
  std::string pipeline_buf_;
  std::uint32_t next_seq_ = 1;
  ErrorCode last_error_ = ErrorCode::kInternal;
  std::string last_error_message_;
};

}  // namespace repro::server
