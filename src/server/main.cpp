// selection_serverd: the selection-as-a-service daemon.
//
// Usage: selection_serverd [--max-pool-paths N] [--max-shards N] [socket-path]
//        default socket: /tmp/repro_selection.sock
//
// --max-pool-paths / --max-shards tighten the open_session admission
// ceilings (oversized requests get a structured kBadRequest instead of an
// out-of-memory build); defaults are the protocol-level hard caps.
//
// Serves the binary protocol and the JSON-lines debugging front end on one
// AF_UNIX socket (src/server/protocol.h).  SIGINT/SIGTERM, or a client
// shutdown request, drain in-flight requests and exit cleanly.  The
// readiness line on stdout ("listening on ...") is what the CI smoke job
// waits for.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "server/server.h"

namespace {

repro::server::Server* g_server = nullptr;

// request_shutdown is an atomic store plus a shutdown(2) on the listener:
// async-signal-safe.
void handle_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  // A daemon must never die through std::terminate: report and exit
  // nonzero so supervisors see a failure, not an abort.
  try {
    std::string path = "/tmp/repro_selection.sock";
    repro::server::ServerOptions options;
    bool bad_usage = false;
    bool want_help = false;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        want_help = true;
      } else if (arg == "--max-pool-paths" || arg == "--max-shards") {
        if (i + 1 >= argc) {
          bad_usage = true;
          break;
        }
        char* end = nullptr;
        const unsigned long v = std::strtoul(argv[++i], &end, 10);
        if (end == nullptr || *end != '\0' || v == 0 || v > (1ul << 20)) {
          bad_usage = true;
          break;
        }
        if (arg == "--max-pool-paths") {
          options.max_pool_paths = static_cast<std::uint32_t>(v);
        } else {
          options.max_shards = static_cast<std::uint32_t>(v);
        }
      } else {
        positional.push_back(arg);
      }
    }
    if (positional.size() > 1) bad_usage = true;
    if (!positional.empty()) path = positional.front();
    if (bad_usage || want_help) {
      std::fprintf(stderr,
                   "usage: selection_serverd [--max-pool-paths N] "
                   "[--max-shards N] [socket-path]\n");
      return bad_usage ? 2 : 0;
    }

    repro::server::Server server(options);
    if (!server.listen(path)) {
      std::fprintf(stderr, "selection_serverd: cannot listen on %s: %s\n",
                   path.c_str(), std::strerror(errno));
      return 1;
    }
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    std::printf("selection_serverd: listening on %s\n", path.c_str());
    std::fflush(stdout);
    server.run();
    g_server = nullptr;
    std::printf("selection_serverd: drained, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selection_serverd: fatal: %s\n", e.what());
    return 1;
  }
}
