// selection_serverd: the selection-as-a-service daemon.
//
// Usage: selection_serverd [socket-path]
//        default socket: /tmp/repro_selection.sock
//
// Serves the binary protocol and the JSON-lines debugging front end on one
// AF_UNIX socket (src/server/protocol.h).  SIGINT/SIGTERM, or a client
// shutdown request, drain in-flight requests and exit cleanly.  The
// readiness line on stdout ("listening on ...") is what the CI smoke job
// waits for.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "server/server.h"

namespace {

repro::server::Server* g_server = nullptr;

// request_shutdown is an atomic store plus a shutdown(2) on the listener:
// async-signal-safe.
void handle_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  // A daemon must never die through std::terminate: report and exit
  // nonzero so supervisors see a failure, not an abort.
  try {
    std::string path = "/tmp/repro_selection.sock";
    if (argc > 1) path = argv[1];
    if (argc > 2 || path == "--help" || path == "-h") {
      std::fprintf(stderr, "usage: selection_serverd [socket-path]\n");
      return argc > 2 ? 2 : 0;
    }

    repro::server::Server server;
    if (!server.listen(path)) {
      std::fprintf(stderr, "selection_serverd: cannot listen on %s: %s\n",
                   path.c_str(), std::strerror(errno));
      return 1;
    }
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    std::printf("selection_serverd: listening on %s\n", path.c_str());
    std::fflush(stdout);
    server.run();
    g_server = nullptr;
    std::printf("selection_serverd: drained, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selection_serverd: fatal: %s\n", e.what());
    return 1;
  }
}
