// Server-side session state: one fully-built selection pipeline per distinct
// SessionConfig, shared across every connection that asks for it.
//
// A session is the expensive part of the service — circuit generation, STA,
// candidate enumeration, the Gram matrix, the Algorithm-1/2 selection
// (SubsetSelector memoizes its SVD/pivoted-Cholesky factors and per-r QRCP
// pivot orders), and the Theorem-2 predictor coefficients.  The cache keys
// on SessionConfig::cache_key(), so a repeat open skips ALL of that O(n·r²)
// work: the regression pin is that the second open of an identical config
// leaves `linalg.qr_colpivot.calls` untouched.
//
// Concurrency:
//   * immutable after build: experiment, selector, selection, predictor —
//     predict traffic reads them lock-free;
//   * the StreamingCalibrator is order-dependent state, serialized by
//     stream_mu (observe is the slow per-die path; contention is fine);
//   * concurrent predict calls go through the PredictBatcher, which gathers
//     whatever is queued while the current leader computes into one panel
//     answered by core::predict_panel (the multi-RHS path).  Batched
//     results are bit-identical to per-die serial predicts by that
//     function's contract, so batching is invisible to clients.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/benchmarks.h"
#include "core/path_selection.h"
#include "core/predictor.h"
#include "core/streaming_calibrator.h"
#include "core/subset_select.h"
#include "server/protocol.h"

namespace repro::server {

class Session;

// Gathers concurrent predict calls into panels.  Callers block until the
// panel containing their dies is answered; the first caller to find no
// active leader becomes the leader, drains the queue into a panel, runs
// core::predict_panel (parallel inside via the shared thread pool), and
// wakes the gathered callers.  Requests arriving while a leader computes
// form the next panel — under load the mean panel size grows with
// concurrency, and each coef row then streams from memory once per panel
// instead of once per die.
//
// A caller may submit a whole BLOCK of dies at once (a pipelined run read
// off one connection): the block rides the queue as a unit, costs one
// wait/wakeup regardless of its row count, and its rows keep their order
// inside the panel.
class PredictBatcher {
 public:
  explicit PredictBatcher(const core::LinearPredictor* predictor)
      : predictor_(predictor) {}

  // Blocks until this die's row is computed.  `measured` must have exactly
  // n_meas entries (the server validates before calling).  Returns false
  // only if the panel compute threw (`out` is then untouched).
  bool predict(const std::vector<double>& measured, std::vector<double>& out);

  // Same, for a block of dies; outs[i] answers rows[i].  Every row must
  // have exactly n_meas entries.
  bool predict_block(const std::vector<std::vector<double>>& rows,
                     std::vector<std::vector<double>>& outs);

  // Panels answered so far / dies gathered (telemetry mirrors; readable
  // without locking the batcher).
  std::uint64_t panels() const;
  std::uint64_t dies() const;

 private:
  struct Pending {
    const std::vector<std::vector<double>>* ins = nullptr;
    std::vector<std::vector<double>>* outs = nullptr;
    bool done = false;
    bool failed = false;
  };

  const core::LinearPredictor* predictor_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending*> queue_;
  bool leader_active_ = false;
  std::uint64_t panels_ = 0;
  std::uint64_t dies_ = 0;
};

class Session {
 public:
  std::uint32_t id = 0;
  SessionConfig config;

  // Immutable after build.
  std::unique_ptr<core::Experiment> experiment;
  std::unique_ptr<core::SubsetSelector> selector;
  core::PathSelectionResult selection;
  core::LinearPredictor predictor;

  // Streamed-die state; hold stream_mu for calibrator access.  next_die is
  // the global die index of the next observe (the stream is one sequence
  // per session, however many connections feed it).
  std::unique_ptr<core::StreamingCalibrator> calibrator;
  std::size_t next_die = 0;
  std::mutex stream_mu;

  std::unique_ptr<PredictBatcher> batcher;

  SessionInfo info(bool cached) const;
};

// Builds the full pipeline for `cfg`.  Throws std::runtime_error (wrapping
// whatever the pipeline threw) on failure; the server maps that to a
// kInternal protocol error.
std::shared_ptr<Session> build_session(const SessionConfig& cfg,
                                       std::uint32_t id);

// Config-keyed session cache with single-flight builds: concurrent opens of
// the same config block on ONE build; losers (and later opens) share the
// built session and report cached=true.
class SessionCache {
 public:
  // Returns the session for cfg, building on a miss.  `was_cached` reports
  // whether this open reused an existing (or concurrently-built) session.
  // Propagates build exceptions; a failed build leaves no cache entry, so a
  // later open retries.
  std::shared_ptr<Session> open(const SessionConfig& cfg, bool& was_cached);

  // Session by id; nullptr when unknown.
  std::shared_ptr<Session> find(std::uint32_t id) const;

  std::size_t size() const;

 private:
  struct Entry {
    std::mutex build_mu;  // single-flight latch
    std::shared_ptr<Session> session;  // set once, under build_mu
  };

  mutable std::mutex mu_;
  std::uint32_t next_id_ = 1;
  std::map<std::string, std::shared_ptr<Entry>> by_key_;
  std::map<std::uint32_t, std::shared_ptr<Session>> by_id_;
};

}  // namespace repro::server
