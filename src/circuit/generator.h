// Synthetic benchmark-circuit generator.
//
// The paper's experiments run on ISCAS'89 netlists synthesized with a TSMC
// 90 nm library.  Neither artifact is redistributable, so this module
// generates layered, reconvergent DAGs with the published per-benchmark
// scale (gate / input / output / register counts and logic depth taken from
// the ISCAS'89 suite).  The generator is deterministic per benchmark name.
//
// What matters for the paper's algorithms is that many statistically
// critical paths share segments (that is what makes rank(A) and the
// effective rank small relative to the path count); the generator achieves
// this with a tapering level-width profile and fanin selection biased toward
// adjacent levels, which yields deep trunks shared by many launch-to-capture
// paths, as in the funnel-shaped critical cones of real synthesized logic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace repro::circuit {

struct GeneratorConfig {
  std::string name = "synthetic";
  std::size_t num_inputs = 16;    // launch points (PIs + DFF outputs)
  std::size_t num_outputs = 16;   // capture points (POs + DFF inputs)
  std::size_t num_gates = 500;    // combinational gates
  std::size_t depth = 20;         // target logic depth (levels of gates)
  // Fraction [0,1): how strongly fanins prefer the immediately previous
  // level.  Higher values create long chains; lower values create shallow,
  // bushy logic.
  double locality = 0.75;
  // Level-width taper: width(last level) / width(first level).  < 1 gives a
  // funnel toward the outputs (more segment sharing among critical paths).
  double taper = 0.35;
  std::uint64_t seed = 1;
};

// ISCAS'89-style named configurations (s1196 ... s38584) with the published
// sizes.  Throws for unknown names.  `known_benchmarks()` lists them in the
// order used by the paper's tables.
GeneratorConfig benchmark_config(const std::string& name);
std::vector<std::string> known_benchmarks();

Netlist generate(const GeneratorConfig& cfg);
// Convenience: generate the named ISCAS'89-scale benchmark.
Netlist generate_benchmark(const std::string& name);

}  // namespace repro::circuit
