#include "circuit/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace repro::circuit {
namespace {

// Published ISCAS'89 sizes: primary inputs/outputs, flip-flops, gates, and
// (approximate) logic depth.  Launch points = PI + FF, captures = PO + FF.
struct IscasSize {
  const char* name;
  int pi, po, ff, gates, depth;
};

constexpr IscasSize kIscas[] = {
    {"s1196", 14, 14, 18, 529, 24},   {"s1423", 17, 5, 74, 657, 59},
    {"s1488", 8, 19, 6, 653, 17},     {"s5378", 35, 49, 179, 2779, 25},
    {"s9234", 36, 39, 211, 5597, 38}, {"s13207", 62, 152, 638, 7951, 32},
    {"s15850", 77, 150, 534, 9772, 44}, {"s35932", 35, 320, 1728, 16065, 29},
    {"s38417", 28, 106, 1636, 22179, 33}, {"s38584", 38, 304, 1426, 19253, 31},
};

}  // namespace

GeneratorConfig benchmark_config(const std::string& name) {
  for (const IscasSize& s : kIscas) {
    if (name == s.name) {
      GeneratorConfig cfg;
      cfg.name = s.name;
      cfg.num_inputs = static_cast<std::size_t>(s.pi + s.ff);
      cfg.num_outputs = static_cast<std::size_t>(s.po + s.ff);
      cfg.num_gates = static_cast<std::size_t>(s.gates);
      cfg.depth = static_cast<std::size_t>(s.depth);
      cfg.seed = util::Rng::seed_from(name);
      return cfg;
    }
  }
  throw std::invalid_argument("unknown benchmark: " + name);
}

std::vector<std::string> known_benchmarks() {
  std::vector<std::string> out;
  for (const IscasSize& s : kIscas) out.emplace_back(s.name);
  return out;
}

Netlist generate(const GeneratorConfig& cfg) {
  if (cfg.depth < 2 || cfg.num_gates < cfg.depth ||
      cfg.num_inputs == 0 || cfg.num_outputs == 0) {
    throw std::invalid_argument("generate: degenerate configuration");
  }
  util::Rng rng(cfg.seed);
  Netlist nl(cfg.name);

  // --- Level widths: linear taper from w0 down to w0 * taper, normalized to
  // sum to num_gates. ---
  const std::size_t levels = cfg.depth;
  std::vector<double> raw(levels);
  for (std::size_t l = 0; l < levels; ++l) {
    const double t = levels == 1 ? 0.0
                                 : static_cast<double>(l) /
                                       static_cast<double>(levels - 1);
    raw[l] = 1.0 + (cfg.taper - 1.0) * t;
  }
  double raw_sum = 0.0;
  for (double w : raw) raw_sum += w;
  std::vector<std::size_t> width(levels);
  std::size_t assigned = 0;
  for (std::size_t l = 0; l < levels; ++l) {
    width[l] = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(
               raw[l] / raw_sum * static_cast<double>(cfg.num_gates))));
    assigned += width[l];
  }
  // Distribute the rounding remainder (or trim) front-to-back.
  std::size_t l = 0;
  while (assigned < cfg.num_gates) {
    ++width[l % levels];
    ++assigned;
    ++l;
  }
  while (assigned > cfg.num_gates) {
    const std::size_t idx = l % levels;
    if (width[idx] > 1) {
      --width[idx];
      --assigned;
    }
    ++l;
  }

  // --- Create gates ---
  std::vector<GateId> prev_levels_flat;  // all gates in levels < current
  std::vector<std::size_t> level_start;  // index into prev_levels_flat
  std::vector<GateId> inputs;
  inputs.reserve(cfg.num_inputs);
  for (std::size_t i = 0; i < cfg.num_inputs; ++i) {
    inputs.push_back(nl.add_gate("in" + std::to_string(i), GateType::kInput));
  }
  level_start.push_back(0);
  prev_levels_flat.insert(prev_levels_flat.end(), inputs.begin(), inputs.end());
  level_start.push_back(prev_levels_flat.size());

  auto pick_fanin_level = [&](std::size_t cur_level) -> std::size_t {
    // Geometric preference for the immediately previous level; cur_level is
    // the index into level_start of the level being built (>= 1).
    std::size_t back = 1;
    while (back < cur_level && rng.uniform() > cfg.locality) ++back;
    return cur_level - back;
  };

  std::vector<GateId> current;
  int gate_counter = 0;
  for (std::size_t lvl = 0; lvl < levels; ++lvl) {
    current.clear();
    for (std::size_t k = 0; k < width[lvl]; ++k) {
      // Fanin count: mostly 2-input gates, some 1- and 3-input.
      const double u = rng.uniform();
      const std::size_t nin = (u < 0.22) ? 1 : (u < 0.88) ? 2 : 3;
      GateType type;
      if (nin == 1) {
        type = rng.uniform() < 0.7 ? GateType::kNot : GateType::kBuf;
      } else {
        const double v = rng.uniform();
        if (v < 0.35) type = GateType::kNand;
        else if (v < 0.60) type = GateType::kNor;
        else if (v < 0.75) type = GateType::kAnd;
        else if (v < 0.90) type = GateType::kOr;
        else type = (nin == 2 && rng.uniform() < 0.5) ? GateType::kXor
                                                      : GateType::kXnor;
      }
      const GateId g =
          nl.add_gate("g" + std::to_string(gate_counter++), type);
      // Choose distinct fanins.
      std::vector<GateId> chosen;
      const std::size_t cur_level_index = lvl + 1;  // into level_start
      for (std::size_t f = 0; f < nin; ++f) {
        GateId cand = kInvalidGate;
        for (int attempt = 0; attempt < 8; ++attempt) {
          const std::size_t src_level = pick_fanin_level(cur_level_index);
          const std::size_t b = level_start[src_level];
          const std::size_t e = level_start[src_level + 1];
          cand = prev_levels_flat[b + rng.uniform_index(e - b)];
          if (std::find(chosen.begin(), chosen.end(), cand) == chosen.end()) {
            break;
          }
          cand = kInvalidGate;
        }
        if (cand != kInvalidGate) chosen.push_back(cand);
      }
      if (chosen.empty()) {
        chosen.push_back(
            prev_levels_flat[rng.uniform_index(prev_levels_flat.size())]);
      }
      for (GateId d : chosen) nl.connect(d, g);
      current.push_back(g);
    }
    prev_levels_flat.insert(prev_levels_flat.end(), current.begin(),
                            current.end());
    level_start.push_back(prev_levels_flat.size());
  }

  // --- Wire dangling gates forward so (almost) every gate reaches a capture
  // point: any gate without fanout either feeds a capture point directly or
  // becomes an extra fanin of a random later gate. ---
  std::vector<GateId> dangling;
  for (const Gate& g : nl.gates()) {
    if (is_combinational(g.type) && g.fanout.empty()) {
      dangling.push_back(*nl.find(g.name));
    }
  }
  // Capture points: prefer the deepest dangling gates, then fill with random
  // deep gates until num_outputs is reached.
  std::sort(dangling.begin(), dangling.end());  // ids grow with level
  std::vector<GateId> capture_drivers;
  for (auto it = dangling.rbegin();
       it != dangling.rend() &&
       capture_drivers.size() < cfg.num_outputs;
       ++it) {
    capture_drivers.push_back(*it);
  }
  // Remaining dangling gates become extra fanins of later gates (max arity 4).
  for (GateId id : dangling) {
    if (std::find(capture_drivers.begin(), capture_drivers.end(), id) !=
        capture_drivers.end()) {
      continue;
    }
    // Find a later gate to absorb this signal.
    bool wired = false;
    for (int attempt = 0; attempt < 16 && !wired; ++attempt) {
      const GateId tgt = static_cast<GateId>(
          rng.uniform_index(nl.size()));
      const Gate& tg = nl.gate(tgt);
      if (tgt > id && is_combinational(tg.type) && tg.fanin.size() < 4 &&
          tg.type != GateType::kNot && tg.type != GateType::kBuf) {
        nl.connect(id, tgt);
        wired = true;
      }
    }
    if (!wired) capture_drivers.push_back(id);
  }
  std::size_t attempts = 0;
  while (capture_drivers.size() < cfg.num_outputs) {
    // Prefer distinct deep gates; after enough attempts allow a driver to
    // feed several capture points (legal, and common in real netlists).
    const std::size_t deep_begin = level_start[levels / 2];
    const GateId cand = prev_levels_flat[deep_begin + rng.uniform_index(
                                             prev_levels_flat.size() -
                                             deep_begin)];
    const bool fresh =
        std::find(capture_drivers.begin(), capture_drivers.end(), cand) ==
        capture_drivers.end();
    if (is_combinational(nl.gate(cand).type) &&
        (fresh || attempts > 4 * cfg.num_outputs)) {
      capture_drivers.push_back(cand);
    }
    ++attempts;
  }
  int po_counter = 0;
  for (GateId drv : capture_drivers) {
    const GateId po =
        nl.add_gate("out" + std::to_string(po_counter++), GateType::kOutput);
    nl.connect(drv, po);
  }
  return nl;
}

Netlist generate_benchmark(const std::string& name) {
  return generate(benchmark_config(name));
}

}  // namespace repro::circuit
