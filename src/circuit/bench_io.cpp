#include "circuit/bench_io.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/text.h"

namespace repro::circuit {
namespace {

struct ParsedLine {
  enum class Kind { kInput, kOutput, kAssign } kind;
  std::string target;             // signal being defined / declared
  GateType type = GateType::kBuf; // for assignments
  std::vector<std::string> args;  // fanin signal names
};

// Parses one nonempty, non-comment line; on failure fills *error and returns
// false so the caller can record a diagnostic and keep going.
bool parse_line(const std::string& raw, ParsedLine* out, std::string* error) {
  const std::string line = util::trim(raw);
  auto fail = [&](const std::string& msg) {
    *error = msg + ": " + line;
    return false;
  };

  const auto open = line.find('(');
  const auto eq = line.find('=');
  if (eq == std::string::npos) {
    // INPUT(x) or OUTPUT(x)
    const auto close = line.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      return fail("malformed declaration");
    }
    const std::string head = util::to_lower(util::trim(line.substr(0, open)));
    const std::string arg = util::trim(line.substr(open + 1, close - open - 1));
    if (arg.empty()) return fail("empty signal name");
    if (head == "input") {
      *out = {ParsedLine::Kind::kInput, arg, {}, {}};
      return true;
    }
    if (head == "output") {
      *out = {ParsedLine::Kind::kOutput, arg, {}, {}};
      return true;
    }
    return fail("unknown declaration");
  }

  // target = FUNC(a, b, ...)
  const std::string target = util::trim(line.substr(0, eq));
  const auto fopen = line.find('(', eq);
  const auto fclose = line.rfind(')');
  if (target.empty() || fopen == std::string::npos ||
      fclose == std::string::npos || fclose < fopen) {
    return fail("malformed assignment");
  }
  const std::string func = util::trim(line.substr(eq + 1, fopen - eq - 1));
  *out = {ParsedLine::Kind::kAssign, target, GateType::kBuf, {}};
  try {
    out->type = gate_type_from_name(func);
  } catch (const std::exception&) {
    return fail("unknown gate function '" + func + "'");
  }
  for (const std::string& piece :
       util::split(line.substr(fopen + 1, fclose - fopen - 1), ',')) {
    const std::string arg = util::trim(piece);
    if (arg.empty()) return fail("empty fanin name");
    out->args.push_back(arg);
  }
  if (out->args.empty()) return fail("gate with no fanin");
  if (out->type == GateType::kDff && out->args.size() != 1) {
    return fail("DFF must have exactly one input");
  }
  if ((out->type == GateType::kNot || out->type == GateType::kBuf) &&
      out->args.size() != 1) {
    return fail("single-input gate with multiple fanins");
  }
  return true;
}

}  // namespace

BenchParseResult parse_bench(std::istream& in, std::string name) {
  BenchParseResult res;
  res.netlist = Netlist(std::move(name));
  Netlist& nl = res.netlist;
  auto diag = [&](int line, std::string msg) {
    res.diagnostics.push_back({line, std::move(msg)});
  };

  std::vector<std::pair<int, ParsedLine>> lines;
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string t = util::trim(raw);
    if (t.empty() || t[0] == '#') continue;
    ParsedLine pl;
    std::string error;
    if (parse_line(t, &pl, &error)) {
      lines.emplace_back(lineno, std::move(pl));
    } else {
      diag(lineno, std::move(error));
    }
  }

  // Pass 1: create driver gates for every signal; duplicate definitions keep
  // the first occurrence.
  std::vector<char> applied(lines.size(), 1);
  for (std::size_t k = 0; k < lines.size(); ++k) {
    const auto& [line, pl] = lines[k];
    if (pl.kind == ParsedLine::Kind::kOutput) continue;  // wired in pass 2
    if (nl.find(pl.target)) {
      diag(line, "duplicate signal '" + pl.target + "'");
      applied[k] = 0;
      continue;
    }
    // A DFF's Q pin is a launch point carrying the signal name.
    const GateType type =
        (pl.kind == ParsedLine::Kind::kInput || pl.type == GateType::kDff)
            ? GateType::kInput
            : pl.type;
    nl.add_gate(pl.target, type);
  }
  // Pass 2: connect fanins; create capture gates for POs and DFF D-pins.
  // Unresolvable signals skip just the affected connection.
  auto resolve = [&](int line, const std::string& sig)
      -> std::optional<GateId> {
    const auto id = nl.find(sig);
    if (!id) diag(line, "undefined signal '" + sig + "'");
    return id;
  };
  for (std::size_t k = 0; k < lines.size(); ++k) {
    const auto& [line, pl] = lines[k];
    if (!applied[k]) continue;
    switch (pl.kind) {
      case ParsedLine::Kind::kInput:
        break;
      case ParsedLine::Kind::kOutput: {
        const std::string cap = pl.target + "$po";
        if (nl.find(cap)) {
          diag(line, "duplicate output declaration '" + pl.target + "'");
          break;
        }
        if (const auto driver = resolve(line, pl.target)) {
          nl.connect(*driver, nl.add_gate(cap, GateType::kOutput));
        }
        break;
      }
      case ParsedLine::Kind::kAssign:
        if (pl.type == GateType::kDff) {
          if (const auto driver = resolve(line, pl.args.front())) {
            nl.connect(*driver,
                       nl.add_gate(pl.target + "$d", GateType::kOutput));
          }
        } else {
          const auto sink = nl.find(pl.target);
          for (const std::string& arg : pl.args) {
            if (const auto driver = resolve(line, arg)) {
              nl.connect(*driver, *sink);
            }
          }
        }
        break;
    }
  }
  return res;
}

BenchParseResult parse_bench_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return parse_bench(in, std::move(name));
}

Netlist read_bench(std::istream& in, std::string name) {
  BenchParseResult res = parse_bench(in, std::move(name));
  if (!res.ok()) {
    const BenchDiagnostic& d = res.diagnostics.front();
    throw std::runtime_error("bench line " + std::to_string(d.line) + ": " +
                             d.message);
  }
  return std::move(res.netlist);
}

Netlist read_bench_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return read_bench(in, std::move(name));
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bench file: " + path);
  // Derive a short name from the path.
  std::string name = path;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return read_bench(in, std::move(name));
}

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << " (combinational timing view)\n";
  for (GateId id : nl.inputs()) out << "INPUT(" << nl.gate(id).name << ")\n";
  for (GateId id : nl.outputs()) {
    // Capture gates are synthetic; declare the signal they observe.  The
    // reader re-creates a capture gate per OUTPUT declaration, so the graph
    // shape round-trips exactly (names of capture gates are canonicalized).
    const Gate& g = nl.gate(id);
    out << "OUTPUT(" << nl.gate(g.fanin.front()).name << ")\n";
  }
  for (const Gate& g : nl.gates()) {
    if (g.type == GateType::kInput || g.type == GateType::kOutput) continue;
    out << g.name << " = " << gate_type_name(g.type) << "(";
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      out << (i ? ", " : "") << nl.gate(g.fanin[i]).name;
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(os, nl);
  return os.str();
}

}  // namespace repro::circuit
