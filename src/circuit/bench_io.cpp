#include "circuit/bench_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/text.h"

namespace repro::circuit {
namespace {

struct ParsedLine {
  enum class Kind { kInput, kOutput, kAssign } kind;
  std::string target;             // signal being defined / declared
  GateType type = GateType::kBuf; // for assignments
  std::vector<std::string> args;  // fanin signal names
};

// Parses one nonempty, non-comment line.
ParsedLine parse_line(const std::string& raw, int lineno) {
  const std::string line = util::trim(raw);
  auto fail = [&](const std::string& msg) -> ParsedLine {
    throw std::runtime_error("bench line " + std::to_string(lineno) + ": " +
                             msg + ": " + line);
  };

  const auto open = line.find('(');
  const auto eq = line.find('=');
  if (eq == std::string::npos) {
    // INPUT(x) or OUTPUT(x)
    const auto close = line.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      return fail("malformed declaration");
    }
    const std::string head = util::to_lower(util::trim(line.substr(0, open)));
    const std::string arg = util::trim(line.substr(open + 1, close - open - 1));
    if (arg.empty()) return fail("empty signal name");
    if (head == "input") return {ParsedLine::Kind::kInput, arg, {}, {}};
    if (head == "output") return {ParsedLine::Kind::kOutput, arg, {}, {}};
    return fail("unknown declaration");
  }

  // target = FUNC(a, b, ...)
  const std::string target = util::trim(line.substr(0, eq));
  const auto fopen = line.find('(', eq);
  const auto fclose = line.rfind(')');
  if (target.empty() || fopen == std::string::npos ||
      fclose == std::string::npos || fclose < fopen) {
    return fail("malformed assignment");
  }
  const std::string func = util::trim(line.substr(eq + 1, fopen - eq - 1));
  ParsedLine out{ParsedLine::Kind::kAssign, target, GateType::kBuf, {}};
  try {
    out.type = gate_type_from_name(func);
  } catch (const std::exception&) {
    return fail("unknown gate function '" + func + "'");
  }
  for (const std::string& piece :
       util::split(line.substr(fopen + 1, fclose - fopen - 1), ',')) {
    const std::string arg = util::trim(piece);
    if (arg.empty()) return fail("empty fanin name");
    out.args.push_back(arg);
  }
  if (out.args.empty()) return fail("gate with no fanin");
  if (out.type == GateType::kDff && out.args.size() != 1) {
    return fail("DFF must have exactly one input");
  }
  if ((out.type == GateType::kNot || out.type == GateType::kBuf) &&
      out.args.size() != 1) {
    return fail("single-input gate with multiple fanins");
  }
  return out;
}

}  // namespace

Netlist read_bench(std::istream& in, std::string name) {
  std::vector<ParsedLine> lines;
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string t = util::trim(raw);
    if (t.empty() || t[0] == '#') continue;
    lines.push_back(parse_line(t, lineno));
  }

  Netlist nl(std::move(name));
  // Pass 1: create driver gates for every signal.
  for (const ParsedLine& pl : lines) {
    switch (pl.kind) {
      case ParsedLine::Kind::kInput:
        nl.add_gate(pl.target, GateType::kInput);
        break;
      case ParsedLine::Kind::kAssign:
        if (pl.type == GateType::kDff) {
          // Q pin: a launch point carrying the signal name.
          nl.add_gate(pl.target, GateType::kInput);
        } else {
          nl.add_gate(pl.target, pl.type);
        }
        break;
      case ParsedLine::Kind::kOutput:
        break;  // handled in pass 2
    }
  }
  // Pass 2: connect fanins; create capture gates for POs and DFF D-pins.
  auto resolve = [&](const std::string& sig) -> GateId {
    const auto id = nl.find(sig);
    if (!id) throw std::runtime_error("bench: undefined signal '" + sig + "'");
    return *id;
  };
  for (const ParsedLine& pl : lines) {
    switch (pl.kind) {
      case ParsedLine::Kind::kInput:
        break;
      case ParsedLine::Kind::kOutput: {
        const GateId po = nl.add_gate(pl.target + "$po", GateType::kOutput);
        nl.connect(resolve(pl.target), po);
        break;
      }
      case ParsedLine::Kind::kAssign:
        if (pl.type == GateType::kDff) {
          const GateId d = nl.add_gate(pl.target + "$d", GateType::kOutput);
          nl.connect(resolve(pl.args.front()), d);
        } else {
          const GateId sink = resolve(pl.target);
          for (const std::string& arg : pl.args) {
            nl.connect(resolve(arg), sink);
          }
        }
        break;
    }
  }
  return nl;
}

Netlist read_bench_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return read_bench(in, std::move(name));
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bench file: " + path);
  // Derive a short name from the path.
  std::string name = path;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return read_bench(in, std::move(name));
}

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << " (combinational timing view)\n";
  for (GateId id : nl.inputs()) out << "INPUT(" << nl.gate(id).name << ")\n";
  for (GateId id : nl.outputs()) {
    // Capture gates are synthetic; declare the signal they observe.  The
    // reader re-creates a capture gate per OUTPUT declaration, so the graph
    // shape round-trips exactly (names of capture gates are canonicalized).
    const Gate& g = nl.gate(id);
    out << "OUTPUT(" << nl.gate(g.fanin.front()).name << ")\n";
  }
  for (const Gate& g : nl.gates()) {
    if (g.type == GateType::kInput || g.type == GateType::kOutput) continue;
    out << g.name << " = " << gate_type_name(g.type) << "(";
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      out << (i ? ", " : "") << nl.gate(g.fanin[i]).name;
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(os, nl);
  return os.str();
}

}  // namespace repro::circuit
