#include "circuit/gate_library.h"

#include <cmath>
#include <stdexcept>

#include "util/text.h"

namespace repro::circuit {

std::string_view gate_type_name(GateType t) {
  switch (t) {
    case GateType::kInput: return "INPUT";
    case GateType::kOutput: return "OUTPUT";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kDff: return "DFF";
  }
  return "?";
}

GateType gate_type_from_name(std::string_view name) {
  const std::string n = util::to_lower(name);
  if (n == "input") return GateType::kInput;
  if (n == "output") return GateType::kOutput;
  if (n == "buf" || n == "buff") return GateType::kBuf;
  if (n == "not" || n == "inv") return GateType::kNot;
  if (n == "and") return GateType::kAnd;
  if (n == "nand") return GateType::kNand;
  if (n == "or") return GateType::kOr;
  if (n == "nor") return GateType::kNor;
  if (n == "xor") return GateType::kXor;
  if (n == "xnor") return GateType::kXnor;
  if (n == "dff") return GateType::kDff;
  throw std::invalid_argument("unknown gate type: " + std::string(name));
}

bool is_combinational(GateType t) {
  switch (t) {
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return true;
    default:
      return false;
  }
}

GateLibrary::GateLibrary() {
  // Nominal delays loosely follow a 90 nm general-purpose library (tens of
  // picoseconds per stage).  Leff elasticity is near 1 (delay ~ L * V /
  // (V - Vt)^alpha gives dD/D ~ dL/L); Vt elasticity is smaller and grows
  // with stack height.  Exact values are not critical -- only the relative
  // variance budget shapes the experiments.
  auto set = [&](GateType t, CellTiming ct) {
    timings_[static_cast<std::size_t>(t)] = ct;
  };
  set(GateType::kInput, {0.0, 0.0, 0.0, 0.0});
  set(GateType::kOutput, {0.0, 0.0, 0.0, 0.0});
  set(GateType::kBuf, {28.0, 6.0, 1.00, 0.42});
  set(GateType::kNot, {18.0, 5.0, 1.00, 0.40});
  set(GateType::kAnd, {42.0, 7.0, 1.05, 0.48});
  set(GateType::kNand, {30.0, 7.0, 1.05, 0.50});
  set(GateType::kOr, {46.0, 7.5, 1.08, 0.52});
  set(GateType::kNor, {34.0, 7.5, 1.08, 0.55});
  set(GateType::kXor, {58.0, 8.5, 1.12, 0.60});
  set(GateType::kXnor, {60.0, 8.5, 1.12, 0.60});
  set(GateType::kDff, {0.0, 0.0, 0.0, 0.0});
}

const CellTiming& GateLibrary::timing(GateType t) const {
  return timings_[static_cast<std::size_t>(t)];
}

double GateLibrary::nominal_delay_ps(GateType t, std::size_t fanout) const {
  const CellTiming& ct = timing(t);
  if (ct.intrinsic_ps == 0.0) return 0.0;
  // At least one equivalent load even for dangling gates.
  const double fo = static_cast<double>(fanout == 0 ? 1 : fanout);
  return ct.intrinsic_ps + ct.per_fanout_ps * fo;
}

GateLibrary::DelaySigmas GateLibrary::delay_sigmas_ps(GateType t,
                                                      double nominal_ps) const {
  const CellTiming& ct = timing(t);
  DelaySigmas s{};
  // Fractional one-sigma delay change from each physical parameter.
  s.leff = nominal_ps * ct.leff_elasticity * budget_.leff_sigma_rel;
  s.vt = nominal_ps * ct.vt_elasticity * budget_.vt_sigma_rel;
  // Random term: variance is a fixed fraction f of the gate's total variance:
  //   r^2 = f * (l^2 + v^2 + r^2)  =>  r^2 = f/(1-f) * (l^2 + v^2).
  const double f = budget_.random_variance_fraction;
  const double base = s.leff * s.leff + s.vt * s.vt;
  s.random = (f > 0.0 && f < 1.0) ? std::sqrt(f / (1.0 - f) * base) : 0.0;
  return s;
}

}  // namespace repro::circuit
