// Barycentric placement of a netlist into the unit die.
//
// The hierarchical spatial-correlation model assigns gates to quad-tree
// regions by (x, y) position, so connected gates must land near each other
// for within-die correlation to be physically meaningful.  We use the
// classic layered heuristic: x = normalized topological level, y = position
// within the level refined by a few barycenter-ordering sweeps (gates move
// toward the average y of their neighbors), plus deterministic jitter.
#pragma once

#include <cstdint>

#include "circuit/netlist.h"

namespace repro::circuit {

struct PlacementOptions {
  int barycenter_sweeps = 4;
  double jitter = 0.015;  // uniform jitter radius, keeps regions non-degenerate
  std::uint64_t seed = 7;
};

// Fills Gate::x / Gate::y for every gate, in [0, 1).
void place(Netlist& nl, const PlacementOptions& options = {});

}  // namespace repro::circuit
