#include "circuit/netlist.h"

#include <algorithm>
#include <stdexcept>

namespace repro::circuit {

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

GateId Netlist::add_gate(std::string name, GateType type) {
  if (type == GateType::kDff) {
    throw std::invalid_argument(
        "Netlist::add_gate: DFFs must be split into Input/Output pins");
  }
  if (by_name_.contains(name)) {
    throw std::invalid_argument("duplicate gate name: " + name);
  }
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.name = name;
  g.type = type;
  gates_.push_back(std::move(g));
  by_name_.emplace(std::move(name), id);
  if (type == GateType::kInput) inputs_.push_back(id);
  if (type == GateType::kOutput) outputs_.push_back(id);
  return id;
}

void Netlist::connect(GateId driver, GateId sink) {
  if (driver < 0 || sink < 0 || static_cast<std::size_t>(driver) >= gates_.size() ||
      static_cast<std::size_t>(sink) >= gates_.size()) {
    throw std::out_of_range("connect: bad gate id");
  }
  gates_[static_cast<std::size_t>(driver)].fanout.push_back(sink);
  gates_[static_cast<std::size_t>(sink)].fanin.push_back(driver);
}

std::optional<GateId> Netlist::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::size_t Netlist::combinational_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (is_combinational(g.type)) ++n;
  }
  return n;
}

std::vector<GateId> Netlist::topological_order() const {
  std::vector<int> indeg(gates_.size(), 0);
  for (const Gate& g : gates_) {
    for (GateId s : g.fanout) ++indeg[static_cast<std::size_t>(s)];
  }
  std::vector<GateId> order;
  order.reserve(gates_.size());
  std::vector<GateId> ready;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (indeg[i] == 0) ready.push_back(static_cast<GateId>(i));
  }
  while (!ready.empty()) {
    const GateId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (GateId s : gates_[static_cast<std::size_t>(id)].fanout) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  if (order.size() != gates_.size()) {
    throw std::runtime_error("topological_order: netlist has a cycle");
  }
  return order;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.type == GateType::kInput && !g.fanin.empty()) {
      problems.push_back("input " + g.name + " has fanin");
    }
    if (g.type == GateType::kOutput && g.fanin.size() != 1) {
      problems.push_back("output " + g.name + " needs exactly one fanin");
    }
    if (is_combinational(g.type) && g.fanin.empty()) {
      problems.push_back("gate " + g.name + " has no fanin");
    }
    if ((g.type == GateType::kNot || g.type == GateType::kBuf) &&
        g.fanin.size() > 1) {
      problems.push_back("gate " + g.name + " is single-input but has " +
                         std::to_string(g.fanin.size()) + " fanins");
    }
    // Consistency of fanin/fanout cross references.
    for (GateId d : g.fanin) {
      const auto& fo = gates_[static_cast<std::size_t>(d)].fanout;
      if (std::count(fo.begin(), fo.end(), static_cast<GateId>(i)) !=
          std::count(g.fanin.begin(), g.fanin.end(), d)) {
        problems.push_back("inconsistent edge " +
                           gates_[static_cast<std::size_t>(d)].name + " -> " +
                           g.name);
      }
    }
  }
  try {
    (void)topological_order();
  } catch (const std::exception& e) {
    problems.emplace_back(e.what());
  }
  return problems;
}

std::size_t Netlist::depth() const {
  const std::vector<GateId> order = topological_order();
  std::vector<std::size_t> level(gates_.size(), 0);
  std::size_t maxd = 0;
  for (GateId id : order) {
    const Gate& g = gates_[static_cast<std::size_t>(id)];
    std::size_t lvl = 0;
    for (GateId d : g.fanin) {
      lvl = std::max(lvl, level[static_cast<std::size_t>(d)]);
    }
    if (is_combinational(g.type)) lvl += 1;
    level[static_cast<std::size_t>(id)] = lvl;
    maxd = std::max(maxd, lvl);
  }
  return maxd;
}

}  // namespace repro::circuit
