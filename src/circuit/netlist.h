// Gate-level netlist: a DAG of gates between launch points (primary inputs /
// flip-flop outputs) and capture points (primary outputs / flip-flop inputs).
//
// Sequential elements from .bench files are split at construction time into
// an Input (the DFF's Q pin, a launch point) and an Output (the DFF's D pin,
// a capture point), which is the standard combinational-timing view: every
// register-to-register path becomes a launch-to-capture path in this DAG.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/gate_library.h"

namespace repro::circuit {

using GateId = int;
inline constexpr GateId kInvalidGate = -1;

struct Gate {
  std::string name;
  GateType type = GateType::kBuf;
  std::vector<GateId> fanin;
  std::vector<GateId> fanout;
  // Placement in the unit die (filled by circuit::place); used by the
  // hierarchical spatial-correlation model.
  double x = 0.5;
  double y = 0.5;
};

class Netlist {
 public:
  explicit Netlist(std::string name = "netlist");

  const std::string& name() const { return name_; }

  // Adds a gate; `name` must be unique.  Returns its id.
  GateId add_gate(std::string name, GateType type);
  // Adds the edge driver -> sink (appends to fanout/fanin lists).
  void connect(GateId driver, GateId sink);

  std::size_t size() const { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_[static_cast<std::size_t>(id)]; }
  Gate& gate(GateId id) { return gates_[static_cast<std::size_t>(id)]; }
  const std::vector<Gate>& gates() const { return gates_; }

  std::optional<GateId> find(const std::string& name) const;

  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<GateId>& outputs() const { return outputs_; }

  // Number of gates that are neither launch nor capture points.
  std::size_t combinational_count() const;

  // Topological order over all gates.  Throws std::runtime_error on cycles.
  std::vector<GateId> topological_order() const;

  // Structural checks: acyclic, every combinational gate has >= 1 fanin,
  // outputs have exactly one fanin, inputs have none.  Returns a list of
  // human-readable problems (empty = valid).
  std::vector<std::string> validate() const;

  // Logic depth (max #combinational gates on any input->output path).
  std::size_t depth() const;

 private:
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::unordered_map<std::string, GateId> by_name_;
};

}  // namespace repro::circuit
