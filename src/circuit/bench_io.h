// ISCAS'89 `.bench` reader / writer.
//
// The reader accepts the classic format:
//
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = NAND(G0, G1)
//   G23 = DFF(G10)
//
// DFFs are split into launch/capture pins for combinational timing: the DFF
// output signal becomes an Input gate (launch) with the original signal name,
// and a capture Output gate named `<signal>$d` is attached to the D input.
// Declared OUTPUT(x) signals get a capture gate named `<x>$po`.
//
// The writer emits this combinational view (INPUT/OUTPUT declarations plus
// gate assignments), which round-trips through the reader.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace repro::circuit {

// One recoverable parse problem, tagged with its 1-based source line
// (line 0 = file-level problems discovered while wiring, e.g. an OUTPUT
// declaration whose signal is never defined).
struct BenchDiagnostic {
  int line = 0;
  std::string message;
};

// Recoverable parse: malformed lines, unknown gate functions, duplicate or
// undefined signals become line-numbered diagnostics instead of exceptions;
// the offending line/connection is skipped and parsing continues, so a
// truncated or partially garbled .bench still yields the valid part of the
// netlist.  `ok()` means the input parsed cleanly.
struct BenchParseResult {
  Netlist netlist{"bench"};
  std::vector<BenchDiagnostic> diagnostics;
  bool ok() const { return diagnostics.empty(); }
};

BenchParseResult parse_bench(std::istream& in, std::string name = "bench");
BenchParseResult parse_bench_string(const std::string& text,
                                    std::string name = "bench");

// Throwing wrappers (compatibility): std::runtime_error on the first
// diagnostic, formatted as "bench line N: message".
Netlist read_bench(std::istream& in, std::string name = "bench");
Netlist read_bench_string(const std::string& text, std::string name = "bench");
Netlist read_bench_file(const std::string& path);

void write_bench(std::ostream& out, const Netlist& nl);
std::string write_bench_string(const Netlist& nl);

}  // namespace repro::circuit
