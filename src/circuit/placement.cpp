#include "circuit/placement.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace repro::circuit {

void place(Netlist& nl, const PlacementOptions& options) {
  const std::size_t n = nl.size();
  if (n == 0) return;
  util::Rng rng(options.seed);

  // Topological level of every gate.
  const std::vector<GateId> order = nl.topological_order();
  std::vector<int> level(n, 0);
  int max_level = 0;
  for (GateId id : order) {
    const Gate& g = nl.gate(id);
    int lvl = 0;
    for (GateId d : g.fanin) lvl = std::max(lvl, level[static_cast<std::size_t>(d)] + 1);
    level[static_cast<std::size_t>(id)] = lvl;
    max_level = std::max(max_level, lvl);
  }

  // Group by level; initial y = creation order within level.
  std::vector<std::vector<GateId>> by_level(static_cast<std::size_t>(max_level) + 1);
  for (std::size_t i = 0; i < n; ++i) {
    by_level[static_cast<std::size_t>(level[i])].push_back(static_cast<GateId>(i));
  }
  std::vector<double> y(n, 0.5);
  for (auto& lv : by_level) {
    for (std::size_t k = 0; k < lv.size(); ++k) {
      y[static_cast<std::size_t>(lv[k])] =
          (static_cast<double>(k) + 0.5) / static_cast<double>(lv.size());
    }
  }

  // Barycenter sweeps: reorder each level by the mean y of fanins (forward
  // sweep) / fanouts (backward sweep).
  auto reorder = [&](bool forward) {
    for (std::size_t li = 0; li < by_level.size(); ++li) {
      auto& lv = by_level[forward ? li : by_level.size() - 1 - li];
      std::vector<std::pair<double, GateId>> keyed;
      keyed.reserve(lv.size());
      for (GateId id : lv) {
        const Gate& g = nl.gate(id);
        const auto& nbrs = forward ? g.fanin : g.fanout;
        double key = y[static_cast<std::size_t>(id)];
        if (!nbrs.empty()) {
          double s = 0.0;
          for (GateId nb : nbrs) s += y[static_cast<std::size_t>(nb)];
          key = s / static_cast<double>(nbrs.size());
        }
        keyed.emplace_back(key, id);
      }
      std::stable_sort(keyed.begin(), keyed.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      for (std::size_t k = 0; k < keyed.size(); ++k) {
        lv[k] = keyed[k].second;
        y[static_cast<std::size_t>(lv[k])] =
            (static_cast<double>(k) + 0.5) / static_cast<double>(lv.size());
      }
    }
  };
  for (int sweep = 0; sweep < options.barycenter_sweeps; ++sweep) {
    reorder(/*forward=*/true);
    reorder(/*forward=*/false);
  }

  // Final coordinates with jitter, clamped into [0, 1).
  const double denom = static_cast<double>(std::max(max_level, 1));
  for (std::size_t i = 0; i < n; ++i) {
    Gate& g = nl.gate(static_cast<GateId>(i));
    const double jx = rng.uniform(-options.jitter, options.jitter);
    const double jy = rng.uniform(-options.jitter, options.jitter);
    g.x = std::clamp(static_cast<double>(level[i]) / denom + jx, 0.0,
                     std::nextafter(1.0, 0.0));
    g.y = std::clamp(y[i] + jy, 0.0, std::nextafter(1.0, 0.0));
  }
}

}  // namespace repro::circuit
