// Synthetic standard-cell library.
//
// The paper synthesizes ISCAS'89 with a TSMC 90 nm library; we cannot ship
// that library, so this module provides a small 90nm-inspired cell set with
// nominal delays and first-order delay sensitivities to effective channel
// length (Leff) and zero-bias threshold voltage (Vt).  The selection
// algorithms only consume the resulting linear delay model, so any library
// with realistic relative magnitudes preserves the experiments' shape
// (see DESIGN.md, substitution #1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace repro::circuit {

enum class GateType : std::uint8_t {
  kInput,   // primary input or flip-flop output (launch point)
  kOutput,  // primary output or flip-flop input (capture point)
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kDff,  // only appears during .bench parsing; split into kInput/kOutput
};

std::string_view gate_type_name(GateType t);
// Parses a .bench function name (case-insensitive). Throws on unknown names.
GateType gate_type_from_name(std::string_view name);

bool is_combinational(GateType t);

// Electrical characterization of one cell type.
struct CellTiming {
  double intrinsic_ps;     // unloaded nominal delay
  double per_fanout_ps;    // incremental delay per driven fanout
  double leff_elasticity;  // (dD/D) / (dL/L): delay sensitivity to Leff
  double vt_elasticity;    // (dD/D) / (dVt/Vt)
};

// Library-wide variation budget (paper Section 6 configuration).
struct VariationBudget {
  double leff_sigma_rel = 0.10;  // sigma(Leff)/mean(Leff) = 10%
  double vt_sigma_rel = 0.10;    // sigma(Vt)/mean(Vt) = 10%
  // Per-gate independent random term carries this fraction of the *total*
  // delay variance of the gate ("each gate has a random variation term,
  // which is 6% of the total variations").
  double random_variance_fraction = 0.06;
};

class GateLibrary {
 public:
  GateLibrary();  // builds the default 90nm-like library

  const CellTiming& timing(GateType t) const;

  // Nominal delay of a gate of type t driving `fanout` sinks, in ps.
  double nominal_delay_ps(GateType t, std::size_t fanout) const;

  // One-sigma delay deviation (in ps) caused by each normalized N(0,1)
  // variation source, for a gate with the given nominal delay:
  //   leff: total Leff-induced delay sigma (to be split across the spatial
  //         hierarchy levels),
  //   vt:   total Vt-induced delay sigma,
  //   random: per-gate independent sigma sized so that its variance is
  //         `random_variance_fraction` of the gate's total delay variance.
  struct DelaySigmas {
    double leff;
    double vt;
    double random;
  };
  DelaySigmas delay_sigmas_ps(GateType t, double nominal_ps) const;

  const VariationBudget& budget() const { return budget_; }
  void set_budget(const VariationBudget& b) { budget_ = b; }

 private:
  CellTiming timings_[16];
  VariationBudget budget_;
};

}  // namespace repro::circuit
