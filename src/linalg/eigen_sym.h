// Symmetric eigendecomposition, S = V diag(lambda) V^T.
//
// Householder tridiagonalization (tred2) followed by implicit-shift QL with
// eigenvector accumulation (tql2) — the classic EISPACK pair.  Used by the
// ADMM segment selector: the shared worst-case quadratic form
// Q = mu mu^T + kappa^2 Sigma Sigma^T is eigendecomposed once so that each
// row projection onto the ellipsoid {w : w^T Q w <= t^2} reduces to a 1-D
// secular equation in the eigenbasis.
#pragma once

#include "linalg/matrix.h"

namespace repro::linalg {

struct EigenSymResult {
  Vector values;   // eigenvalues, ascending
  Matrix vectors;  // columns are the corresponding orthonormal eigenvectors
  bool converged = true;
};

EigenSymResult eigen_sym(Matrix s, bool want_vectors = true);

}  // namespace repro::linalg
