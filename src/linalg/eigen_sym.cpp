#include "linalg/eigen_sym.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/contracts.h"

namespace repro::linalg {
namespace {

// Householder reduction of a real symmetric matrix to tridiagonal form.
// On exit `a` holds the accumulated orthogonal transform (if want_vectors),
// d the diagonal, e the subdiagonal (e[0] = 0).
void tred2(Matrix& a, Vector& d, Vector& e, bool want_vectors) {
  const int n = static_cast<int>(a.rows());
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  for (int i = n - 1; i > 0; --i) {
    const int l = i - 1;
    double h = 0.0, scale = 0.0;
    if (l > 0) {
      for (int k = 0; k < i; ++k) scale += std::abs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (int k = 0; k < i; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (int j = 0; j < i; ++j) {
          if (want_vectors) a(j, i) = a(i, j) / h;
          g = 0.0;
          for (int k = 0; k < j + 1; ++k) g += a(j, k) * a(i, k);
          for (int k = j + 1; k < i; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (int j = 0; j < i; ++j) {
          f = a(i, j);
          e[j] = g = e[j] - hh * f;
          for (int k = 0; k < j + 1; ++k) {
            a(j, k) -= f * e[k] + g * a(i, k);
          }
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }
  if (want_vectors) d[0] = 0.0;
  e[0] = 0.0;
  for (int i = 0; i < n; ++i) {
    if (want_vectors) {
      if (d[i] != 0.0) {
        for (int j = 0; j < i; ++j) {
          double g = 0.0;
          for (int k = 0; k < i; ++k) g += a(i, k) * a(k, j);
          for (int k = 0; k < i; ++k) a(k, j) -= g * a(k, i);
        }
      }
      d[i] = a(i, i);
      a(i, i) = 1.0;
      for (int j = 0; j < i; ++j) a(j, i) = a(i, j) = 0.0;
    } else {
      d[i] = a(i, i);
    }
  }
}

// Implicit-shift QL iteration on the tridiagonal (d, e); accumulates the
// rotations into `a` when want_vectors.
bool tql2(Matrix& a, Vector& d, Vector& e, bool want_vectors) {
  const int n = static_cast<int>(d.size());
  for (int i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m = 0;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        if (iter++ == 50) return false;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? std::abs(r) : -std::abs(r)));
        double s = 1.0, c = 1.0, p = 0.0;
        int i = m - 1;
        for (; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (want_vectors) {
            for (int k = 0; k < n; ++k) {
              f = a(k, i + 1);
              a(k, i + 1) = s * a(k, i) + c * f;
              a(k, i) = c * a(k, i) - s * f;
            }
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

}  // namespace

EigenSymResult eigen_sym(Matrix s, bool want_vectors) {
  REPRO_CHECK_DIM(s.rows(), s.cols(), "eigen_sym: square input");
  if (s.rows() != s.cols()) throw std::invalid_argument("eigen_sym: not square");
  EigenSymResult out;
  if (s.rows() == 0) return out;
  Vector e;
  tred2(s, out.values, e, want_vectors);
  out.converged = tql2(s, out.values, e, want_vectors);
  if (want_vectors) out.vectors = std::move(s);

  // Sort ascending with matching eigenvector columns (insertion sort; QL
  // output is nearly sorted already).
  const std::size_t n = out.values.size();
  for (std::size_t i = 1; i < n; ++i) {
    const double val = out.values[i];
    Vector col;
    if (want_vectors) col = out.vectors.column(i);
    std::size_t j = i;
    while (j > 0 && out.values[j - 1] > val) {
      out.values[j] = out.values[j - 1];
      if (want_vectors) out.vectors.set_column(j, out.vectors.column(j - 1));
      --j;
    }
    out.values[j] = val;
    if (want_vectors) out.vectors.set_column(j, col);
  }
  return out;
}

}  // namespace repro::linalg
