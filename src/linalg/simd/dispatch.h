// Runtime-dispatched SIMD kernel tiers for the dense hot path.
//
// The blocked GEMM, SYRK-style Gram, multi-RHS trsm, and Cholesky kernels
// all bottom out in a handful of vector primitives (axpy, dot, a packed
// micro-tile GEMM).  Each primitive exists in one table per instruction-set
// tier — scalar, AVX2+FMA, AVX-512F, NEON — compiled unconditionally (every
// tier's translation unit carries its own -m flags) and selected once at
// startup from CPUID, so one portable binary runs the widest tier the host
// actually has.
//
// Determinism contract (DESIGN.md §11):
//   * The scalar tier is the bit-exact reference: with REPRO_KERNEL=scalar
//     every kernel runs the pre-SIMD loops unchanged, so selections and
//     predictions are bit-identical to the scalar-only builds.
//   * SIMD tiers reassociate accumulations (vector lanes + FMA), so they are
//     toleranced against scalar: per element |Δ| <= c·k·u·Σ|a||b| with small
//     c (tests enforce an envelope of 1e-11 on unit-scale data, documented
//     in tests/test_simd_kernels.cpp).
//   * Within a tier, results are bit-identical across thread counts: work is
//     partitioned over output elements and each element's floating-point
//     sequence depends only on deterministic block geometry, never on the
//     executing thread.
//
// Tier selection: best available by default; the REPRO_KERNEL environment
// variable ("scalar", "avx2", "avx512", "neon") forces a tier at startup.
// Forcing an unknown or unavailable tier at startup falls back to scalar
// and ticks the linalg.simd.dispatch_fallback counter (a later failed
// set_tier keeps the active tier instead — see set_tier below).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace repro::linalg::simd {

enum class Tier { kScalar = 0, kAvx2, kAvx512, kNeon };

// Lower-case tier name ("scalar", "avx2", "avx512", "neon").
const char* tier_name(Tier tier);

// True when the tier's kernels are both compiled in and runnable on this
// CPU.  kScalar is always available.
bool tier_available(Tier tier);

// Widest available tier (what dispatch picks with no REPRO_KERNEL set).
Tier best_available_tier();

// Every available tier, scalar first, in widening order.
std::vector<Tier> available_tiers();

// The tier the kernels currently run on.  Initialized on first use from
// REPRO_KERNEL (or best available) and stable until set_tier.
Tier active_tier();

// Forces the active tier by name.  Returns true and switches when `name` is
// a known, available tier; otherwise LEAVES THE ACTIVE TIER UNCHANGED,
// ticks the linalg.simd.dispatch_fallback telemetry counter, and returns
// false — a rejected request must not silently downgrade a process that
// ignores the return value.  (Only the startup REPRO_KERNEL path falls back
// to scalar: there is no previous tier to keep yet.)  Not meant to race
// with in-flight kernels (benches and tests switch between runs).
bool set_tier(std::string_view name);

// The tier REPRO_KERNEL forced at startup, or empty when unset/invalid.
// Benches use this to honor a forced reference leg instead of sweeping.
std::string env_forced_tier();

// Nominal peak for `threads` cores at the tier's FLOP/cycle width times
// util::nominal_cpu_ghz() — the denominator of the linalg.*.peak_fraction
// gauges.  Nominal by design: the CI perf gate uses speedup ratios instead.
double theoretical_peak_gflops(Tier tier, std::size_t threads);

}  // namespace repro::linalg::simd
