// Internal micro-kernel tables behind linalg::simd dispatch.
//
// One KernelOps per tier; every pointer is non-null in a registered table.
// The four primitives cover the dense hot loops:
//
//   axpy      y[0..n) += alpha * x[0..n)           (GEMM A^T-form, trsm slab)
//   dot       sum x[i]*y[i]                        (Cholesky inner products)
//   dot4      four dots of one x against y0..y3    (SYRK tile cells)
//   gemm_ukr  C(mr x nr) += Apack(mr x kc) * Bpack(kc x nr)
//             Apack is k-major groups of mr values, Bpack k-major groups of
//             nr values (the packed-panel layout produced by gemm.cpp); C is
//             row-major with leading dimension ldc.
//
// Raw intrinsics live only in the per-tier .cpp files of this directory
// (enforced by repro_lint's simd-confinement check).
#pragma once

#include <cstddef>

#include "linalg/simd/dispatch.h"

namespace repro::linalg::simd {

struct KernelOps {
  Tier tier = Tier::kScalar;
  const char* name = "scalar";
  // GEMM micro-tile geometry for gemm_ukr (mr rows of C, nr columns).
  std::size_t mr = 4;
  std::size_t nr = 8;
  // Nominal per-core double-precision FLOPs/cycle at this tier, the
  // numerator convention behind theoretical_peak_gflops.
  double flops_per_cycle = 4.0;

  void (*axpy)(std::size_t n, double alpha, const double* x, double* y);
  double (*dot)(std::size_t n, const double* x, const double* y);
  void (*dot4)(std::size_t n, const double* x, const double* y0,
               const double* y1, const double* y2, const double* y3,
               double out[4]);
  void (*gemm_ukr)(std::size_t kc, const double* apack, const double* bpack,
                   double* c, std::size_t ldc);
};

// Per-tier tables.  A tier that is not compiled for this target returns
// nullptr; dispatch treats it as unavailable.
const KernelOps* scalar_ops();
const KernelOps* avx2_ops();
const KernelOps* avx512_ops();
const KernelOps* neon_ops();

// Table for the active tier (never null; scalar when nothing wider is
// available).  Hot kernels load this once per call.
const KernelOps& ops();

}  // namespace repro::linalg::simd
