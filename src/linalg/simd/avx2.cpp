// AVX2+FMA micro-kernel tier.  This translation unit is compiled with
// -mavx2 -mfma regardless of the global architecture flags (see
// src/CMakeLists.txt); dispatch only routes here after CPUID confirms the
// host supports both, so a portable binary can safely carry this tier.
//
// Determinism within the tier: every kernel fixes its lane/accumulator
// grouping as a function of n alone, so two calls with the same inputs give
// the same bits on any thread.  Horizontal reductions combine accumulators
// in a fixed order; remainders are handled by a trailing scalar loop folded
// in last.
#include "linalg/simd/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

namespace repro::linalg::simd {
namespace {

// The scalar tail fuses with std::fma so every element is the identical
// single-rounded operation whatever its offset: callers (trsm slabs) may
// start axpy at partition-dependent offsets, and an unfused tail would make
// the bits depend on where the element falls relative to the lane grid.
void axpy_avx2(std::size_t n, double alpha, const double* x, double* y) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d y0 = _mm256_loadu_pd(y + i);
    __m256d y1 = _mm256_loadu_pd(y + i + 4);
    y0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), y0);
    y1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4), y1);
    _mm256_storeu_pd(y + i, y0);
    _mm256_storeu_pd(y + i + 4, y1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d y0 =
        _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    _mm256_storeu_pd(y + i, y0);
  }
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

// Sums the four lanes of (a + b) in a fixed order: (lo+hi) pairwise.
double hsum2(__m256d a, __m256d b) {
  const __m256d s = _mm256_add_pd(a, b);
  const __m128d lo = _mm256_castpd256_pd128(s);
  const __m128d hi = _mm256_extractf128_pd(s, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

double dot_avx2(std::size_t n, const double* x, const double* y) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                           _mm256_loadu_pd(y + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 8),
                           _mm256_loadu_pd(y + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 12),
                           _mm256_loadu_pd(y + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
  }
  double s = hsum2(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

void dot4_avx2(std::size_t n, const double* x, const double* y0,
               const double* y1, const double* y2, const double* y3,
               double out[4]) {
  // Two accumulators per right-hand row: 8 independent FMA chains keep both
  // FMA ports busy while x is loaded once per 4 lanes instead of once per
  // cell — the SYRK tile kernel's entire advantage over per-cell dot.
  __m256d a0 = _mm256_setzero_pd(), b0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd(), b1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd(), b2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd(), b3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d x0 = _mm256_loadu_pd(x + i);
    const __m256d x1 = _mm256_loadu_pd(x + i + 4);
    a0 = _mm256_fmadd_pd(x0, _mm256_loadu_pd(y0 + i), a0);
    b0 = _mm256_fmadd_pd(x1, _mm256_loadu_pd(y0 + i + 4), b0);
    a1 = _mm256_fmadd_pd(x0, _mm256_loadu_pd(y1 + i), a1);
    b1 = _mm256_fmadd_pd(x1, _mm256_loadu_pd(y1 + i + 4), b1);
    a2 = _mm256_fmadd_pd(x0, _mm256_loadu_pd(y2 + i), a2);
    b2 = _mm256_fmadd_pd(x1, _mm256_loadu_pd(y2 + i + 4), b2);
    a3 = _mm256_fmadd_pd(x0, _mm256_loadu_pd(y3 + i), a3);
    b3 = _mm256_fmadd_pd(x1, _mm256_loadu_pd(y3 + i + 4), b3);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d x0 = _mm256_loadu_pd(x + i);
    a0 = _mm256_fmadd_pd(x0, _mm256_loadu_pd(y0 + i), a0);
    a1 = _mm256_fmadd_pd(x0, _mm256_loadu_pd(y1 + i), a1);
    a2 = _mm256_fmadd_pd(x0, _mm256_loadu_pd(y2 + i), a2);
    a3 = _mm256_fmadd_pd(x0, _mm256_loadu_pd(y3 + i), a3);
  }
  double s0 = hsum2(a0, b0);
  double s1 = hsum2(a1, b1);
  double s2 = hsum2(a2, b2);
  double s3 = hsum2(a3, b3);
  for (; i < n; ++i) {
    const double xi = x[i];
    s0 += xi * y0[i];
    s1 += xi * y1[i];
    s2 += xi * y2[i];
    s3 += xi * y3[i];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

// 4x8 register tile: 8 ymm accumulators (4 rows x 2 vectors), 2 B loads and
// 4 A broadcasts per k step — the classic packed-panel inner kernel.
void gemm_ukr_avx2(std::size_t kc, const double* apack, const double* bpack,
                   double* c, std::size_t ldc) {
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  for (std::size_t k = 0; k < kc; ++k) {
    const __m256d b0 = _mm256_loadu_pd(bpack);
    const __m256d b1 = _mm256_loadu_pd(bpack + 4);
    __m256d a = _mm256_broadcast_sd(apack + 0);
    c00 = _mm256_fmadd_pd(a, b0, c00);
    c01 = _mm256_fmadd_pd(a, b1, c01);
    a = _mm256_broadcast_sd(apack + 1);
    c10 = _mm256_fmadd_pd(a, b0, c10);
    c11 = _mm256_fmadd_pd(a, b1, c11);
    a = _mm256_broadcast_sd(apack + 2);
    c20 = _mm256_fmadd_pd(a, b0, c20);
    c21 = _mm256_fmadd_pd(a, b1, c21);
    a = _mm256_broadcast_sd(apack + 3);
    c30 = _mm256_fmadd_pd(a, b0, c30);
    c31 = _mm256_fmadd_pd(a, b1, c31);
    apack += 4;
    bpack += 8;
  }
  double* r0 = c;
  double* r1 = c + ldc;
  double* r2 = c + 2 * ldc;
  double* r3 = c + 3 * ldc;
  _mm256_storeu_pd(r0, _mm256_add_pd(_mm256_loadu_pd(r0), c00));
  _mm256_storeu_pd(r0 + 4, _mm256_add_pd(_mm256_loadu_pd(r0 + 4), c01));
  _mm256_storeu_pd(r1, _mm256_add_pd(_mm256_loadu_pd(r1), c10));
  _mm256_storeu_pd(r1 + 4, _mm256_add_pd(_mm256_loadu_pd(r1 + 4), c11));
  _mm256_storeu_pd(r2, _mm256_add_pd(_mm256_loadu_pd(r2), c20));
  _mm256_storeu_pd(r2 + 4, _mm256_add_pd(_mm256_loadu_pd(r2 + 4), c21));
  _mm256_storeu_pd(r3, _mm256_add_pd(_mm256_loadu_pd(r3), c30));
  _mm256_storeu_pd(r3 + 4, _mm256_add_pd(_mm256_loadu_pd(r3 + 4), c31));
}

constexpr KernelOps kAvx2Ops = {
    Tier::kAvx2, "avx2", 4,         8,
    /*flops_per_cycle=*/16.0,  // 2 FMA ports x 4 doubles x 2 flops
    axpy_avx2,   dot_avx2, dot4_avx2, gemm_ukr_avx2,
};

}  // namespace

const KernelOps* avx2_ops() { return &kAvx2Ops; }

}  // namespace repro::linalg::simd

#else  // !(__AVX2__ && __FMA__)

namespace repro::linalg::simd {
const KernelOps* avx2_ops() { return nullptr; }
}  // namespace repro::linalg::simd

#endif
