// AArch64 NEON micro-kernel tier (guarded; Advanced SIMD is mandatory on
// arm64, so availability is a compile-time fact rather than a CPUID probe).
// Same determinism story as the x86 tiers: lane grouping and reduction
// order are fixed functions of n.
#include "linalg/simd/kernels.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cmath>

namespace repro::linalg::simd {
namespace {

// std::fma tail: every element is the identical single-rounded fused op
// whatever its offset, so partition-dependent start offsets (trsm slabs)
// cannot change the bits.
void axpy_neon(std::size_t n, double alpha, const double* x, double* y) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float64x2_t y0 = vld1q_f64(y + i);
    float64x2_t y1 = vld1q_f64(y + i + 2);
    y0 = vfmaq_n_f64(y0, vld1q_f64(x + i), alpha);
    y1 = vfmaq_n_f64(y1, vld1q_f64(x + i + 2), alpha);
    vst1q_f64(y + i, y0);
    vst1q_f64(y + i + 2, y1);
  }
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

double dot_neon(std::size_t n, const double* x, const double* y) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(x + i), vld1q_f64(y + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(x + i + 2), vld1q_f64(y + i + 2));
  }
  double s = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

void dot4_neon(std::size_t n, const double* x, const double* y0,
               const double* y1, const double* y2, const double* y3,
               double out[4]) {
  float64x2_t a0 = vdupq_n_f64(0.0), a1 = vdupq_n_f64(0.0);
  float64x2_t a2 = vdupq_n_f64(0.0), a3 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t x0 = vld1q_f64(x + i);
    a0 = vfmaq_f64(a0, x0, vld1q_f64(y0 + i));
    a1 = vfmaq_f64(a1, x0, vld1q_f64(y1 + i));
    a2 = vfmaq_f64(a2, x0, vld1q_f64(y2 + i));
    a3 = vfmaq_f64(a3, x0, vld1q_f64(y3 + i));
  }
  double s0 = vaddvq_f64(a0);
  double s1 = vaddvq_f64(a1);
  double s2 = vaddvq_f64(a2);
  double s3 = vaddvq_f64(a3);
  for (; i < n; ++i) {
    const double xi = x[i];
    s0 += xi * y0[i];
    s1 += xi * y1[i];
    s2 += xi * y2[i];
    s3 += xi * y3[i];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

// 4x4 register tile: 8 q-register accumulators (4 rows x 2 vectors).
void gemm_ukr_neon(std::size_t kc, const double* apack, const double* bpack,
                   double* c, std::size_t ldc) {
  float64x2_t acc[4][2];
  for (auto& row : acc) {
    row[0] = vdupq_n_f64(0.0);
    row[1] = vdupq_n_f64(0.0);
  }
  for (std::size_t k = 0; k < kc; ++k) {
    const float64x2_t b0 = vld1q_f64(bpack);
    const float64x2_t b1 = vld1q_f64(bpack + 2);
    for (std::size_t i = 0; i < 4; ++i) {
      acc[i][0] = vfmaq_n_f64(acc[i][0], b0, apack[i]);
      acc[i][1] = vfmaq_n_f64(acc[i][1], b1, apack[i]);
    }
    apack += 4;
    bpack += 4;
  }
  for (std::size_t i = 0; i < 4; ++i) {
    double* r = c + i * ldc;
    vst1q_f64(r, vaddq_f64(vld1q_f64(r), acc[i][0]));
    vst1q_f64(r + 2, vaddq_f64(vld1q_f64(r + 2), acc[i][1]));
  }
}

constexpr KernelOps kNeonOps = {
    Tier::kNeon, "neon", 4,         4,
    /*flops_per_cycle=*/8.0,  // 2 FMA pipes x 2 doubles x 2 flops
    axpy_neon,   dot_neon, dot4_neon, gemm_ukr_neon,
};

}  // namespace

const KernelOps* neon_ops() { return &kNeonOps; }

}  // namespace repro::linalg::simd

#else  // !__aarch64__

namespace repro::linalg::simd {
const KernelOps* neon_ops() { return nullptr; }
}  // namespace repro::linalg::simd

#endif
