// AVX-512F micro-kernel tier.  Compiled with -mavx512f unconditionally on
// x86-64 (per-file flag in src/CMakeLists.txt); dispatch routes here only
// after CPUID reports avx512f, so portable binaries carry the tier safely.
// Same determinism story as the avx2 tier: lane grouping and reduction
// order are fixed functions of n.
#include "linalg/simd/kernels.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cmath>

namespace repro::linalg::simd {
namespace {

// std::fma tail: every element is the identical single-rounded fused op
// whatever its offset, so partition-dependent start offsets (trsm slabs)
// cannot change the bits.
void axpy_avx512(std::size_t n, double alpha, const double* x, double* y) {
  const __m512d va = _mm512_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512d y0 = _mm512_loadu_pd(y + i);
    __m512d y1 = _mm512_loadu_pd(y + i + 8);
    y0 = _mm512_fmadd_pd(va, _mm512_loadu_pd(x + i), y0);
    y1 = _mm512_fmadd_pd(va, _mm512_loadu_pd(x + i + 8), y1);
    _mm512_storeu_pd(y + i, y0);
    _mm512_storeu_pd(y + i + 8, y1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m512d y0 =
        _mm512_fmadd_pd(va, _mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i));
    _mm512_storeu_pd(y + i, y0);
  }
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

double dot_avx512(std::size_t n, const double* x, const double* y) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  __m512d acc2 = _mm512_setzero_pd();
  __m512d acc3 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i),
                           acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i + 8),
                           _mm512_loadu_pd(y + i + 8), acc1);
    acc2 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i + 16),
                           _mm512_loadu_pd(y + i + 16), acc2);
    acc3 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i + 24),
                           _mm512_loadu_pd(y + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i),
                           acc0);
  }
  // _mm512_reduce_add_pd is a fixed lane-combination sequence, deterministic
  // for a given input vector.
  double s = _mm512_reduce_add_pd(
      _mm512_add_pd(_mm512_add_pd(acc0, acc1), _mm512_add_pd(acc2, acc3)));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

void dot4_avx512(std::size_t n, const double* x, const double* y0,
                 const double* y1, const double* y2, const double* y3,
                 double out[4]) {
  __m512d a0 = _mm512_setzero_pd(), b0 = _mm512_setzero_pd();
  __m512d a1 = _mm512_setzero_pd(), b1 = _mm512_setzero_pd();
  __m512d a2 = _mm512_setzero_pd(), b2 = _mm512_setzero_pd();
  __m512d a3 = _mm512_setzero_pd(), b3 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512d x0 = _mm512_loadu_pd(x + i);
    const __m512d x1 = _mm512_loadu_pd(x + i + 8);
    a0 = _mm512_fmadd_pd(x0, _mm512_loadu_pd(y0 + i), a0);
    b0 = _mm512_fmadd_pd(x1, _mm512_loadu_pd(y0 + i + 8), b0);
    a1 = _mm512_fmadd_pd(x0, _mm512_loadu_pd(y1 + i), a1);
    b1 = _mm512_fmadd_pd(x1, _mm512_loadu_pd(y1 + i + 8), b1);
    a2 = _mm512_fmadd_pd(x0, _mm512_loadu_pd(y2 + i), a2);
    b2 = _mm512_fmadd_pd(x1, _mm512_loadu_pd(y2 + i + 8), b2);
    a3 = _mm512_fmadd_pd(x0, _mm512_loadu_pd(y3 + i), a3);
    b3 = _mm512_fmadd_pd(x1, _mm512_loadu_pd(y3 + i + 8), b3);
  }
  for (; i + 8 <= n; i += 8) {
    const __m512d x0 = _mm512_loadu_pd(x + i);
    a0 = _mm512_fmadd_pd(x0, _mm512_loadu_pd(y0 + i), a0);
    a1 = _mm512_fmadd_pd(x0, _mm512_loadu_pd(y1 + i), a1);
    a2 = _mm512_fmadd_pd(x0, _mm512_loadu_pd(y2 + i), a2);
    a3 = _mm512_fmadd_pd(x0, _mm512_loadu_pd(y3 + i), a3);
  }
  double s0 = _mm512_reduce_add_pd(_mm512_add_pd(a0, b0));
  double s1 = _mm512_reduce_add_pd(_mm512_add_pd(a1, b1));
  double s2 = _mm512_reduce_add_pd(_mm512_add_pd(a2, b2));
  double s3 = _mm512_reduce_add_pd(_mm512_add_pd(a3, b3));
  for (; i < n; ++i) {
    const double xi = x[i];
    s0 += xi * y0[i];
    s1 += xi * y1[i];
    s2 += xi * y2[i];
    s3 += xi * y3[i];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

// 8x8 register tile: 8 zmm accumulators, one B load and 8 A broadcasts per
// k step.
void gemm_ukr_avx512(std::size_t kc, const double* apack, const double* bpack,
                     double* c, std::size_t ldc) {
  __m512d acc[8];
  for (auto& v : acc) v = _mm512_setzero_pd();
  for (std::size_t k = 0; k < kc; ++k) {
    const __m512d b0 = _mm512_loadu_pd(bpack);
    acc[0] = _mm512_fmadd_pd(_mm512_set1_pd(apack[0]), b0, acc[0]);
    acc[1] = _mm512_fmadd_pd(_mm512_set1_pd(apack[1]), b0, acc[1]);
    acc[2] = _mm512_fmadd_pd(_mm512_set1_pd(apack[2]), b0, acc[2]);
    acc[3] = _mm512_fmadd_pd(_mm512_set1_pd(apack[3]), b0, acc[3]);
    acc[4] = _mm512_fmadd_pd(_mm512_set1_pd(apack[4]), b0, acc[4]);
    acc[5] = _mm512_fmadd_pd(_mm512_set1_pd(apack[5]), b0, acc[5]);
    acc[6] = _mm512_fmadd_pd(_mm512_set1_pd(apack[6]), b0, acc[6]);
    acc[7] = _mm512_fmadd_pd(_mm512_set1_pd(apack[7]), b0, acc[7]);
    apack += 8;
    bpack += 8;
  }
  for (std::size_t i = 0; i < 8; ++i) {
    double* r = c + i * ldc;
    _mm512_storeu_pd(r, _mm512_add_pd(_mm512_loadu_pd(r), acc[i]));
  }
}

constexpr KernelOps kAvx512Ops = {
    Tier::kAvx512, "avx512", 8,           8,
    /*flops_per_cycle=*/32.0,  // 2 FMA ports x 8 doubles x 2 flops
    axpy_avx512,   dot_avx512, dot4_avx512, gemm_ukr_avx512,
};

}  // namespace

const KernelOps* avx512_ops() { return &kAvx512Ops; }

}  // namespace repro::linalg::simd

#else  // !__AVX512F__

namespace repro::linalg::simd {
const KernelOps* avx512_ops() { return nullptr; }
}  // namespace repro::linalg::simd

#endif
