// Scalar micro-kernel table: the portable reference implementation of every
// primitive, and the dispatch fallback when no SIMD tier is available.  The
// higher-level kernels (gemm/trsm/cholesky) do not call this table on the
// scalar tier — they run their original loops for bit-exactness — but the
// table keeps every tier uniformly testable against the same interface.
#include "linalg/simd/kernels.h"

namespace repro::linalg::simd {
namespace {

void axpy_scalar(std::size_t n, double alpha, const double* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double dot_scalar(std::size_t n, const double* x, const double* y) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void dot4_scalar(std::size_t n, const double* x, const double* y0,
                 const double* y1, const double* y2, const double* y3,
                 double out[4]) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    s0 += xi * y0[i];
    s1 += xi * y1[i];
    s2 += xi * y2[i];
    s3 += xi * y3[i];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;

void gemm_ukr_scalar(std::size_t kc, const double* apack, const double* bpack,
                     double* c, std::size_t ldc) {
  double acc[kMr][kNr] = {};
  for (std::size_t k = 0; k < kc; ++k) {
    for (std::size_t i = 0; i < kMr; ++i) {
      const double a = apack[k * kMr + i];
      for (std::size_t j = 0; j < kNr; ++j) {
        acc[i][j] += a * bpack[k * kNr + j];
      }
    }
  }
  for (std::size_t i = 0; i < kMr; ++i) {
    for (std::size_t j = 0; j < kNr; ++j) c[i * ldc + j] += acc[i][j];
  }
}

constexpr KernelOps kScalarOps = {
    Tier::kScalar, "scalar", kMr,         kNr,
    /*flops_per_cycle=*/4.0,  // SSE2 baseline: 2-wide multiply + add
    axpy_scalar,   dot_scalar, dot4_scalar, gemm_ukr_scalar,
};

}  // namespace

const KernelOps* scalar_ops() { return &kScalarOps; }

}  // namespace repro::linalg::simd
