#include "linalg/simd/dispatch.h"

// This TU is dispatch plumbing, not kernels: everything that allocates here
// (the REPRO_KERNEL override string, the available_tiers diagnostic list)
// runs once at startup or from tests — never on the GEMM hot path.
// repro-lint: allow-file(hot-path-alloc)

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "linalg/simd/kernels.h"
#include "util/cpu.h"
#include "util/telemetry.h"

namespace repro::linalg::simd {
namespace {

// Active table, published once at startup and swapped only by set_tier
// (benches/tests between runs).  Relaxed is enough: the table contents are
// immutable constants and readers only need *some* registered table.
std::atomic<const KernelOps*> g_active{nullptr};
std::once_flag g_init_once;
std::string* g_env_forced = nullptr;  // leaked-on-purpose startup constant

const KernelOps* table_for(Tier tier) {
  switch (tier) {
    case Tier::kScalar: return scalar_ops();
    case Tier::kAvx2: return avx2_ops();
    case Tier::kAvx512: return avx512_ops();
    case Tier::kNeon: return neon_ops();
  }
  return nullptr;
}

bool runnable(Tier tier) {
  if (table_for(tier) == nullptr) return false;
  const util::CpuFeatures& cpu = util::cpu_features();
  switch (tier) {
    case Tier::kScalar: return true;
    case Tier::kAvx2: return cpu.avx2;
    case Tier::kAvx512: return cpu.avx512f;
    case Tier::kNeon: return cpu.neon;
  }
  return false;
}

bool parse_tier(std::string_view name, Tier& out) {
  if (name == "scalar") out = Tier::kScalar;
  else if (name == "avx2") out = Tier::kAvx2;
  else if (name == "avx512") out = Tier::kAvx512;
  else if (name == "neon") out = Tier::kNeon;
  else return false;
  return true;
}

// Resolves a requested tier name to a runnable table, or nullptr for an
// unknown/unavailable request — ticking the fallback counter either way so
// a rejected request is visible in every telemetry snapshot.
const KernelOps* resolve(std::string_view name) {
  Tier tier = Tier::kScalar;
  if (!parse_tier(name, tier) || !runnable(tier)) {
    util::telemetry::count("linalg.simd.dispatch_fallback");
    return nullptr;
  }
  return table_for(tier);
}

void init_dispatch() {
  g_env_forced = new std::string();
  const char* env = std::getenv("REPRO_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    // A bad REPRO_KERNEL has no previous tier to keep: start on scalar (the
    // always-safe reference) rather than guessing a wider tier.
    const KernelOps* t = resolve(env);
    if (t != nullptr) *g_env_forced = env;
    g_active.store(t != nullptr ? t : scalar_ops(),
                   std::memory_order_relaxed);
    return;
  }
  g_active.store(table_for(best_available_tier()),
                 std::memory_order_relaxed);
}

}  // namespace

const KernelOps& ops() {
  std::call_once(g_init_once, init_dispatch);
  return *g_active.load(std::memory_order_relaxed);
}

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
    case Tier::kNeon: return "neon";
  }
  return "scalar";
}

bool tier_available(Tier tier) { return runnable(tier); }

Tier best_available_tier() {
  for (Tier t : {Tier::kAvx512, Tier::kAvx2, Tier::kNeon}) {
    if (runnable(t)) return t;
  }
  return Tier::kScalar;
}

std::vector<Tier> available_tiers() {
  std::vector<Tier> out{Tier::kScalar};
  for (Tier t : {Tier::kNeon, Tier::kAvx2, Tier::kAvx512}) {
    if (runnable(t)) out.push_back(t);
  }
  return out;
}

Tier active_tier() { return ops().tier; }

bool set_tier(std::string_view name) {
  std::call_once(g_init_once, init_dispatch);
  const KernelOps* t = resolve(name);
  if (t == nullptr) {
    // Keep the active tier: a caller that ignores the return value (or a
    // typo in a bench harness) must not silently downgrade the whole
    // process to scalar for the rest of the run.
    return false;
  }
  g_active.store(t, std::memory_order_relaxed);
  return true;
}

std::string env_forced_tier() {
  std::call_once(g_init_once, init_dispatch);
  return *g_env_forced;
}

double theoretical_peak_gflops(Tier tier, std::size_t threads) {
  const KernelOps* t = table_for(tier);
  const double per_core = (t != nullptr ? t->flops_per_cycle : 4.0) *
                          util::nominal_cpu_ghz();
  return per_core * static_cast<double>(threads == 0 ? 1 : threads);
}

}  // namespace repro::linalg::simd
