#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contracts.h"

namespace repro::linalg {

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) {
  // Two-pass scaled norm to avoid overflow for extreme sensitivities.
  double maxv = 0.0;
  for (double x : a) maxv = std::max(maxv, std::abs(x));
  if (maxv == 0.0) return 0.0;
  double s = 0.0;
  for (double x : a) {
    const double t = x / maxv;
    s += t * t;
  }
  return maxv * std::sqrt(s);
}

double norm1(std::span<const double> a) {
  double s = 0.0;
  for (double x : a) s += std::abs(x);
  return s;
}

double norm_inf(std::span<const double> a) {
  double s = 0.0;
  for (double x : a) s = std::max(s, std::abs(x));
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix init: ragged rows");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(std::span<const double> d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  // Simple blocked transpose for cache friendliness.
  constexpr std::size_t kBlock = 32;
  for (std::size_t ib = 0; ib < rows_; ib += kBlock) {
    for (std::size_t jb = 0; jb < cols_; jb += kBlock) {
      const std::size_t imax = std::min(ib + kBlock, rows_);
      const std::size_t jmax = std::min(jb + kBlock, cols_);
      for (std::size_t i = ib; i < imax; ++i) {
        for (std::size_t j = jb; j < jmax; ++j) {
          t(j, i) = (*this)(i, j);
        }
      }
    }
  }
  return t;
}

Matrix Matrix::select_rows(std::span<const int> rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto i = static_cast<std::size_t>(rows[k]);
    if (i >= rows_) throw std::out_of_range("select_rows: bad index");
    std::copy_n(data_.data() + i * cols_, cols_,
                out.data_.data() + k * cols_);
  }
  return out;
}

Matrix Matrix::select_cols(std::span<const int> cols) const {
  Matrix out(rows_, cols.size());
  for (std::size_t k = 0; k < cols.size(); ++k) {
    const auto j = static_cast<std::size_t>(cols[k]);
    if (j >= cols_) throw std::out_of_range("select_cols: bad index");
    for (std::size_t i = 0; i < rows_; ++i) out(i, k) = (*this)(i, j);
  }
  return out;
}

Matrix Matrix::top_rows(std::size_t r) const {
  if (r > rows_) throw std::out_of_range("top_rows");
  Matrix out(r, cols_);
  std::copy_n(data_.begin(), r * cols_, out.data_.begin());
  return out;
}

Matrix Matrix::left_cols(std::size_t c) const {
  if (c > cols_) throw std::out_of_range("left_cols");
  Matrix out(rows_, c);
  // Pointer arithmetic: c == 0 (or cols_ == 0) must not index an empty
  // backing vector.
  for (std::size_t i = 0; i < rows_; ++i) {
    std::copy_n(data_.data() + i * cols_, c, out.data_.data() + i * c);
  }
  return out;
}

void Matrix::set_row(std::size_t i, std::span<const double> values) {
  if (values.size() != cols_) throw std::invalid_argument("set_row size");
  std::copy(values.begin(), values.end(), data_.data() + i * cols_);
}

void Matrix::swap_rows(std::size_t i, std::size_t j) {
  if (i == j) return;
  std::swap_ranges(data_.data() + i * cols_, data_.data() + (i + 1) * cols_,
                   data_.data() + j * cols_);
}

void Matrix::swap_cols(std::size_t i, std::size_t j) {
  if (i == j) return;
  for (std::size_t r = 0; r < rows_; ++r) std::swap((*this)(r, i), (*this)(r, j));
}

Vector Matrix::column(std::size_t j) const {
  Vector c(rows_);
  for (std::size_t i = 0; i < rows_; ++i) c[i] = (*this)(i, j);
  return c;
}

void Matrix::set_column(std::size_t j, std::span<const double> values) {
  if (values.size() != rows_) throw std::invalid_argument("set_column size");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("operator+= shape");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("operator-= shape");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double alpha) {
  for (double& v : data_) v *= alpha;
  return *this;
}

double Matrix::frobenius_norm() const { return norm2(data_); }

double Matrix::max_abs() const { return norm_inf(data_); }

std::string Matrix::shape_string() const {
  return std::to_string(rows_) + "x" + std::to_string(cols_);
}

Matrix operator+(Matrix a, const Matrix& b) {
  REPRO_CHECK(a.same_shape(b), "operator+: shape mismatch");
  return a += b;
}
Matrix operator-(Matrix a, const Matrix& b) {
  REPRO_CHECK(a.same_shape(b), "operator-: shape mismatch");
  return a -= b;
}
// Scaling by a scalar is defined for every shape; no precondition to state.
// repro-lint: allow(contracts)
Matrix operator*(Matrix a, double alpha) { return a *= alpha; }
// repro-lint: allow(contracts)
Matrix operator*(double alpha, Matrix a) { return a *= alpha; }

Vector matvec(const Matrix& a, std::span<const double> x) {
  REPRO_CHECK_DIM(x.size(), a.cols(), "matvec: x length vs columns");
  if (x.size() != a.cols()) throw std::invalid_argument("matvec size");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = dot(a.row(i), x);
  return y;
}

Vector matvec_transposed(const Matrix& a, std::span<const double> x) {
  REPRO_CHECK_DIM(x.size(), a.rows(), "matvec_transposed: x length vs rows");
  if (x.size() != a.rows()) throw std::invalid_argument("matvec_transposed");
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) axpy(x[i], a.row(i), y);
  return y;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  REPRO_CHECK(a.same_shape(b), "max_abs_diff: shape mismatch");
  if (!a.same_shape(b)) throw std::invalid_argument("max_abs_diff shape");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

// Defined for every shape (the empty maximum is 0); no precondition.
// repro-lint: allow(contracts)
double one_norm(const Matrix& a) {
  Vector colsum(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) colsum[j] += std::abs(row[j]);
  }
  double m = 0.0;
  for (double c : colsum) m = std::max(m, c);
  return m;
}

}  // namespace repro::linalg
