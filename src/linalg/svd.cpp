#include "linalg/svd.h"

#include "linalg/gemm.h"

#include "util/telemetry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace repro::linalg {
namespace {

double sign_like(double a, double b) { return b >= 0.0 ? std::abs(a) : -std::abs(a); }

// Golub–Reinsch SVD of an m x n matrix with m >= n is the classical
// formulation; this implementation also tolerates m < n via the transpose
// wrapper in svd().  `a` is overwritten with U (m x n); w receives the n
// singular values; v (n x n) receives the right singular vectors.
bool golub_reinsch(Matrix& a, Vector& w, Matrix& v, bool want_uv) {
  const int m = static_cast<int>(a.rows());
  const int n = static_cast<int>(a.cols());
  const double eps = std::numeric_limits<double>::epsilon();
  w.assign(n, 0.0);
  if (want_uv) v = Matrix(n, n);
  Vector rv1(n, 0.0);

  // --- Householder bidiagonalization ---
  double g = 0.0, scale = 0.0, anorm = 0.0;
  int l = 0;
  for (int i = 0; i < n; ++i) {
    l = i + 2;
    rv1[i] = scale * g;
    g = scale = 0.0;
    double s = 0.0;
    if (i < m) {
      for (int k = i; k < m; ++k) scale += std::abs(a(k, i));
      if (scale != 0.0) {
        for (int k = i; k < m; ++k) {
          a(k, i) /= scale;
          s += a(k, i) * a(k, i);
        }
        double f = a(i, i);
        g = -sign_like(std::sqrt(s), f);
        const double h = f * g - s;
        a(i, i) = f - g;
        for (int j = l - 1; j < n; ++j) {
          s = 0.0;
          for (int k = i; k < m; ++k) s += a(k, i) * a(k, j);
          f = s / h;
          for (int k = i; k < m; ++k) a(k, j) += f * a(k, i);
        }
        for (int k = i; k < m; ++k) a(k, i) *= scale;
      }
    }
    w[i] = scale * g;
    g = scale = 0.0;
    s = 0.0;
    if (i + 1 <= m && i + 1 != n) {
      for (int k = l - 1; k < n; ++k) scale += std::abs(a(i, k));
      if (scale != 0.0) {
        for (int k = l - 1; k < n; ++k) {
          a(i, k) /= scale;
          s += a(i, k) * a(i, k);
        }
        double f = a(i, l - 1);
        g = -sign_like(std::sqrt(s), f);
        const double h = f * g - s;
        a(i, l - 1) = f - g;
        for (int k = l - 1; k < n; ++k) rv1[k] = a(i, k) / h;
        for (int j = l - 1; j < m; ++j) {
          s = 0.0;
          for (int k = l - 1; k < n; ++k) s += a(j, k) * a(i, k);
          for (int k = l - 1; k < n; ++k) a(j, k) += s * rv1[k];
        }
        for (int k = l - 1; k < n; ++k) a(i, k) *= scale;
      }
    }
    anorm = std::max(anorm, std::abs(w[i]) + std::abs(rv1[i]));
  }

  // --- Accumulate right-hand transformations ---
  if (want_uv) {
    for (int i = n - 1; i >= 0; --i) {
      if (i < n - 1) {
        if (g != 0.0) {
          for (int j = l; j < n; ++j) v(j, i) = (a(i, j) / a(i, l)) / g;
          for (int j = l; j < n; ++j) {
            double s = 0.0;
            for (int k = l; k < n; ++k) s += a(i, k) * v(k, j);
            for (int k = l; k < n; ++k) v(k, j) += s * v(k, i);
          }
        }
        for (int j = l; j < n; ++j) v(i, j) = v(j, i) = 0.0;
      }
      v(i, i) = 1.0;
      g = rv1[i];
      l = i;
    }
  }

  // --- Accumulate left-hand transformations ---
  if (want_uv) {
    for (int i = std::min(m, n) - 1; i >= 0; --i) {
      l = i + 1;
      g = w[i];
      for (int j = l; j < n; ++j) a(i, j) = 0.0;
      if (g != 0.0) {
        g = 1.0 / g;
        for (int j = l; j < n; ++j) {
          double s = 0.0;
          for (int k = l; k < m; ++k) s += a(k, i) * a(k, j);
          const double f = (s / a(i, i)) * g;
          for (int k = i; k < m; ++k) a(k, j) += f * a(k, i);
        }
        for (int j = i; j < m; ++j) a(j, i) *= g;
      } else {
        for (int j = i; j < m; ++j) a(j, i) = 0.0;
      }
      a(i, i) += 1.0;
    }
  }

  // --- Diagonalization of the bidiagonal form ---
  const int max_iterations = 60;
  std::uint64_t sweeps = 0;  // QR iterations over all singular values
  for (int k = n - 1; k >= 0; --k) {
    for (int its = 0; its < max_iterations; ++its) {
      ++sweeps;
      bool flag = true;
      int nm = 0;
      int ll = 0;
      for (ll = k; ll >= 0; --ll) {
        nm = ll - 1;
        if (ll == 0 || std::abs(rv1[ll]) <= eps * anorm) {
          flag = false;
          break;
        }
        if (std::abs(w[nm]) <= eps * anorm) break;
      }
      if (flag) {
        // Cancellation of rv1[ll] for w[nm] ~ 0.
        double c = 0.0, s = 1.0;
        for (int i = ll; i < k + 1; ++i) {
          double f = s * rv1[i];
          rv1[i] = c * rv1[i];
          if (std::abs(f) <= eps * anorm) break;
          g = w[i];
          double h = std::hypot(f, g);
          w[i] = h;
          h = 1.0 / h;
          c = g * h;
          s = -f * h;
          if (want_uv) {
            for (int j = 0; j < m; ++j) {
              const double y = a(j, nm);
              const double z = a(j, i);
              a(j, nm) = y * c + z * s;
              a(j, i) = z * c - y * s;
            }
          }
        }
      }
      double z = w[k];
      if (ll == k) {
        // Converged; enforce non-negative singular value.
        if (z < 0.0) {
          w[k] = -z;
          if (want_uv) {
            for (int j = 0; j < n; ++j) v(j, k) = -v(j, k);
          }
        }
        break;
      }
      if (its == max_iterations - 1) {
        util::telemetry::count("linalg.svd.sweeps", sweeps);
        return false;
      }

      // Shift from bottom 2x2 minor.
      double x = w[ll];
      nm = k - 1;
      double y = w[nm];
      g = rv1[nm];
      double h = rv1[k];
      double f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y);
      g = std::hypot(f, 1.0);
      f = ((x - z) * (x + z) + h * ((y / (f + sign_like(g, f))) - h)) / x;
      double c = 1.0, s = 1.0;
      for (int j = ll; j <= nm; ++j) {
        const int i = j + 1;
        g = rv1[i];
        y = w[i];
        h = s * g;
        g = c * g;
        z = std::hypot(f, h);
        rv1[j] = z;
        c = f / z;
        s = h / z;
        f = x * c + g * s;
        g = g * c - x * s;
        h = y * s;
        y *= c;
        if (want_uv) {
          for (int jj = 0; jj < n; ++jj) {
            x = v(jj, j);
            z = v(jj, i);
            v(jj, j) = x * c + z * s;
            v(jj, i) = z * c - x * s;
          }
        }
        z = std::hypot(f, h);
        w[j] = z;
        if (z != 0.0) {
          z = 1.0 / z;
          c = f * z;
          s = h * z;
        }
        f = c * g + s * y;
        x = c * y - s * g;
        if (want_uv) {
          for (int jj = 0; jj < m; ++jj) {
            y = a(jj, j);
            z = a(jj, i);
            a(jj, j) = y * c + z * s;
            a(jj, i) = z * c - y * s;
          }
        }
      }
      rv1[ll] = 0.0;
      rv1[k] = f;
      w[k] = x;
    }
  }
  util::telemetry::count("linalg.svd.sweeps", sweeps);
  return true;
}

// Sorts singular values descending, permuting U/V columns accordingly.
void sort_descending(SvdResult& r, bool want_uv) {
  const std::size_t k = r.s.size();
  std::vector<int> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return r.s[a] > r.s[b]; });
  Vector s_sorted(k);
  for (std::size_t i = 0; i < k; ++i) s_sorted[i] = r.s[order[i]];
  if (want_uv) {
    Matrix u_sorted(r.u.rows(), k), v_sorted(r.v.rows(), k);
    for (std::size_t i = 0; i < k; ++i) {
      u_sorted.set_column(i, r.u.column(order[i]));
      v_sorted.set_column(i, r.v.column(order[i]));
    }
    r.u = std::move(u_sorted);
    r.v = std::move(v_sorted);
  }
  r.s = std::move(s_sorted);
}

}  // namespace

// repro-lint: allow(contracts) -- the SVD exists for every shape
SvdResult svd(Matrix a, bool want_uv) {
  const util::telemetry::Span span("linalg.svd");
  util::telemetry::count("linalg.svd.calls");
  SvdResult out;
  const bool transposed = a.rows() < a.cols();
  if (transposed) a = a.transposed();

  Matrix v;
  out.converged = golub_reinsch(a, out.s, v, want_uv);
  if (want_uv) {
    if (transposed) {
      out.u = std::move(v);  // U of A = V of A^T
      out.v = std::move(a);
    } else {
      out.u = std::move(a);
      out.v = std::move(v);
    }
  } else {
    out.u = Matrix();
    out.v = Matrix();
  }
  sort_descending(out, want_uv);
  return out;
}

std::size_t svd_rank(const SvdResult& f, std::size_t m, std::size_t n,
                     double rel_tol) {
  if (f.s.empty() || f.s.front() == 0.0) return 0;
  const double tol =
      (rel_tol >= 0.0)
          ? rel_tol * f.s.front()
          : static_cast<double>(std::max(m, n)) *
                std::numeric_limits<double>::epsilon() * f.s.front();
  std::size_t r = 0;
  for (double sv : f.s) {
    if (sv > tol) ++r;
  }
  return r;
}

Matrix svd_reconstruct(const SvdResult& f) {
  Matrix us = f.u;
  for (std::size_t j = 0; j < f.s.size(); ++j) {
    for (std::size_t i = 0; i < us.rows(); ++i) us(i, j) *= f.s[j];
  }
  return multiply_bt(us, f.v);
}

}  // namespace repro::linalg
