// Randomized eigendecomposition for PSD matrices (Halko/Martinsson/Tropp
// style randomized range finder + Rayleigh–Ritz).
//
// The selection pipeline needs the dominant eigenpairs of the path Gram
// matrix W = A A^T (U columns = left singular vectors of A).  For n ~ 2000
// the dense tred2/tql2 pair costs minutes; the randomized method captures
// the full numerically-nonzero spectrum in a few threaded GEMMs:
//
//   Y = W Omega;  Q = orth(Y);  [power iterations: Q = orth(W Q)]
//   T = Q^T W Q;  T = V L V^T;  U = Q V.
//
// Because W is PSD and the target rank of path Grams is far below n (the
// whole point of the paper), `k` starts modest and doubles adaptively until
// the residual spectrum is below tolerance, so the caller never guesses the
// rank in advance.
#pragma once

#include <cstdint>

#include "linalg/matrix.h"

namespace repro::linalg {

struct RandomizedEigOptions {
  std::size_t initial_rank = 128;  // starting sketch size (plus oversampling)
  std::size_t oversample = 16;
  int power_iterations = 2;
  // Spectrum is considered exhausted when the smallest captured eigenvalue
  // drops below rel_tol * largest (relative to the PSD scale).
  double rel_tol = 1e-12;
  // When false, runs a single pass at initial_rank + oversample instead of
  // doubling until the spectrum is exhausted (callers that know how many
  // leading pairs they need).
  bool adaptive = true;
  std::uint64_t seed = 0xe16;
};

struct RandomizedEigResult {
  Vector values;   // descending, clamped >= 0; size = captured rank k
  Matrix vectors;  // n x k, orthonormal columns
  bool spectrum_exhausted = true;  // smallest value below tolerance (or k = n)
};

RandomizedEigResult randomized_eig_psd(const Matrix& w,
                                       const RandomizedEigOptions& options = {});

}  // namespace repro::linalg
