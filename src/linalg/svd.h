// Thin singular value decomposition, A = U diag(s) V^T.
//
// Golub–Reinsch: Householder bidiagonalization followed by implicit-shift QR
// on the bidiagonal, accumulating U and V.  This is the workhorse behind the
// paper's rank / effective-rank computations (Section 4.2) and behind
// Algorithm 2's U_r extraction, so it must be robust for matrices up to a few
// thousand rows/columns with widely spread singular values.
#pragma once

#include "linalg/matrix.h"

namespace repro::linalg {

struct SvdResult {
  Matrix u;          // m x k, orthonormal columns (k = min(m, n))
  Vector s;          // k singular values, sorted non-increasing, >= 0
  Matrix v;          // n x k, orthonormal columns
  bool converged = true;
};

// Computes the thin SVD.  Matrices with rows < cols are handled by
// transposition.  `want_uv=false` skips accumulating the singular vectors
// (used when only singular values / rank are needed, e.g. Figure 2).
SvdResult svd(Matrix a, bool want_uv = true);

// Numerical rank: number of singular values above
// tol = max(m, n) * eps * s[0] (or rel_tol * s[0] if rel_tol >= 0).
std::size_t svd_rank(const SvdResult& f, std::size_t m, std::size_t n,
                     double rel_tol = -1.0);

// Reconstruct U diag(s) V^T (test / diagnostics helper).
Matrix svd_reconstruct(const SvdResult& f);

}  // namespace repro::linalg
