// Higher-level solvers built on the decompositions: pseudo-inverse, rank,
// general least squares, and the "Gram solve" kernel used throughout the
// selection algorithms.
#pragma once

#include "linalg/matrix.h"

namespace repro::linalg {

// Numerical rank via SVD (singular values above max(m,n)*eps*s_max, or an
// explicit relative tolerance).
std::size_t rank(const Matrix& a, double rel_tol = -1.0);

// Moore–Penrose pseudo-inverse via SVD with singular-value thresholding.
Matrix pseudo_inverse(const Matrix& a, double rel_tol = -1.0);

// Minimum-norm least-squares solution of A x = b for any shape/rank (SVD
// based).  This is the general fallback; qr_least_squares is faster for
// tall full-rank systems.
Vector lstsq(const Matrix& a, std::span<const double> b, double rel_tol = -1.0);

// Solves (S + jitter I) X = B for symmetric positive semi-definite S using
// regularized Cholesky; the workhorse for A_r A_r^T systems in the predictor
// and error model.
Matrix spd_solve(const Matrix& s, const Matrix& b);
Vector spd_solve(const Matrix& s, Vector b);

}  // namespace repro::linalg
