// Higher-level solvers built on the decompositions: pseudo-inverse, rank,
// general least squares, and the "Gram solve" kernel used throughout the
// selection algorithms.
#pragma once

#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace repro::linalg {

// Numerical rank via SVD (singular values above max(m,n)*eps*s_max, or an
// explicit relative tolerance).
std::size_t rank(const Matrix& a, double rel_tol = -1.0);

// Moore–Penrose pseudo-inverse via SVD with singular-value thresholding.
Matrix pseudo_inverse(const Matrix& a, double rel_tol = -1.0);

// Minimum-norm least-squares solution of A x = b for any shape/rank (SVD
// based).  This is the general fallback; qr_least_squares is faster for
// tall full-rank systems.
Vector lstsq(const Matrix& a, std::span<const double> b, double rel_tol = -1.0);

// Solves (S + jitter I) X = B for symmetric positive semi-definite S using
// regularized Cholesky; the workhorse for A_r A_r^T systems in the predictor
// and error model.
Matrix spd_solve(const Matrix& s, const Matrix& b);
Vector spd_solve(const Matrix& s, Vector b);

// Hager/Higham estimate of ||S^{-1}||_1 from a Cholesky factorization of the
// symmetric S (a few solves instead of an explicit inverse; the standard
// LAPACK-xPOCON approach).  Returns +inf when the factorization is not ok.
double inverse_one_norm_estimate(const CholFactors& f);

// 1-norm condition-number estimate cond_1(S) = ||S||_1 * est(||S^{-1}||_1)
// for symmetric positive definite S; +inf when S is not factorizable.
double condest_spd(const Matrix& s);

// Robust Gram solve for noisy-silicon calibration: reports conditioning and
// the ridge it had to apply instead of throwing.  Policy:
//   1. factor S; if cond_1(S) <= max_condition, solve plainly;
//   2. otherwise (or when the factorization fails) retry with a growing
//      diagonal ridge until the regularized system is well-conditioned;
//   3. ok == false only for pathological input (NaN/Inf) that no ridge fixes.
// `condition` always refers to the original S (+inf if unfactorizable), so
// callers can report how sick the measured Gram matrix was.
struct SpdSolveInfo {
  bool ok = false;
  bool regularized = false;  // a ridge was applied
  double ridge = 0.0;        // diagonal ridge actually used
  double condition = 0.0;    // cond_1 estimate of the *original* S
};
Matrix spd_solve_robust(const Matrix& s, const Matrix& b,
                        SpdSolveInfo* info = nullptr,
                        double max_condition = 1e12);
Vector spd_solve_robust(const Matrix& s, const Vector& b,
                        SpdSolveInfo* info = nullptr,
                        double max_condition = 1e12);

}  // namespace repro::linalg
