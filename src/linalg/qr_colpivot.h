// QR factorization with column pivoting (Businger–Golub), the subset-selection
// engine behind the paper's Algorithm 2: QR-with-column-pivoting on U_r^T
// ranks the columns (= candidate paths) by how much new "direction" each adds,
// and the first r pivot columns identify the representative rows of A.
#pragma once

#include "linalg/matrix.h"

namespace repro::linalg {

struct QrcpResult {
  Matrix qr;                // compact Householder factorization of A * P
  Vector tau;               // reflector coefficients
  std::vector<int> perm;    // column permutation: pivot k selected column perm[k]
  std::vector<double> rdiag_abs;  // |R(k,k)| in pivot order (non-increasing-ish)
};

// Factorize A P = Q R choosing at each step the remaining column of largest
// updated 2-norm.  `max_steps` bounds the number of pivot steps (0 = full);
// Algorithm 2 only needs the first r pivots, so stopping early saves work.
QrcpResult qr_colpivot(Matrix a, std::size_t max_steps = 0);

// Numerical rank from a pivoted QR: number of |R(k,k)| above
// tol = max(m,n) * eps * |R(0,0)| (or an explicit absolute tolerance).
std::size_t qrcp_rank(const QrcpResult& f, double abs_tol = -1.0);

}  // namespace repro::linalg
