// Matrix-matrix multiply kernels.
//
// The experiment pipeline multiplies matrices up to a few thousand rows and
// columns (e.g. the path Gram matrix A A^T for ~3.5k paths x ~1.7k
// parameters).  A cache-blocked i-k-j kernel with optional multithreading is
// plenty: it reaches a few GFLOP/s, which keeps full-scale tables in the
// minutes range without pulling in an external BLAS.
#pragma once

#include <cstddef>

#include "linalg/matrix.h"

namespace repro::linalg {

// C = A * B
Matrix multiply(const Matrix& a, const Matrix& b);
// C = A * B^T  (computed without materializing B^T)
Matrix multiply_bt(const Matrix& a, const Matrix& b);
// C = A^T * B
Matrix multiply_at(const Matrix& a, const Matrix& b);
// Symmetric rank-k update (SYRK): returns A * A^T, exactly symmetric by
// construction — only the lower triangle is computed, in cache-sized tile
// pairs, then mirrored (~half the flops of the full-GEMM route; the saving
// is recorded under linalg.syrk.flops_saved).
Matrix gram(const Matrix& a);
// A^T * A (same half-triangle-and-mirror scheme)
Matrix gram_t(const Matrix& a);

// Thread configuration for large products.  Kernels run on the shared
// util::ThreadPool; these forward to util::set_threads / util::thread_count
// and are kept for source compatibility — prefer the util API directly.
void set_gemm_threads(std::size_t n);
std::size_t gemm_threads();

}  // namespace repro::linalg
