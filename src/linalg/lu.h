// LU factorization with partial pivoting, plus solve / inverse / determinant.
//
// Used for small-to-medium square systems (e.g. the r x r normal-equation
// systems inside the Theorem-2 predictor when the Gram block is well
// conditioned, and for test oracles).
#pragma once

#include "linalg/matrix.h"

namespace repro::linalg {

struct LuFactors {
  Matrix lu;                  // packed L (unit diagonal, below) and U (above)
  std::vector<int> pivots;    // row permutation applied, pivots[k] = row swapped into k
  int sign = 1;               // permutation sign, for determinants
  bool singular = false;      // exact zero pivot encountered
};

LuFactors lu_factor(Matrix a);

// Solve A x = b given factors.  Throws if factors.singular.
Vector lu_solve(const LuFactors& f, Vector b);
// Solve for multiple right-hand sides (columns of B).
Matrix lu_solve(const LuFactors& f, const Matrix& b);

Matrix inverse(const Matrix& a);
double determinant(const Matrix& a);

}  // namespace repro::linalg
