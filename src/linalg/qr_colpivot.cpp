#include "linalg/qr_colpivot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/contracts.h"
#include "util/telemetry.h"

namespace repro::linalg {

QrcpResult qr_colpivot(Matrix a, std::size_t max_steps) {
  REPRO_CHECK(!a.empty() || max_steps == 0,
              "qr_colpivot: empty input admits no pivot steps");
  util::telemetry::count("linalg.qr_colpivot.calls");
  const std::size_t m = a.rows(), n = a.cols();
  const std::size_t kmax0 = std::min(m, n);
  const std::size_t kmax =
      (max_steps == 0) ? kmax0 : std::min(kmax0, max_steps);

  QrcpResult out;
  out.perm.resize(n);
  std::iota(out.perm.begin(), out.perm.end(), 0);
  out.tau.assign(kmax, 0.0);
  out.rdiag_abs.assign(kmax, 0.0);

  // Running squared column norms of the trailing submatrix, updated after
  // each reflector (with periodic recomputation for numerical safety, per
  // LINPACK's downdating recipe).
  Vector colnorm2(n), colnorm2_ref(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < m; ++i) s += a(i, j) * a(i, j);
    colnorm2[j] = colnorm2_ref[j] = s;
  }

  for (std::size_t k = 0; k < kmax; ++k) {
    // Pivot: remaining column with the largest updated norm.
    std::size_t piv = k;
    for (std::size_t j = k + 1; j < n; ++j) {
      if (colnorm2[j] > colnorm2[piv]) piv = j;
    }
    if (piv != k) {
      a.swap_cols(piv, k);
      std::swap(colnorm2[piv], colnorm2[k]);
      std::swap(colnorm2_ref[piv], colnorm2_ref[k]);
      std::swap(out.perm[piv], out.perm[k]);
    }

    // Householder reflector on column k (rows k..m-1).
    double normx = 0.0;
    for (std::size_t i = k; i < m; ++i) normx = std::hypot(normx, a(i, k));
    if (normx == 0.0) {
      out.tau[k] = 0.0;
      out.rdiag_abs[k] = 0.0;
      continue;
    }
    const double alpha = a(k, k);
    const double beta = (alpha >= 0.0) ? -normx : normx;
    const double v0 = alpha - beta;
    const double tau = -v0 / beta;
    const double inv_v0 = 1.0 / v0;
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) *= inv_v0;
    a(k, k) = beta;
    out.tau[k] = tau;
    out.rdiag_abs[k] = std::abs(beta);

    // Apply to trailing columns and downdate their norms.
    for (std::size_t c = k + 1; c < n; ++c) {
      double s = a(k, c);
      for (std::size_t i = k + 1; i < m; ++i) s += a(i, k) * a(i, c);
      s *= tau;
      a(k, c) -= s;
      for (std::size_t i = k + 1; i < m; ++i) a(i, c) -= s * a(i, k);

      // Norm downdate: ||col||^2 -= R(k,c)^2, with refresh when cancellation
      // makes the running value unreliable.
      const double rkc = a(k, c);
      double updated = colnorm2[c] - rkc * rkc;
      if (updated < 0.05 * colnorm2_ref[c] || updated <= 0.0) {
        double s2 = 0.0;
        for (std::size_t i = k + 1; i < m; ++i) s2 += a(i, c) * a(i, c);
        updated = s2;
        colnorm2_ref[c] = s2;
      }
      colnorm2[c] = updated;
    }
  }
  out.qr = std::move(a);
  return out;
}

std::size_t qrcp_rank(const QrcpResult& f, double abs_tol) {
  if (f.rdiag_abs.empty()) return 0;
  double tol = abs_tol;
  if (tol < 0.0) {
    const double dim = static_cast<double>(std::max(f.qr.rows(), f.qr.cols()));
    tol = dim * std::numeric_limits<double>::epsilon() * f.rdiag_abs.front();
  }
  std::size_t r = 0;
  for (double d : f.rdiag_abs) {
    if (d > tol) ++r;
    else break;  // rdiag is (approximately) non-increasing under pivoting
  }
  return r;
}

}  // namespace repro::linalg
