#include "linalg/trsm.h"

#include <algorithm>
#include <stdexcept>

#include "linalg/kernel_telemetry.h"
#include "linalg/simd/kernels.h"
#include "util/contracts.h"
#include "util/stopwatch.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace repro::linalg {
namespace {

// Forward substitution on the RHS column slab [cb, ce).  Row j of L is
// applied to the whole slab before row j+1 is touched; each column's
// floating-point sequence (including the final division, never a reciprocal
// multiply) is independent of the slab boundaries, so chunking cannot
// change a single bit of the result.
//
// SIMD tiers route the row update through the tier's fused axpy kernel with
// alpha = -ljk; the scalar tier keeps the legacy mul-then-subtract loop
// verbatim, so REPRO_KERNEL=scalar stays bit-identical to the pre-SIMD
// solver (IEEE-754 negation is exact, but FMA fuses the multiply-add, so
// the SIMD result sits inside the documented tier tolerance instead).
//
// use_simd is decided by the caller from the WHOLE problem (b.cols()), never
// from the slab width: a thread-count-dependent slab partition must not be
// able to route a narrow trailing slab onto a different code path (DESIGN.md
// §11 thread-count invariance).  Within axpy every element is one fused
// multiply-add whatever its offset — the tier tails use std::fma for exactly
// this reason — so the slab boundaries stay bitwise irrelevant.
void solve_slab(const Matrix& l, Matrix& b, std::size_t cb, std::size_t ce,
                bool use_simd) {
  const std::size_t r = l.rows();
  const std::size_t w = ce - cb;
  const simd::KernelOps& t = simd::ops();
  for (std::size_t j = 0; j < r; ++j) {
    double* bj = &b(j, cb);
    const double* lj = l.row(j).data();
    for (std::size_t k = 0; k < j; ++k) {
      const double ljk = lj[k];
      const double* bk = &b(k, cb);
      if (use_simd) {
        t.axpy(w, -ljk, bk, bj);
      } else {
        for (std::size_t c = 0; c < w; ++c) bj[c] -= ljk * bk[c];
      }
    }
    const double ljj = lj[j];
    for (std::size_t c = 0; c < w; ++c) bj[c] /= ljj;
  }
}

}  // namespace

void trsm_lower_inplace(const Matrix& l, Matrix& b) {
  REPRO_CHECK_DIM(l.rows(), l.cols(), "trsm_lower_inplace: square factor");
  REPRO_CHECK_DIM(b.rows(), l.rows(), "trsm_lower_inplace: rhs rows");
  if (l.rows() != l.cols()) {
    throw std::invalid_argument("trsm_lower_inplace: factor " +
                                l.shape_string() + " not square");
  }
  if (b.rows() != l.rows()) {
    throw std::invalid_argument("trsm_lower_inplace: rhs " + b.shape_string() +
                                " vs factor " + l.shape_string());
  }
  const std::size_t r = l.rows(), n = b.cols();
  if (r == 0 || n == 0) return;
  for (std::size_t j = 0; j < r; ++j) {
    if (l(j, j) == 0.0) {
      throw std::invalid_argument("trsm_lower_inplace: zero diagonal pivot");
    }
  }
  util::telemetry::count("linalg.trsm.calls");
  util::telemetry::count("linalg.trsm.flops", n * r * r);
  const util::telemetry::Span span("linalg.trsm");
  const util::Stopwatch sw;

  // One SIMD decision for the whole solve, keyed on the full RHS width so it
  // cannot vary with how the thread pool slices the columns.
  const bool use_simd =
      simd::ops().tier != simd::Tier::kScalar && n >= 8;
  const std::size_t nt = util::thread_count();
  if (nt <= 1 || n * r * r <= 2'000'000 || n <= 1) {
    solve_slab(l, b, 0, n, use_simd);
    record_kernel_throughput("trsm", n * r * r, sw.seconds(), 1);
    return;
  }
  // Wide-enough slabs amortize streaming L once per slab; ~4 slabs per
  // thread keeps the pool load-balanced without per-column overhead.  The
  // grain is rounded up to the widest vector width so interior slab
  // boundaries land on lane boundaries for every tier (belt-and-braces on
  // top of the offset-independent axpy).
  const std::size_t grain =
      (std::max<std::size_t>(32, n / std::max<std::size_t>(1, 4 * nt)) + 7) /
      8 * 8;
  util::parallel_for(0, n, grain, [&](std::size_t cb, std::size_t ce) {
    solve_slab(l, b, cb, ce, use_simd);
  });
  record_kernel_throughput("trsm", n * r * r, sw.seconds(), nt);
}

}  // namespace repro::linalg
