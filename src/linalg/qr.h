// Householder QR factorization and QR-based least squares.
//
// Compact (LAPACK-style) storage: the factor matrix holds R in its upper
// triangle and the Householder vectors below the diagonal; tau holds the
// reflector scalings.
#pragma once

#include "linalg/matrix.h"

namespace repro::linalg {

struct QrFactors {
  Matrix qr;     // m x n compact factorization, m >= n not required
  Vector tau;    // min(m, n) reflector coefficients
};

QrFactors qr_factor(Matrix a);

// Apply Q^T (resp. Q) to a length-m vector in place.
void qr_apply_qt(const QrFactors& f, std::span<double> v);
void qr_apply_q(const QrFactors& f, std::span<double> v);

// Extract the thin Q (m x min(m,n)) and R (min(m,n) x n) factors explicitly.
Matrix qr_thin_q(const QrFactors& f);
Matrix qr_r(const QrFactors& f);

// Minimum-norm-residual solve of the overdetermined system A x = b via QR.
// Requires a.rows() >= a.cols() and numerically full column rank.
Vector qr_least_squares(const Matrix& a, std::span<const double> b);

}  // namespace repro::linalg
