#include "linalg/gemm.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/contracts.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace repro::linalg {
namespace {

// One counter pair for all four GEMM entry points: call count and the
// multiply-add FLOP estimate (2 * m * k * n; the Gram variants count the
// triangle they actually compute).  Incremented once per call, never per
// element, so the MC hot loop pays one relaxed-atomic bump per chunk GEMM.
void count_gemm(std::size_t flops) {
  util::telemetry::count("linalg.gemm.calls");
  util::telemetry::count("linalg.gemm.flops", flops);
}

// Counter trio for the SYRK-style symmetric kernels: the flops actually
// spent on the computed triangle (k * n * (n+1): n(n+1)/2 dots of 2k flops)
// and the flops the symmetry saved versus the 2*k*n^2 full-GEMM route.
void count_syrk(std::size_t k, std::size_t n) {
  util::telemetry::count("linalg.syrk.calls");
  util::telemetry::count("linalg.syrk.flops", k * n * (n + 1));
  util::telemetry::count("linalg.syrk.flops_saved", k * n * (n - 1));
}

// Runs fn(begin, end) over [0, total) through the shared thread pool.  Every
// output row is computed by exactly one chunk with the same sequential inner
// loops as the serial path, so results are bit-identical for any thread
// count.  Falls back to inline execution for small problems where scheduling
// overhead would dominate.
template <typename Fn>
void parallel_rows(std::size_t total, std::size_t flops_per_row, Fn&& fn) {
  const std::size_t nt = util::thread_count();
  if (total * flops_per_row <= 4'000'000 || nt <= 1 || total <= 1) {
    fn(std::size_t{0}, total);
    return;
  }
  // ~4 chunks per thread for dynamic load balance without per-row overhead.
  const std::size_t grain = std::max<std::size_t>(1, total / (4 * nt));
  util::parallel_for(0, total, grain, fn);
}

}  // namespace

void set_gemm_threads(std::size_t n) { util::set_threads(n); }
std::size_t gemm_threads() { return util::thread_count(); }

Matrix multiply(const Matrix& a, const Matrix& b) {
  REPRO_CHECK_DIM(a.cols(), b.rows(), "multiply: inner dimensions");
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("multiply: " + a.shape_string() + " * " +
                                b.shape_string());
  }
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  count_gemm(2 * m * k * n);
  Matrix c(m, n);
  parallel_rows(m, k * n, [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      double* ci = c.row(i).data();
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = a(i, p);
        if (aip == 0.0) continue;  // sensitivity matrices are fairly sparse
        const double* bp = b.row(p).data();
        for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  });
  return c;
}

Matrix multiply_bt(const Matrix& a, const Matrix& b) {
  REPRO_CHECK_DIM(a.cols(), b.cols(), "multiply_bt: inner dimensions");
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("multiply_bt: " + a.shape_string() + " * " +
                                b.shape_string() + "^T");
  }
  const std::size_t m = a.rows(), n = b.rows();
  count_gemm(2 * m * a.cols() * n);
  Matrix c(m, n);
  parallel_rows(m, a.cols() * n, [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        c(i, j) = dot(a.row(i), b.row(j));
      }
    }
  });
  return c;
}

Matrix multiply_at(const Matrix& a, const Matrix& b) {
  REPRO_CHECK_DIM(a.rows(), b.rows(), "multiply_at: inner dimensions");
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("multiply_at: " + a.shape_string() + "^T * " +
                                b.shape_string());
  }
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  count_gemm(2 * m * k * n);
  // Accumulate row blocks of the output; parallelize over output rows by
  // striping the k-loop contributions into thread-local buffers would cost
  // memory, so instead parallelize over output rows with a transposed access
  // of A (strided reads of A are the price; k is the long dimension).
  Matrix c(m, n);
  parallel_rows(m, k * n / std::max<std::size_t>(m, 1) + n,
                [&](std::size_t rb, std::size_t re) {
                  for (std::size_t i = rb; i < re; ++i) {
                    double* ci = c.row(i).data();
                    for (std::size_t p = 0; p < k; ++p) {
                      const double api = a(p, i);
                      if (api == 0.0) continue;
                      const double* bp = b.row(p).data();
                      for (std::size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
                    }
                  }
                });
  return c;
}

// A A^T exists for every shape; no dimension precondition to state.
// repro-lint: allow(contracts)
Matrix gram(const Matrix& a) {
  const std::size_t n = a.rows(), k = a.cols();
  count_syrk(k, n);
  Matrix c(n, n);
  // SYRK: compute only the lower triangle as independent kTile x kTile tile
  // pairs, then mirror.  Each cell is one dot(a.row(i), a.row(j)) — dot is
  // argument-symmetric bit-for-bit, so the mirrored matrix matches the full
  // product exactly — and is written by exactly one tile pair, so the result
  // does not depend on the thread count.  The flattened pair list load-
  // balances the triangle instead of handing one chunk the long first rows.
  constexpr std::size_t kTile = 64;
  const std::size_t ntiles = (n + kTile - 1) / kTile;
  const std::size_t npairs = ntiles * (ntiles + 1) / 2;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(npairs);
  for (std::size_t ti = 0; ti < ntiles; ++ti) {
    for (std::size_t tj = 0; tj <= ti; ++tj) pairs.emplace_back(ti, tj);
  }
  const auto run_pairs = [&](std::size_t pb, std::size_t pe) {
    for (std::size_t p = pb; p < pe; ++p) {
      const std::size_t ib = pairs[p].first * kTile;
      const std::size_t ie = std::min(n, ib + kTile);
      const std::size_t jb = pairs[p].second * kTile;
      const std::size_t je = std::min(n, jb + kTile);
      for (std::size_t i = ib; i < ie; ++i) {
        const std::size_t jhi = std::min(je, i + 1);
        for (std::size_t j = jb; j < jhi; ++j) {
          c(i, j) = dot(a.row(i), a.row(j));
        }
      }
    }
  };
  const std::size_t nt = util::thread_count();
  if (nt <= 1 || npairs <= 1 || k * n * n <= 8'000'000) {
    run_pairs(0, npairs);
  } else {
    const std::size_t grain = std::max<std::size_t>(1, npairs / (8 * nt));
    util::parallel_for(0, npairs, grain, run_pairs);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) c(i, j) = c(j, i);
  }
  return c;
}

// repro-lint: allow(contracts) -- A^T A exists for every shape
Matrix gram_t(const Matrix& a) {
  const std::size_t n = a.cols(), k = a.rows();
  count_syrk(k, n);
  Matrix c(n, n);
  // C += a_p^T a_p accumulated row-wise; parallelize over output rows using
  // the multiply_at access pattern restricted to the upper triangle.
  parallel_rows(n, k * n / 2 / std::max<std::size_t>(n, 1) + n,
                [&](std::size_t rb, std::size_t re) {
                  for (std::size_t i = rb; i < re; ++i) {
                    double* ci = c.row(i).data();
                    for (std::size_t p = 0; p < k; ++p) {
                      const double api = a(p, i);
                      if (api == 0.0) continue;
                      const double* row = a.row(p).data();
                      for (std::size_t j = i; j < n; ++j) ci[j] += api * row[j];
                    }
                  }
                });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  }
  return c;
}

}  // namespace repro::linalg
