#include "linalg/gemm.h"

#include <algorithm>
#include <stdexcept>

#include "util/contracts.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace repro::linalg {
namespace {

// One counter pair for all four GEMM entry points: call count and the
// multiply-add FLOP estimate (2 * m * k * n; the Gram variants count the
// triangle they actually compute).  Incremented once per call, never per
// element, so the MC hot loop pays one relaxed-atomic bump per chunk GEMM.
void count_gemm(std::size_t flops) {
  util::telemetry::count("linalg.gemm.calls");
  util::telemetry::count("linalg.gemm.flops", flops);
}

// Runs fn(begin, end) over [0, total) through the shared thread pool.  Every
// output row is computed by exactly one chunk with the same sequential inner
// loops as the serial path, so results are bit-identical for any thread
// count.  Falls back to inline execution for small problems where scheduling
// overhead would dominate.
template <typename Fn>
void parallel_rows(std::size_t total, std::size_t flops_per_row, Fn&& fn) {
  const std::size_t nt = util::thread_count();
  if (total * flops_per_row <= 4'000'000 || nt <= 1 || total <= 1) {
    fn(std::size_t{0}, total);
    return;
  }
  // ~4 chunks per thread for dynamic load balance without per-row overhead.
  const std::size_t grain = std::max<std::size_t>(1, total / (4 * nt));
  util::parallel_for(0, total, grain, fn);
}

}  // namespace

void set_gemm_threads(std::size_t n) { util::set_threads(n); }
std::size_t gemm_threads() { return util::thread_count(); }

Matrix multiply(const Matrix& a, const Matrix& b) {
  REPRO_CHECK_DIM(a.cols(), b.rows(), "multiply: inner dimensions");
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("multiply: " + a.shape_string() + " * " +
                                b.shape_string());
  }
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  count_gemm(2 * m * k * n);
  Matrix c(m, n);
  parallel_rows(m, k * n, [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      double* ci = &c(i, 0);
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = a(i, p);
        if (aip == 0.0) continue;  // sensitivity matrices are fairly sparse
        const double* bp = b.row(p).data();
        for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  });
  return c;
}

Matrix multiply_bt(const Matrix& a, const Matrix& b) {
  REPRO_CHECK_DIM(a.cols(), b.cols(), "multiply_bt: inner dimensions");
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("multiply_bt: " + a.shape_string() + " * " +
                                b.shape_string() + "^T");
  }
  const std::size_t m = a.rows(), n = b.rows();
  count_gemm(2 * m * a.cols() * n);
  Matrix c(m, n);
  parallel_rows(m, a.cols() * n, [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        c(i, j) = dot(a.row(i), b.row(j));
      }
    }
  });
  return c;
}

Matrix multiply_at(const Matrix& a, const Matrix& b) {
  REPRO_CHECK_DIM(a.rows(), b.rows(), "multiply_at: inner dimensions");
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("multiply_at: " + a.shape_string() + "^T * " +
                                b.shape_string());
  }
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  count_gemm(2 * m * k * n);
  // Accumulate row blocks of the output; parallelize over output rows by
  // striping the k-loop contributions into thread-local buffers would cost
  // memory, so instead parallelize over output rows with a transposed access
  // of A (strided reads of A are the price; k is the long dimension).
  Matrix c(m, n);
  parallel_rows(m, k * n / std::max<std::size_t>(m, 1) + n,
                [&](std::size_t rb, std::size_t re) {
                  for (std::size_t i = rb; i < re; ++i) {
                    double* ci = &c(i, 0);
                    for (std::size_t p = 0; p < k; ++p) {
                      const double api = a(p, i);
                      if (api == 0.0) continue;
                      const double* bp = b.row(p).data();
                      for (std::size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
                    }
                  }
                });
  return c;
}

// A A^T exists for every shape; no dimension precondition to state.
// repro-lint: allow(contracts)
Matrix gram(const Matrix& a) {
  const std::size_t n = a.rows();
  count_gemm(a.cols() * n * (n + 1));
  Matrix c(n, n);
  parallel_rows(n, a.cols() * n / 2, [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      for (std::size_t j = i; j < a.rows(); ++j) {
        c(i, j) = dot(a.row(i), a.row(j));
      }
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  }
  return c;
}

// repro-lint: allow(contracts) -- A^T A exists for every shape
Matrix gram_t(const Matrix& a) {
  const std::size_t n = a.cols(), k = a.rows();
  count_gemm(k * n * (n + 1));
  Matrix c(n, n);
  // C += a_p^T a_p accumulated row-wise; parallelize over output rows using
  // the multiply_at access pattern restricted to the upper triangle.
  parallel_rows(n, k * n / 2 / std::max<std::size_t>(n, 1) + n,
                [&](std::size_t rb, std::size_t re) {
                  for (std::size_t i = rb; i < re; ++i) {
                    double* ci = &c(i, 0);
                    for (std::size_t p = 0; p < k; ++p) {
                      const double api = a(p, i);
                      if (api == 0.0) continue;
                      const double* row = a.row(p).data();
                      for (std::size_t j = i; j < n; ++j) ci[j] += api * row[j];
                    }
                  }
                });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  }
  return c;
}

}  // namespace repro::linalg
