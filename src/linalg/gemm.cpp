#include "linalg/gemm.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "linalg/kernel_telemetry.h"
#include "linalg/simd/kernels.h"
#include "util/contracts.h"
#include "util/stopwatch.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace repro::linalg {
namespace {

// One counter pair for all four GEMM entry points: call count and the
// multiply-add FLOP estimate (2 * m * k * n; the Gram variants count the
// triangle they actually compute).  Incremented once per call, never per
// element, so the MC hot loop pays one relaxed-atomic bump per chunk GEMM.
void count_gemm(std::size_t flops) {
  util::telemetry::count("linalg.gemm.calls");
  util::telemetry::count("linalg.gemm.flops", flops);
}

// Counter trio for the SYRK-style symmetric kernels: the flops actually
// spent on the computed triangle (k * n * (n+1): n(n+1)/2 dots of 2k flops)
// and the flops the symmetry saved versus the 2*k*n^2 full-GEMM route.
void count_syrk(std::size_t k, std::size_t n) {
  util::telemetry::count("linalg.syrk.calls");
  util::telemetry::count("linalg.syrk.flops", k * n * (n + 1));
  util::telemetry::count("linalg.syrk.flops_saved", k * n * (n - 1));
}

// Runs fn(begin, end) over [0, total) through the shared thread pool.  Every
// output row is computed by exactly one chunk with the same sequential inner
// loops as the serial path, so results are bit-identical for any thread
// count.  Falls back to inline execution for small problems where scheduling
// overhead would dominate.
template <typename Fn>
void parallel_rows(std::size_t total, std::size_t flops_per_row, Fn&& fn) {
  const std::size_t nt = util::thread_count();
  if (total * flops_per_row <= 4'000'000 || nt <= 1 || total <= 1) {
    fn(std::size_t{0}, total);
    return;
  }
  // ~4 chunks per thread for dynamic load balance without per-row overhead.
  const std::size_t grain = std::max<std::size_t>(1, total / (4 * nt));
  util::parallel_for(0, total, grain, fn);
}

// True when the active SIMD tier should take this GEMM.  Tiny products stay
// on the legacy loops even under a SIMD tier: packing overhead dominates
// below ~64k flops (MC chunk solves), and the size test keeps the chosen
// code path — hence the exact bit pattern — a pure function of the shapes.
bool use_simd_gemm(std::size_t flops) {
  return simd::ops().tier != simd::Tier::kScalar && flops > 65'536;
}

// ---------------------------------------------------------------------------
// Packed-panel GEMM driver (SIMD tiers): C += A * B with A and B supplied as
// element accessors so one driver serves A*B, A^T*B, and A*B^T without
// materializing transposes.  B blocks are packed once into nr-column panels
// and shared by every row chunk; each chunk packs its own mr-row A panels
// and calls the tier micro-kernel on full tiles (edge tiles go through a
// zero-padded local buffer so the kernel never writes outside C).
//
// Determinism: the block geometry (kKc/kMc/kNc, mr/nr) is fixed per tier and
// every C element is written by exactly one row block, so results are
// bit-identical across thread counts — only across *tiers* do the FMA
// reassociations differ (DESIGN.md §11).
// ---------------------------------------------------------------------------

constexpr std::size_t kKc = 256;   // k-panel depth (A panel ~192 KiB in L2)
constexpr std::size_t kMc = 96;    // row block height; multiple of mr 4 and 8
constexpr std::size_t kNc = 1024;  // column block width (B panel ~2 MiB)

template <typename AGet, typename BGet>
void gemm_packed(std::size_t m, std::size_t k, std::size_t n,
                 const AGet& aget, const BGet& bget, Matrix& c) {
  const simd::KernelOps& t = simd::ops();
  const std::size_t mr = t.mr, nr = t.nr;
  const std::size_t ldc = c.cols();
  // One B-panel buffer per gemm call, fixed kKc*kNc geometry, reused across
  // every block — amortized over the whole product, not per-element work.
  // repro-lint: allow(hot-path-alloc)
  std::vector<double> bpack(kKc * kNc);
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    const std::size_t npanels = (nc + nr - 1) / nr;
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      double* bp = bpack.data();
      for (std::size_t jp = 0; jp < npanels; ++jp) {
        const std::size_t j0 = jc + jp * nr;
        const std::size_t jw = std::min(nr, jc + nc - j0);
        for (std::size_t p = 0; p < kc; ++p) {
          for (std::size_t j = 0; j < jw; ++j) *bp++ = bget(pc + p, j0 + j);
          for (std::size_t j = jw; j < nr; ++j) *bp++ = 0.0;
        }
      }
      const std::size_t nblocks = (m + kMc - 1) / kMc;
      const auto run_blocks = [&](std::size_t bb, std::size_t be) {
        // Chunk-local A panel and edge-tile scratch: one allocation per
        // pool task, amortized over the task's whole row-block range.
        // repro-lint: allow(hot-path-alloc)
        std::vector<double> apack(kMc * kc);
        // repro-lint: allow(hot-path-alloc)
        std::vector<double> tmp(mr * nr);
        for (std::size_t blk = bb; blk < be; ++blk) {
          const std::size_t i0 = blk * kMc;
          const std::size_t mc = std::min(kMc, m - i0);
          const std::size_t mpanels = (mc + mr - 1) / mr;
          double* ap = apack.data();
          for (std::size_t ip = 0; ip < mpanels; ++ip) {
            const std::size_t r0 = i0 + ip * mr;
            const std::size_t rw = std::min(mr, i0 + mc - r0);
            for (std::size_t p = 0; p < kc; ++p) {
              for (std::size_t r = 0; r < rw; ++r) *ap++ = aget(r0 + r, pc + p);
              for (std::size_t r = rw; r < mr; ++r) *ap++ = 0.0;
            }
          }
          for (std::size_t ip = 0; ip < mpanels; ++ip) {
            const std::size_t r0 = i0 + ip * mr;
            const std::size_t rw = std::min(mr, i0 + mc - r0);
            const double* apanel = apack.data() + ip * mr * kc;
            for (std::size_t jp = 0; jp < npanels; ++jp) {
              const std::size_t j0 = jc + jp * nr;
              const std::size_t jw = std::min(nr, jc + nc - j0);
              const double* bpanel = bpack.data() + jp * nr * kc;
              if (rw == mr && jw == nr) {
                t.gemm_ukr(kc, apanel, bpanel, c.row(r0).data() + j0, ldc);
              } else {
                std::fill(tmp.begin(), tmp.end(), 0.0);
                t.gemm_ukr(kc, apanel, bpanel, tmp.data(), nr);
                for (std::size_t r = 0; r < rw; ++r) {
                  for (std::size_t j = 0; j < jw; ++j) {
                    c(r0 + r, j0 + j) += tmp[r * nr + j];
                  }
                }
              }
            }
          }
        }
      };
      const std::size_t nt = util::thread_count();
      if (nt <= 1 || nblocks <= 1 || 2 * m * kc * nc <= 4'000'000) {
        run_blocks(0, nblocks);
      } else {
        util::parallel_for(0, nblocks, 1, run_blocks);
      }
    }
  }
}

// Threads the throughput gauge actually spans: the pool count when the
// problem is big enough to have been distributed, else one.
std::size_t gemm_threads_used(std::size_t flops) {
  return flops > 4'000'000 ? util::thread_count() : 1;
}

}  // namespace

void set_gemm_threads(std::size_t n) { util::set_threads(n); }
std::size_t gemm_threads() { return util::thread_count(); }

Matrix multiply(const Matrix& a, const Matrix& b) {
  REPRO_CHECK_DIM(a.cols(), b.rows(), "multiply: inner dimensions");
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("multiply: " + a.shape_string() + " * " +
                                b.shape_string());
  }
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const std::size_t flops = 2 * m * k * n;
  count_gemm(flops);
  const util::Stopwatch sw;
  Matrix c(m, n);
  if (use_simd_gemm(flops)) {
    gemm_packed(
        m, k, n, [&](std::size_t i, std::size_t p) { return a(i, p); },
        [&](std::size_t p, std::size_t j) { return b(p, j); }, c);
  } else {
    parallel_rows(m, k * n, [&](std::size_t rb, std::size_t re) {
      for (std::size_t i = rb; i < re; ++i) {
        double* ci = c.row(i).data();
        for (std::size_t p = 0; p < k; ++p) {
          const double aip = a(i, p);
          if (aip == 0.0) continue;  // sensitivity matrices are fairly sparse
          const double* bp = b.row(p).data();
          for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
        }
      }
    });
  }
  record_kernel_throughput("gemm", flops, sw.seconds(),
                           gemm_threads_used(flops));
  return c;
}

Matrix multiply_bt(const Matrix& a, const Matrix& b) {
  REPRO_CHECK_DIM(a.cols(), b.cols(), "multiply_bt: inner dimensions");
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("multiply_bt: " + a.shape_string() + " * " +
                                b.shape_string() + "^T");
  }
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  const std::size_t flops = 2 * m * k * n;
  count_gemm(flops);
  const util::Stopwatch sw;
  Matrix c(m, n);
  if (use_simd_gemm(flops)) {
    gemm_packed(
        m, k, n, [&](std::size_t i, std::size_t p) { return a(i, p); },
        [&](std::size_t p, std::size_t j) { return b(j, p); }, c);
  } else {
    parallel_rows(m, k * n, [&](std::size_t rb, std::size_t re) {
      for (std::size_t i = rb; i < re; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          c(i, j) = dot(a.row(i), b.row(j));
        }
      }
    });
  }
  record_kernel_throughput("gemm", flops, sw.seconds(),
                           gemm_threads_used(flops));
  return c;
}

Matrix multiply_at(const Matrix& a, const Matrix& b) {
  REPRO_CHECK_DIM(a.rows(), b.rows(), "multiply_at: inner dimensions");
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("multiply_at: " + a.shape_string() + "^T * " +
                                b.shape_string());
  }
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  const std::size_t flops = 2 * m * k * n;
  count_gemm(flops);
  const util::Stopwatch sw;
  Matrix c(m, n);
  if (use_simd_gemm(flops)) {
    // Packing absorbs the strided reads of A's columns once per panel
    // instead of once per inner-loop pass.
    gemm_packed(
        m, k, n, [&](std::size_t i, std::size_t p) { return a(p, i); },
        [&](std::size_t p, std::size_t j) { return b(p, j); }, c);
  } else {
    // Accumulate row blocks of the output; parallelize over output rows by
    // striping the k-loop contributions into thread-local buffers would cost
    // memory, so instead parallelize over output rows with a transposed
    // access of A (strided reads of A are the price; k is the long
    // dimension).
    parallel_rows(m, k * n / std::max<std::size_t>(m, 1) + n,
                  [&](std::size_t rb, std::size_t re) {
                    for (std::size_t i = rb; i < re; ++i) {
                      double* ci = c.row(i).data();
                      for (std::size_t p = 0; p < k; ++p) {
                        const double api = a(p, i);
                        if (api == 0.0) continue;
                        const double* bp = b.row(p).data();
                        for (std::size_t j = 0; j < n; ++j) {
                          ci[j] += api * bp[j];
                        }
                      }
                    }
                  });
  }
  record_kernel_throughput("gemm", flops, sw.seconds(),
                           gemm_threads_used(flops));
  return c;
}

// A A^T exists for every shape; no dimension precondition to state.
// repro-lint: allow(contracts)
Matrix gram(const Matrix& a) {
  const std::size_t n = a.rows(), k = a.cols();
  count_syrk(k, n);
  const util::Stopwatch sw;
  const simd::KernelOps& t = simd::ops();
  const bool use_simd = t.tier != simd::Tier::kScalar;
  Matrix c(n, n);
  // SYRK: compute only the lower triangle as independent kTile x kTile tile
  // pairs, then mirror.  Each cell is one dot(a.row(i), a.row(j)) — dot is
  // argument-symmetric bit-for-bit, so the mirrored matrix matches the full
  // product exactly — and is written by exactly one tile pair, so the result
  // does not depend on the thread count.  The flattened pair list load-
  // balances the triangle instead of handing one chunk the long first rows.
  // SIMD tiers run cells in j-quads through the tier's dot4 kernel (one pass
  // of row i feeds four cells); the quad grouping depends only on the tile
  // bounds, so it too is thread-count invariant.
  constexpr std::size_t kTile = 64;
  const std::size_t ntiles = (n + kTile - 1) / kTile;
  const std::size_t npairs = ntiles * (ntiles + 1) / 2;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(npairs);
  for (std::size_t ti = 0; ti < ntiles; ++ti) {
    for (std::size_t tj = 0; tj <= ti; ++tj) pairs.emplace_back(ti, tj);
  }
  const auto run_pairs = [&](std::size_t pb, std::size_t pe) {
    for (std::size_t p = pb; p < pe; ++p) {
      const std::size_t ib = pairs[p].first * kTile;
      const std::size_t ie = std::min(n, ib + kTile);
      const std::size_t jb = pairs[p].second * kTile;
      const std::size_t je = std::min(n, jb + kTile);
      for (std::size_t i = ib; i < ie; ++i) {
        const std::size_t jhi = std::min(je, i + 1);
        if (use_simd) {
          const double* xi = a.row(i).data();
          std::size_t j = jb;
          for (; j + 4 <= jhi; j += 4) {
            t.dot4(k, xi, a.row(j).data(), a.row(j + 1).data(),
                   a.row(j + 2).data(), a.row(j + 3).data(),
                   c.row(i).data() + j);
          }
          for (; j < jhi; ++j) c(i, j) = t.dot(k, xi, a.row(j).data());
        } else {
          for (std::size_t j = jb; j < jhi; ++j) {
            c(i, j) = dot(a.row(i), a.row(j));
          }
        }
      }
    }
  };
  const std::size_t nt = util::thread_count();
  const bool parallel = nt > 1 && npairs > 1 && k * n * n > 8'000'000;
  if (!parallel) {
    run_pairs(0, npairs);
  } else {
    const std::size_t grain = std::max<std::size_t>(1, npairs / (8 * nt));
    util::parallel_for(0, npairs, grain, run_pairs);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) c(i, j) = c(j, i);
  }
  record_kernel_throughput("syrk", k * n * (n + 1), sw.seconds(),
                           parallel ? nt : 1);
  return c;
}

// repro-lint: allow(contracts) -- A^T A exists for every shape
Matrix gram_t(const Matrix& a) {
  const std::size_t n = a.cols(), k = a.rows();
  count_syrk(k, n);
  const util::Stopwatch sw;
  const simd::KernelOps& t = simd::ops();
  const bool use_simd = t.tier != simd::Tier::kScalar;
  Matrix c(n, n);
  // C += a_p^T a_p accumulated row-wise; parallelize over output rows using
  // the multiply_at access pattern restricted to the upper triangle.  SIMD
  // tiers run the row update through the tier's fused axpy kernel.
  parallel_rows(n, k * n / 2 / std::max<std::size_t>(n, 1) + n,
                [&](std::size_t rb, std::size_t re) {
                  for (std::size_t i = rb; i < re; ++i) {
                    double* ci = c.row(i).data();
                    for (std::size_t p = 0; p < k; ++p) {
                      const double api = a(p, i);
                      if (api == 0.0) continue;
                      const double* row = a.row(p).data();
                      if (use_simd) {
                        t.axpy(n - i, api, row + i, ci + i);
                      } else {
                        for (std::size_t j = i; j < n; ++j) {
                          ci[j] += api * row[j];
                        }
                      }
                    }
                  }
                });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  }
  record_kernel_throughput("syrk", k * n * (n + 1), sw.seconds(),
                           gemm_threads_used(k * n * (n + 1) / 2));
  return c;
}

}  // namespace repro::linalg
