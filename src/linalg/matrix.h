// Dense row-major matrix and vector primitives.
//
// The whole reproduction works with dense double-precision matrices in the
// few-thousand-row range (paths x process parameters), so a single dense
// type with contiguous row-major storage is the right tool: it keeps the
// decomposition kernels (LU/QR/SVD) simple and cache-friendly without the
// complexity of a general expression-template library.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace repro::linalg {

using Vector = std::vector<double>;

// Basic vector kernels.
double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
double norm1(std::span<const double> a);
double norm_inf(std::span<const double> a);
// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void scale(std::span<double> x, double alpha);

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  // Row-major nested initializer, e.g. Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  static Matrix diagonal(std::span<const double> d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  // Pointer arithmetic (not &data_[...]) so a zero-column matrix yields a
  // valid empty span instead of binding a reference into an empty vector.
  std::span<double> row(std::size_t i) {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  Matrix transposed() const;

  // Submatrix of the given rows (in the given order).
  Matrix select_rows(std::span<const int> rows) const;
  Matrix select_cols(std::span<const int> cols) const;
  // First r rows / cols.
  Matrix top_rows(std::size_t r) const;
  Matrix left_cols(std::size_t c) const;

  void set_row(std::size_t i, std::span<const double> values);
  void swap_rows(std::size_t i, std::size_t j);
  void swap_cols(std::size_t i, std::size_t j);

  Vector column(std::size_t j) const;
  void set_column(std::size_t j, std::span<const double> values);

  // Elementwise operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double alpha);

  double frobenius_norm() const;
  double max_abs() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string shape_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double alpha);
Matrix operator*(double alpha, Matrix a);

// y = A x
Vector matvec(const Matrix& a, std::span<const double> x);
// y = A^T x
Vector matvec_transposed(const Matrix& a, std::span<const double> x);

// Maximum elementwise |a - b|; matrices must have equal shape.
double max_abs_diff(const Matrix& a, const Matrix& b);

// Induced matrix 1-norm (maximum column absolute sum); pairs with the
// Hager-style ||S^{-1}||_1 estimate in solve.h to form a condition estimate.
double one_norm(const Matrix& a);

}  // namespace repro::linalg
