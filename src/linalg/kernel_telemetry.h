// Throughput gauges for the dense kernels: after a sufficiently large call,
// each kernel records linalg.<name>.gflops (measured) and
// linalg.<name>.peak_fraction (measured / nominal tier peak, see
// simd::theoretical_peak_gflops).  Gauges keep the latest value, so a bench
// snapshot shows the most recent large-kernel throughput — exactly what the
// GFLOP/s-vs-peak CI metrics read.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "linalg/simd/dispatch.h"
#include "util/telemetry.h"

namespace repro::linalg {

// Calls below this many FLOPs skip the gauges: they are steady_clock noise,
// and the MC chunk loops issue thousands of small GEMMs that must never
// take the registry mutex per call.
inline constexpr std::size_t kThroughputMinFlops = 16'000'000;

inline void record_kernel_throughput(std::string_view kernel,
                                     std::size_t flops, double seconds,
                                     std::size_t threads) {
  if (flops < kThroughputMinFlops || seconds <= 0.0 ||
      !util::telemetry::enabled()) {
    return;
  }
  const double gflops = static_cast<double>(flops) / seconds * 1e-9;
  const std::string base = "linalg." + std::string(kernel);
  util::telemetry::set_gauge(base + ".gflops", gflops);
  const double peak =
      simd::theoretical_peak_gflops(simd::active_tier(), threads);
  if (peak > 0.0) {
    util::telemetry::set_gauge(base + ".peak_fraction", gflops / peak);
  }
}

}  // namespace repro::linalg
