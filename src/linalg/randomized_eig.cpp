#include "linalg/randomized_eig.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/eigen_sym.h"
#include "linalg/gemm.h"
#include "linalg/qr.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace repro::linalg {
namespace {

Matrix gaussian_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

}  // namespace

// Squareness is validated unconditionally below in every build; a contract
// would duplicate it.
// repro-lint: allow(contracts)
RandomizedEigResult randomized_eig_psd(const Matrix& w,
                                       const RandomizedEigOptions& options) {
  if (w.rows() != w.cols()) {
    throw std::invalid_argument("randomized_eig_psd: not square");
  }
  const std::size_t n = w.rows();
  util::Rng rng(options.seed);

  std::size_t k = std::min(n, options.initial_rank);
  while (true) {
    const std::size_t sketch = std::min(n, k + options.oversample);

    // Range finder with power iterations (re-orthonormalized each pass for
    // numerical stability of small eigenvalues).
    Matrix q = qr_thin_q(qr_factor(multiply(w, gaussian_matrix(n, sketch, rng))));
    for (int p = 0; p < options.power_iterations; ++p) {
      q = qr_thin_q(qr_factor(multiply(w, q)));
    }

    // Rayleigh-Ritz on the captured subspace.
    const Matrix wq = multiply(w, q);          // n x sketch
    const Matrix t = multiply_at(q, wq);       // sketch x sketch, symmetric
    const EigenSymResult small = eigen_sym(t);
    if (!small.converged) {
      throw std::runtime_error("randomized_eig_psd: small eig failed");
    }

    RandomizedEigResult out;
    out.values.resize(sketch);
    Matrix v_desc(sketch, sketch);
    for (std::size_t c = 0; c < sketch; ++c) {
      const std::size_t src = sketch - 1 - c;  // ascending -> descending
      out.values[c] = std::max(small.values[src], 0.0);
      for (std::size_t i = 0; i < sketch; ++i) {
        v_desc(i, c) = small.vectors(i, src);
      }
    }
    out.vectors = multiply(q, v_desc);  // n x sketch, orthonormal

    const double top = out.values.empty() ? 0.0 : out.values.front();
    const bool exhausted =
        sketch >= n || out.values.back() <= options.rel_tol * (top + 1e-300);
    out.spectrum_exhausted = exhausted;
    if (exhausted || !options.adaptive || k >= n) return out;
    k = std::min(n, 2 * k);  // spectrum not exhausted: grow the sketch
  }
}

}  // namespace repro::linalg
