#include "linalg/solve.h"

#include <cmath>
#include <limits>

#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "linalg/svd.h"
#include "util/contracts.h"
#include "util/telemetry.h"

namespace repro::linalg {

// repro-lint: allow(contracts) -- rank is defined for every shape
std::size_t rank(const Matrix& a, double rel_tol) {
  if (a.empty()) return 0;
  const SvdResult f = svd(a, /*want_uv=*/false);
  return svd_rank(f, a.rows(), a.cols(), rel_tol);
}

// repro-lint: allow(contracts) -- the pseudo-inverse exists for every shape
Matrix pseudo_inverse(const Matrix& a, double rel_tol) {
  if (a.empty()) return a.transposed();
  const SvdResult f = svd(a);
  const double tol =
      (rel_tol >= 0.0)
          ? rel_tol * (f.s.empty() ? 0.0 : f.s.front())
          : static_cast<double>(std::max(a.rows(), a.cols())) *
                std::numeric_limits<double>::epsilon() *
                (f.s.empty() ? 0.0 : f.s.front());
  // pinv = V diag(1/s) U^T over the numerically nonzero singular values.
  Matrix v_scaled = f.v;
  for (std::size_t j = 0; j < f.s.size(); ++j) {
    const double inv = (f.s[j] > tol && f.s[j] > 0.0) ? 1.0 / f.s[j] : 0.0;
    for (std::size_t i = 0; i < v_scaled.rows(); ++i) v_scaled(i, j) *= inv;
  }
  return multiply_bt(v_scaled, f.u);
}

Vector lstsq(const Matrix& a, std::span<const double> b, double rel_tol) {
  REPRO_CHECK_DIM(b.size(), a.rows(), "lstsq: rhs length");
  const Matrix pinv = pseudo_inverse(a, rel_tol);
  return matvec(pinv, b);
}

Matrix spd_solve(const Matrix& s, const Matrix& b) {
  REPRO_CHECK_DIM(s.rows(), s.cols(), "spd_solve: square system");
  REPRO_CHECK_DIM(b.rows(), s.rows(), "spd_solve: rhs rows");
  const RegularizedChol rc = chol_factor_regularized(s);
  return chol_solve(rc.factors, b);
}

Vector spd_solve(const Matrix& s, Vector b) {
  REPRO_CHECK_DIM(s.rows(), s.cols(), "spd_solve: square system");
  REPRO_CHECK_DIM(b.size(), s.rows(), "spd_solve: rhs length");
  const RegularizedChol rc = chol_factor_regularized(s);
  return chol_solve(rc.factors, std::move(b));
}

double inverse_one_norm_estimate(const CholFactors& f) {
  if (!f.ok) return std::numeric_limits<double>::infinity();
  const std::size_t n = f.l.rows();
  if (n == 0) return 0.0;
  // Hager's algorithm: maximize ||S^{-1} x||_1 over the unit 1-norm ball by
  // alternating solves with the gradient sign vector.  S is symmetric, so
  // the transpose solve is the same solve.
  Vector x(n, 1.0 / static_cast<double>(n));
  double est = 0.0;
  for (int iter = 0; iter < 5; ++iter) {
    const Vector y = chol_solve(f, x);
    est = norm1(y);
    if (!std::isfinite(est)) return std::numeric_limits<double>::infinity();
    Vector xi(n);
    for (std::size_t i = 0; i < n; ++i) xi[i] = (y[i] >= 0.0) ? 1.0 : -1.0;
    const Vector z = chol_solve(f, std::move(xi));
    std::size_t j = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (std::abs(z[i]) > std::abs(z[j])) j = i;
    }
    if (std::abs(z[j]) <= dot(z, x)) break;  // converged at a maximizer
    x.assign(n, 0.0);
    x[j] = 1.0;
  }
  return est;
}

double condest_spd(const Matrix& s) {
  REPRO_CHECK_DIM(s.rows(), s.cols(), "condest_spd: square input");
  const CholFactors f = chol_factor(s);
  if (!f.ok) return std::numeric_limits<double>::infinity();
  return one_norm(s) * inverse_one_norm_estimate(f);
}

Matrix spd_solve_robust(const Matrix& s, const Matrix& b, SpdSolveInfo* info,
                        double max_condition) {
  // A caller bug in checked builds; the documented Release behavior below
  // (condition = inf, zero solution) is kept for fault-injected flows.
  REPRO_CHECK_DIM(s.rows(), s.cols(), "spd_solve_robust: square system");
  REPRO_CHECK_DIM(b.rows(), s.rows(), "spd_solve_robust: rhs rows");
  SpdSolveInfo local;
  SpdSolveInfo& out = info ? *info : local;
  out = SpdSolveInfo{};
  util::telemetry::count("linalg.spd_solve.calls");
  if (s.rows() != s.cols() || s.rows() != b.rows()) {
    out.condition = std::numeric_limits<double>::infinity();
    return Matrix(s.rows(), b.cols());
  }
  const double anorm = one_norm(s);
  CholFactors f = chol_factor(s);
  out.condition =
      f.ok ? anorm * inverse_one_norm_estimate(f)
           : std::numeric_limits<double>::infinity();
  if (f.ok && out.condition <= max_condition) {
    out.ok = true;
    return chol_solve(f, b);
  }
  // Ridge fallback: grow the ridge until the regularized system factorizes
  // and is acceptably conditioned.  A ridge of order ||S|| always succeeds
  // for finite input, so only NaN/Inf data exhausts the loop.
  double scale = s.max_abs();
  if (scale == 0.0 || !std::isfinite(scale)) scale = 1.0;
  double ridge = scale * 1e-12;
  for (int attempt = 0; attempt < 40; ++attempt) {
    Matrix sj = s;
    for (std::size_t i = 0; i < sj.rows(); ++i) sj(i, i) += ridge;
    f = chol_factor(std::move(sj));
    if (f.ok) {
      const double cond = (anorm + ridge) * inverse_one_norm_estimate(f);
      if (cond <= max_condition || ridge >= scale) {
        out.ok = true;
        out.regularized = true;
        out.ridge = ridge;
        util::telemetry::count("linalg.spd_solve.ridge_fallbacks");
        return chol_solve(f, b);
      }
    }
    ridge *= 10.0;
    if (ridge > scale * 10.0) break;
  }
  return Matrix(s.rows(), b.cols());
}

Vector spd_solve_robust(const Matrix& s, const Vector& b, SpdSolveInfo* info,
                        double max_condition) {
  REPRO_CHECK_DIM(b.size(), s.rows(), "spd_solve_robust: rhs length");
  Matrix col(b.size(), 1);
  for (std::size_t i = 0; i < b.size(); ++i) col(i, 0) = b[i];
  const Matrix x = spd_solve_robust(s, col, info, max_condition);
  Vector v(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) v[i] = x(i, 0);
  return v;
}

}  // namespace repro::linalg
