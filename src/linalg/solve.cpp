#include "linalg/solve.h"

#include <cmath>
#include <limits>

#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "linalg/svd.h"

namespace repro::linalg {

std::size_t rank(const Matrix& a, double rel_tol) {
  if (a.empty()) return 0;
  const SvdResult f = svd(a, /*want_uv=*/false);
  return svd_rank(f, a.rows(), a.cols(), rel_tol);
}

Matrix pseudo_inverse(const Matrix& a, double rel_tol) {
  if (a.empty()) return a.transposed();
  const SvdResult f = svd(a);
  const double tol =
      (rel_tol >= 0.0)
          ? rel_tol * (f.s.empty() ? 0.0 : f.s.front())
          : static_cast<double>(std::max(a.rows(), a.cols())) *
                std::numeric_limits<double>::epsilon() *
                (f.s.empty() ? 0.0 : f.s.front());
  // pinv = V diag(1/s) U^T over the numerically nonzero singular values.
  Matrix v_scaled = f.v;
  for (std::size_t j = 0; j < f.s.size(); ++j) {
    const double inv = (f.s[j] > tol && f.s[j] > 0.0) ? 1.0 / f.s[j] : 0.0;
    for (std::size_t i = 0; i < v_scaled.rows(); ++i) v_scaled(i, j) *= inv;
  }
  return multiply_bt(v_scaled, f.u);
}

Vector lstsq(const Matrix& a, std::span<const double> b, double rel_tol) {
  const Matrix pinv = pseudo_inverse(a, rel_tol);
  return matvec(pinv, b);
}

Matrix spd_solve(const Matrix& s, const Matrix& b) {
  const RegularizedChol rc = chol_factor_regularized(s);
  return chol_solve(rc.factors, b);
}

Vector spd_solve(const Matrix& s, Vector b) {
  const RegularizedChol rc = chol_factor_regularized(s);
  return chol_solve(rc.factors, std::move(b));
}

}  // namespace repro::linalg
