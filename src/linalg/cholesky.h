// Cholesky factorization for symmetric positive (semi-)definite systems.
//
// The hot loop of Algorithm 1 solves S y = w with S = A_r A_r^T for hundreds
// of right-hand sides per candidate r; Cholesky is the cheapest stable
// factorization for that.  Gram matrices of rank-deficient A_r can be
// singular, so `chol_factor_regularized` adds the smallest jitter that makes
// the factorization succeed (equivalent to a ridge pseudo-inverse, which is
// what the paper's pseudo-inverse notation permits).
#pragma once

#include "linalg/matrix.h"

namespace repro::linalg {

struct CholFactors {
  Matrix l;        // lower-triangular factor, S = L L^T
  bool ok = false;  // factorization succeeded (matrix numerically SPD)
};

// Plain factorization; ok=false if a non-positive pivot is met.
CholFactors chol_factor(Matrix s);

// Factorize S + jitter*I, growing jitter from `initial_jitter` by 10x until
// success (or until jitter exceeds max_abs(S)).  Records the jitter used.
struct RegularizedChol {
  CholFactors factors;
  double jitter = 0.0;
};
RegularizedChol chol_factor_regularized(const Matrix& s,
                                        double initial_jitter = 0.0);

// Non-throwing variant for pipelines that must degrade gracefully instead of
// unwinding (see core::make_robust_path_predictor): factors.ok == false when
// no jitter up to max_abs(S) makes the factorization succeed (e.g. NaN/Inf
// entries or a matrix far from PSD).
RegularizedChol try_chol_factor_regularized(const Matrix& s,
                                            double initial_jitter = 0.0);

Vector chol_solve(const CholFactors& f, Vector b);
Matrix chol_solve(const CholFactors& f, const Matrix& b);

// Solve L y = b (forward) and L^T x = y (backward) separately; used by the
// ADMM ellipsoid projection.
Vector chol_forward(const CholFactors& f, Vector b);
Vector chol_backward(const CholFactors& f, Vector b);

// Pivoted (rank-revealing) Cholesky for PSD matrices: P^T S P = L L^T with
// diagonal pivoting.  Stops when the largest remaining diagonal falls below
// tol (relative to the largest initial diagonal), revealing the numerical
// rank in O(n * rank^2) — the cheap way to get rank(A) from the Gram matrix
// A A^T without any O(n^3) eigendecomposition.  The pivot order greedily
// maximizes residual variance, i.e. it equals the column-pivot order of a
// QR factorization of A^T.
struct PivotedChol {
  std::size_t rank = 0;
  std::vector<int> perm;  // perm[k] = original index chosen at step k
  Matrix l;               // n x rank, lower-trapezoidal in pivot order
};
PivotedChol pivoted_cholesky(const Matrix& s, double rel_tol = -1.0);

}  // namespace repro::linalg
