// Blocked multi-RHS triangular solve (BLAS trsm, restricted to the one
// shape the selection engine needs: L X = B with L lower-triangular).
//
// Algorithm 1 prices a candidate selection by solving S y = w_i for every
// remaining path i (hundreds to thousands of right-hand sides against one
// Cholesky factor).  Solving them one vector at a time touches L once per
// path; solving them as a panel streams each row of L across a contiguous
// block of right-hand sides, which vectorizes and parallelizes over RHS
// blocks.  Every column is an independent forward substitution running the
// same recurrence as chol_forward, and a column's arithmetic never depends
// on which slab it landed in — the result is bit-identical for any thread
// count.
#pragma once

#include "linalg/matrix.h"

namespace repro::linalg {

// Solves L X = B in place: `l` is an r x r lower-triangular factor (its
// strict upper triangle is ignored), `b` is r x n holding the n right-hand
// sides as columns and is overwritten with X = L^{-1} B.  RHS blocks are
// distributed over the shared thread pool; results do not depend on the
// thread count.  Throws std::invalid_argument on shape mismatch or a zero
// diagonal pivot.
void trsm_lower_inplace(const Matrix& l, Matrix& b);

}  // namespace repro::linalg
