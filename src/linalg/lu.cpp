#include "linalg/lu.h"

#include <cmath>
#include <stdexcept>

#include "util/contracts.h"

namespace repro::linalg {

LuFactors lu_factor(Matrix a) {
  REPRO_CHECK_DIM(a.rows(), a.cols(), "lu_factor: square input");
  if (a.rows() != a.cols()) throw std::invalid_argument("lu_factor: not square");
  const std::size_t n = a.rows();
  LuFactors f;
  f.pivots.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t piv = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > best) {
        best = std::abs(a(i, k));
        piv = i;
      }
    }
    f.pivots[k] = static_cast<int>(piv);
    if (piv != k) {
      a.swap_rows(piv, k);
      f.sign = -f.sign;
    }
    const double akk = a(k, k);
    if (akk == 0.0) {
      f.singular = true;
      continue;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double lik = a(i, k) / akk;
      a(i, k) = lik;
      if (lik == 0.0) continue;
      double* ai = &a(i, 0);
      const double* ak = &a(k, 0);
      for (std::size_t j = k + 1; j < n; ++j) ai[j] -= lik * ak[j];
    }
  }
  f.lu = std::move(a);
  return f;
}

Vector lu_solve(const LuFactors& f, Vector b) {
  REPRO_CHECK_DIM(b.size(), f.lu.rows(), "lu_solve: rhs length");
  if (f.singular) throw std::runtime_error("lu_solve: singular matrix");
  const std::size_t n = f.lu.rows();
  if (b.size() != n) throw std::invalid_argument("lu_solve: rhs size");
  // Apply permutation.
  for (std::size_t k = 0; k < n; ++k) {
    const auto p = static_cast<std::size_t>(f.pivots[k]);
    if (p != k) std::swap(b[k], b[p]);
  }
  // Forward substitution with unit lower triangle.
  for (std::size_t i = 1; i < n; ++i) {
    double s = b[i];
    const double* li = f.lu.row(i).data();
    for (std::size_t j = 0; j < i; ++j) s -= li[j] * b[j];
    b[i] = s;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    const double* ui = f.lu.row(ii).data();
    for (std::size_t j = ii + 1; j < n; ++j) s -= ui[j] * b[j];
    b[ii] = s / ui[ii];
  }
  return b;
}

Matrix lu_solve(const LuFactors& f, const Matrix& b) {
  REPRO_CHECK_DIM(b.rows(), f.lu.rows(), "lu_solve: rhs rows");
  Matrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    x.set_column(j, lu_solve(f, b.column(j)));
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  REPRO_CHECK_DIM(a.rows(), a.cols(), "inverse: square input");
  const LuFactors f = lu_factor(a);
  return lu_solve(f, Matrix::identity(a.rows()));
}

double determinant(const Matrix& a) {
  REPRO_CHECK_DIM(a.rows(), a.cols(), "determinant: square input");
  const LuFactors f = lu_factor(a);
  if (f.singular) return 0.0;
  double det = static_cast<double>(f.sign);
  for (std::size_t i = 0; i < a.rows(); ++i) det *= f.lu(i, i);
  return det;
}

}  // namespace repro::linalg
