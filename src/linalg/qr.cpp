#include "linalg/qr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/contracts.h"

namespace repro::linalg {
namespace {

// Computes a Householder reflector for the vector stored in column j of `a`
// starting at row j: returns (beta, tau) where the transformed column becomes
// (beta, 0, ..., 0)^T, the reflector v (v[0]=1 implicit) is stored below the
// diagonal, and H = I - tau v v^T.
double make_reflector(Matrix& a, std::size_t j, double& tau) {
  const std::size_t m = a.rows();
  double normx = 0.0;
  for (std::size_t i = j; i < m; ++i) normx = std::hypot(normx, a(i, j));
  if (normx == 0.0) {
    tau = 0.0;
    return 0.0;
  }
  const double alpha = a(j, j);
  const double beta = (alpha >= 0.0) ? -normx : normx;
  const double v0 = alpha - beta;
  tau = -v0 / beta;  // = (beta - alpha) / beta
  // Store normalized reflector tail (v[0] = 1 implicit).
  const double inv_v0 = 1.0 / v0;
  for (std::size_t i = j + 1; i < m; ++i) a(i, j) *= inv_v0;
  return beta;
}

}  // namespace

// repro-lint: allow(contracts) -- Householder QR exists for every shape
QrFactors qr_factor(Matrix a) {
  const std::size_t m = a.rows(), n = a.cols();
  const std::size_t k = std::min(m, n);
  QrFactors f;
  f.tau.assign(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    double tau = 0.0;
    const double beta = make_reflector(a, j, tau);
    // Apply H = I - tau v v^T to the trailing columns.
    if (tau != 0.0) {
      for (std::size_t c = j + 1; c < n; ++c) {
        double s = a(j, c);
        for (std::size_t i = j + 1; i < m; ++i) s += a(i, j) * a(i, c);
        s *= tau;
        a(j, c) -= s;
        for (std::size_t i = j + 1; i < m; ++i) a(i, c) -= s * a(i, j);
      }
    }
    a(j, j) = beta;
    f.tau[j] = tau;
  }
  f.qr = std::move(a);
  return f;
}

void qr_apply_qt(const QrFactors& f, std::span<double> v) {
  const std::size_t m = f.qr.rows();
  if (v.size() != m) throw std::invalid_argument("qr_apply_qt size");
  for (std::size_t j = 0; j < f.tau.size(); ++j) {
    const double tau = f.tau[j];
    if (tau == 0.0) continue;
    double s = v[j];
    for (std::size_t i = j + 1; i < m; ++i) s += f.qr(i, j) * v[i];
    s *= tau;
    v[j] -= s;
    for (std::size_t i = j + 1; i < m; ++i) v[i] -= s * f.qr(i, j);
  }
}

void qr_apply_q(const QrFactors& f, std::span<double> v) {
  const std::size_t m = f.qr.rows();
  if (v.size() != m) throw std::invalid_argument("qr_apply_q size");
  for (std::size_t jj = f.tau.size(); jj-- > 0;) {
    const double tau = f.tau[jj];
    if (tau == 0.0) continue;
    double s = v[jj];
    for (std::size_t i = jj + 1; i < m; ++i) s += f.qr(i, jj) * v[i];
    s *= tau;
    v[jj] -= s;
    for (std::size_t i = jj + 1; i < m; ++i) v[i] -= s * f.qr(i, jj);
  }
}

Matrix qr_thin_q(const QrFactors& f) {
  const std::size_t m = f.qr.rows();
  const std::size_t k = f.tau.size();
  Matrix q(m, k);
  Vector e(m);
  for (std::size_t c = 0; c < k; ++c) {
    std::fill(e.begin(), e.end(), 0.0);
    e[c] = 1.0;
    qr_apply_q(f, e);
    q.set_column(c, e);
  }
  return q;
}

Matrix qr_r(const QrFactors& f) {
  const std::size_t k = f.tau.size();
  Matrix r(k, f.qr.cols());
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i; j < f.qr.cols(); ++j) r(i, j) = f.qr(i, j);
  }
  return r;
}

Vector qr_least_squares(const Matrix& a, std::span<const double> b) {
  REPRO_CHECK(a.rows() >= a.cols(),
              "qr_least_squares: system must be square or overdetermined");
  REPRO_CHECK_DIM(b.size(), a.rows(), "qr_least_squares: rhs length");
  if (a.rows() < a.cols()) {
    throw std::invalid_argument("qr_least_squares: underdetermined system");
  }
  if (b.size() != a.rows()) {
    throw std::invalid_argument("qr_least_squares: rhs size");
  }
  const QrFactors f = qr_factor(a);
  Vector y(b.begin(), b.end());
  qr_apply_qt(f, y);
  const std::size_t n = a.cols();
  // Rank check relative to the leading diagonal of R (column norms only
  // shrink down the factorization).
  const double tol = std::abs(f.qr(0, 0)) *
                     static_cast<double>(std::max(a.rows(), a.cols())) *
                     std::numeric_limits<double>::epsilon() * 16.0;
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= f.qr(ii, j) * x[j];
    const double d = f.qr(ii, ii);
    if (std::abs(d) <= tol) {
      throw std::runtime_error("qr_least_squares: rank deficient");
    }
    x[ii] = s / d;
  }
  return x;
}

}  // namespace repro::linalg
