#include "linalg/cholesky.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/simd/kernels.h"
#include "util/contracts.h"
#include "util/telemetry.h"

namespace repro::linalg {

CholFactors chol_factor(Matrix s) {
  REPRO_CHECK_DIM(s.rows(), s.cols(), "chol_factor: square input");
  if (s.rows() != s.cols()) throw std::invalid_argument("chol: not square");
  const std::size_t n = s.rows();
  CholFactors f;
  // SIMD tiers compute the length-j row dots through the tier's dot kernel;
  // the scalar tier keeps the legacy single-accumulator loops verbatim so
  // REPRO_KERNEL=scalar reproduces the pre-SIMD factor bit for bit.  The
  // positivity check runs on whichever value the active tier produced, so a
  // borderline-indefinite matrix may flip ok across tiers — callers already
  // treat that as the jitter path (see try_chol_factor_regularized).
  const simd::KernelOps& t = simd::ops();
  const bool use_simd = t.tier != simd::Tier::kScalar && n >= 32;
  for (std::size_t j = 0; j < n; ++j) {
    double d = s(j, j);
    const double* lj = &s(j, 0);
    if (use_simd) {
      d -= t.dot(j, lj, lj);
    } else {
      for (std::size_t k = 0; k < j; ++k) d -= lj[k] * lj[k];
    }
    if (!(d > 0.0) || !std::isfinite(d)) {
      f.ok = false;
      return f;
    }
    const double ljj = std::sqrt(d);
    s(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = s(i, j);
      const double* li = &s(i, 0);
      if (use_simd) {
        v -= t.dot(j, li, lj);
      } else {
        for (std::size_t k = 0; k < j; ++k) v -= li[k] * lj[k];
      }
      s(i, j) = v / ljj;
    }
  }
  // Zero the strict upper triangle so the factor is clean for callers.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) s(i, j) = 0.0;
  }
  f.l = std::move(s);
  f.ok = true;
  return f;
}

RegularizedChol try_chol_factor_regularized(const Matrix& s,
                                            double initial_jitter) {
  REPRO_CHECK_DIM(s.rows(), s.cols(), "try_chol_factor_regularized: square");
  REPRO_CHECK(initial_jitter >= 0.0,
              "try_chol_factor_regularized: jitter must be non-negative");
  RegularizedChol out;
  double scale = s.max_abs();
  if (scale == 0.0 || !std::isfinite(scale)) scale = 1.0;
  double jitter = initial_jitter;
  for (int attempt = 0; attempt < 40; ++attempt) {
    Matrix sj = s;
    if (jitter > 0.0) {
      for (std::size_t i = 0; i < sj.rows(); ++i) sj(i, i) += jitter;
    }
    out.factors = chol_factor(std::move(sj));
    if (out.factors.ok) {
      out.jitter = jitter;
      if (jitter > initial_jitter) {
        util::telemetry::count("linalg.chol.jitter_fallbacks");
      }
      return out;
    }
    jitter = (jitter == 0.0) ? scale * 1e-14 : jitter * 10.0;
    if (jitter > scale) break;
  }
  out.factors.ok = false;
  return out;
}

RegularizedChol chol_factor_regularized(const Matrix& s, double initial_jitter) {
  REPRO_CHECK_DIM(s.rows(), s.cols(), "chol_factor_regularized: square");
  RegularizedChol out = try_chol_factor_regularized(s, initial_jitter);
  if (!out.factors.ok) {
    throw std::runtime_error("chol_factor_regularized: matrix far from PSD");
  }
  return out;
}

Vector chol_forward(const CholFactors& f, Vector b) {
  REPRO_CHECK(f.ok, "chol_forward: factorization must have succeeded");
  REPRO_CHECK_DIM(b.size(), f.l.rows(), "chol_forward: rhs length");
  const std::size_t n = f.l.rows();
  if (b.size() != n) throw std::invalid_argument("chol_forward size");
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* li = f.l.row(i).data();
    for (std::size_t j = 0; j < i; ++j) s -= li[j] * b[j];
    b[i] = s / li[i];
  }
  return b;
}

Vector chol_backward(const CholFactors& f, Vector b) {
  REPRO_CHECK(f.ok, "chol_backward: factorization must have succeeded");
  REPRO_CHECK_DIM(b.size(), f.l.rows(), "chol_backward: rhs length");
  const std::size_t n = f.l.rows();
  if (b.size() != n) throw std::invalid_argument("chol_backward size");
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= f.l(j, ii) * b[j];
    b[ii] = s / f.l(ii, ii);
  }
  return b;
}

// Squareness is validated unconditionally below in every build; a contract
// would duplicate it.
// repro-lint: allow(contracts)
PivotedChol pivoted_cholesky(const Matrix& s, double rel_tol) {
  if (s.rows() != s.cols()) {
    throw std::invalid_argument("pivoted_cholesky: not square");
  }
  const std::size_t n = s.rows();
  PivotedChol out;
  out.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = static_cast<int>(i);

  // Running diagonal of the Schur complement and the factor rows built so
  // far (in pivot order).  Column k of L is formed against the original
  // matrix, updating only the diagonal eagerly (outer-product-free variant:
  // l(i,k) = (S(pi,pk) - sum_j l(i,j) l(k,j)) / l(k,k)).
  Vector diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = s(i, i);
  double max_diag0 = 0.0;
  for (double d : diag) max_diag0 = std::max(max_diag0, d);
  const double tol =
      (rel_tol >= 0.0 ? rel_tol
                      : static_cast<double>(n) *
                            std::numeric_limits<double>::epsilon() * 16.0) *
      (max_diag0 > 0.0 ? max_diag0 : 1.0);

  Matrix l(n, n);  // trimmed to rank columns at the end
  std::size_t k = 0;
  for (; k < n; ++k) {
    // Pivot: largest remaining Schur diagonal.
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < n; ++i) {
      if (diag[i] > diag[piv]) piv = i;
    }
    if (diag[piv] <= tol) break;
    if (piv != k) {
      std::swap(out.perm[piv], out.perm[k]);
      std::swap(diag[piv], diag[k]);
      l.swap_rows(piv, k);
    }
    const double lkk = std::sqrt(diag[k]);
    l(k, k) = lkk;
    const auto pk = static_cast<std::size_t>(out.perm[k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const auto pi = static_cast<std::size_t>(out.perm[i]);
      double v = s(pi, pk);
      const double* li = l.row(i).data();
      const double* lk = l.row(k).data();
      for (std::size_t j = 0; j < k; ++j) v -= li[j] * lk[j];
      const double lik = v / lkk;
      l(i, k) = lik;
      diag[i] -= lik * lik;
    }
  }
  out.rank = k;
  out.l = l.left_cols(k);
  return out;
}

Vector chol_solve(const CholFactors& f, Vector b) {
  REPRO_CHECK_DIM(b.size(), f.l.rows(), "chol_solve: rhs length");
  if (!f.ok) throw std::runtime_error("chol_solve: factorization failed");
  return chol_backward(f, chol_forward(f, std::move(b)));
}

Matrix chol_solve(const CholFactors& f, const Matrix& b) {
  REPRO_CHECK_DIM(b.rows(), f.l.rows(), "chol_solve: rhs rows");
  Matrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    x.set_column(j, chol_solve(f, b.column(j)));
  }
  return x;
}

}  // namespace repro::linalg
