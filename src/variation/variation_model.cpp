#include "variation/variation_model.h"

#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "linalg/gemm.h"

namespace repro::variation {

VariationModel::VariationModel(const timing::TimingGraph& graph,
                               const SpatialModel& spatial,
                               const std::vector<timing::Path>& paths,
                               const timing::SegmentDecomposition& segments,
                               const VariationOptions& options)
    : segments_(&segments), incidence_(&segments.incidence) {
  const circuit::Netlist& nl = graph.netlist();

  // --- Covered gates (combinational, delay-bearing) and covered regions ---
  std::unordered_set<circuit::GateId> covered;
  for (const timing::Path& p : paths) {
    for (circuit::GateId id : p.gates) {
      if (circuit::is_combinational(nl.gate(id).type)) covered.insert(id);
    }
  }
  covered_gates_ = covered.size();

  std::unordered_map<std::size_t, std::size_t> region_param;  // region -> slot
  for (circuit::GateId id : covered) {
    const circuit::Gate& g = nl.gate(id);
    for (std::size_t r : spatial.covering_regions(g.x, g.y)) {
      region_param.emplace(r, region_param.size());
    }
  }
  covered_regions_ = region_param.size();

  std::unordered_map<circuit::GateId, std::size_t> gate_param;  // gate -> slot
  for (circuit::GateId id : covered) gate_param.emplace(id, gate_param.size());

  // Record the slot -> region / gate maps for diagnosis and reporting.
  region_slots_.resize(covered_regions_);
  for (const auto& [region, slot] : region_param) region_slots_[slot] = region;
  gate_slots_.resize(covered_gates_);
  for (const auto& [gate, slot] : gate_param) gate_slots_[slot] = gate;

  // Parameter layout: [Leff regions | Vt regions | per-gate random].
  const std::size_t leff_base = 0;
  const std::size_t vt_base = covered_regions_;
  const std::size_t rand_base = 2 * covered_regions_;
  num_params_ = 2 * covered_regions_ + covered_gates_;

  // --- Per-gate sensitivity rows, accumulated into segment rows ---
  const std::size_t ns = segments.segments.size();
  sigma_ = linalg::Matrix(ns, num_params_);
  mu_segments_.assign(ns, 0.0);
  for (std::size_t s = 0; s < ns; ++s) {
    const timing::Segment& seg = segments.segments[s];
    double mu = 0.0;
    for (std::size_t k = 1; k < seg.gates.size(); ++k) {
      const circuit::GateId id = seg.gates[k];
      const circuit::Gate& g = nl.gate(id);
      if (!circuit::is_combinational(g.type)) continue;
      mu += graph.gate_delay_ps(id);
      const auto& sig = graph.gate_sigmas(id);
      const double s_leff = sig.leff * options.spatial_scale;
      const double s_vt = sig.vt * options.spatial_scale;
      const double s_rand = sig.random * options.random_scale;
      for (int l = 0; l < spatial.levels(); ++l) {
        const std::size_t region = spatial.region_index(l, g.x, g.y);
        const std::size_t slot = region_param.at(region);
        const double w = spatial.level_weight(l);
        sigma_(s, leff_base + slot) += s_leff * w;
        sigma_(s, vt_base + slot) += s_vt * w;
      }
      sigma_(s, rand_base + gate_param.at(id)) += s_rand;
    }
    mu_segments_[s] = mu;
  }

  // --- Path-level model: A = G Sigma, mu_Ptar = G mu_S (exact by
  // construction; G is 0/1 so this is sparse accumulation). ---
  const std::size_t np = paths.size();
  a_ = linalg::Matrix(np, num_params_);
  mu_paths_.assign(np, 0.0);
  for (std::size_t p = 0; p < np; ++p) {
    auto arow = a_.row(p);
    for (int sid : segments.path_segments[p]) {
      const auto s = static_cast<std::size_t>(sid);
      linalg::axpy(1.0, sigma_.row(s), arow);
      mu_paths_[p] += mu_segments_[s];
    }
  }
}

linalg::Vector VariationModel::path_delays(std::span<const double> x) const {
  if (x.size() != num_params_) {
    throw std::invalid_argument("path_delays: sample size mismatch");
  }
  linalg::Vector d = linalg::matvec(a_, x);
  for (std::size_t i = 0; i < d.size(); ++i) d[i] += mu_paths_[i];
  return d;
}

linalg::Vector VariationModel::segment_delays(std::span<const double> x) const {
  if (x.size() != num_params_) {
    throw std::invalid_argument("segment_delays: sample size mismatch");
  }
  linalg::Vector d = linalg::matvec(sigma_, x);
  for (std::size_t i = 0; i < d.size(); ++i) d[i] += mu_segments_[i];
  return d;
}

double VariationModel::path_sigma(std::size_t path) const {
  return linalg::norm2(a_.row(path));
}

}  // namespace repro::variation
