#include "variation/spatial_model.h"

#include <cmath>
#include <stdexcept>

namespace repro::variation {

SpatialModel::SpatialModel(int levels, std::vector<double> level_weights)
    : levels_(levels) {
  if (levels < 1) throw std::invalid_argument("SpatialModel: levels < 1");
  if (level_weights.empty()) {
    level_weights.assign(static_cast<std::size_t>(levels),
                         1.0 / std::sqrt(static_cast<double>(levels)));
  }
  if (level_weights.size() != static_cast<std::size_t>(levels)) {
    throw std::invalid_argument("SpatialModel: weight count != levels");
  }
  // Normalize so sum of squares is 1.
  double ss = 0.0;
  for (double w : level_weights) ss += w * w;
  if (ss <= 0.0) throw std::invalid_argument("SpatialModel: zero weights");
  const double inv = 1.0 / std::sqrt(ss);
  for (double& w : level_weights) w *= inv;
  weights_ = std::move(level_weights);

  level_offset_.resize(static_cast<std::size_t>(levels) + 1);
  level_offset_[0] = 0;
  for (int l = 0; l < levels; ++l) {
    level_offset_[static_cast<std::size_t>(l) + 1] =
        level_offset_[static_cast<std::size_t>(l)] + regions_at_level(l);
  }
  total_regions_ = level_offset_.back();
}

std::size_t SpatialModel::regions_at_level(int level) const {
  return std::size_t{1} << (2 * level);  // 4^level
}

std::size_t SpatialModel::region_index(int level, double x, double y) const {
  if (level < 0 || level >= levels_) {
    throw std::out_of_range("SpatialModel::region_index level");
  }
  if (!(x >= 0.0 && x < 1.0 && y >= 0.0 && y < 1.0)) {
    throw std::out_of_range("SpatialModel::region_index point outside die");
  }
  const std::size_t grid = std::size_t{1} << level;  // 2^level per axis
  const auto gx = static_cast<std::size_t>(x * static_cast<double>(grid));
  const auto gy = static_cast<std::size_t>(y * static_cast<double>(grid));
  return level_offset_[static_cast<std::size_t>(level)] + gy * grid + gx;
}

std::vector<std::size_t> SpatialModel::covering_regions(double x,
                                                        double y) const {
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(levels_));
  for (int l = 0; l < levels_; ++l) out.push_back(region_index(l, x, y));
  return out;
}

double SpatialModel::correlation(double x1, double y1, double x2,
                                 double y2) const {
  double c = 0.0;
  for (int l = 0; l < levels_; ++l) {
    if (region_index(l, x1, y1) == region_index(l, x2, y2)) {
      const double w = weights_[static_cast<std::size_t>(l)];
      c += w * w;
    }
  }
  return c;
}

}  // namespace repro::variation
