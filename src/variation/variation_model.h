// Builds the paper's linear delay model (Eqn (1)/(2)) from a placed netlist,
// the spatial correlation model, and a set of target paths:
//
//   d_S    = mu_S    + Sigma x        (segments)
//   d_Ptar = mu_Ptar + A x,  A = G * Sigma
//
// The normalized parameter vector x ~ N(0, I_m) stacks, in order:
//   [ Leff region variables | Vt region variables | per-gate random terms ]
// where only regions / gates *covered by the target paths* get a variable
// (matching the paper's parameter counting, e.g. S38417 Table 2:
// m = |G_C| + 2 |R_C| = 1386 + 2*157 = 1700).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "timing/segments.h"
#include "timing/timing_graph.h"
#include "variation/spatial_model.h"

namespace repro::variation {

struct VariationOptions {
  // Multiplier on the per-gate random sensitivities; Figure 2(b) uses 3x.
  double random_scale = 1.0;
  // Multiplier on the spatially correlated sensitivities (ablations).
  double spatial_scale = 1.0;
};

class VariationModel {
 public:
  VariationModel(const timing::TimingGraph& graph, const SpatialModel& spatial,
                 const std::vector<timing::Path>& paths,
                 const timing::SegmentDecomposition& segments,
                 const VariationOptions& options = {});

  std::size_t num_params() const { return num_params_; }
  std::size_t num_paths() const { return a_.rows(); }
  std::size_t num_segments() const { return sigma_.rows(); }
  std::size_t covered_regions() const { return covered_regions_; }
  std::size_t covered_gates() const { return covered_gates_; }

  // Sensitivity matrices and nominal delays (ps).
  const linalg::Matrix& a() const { return a_; }            // paths x m
  const linalg::Matrix& sigma() const { return sigma_; }    // segments x m
  const linalg::Matrix& g() const { return *incidence_; }   // paths x segments
  const linalg::Vector& mu_paths() const { return mu_paths_; }
  const linalg::Vector& mu_segments() const { return mu_segments_; }

  // Delay realizations for a parameter sample x (length num_params()).
  linalg::Vector path_delays(std::span<const double> x) const;
  linalg::Vector segment_delays(std::span<const double> x) const;

  // Per-path delay mean / sigma under the model (sigma = ||A row||).
  double path_mu(std::size_t path) const { return mu_paths_[path]; }
  double path_sigma(std::size_t path) const;

  // Parameter layout maps (for diagnosis / reporting):
  //   x = [ Leff slots | Vt slots | per-gate random slots ].
  // region_slots()[k] is the global spatial-model region id of Leff slot k
  // (and of Vt slot covered_regions()+k); gate_slots()[k] is the gate of
  // random slot 2*covered_regions()+k.
  const std::vector<std::size_t>& region_slots() const { return region_slots_; }
  const std::vector<circuit::GateId>& gate_slots() const { return gate_slots_; }

 private:
  const timing::SegmentDecomposition* segments_;
  const linalg::Matrix* incidence_;
  linalg::Matrix sigma_;
  linalg::Matrix a_;
  linalg::Vector mu_paths_;
  linalg::Vector mu_segments_;
  std::size_t num_params_ = 0;
  std::size_t covered_regions_ = 0;
  std::size_t covered_gates_ = 0;
  std::vector<std::size_t> region_slots_;
  std::vector<circuit::GateId> gate_slots_;
};

}  // namespace repro::variation
