// Hierarchical (quad-tree) spatial correlation model for within-die process
// variation, after Agarwal et al. (the model the paper cites via [2]).
//
// The die is recursively divided into quadrants for `levels` levels: level 0
// is the whole die (die-to-die variation), level 1 has 4 regions, level 2
// has 16, ...  A gate at position (x, y) is covered by exactly one region
// per level, and its parameter deviation is the weighted sum of the
// independent N(0,1) variables of the covering regions.  Gates close to each
// other share more levels and are therefore more correlated.
//
// Total region counts match the paper's configurations exactly:
//   3 levels -> 1 + 4 + 16        = 21  regions
//   5 levels -> 1 + ... + 256     = 341 regions
#pragma once

#include <cstddef>
#include <vector>

namespace repro::variation {

class SpatialModel {
 public:
  // `level_weights` w_l scale each level's contribution; they are normalized
  // so that sum w_l^2 = 1 (the per-parameter sigma budget is owned by the
  // gate library).  Empty = equal variance per level.
  explicit SpatialModel(int levels, std::vector<double> level_weights = {});

  int levels() const { return levels_; }
  std::size_t num_regions() const { return total_regions_; }
  double level_weight(int level) const {
    return weights_[static_cast<std::size_t>(level)];
  }

  // Number of regions at one level (4^level) and the global id of the region
  // covering (x, y) in [0,1) at that level.  Global ids are dense in
  // [0, num_regions()): level 0 first, then level 1, ...
  std::size_t regions_at_level(int level) const;
  std::size_t region_index(int level, double x, double y) const;

  // All covering region ids for a point, one per level.
  std::vector<std::size_t> covering_regions(double x, double y) const;

  // Correlation between the parameter deviations of two points (both
  // deviations are N(0,1) after weight normalization).
  double correlation(double x1, double y1, double x2, double y2) const;

 private:
  int levels_;
  std::size_t total_regions_;
  std::vector<double> weights_;
  std::vector<std::size_t> level_offset_;
};

}  // namespace repro::variation
