#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/telemetry.h"
#include "util/text.h"

namespace repro::util {
namespace {

thread_local bool tl_in_parallel_region = false;

struct RegionGuard {
  bool prev;
  RegionGuard() : prev(tl_in_parallel_region) { tl_in_parallel_region = true; }
  ~RegionGuard() { tl_in_parallel_region = prev; }
};

std::size_t default_threads() {
  if (const auto n = env_thread_override(std::getenv("REPRO_THREADS"))) {
    return *n;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return static_cast<std::size_t>(std::clamp(hc, 1u, 8u));
}

}  // namespace

std::optional<std::size_t> env_thread_override(const char* value) {
  if (value == nullptr) return std::nullopt;
  // Full-string parse: "8x" or "4,8" must not silently run with 8 (resp. 4)
  // threads — reject and let the caller fall back to the hardware default.
  const auto v = parse_ulong_strict(value);
  if (!v || *v == 0) return std::nullopt;
  return std::min<std::size_t>(*v, 256);
}

struct ThreadPool::Impl {
  mutable std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  std::size_t configured = 1;
  bool stopping = false;

  // Spawns the workers if the pool is configured parallel but not yet
  // started.  Caller participates in parallel_for, hence configured - 1.
  void ensure_started_locked() {
    if (!workers.empty() || configured <= 1) return;
    stopping = false;
    workers.reserve(configured - 1);
    for (std::size_t i = 0; i + 1 < configured; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    tl_in_parallel_region = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mutex);
        cv.wait(lk, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and drained
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }

  // Joins all workers after letting them drain the queue.
  void stop_and_join() {
    {
      std::lock_guard<std::mutex> lk(mutex);
      stopping = true;
    }
    cv.notify_all();
    for (auto& w : workers) w.join();
    workers.clear();
  }
};

ThreadPool::ThreadPool() : impl_(std::make_unique<Impl>()) {
  impl_->configured = default_threads();
}

ThreadPool::~ThreadPool() { impl_->stop_and_join(); }

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::set_threads(std::size_t n) {
  if (tl_in_parallel_region) {
    throw std::logic_error(
        "ThreadPool::set_threads: called from inside a parallel region "
        "(parallel_for body or pool task); reconfiguration joins the "
        "workers and would deadlock");
  }
  n = std::max<std::size_t>(1, n);
  {
    std::lock_guard<std::mutex> lk(impl_->mutex);
    if (impl_->configured == n) return;
  }
  impl_->stop_and_join();
  std::lock_guard<std::mutex> lk(impl_->mutex);
  impl_->configured = n;
}

std::size_t ThreadPool::threads() const {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  return impl_->configured;
}

bool ThreadPool::in_parallel_region() { return tl_in_parallel_region; }

void ThreadPool::enqueue(std::function<void()> task) {
  telemetry::count("util.pool.tasks");
  bool inline_run = false;
  {
    std::lock_guard<std::mutex> lk(impl_->mutex);
    if (impl_->configured <= 1) {
      inline_run = true;
    } else {
      impl_->ensure_started_locked();
      impl_->queue.push_back(std::move(task));
    }
  }
  if (inline_run) {
    task();
  } else {
    impl_->cv.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t total = end - begin;
  const std::size_t nchunks = (total + grain - 1) / grain;
  if (tl_in_parallel_region || nchunks <= 1 || threads() <= 1) {
    fn(begin, end);
    return;
  }

  // Shared loop state: chunks are claimed via an atomic counter (dynamic
  // scheduling), completion is counted even for chunks skipped after a
  // failure so `done` always reaches nchunks and nobody waits forever.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t begin = 0, end = 0, grain = 1, nchunks = 0;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
    std::atomic<bool> failed{false};
  };
  auto st = std::make_shared<State>();
  st->begin = begin;
  st->end = end;
  st->grain = grain;
  st->nchunks = nchunks;
  st->fn = &fn;

  auto run_chunks = [st](bool caller) {
    RegionGuard region;
    std::size_t executed = 0;
    for (;;) {
      const std::size_t c = st->next.fetch_add(1);
      if (c >= st->nchunks) break;
      ++executed;
      if (!st->failed.load()) {
        try {
          const std::size_t b = st->begin + c * st->grain;
          const std::size_t e = std::min(st->end, b + st->grain);
          (*st->fn)(b, e);
        } catch (...) {
          std::lock_guard<std::mutex> lk(st->mutex);
          if (!st->error) st->error = std::current_exception();
          st->failed.store(true);
        }
      }
      if (st->done.fetch_add(1) + 1 == st->nchunks) {
        // Serialize with the waiter so the final notification cannot be lost.
        std::lock_guard<std::mutex> lk(st->mutex);
        st->cv.notify_all();
      }
    }
    if (executed > 0) {
      telemetry::count(caller ? "util.pool.chunks_by_caller"
                              : "util.pool.chunks_by_workers",
                       executed);
    }
  };

  telemetry::count("util.pool.parallel_for.calls");
  telemetry::count("util.pool.parallel_for.chunks", nchunks);
  std::size_t helpers = 0;
  std::size_t configured = 1;
  {
    std::lock_guard<std::mutex> lk(impl_->mutex);
    impl_->ensure_started_locked();
    configured = impl_->configured;
    helpers = std::min(impl_->workers.size(), nchunks - 1);
    for (std::size_t i = 0; i < helpers; ++i) {
      impl_->queue.push_back([run_chunks] { run_chunks(false); });
    }
  }
  telemetry::set_gauge("util.pool.threads", static_cast<double>(configured));
  if (helpers > 0) impl_->cv.notify_all();

  run_chunks(true);  // the caller works too

  std::unique_lock<std::mutex> lk(st->mutex);
  st->cv.wait(lk, [&] { return st->done.load() == st->nchunks; });
  if (st->error) std::rethrow_exception(st->error);
}

void set_threads(std::size_t n) { ThreadPool::instance().set_threads(n); }
std::size_t thread_count() { return ThreadPool::instance().threads(); }
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::instance().parallel_for(begin, end, grain, fn);
}

}  // namespace repro::util
