// Debug contract layer: message-carrying precondition checks for the numeric
// entry points (dimension agreement, index ranges, option sanity).
//
// Design rules:
//   * REPRO_CHECK / REPRO_CHECK_DIM throw util::ContractViolation in
//     contract-checked builds (any build without NDEBUG, or any build
//     configured with -DREPRO_CONTRACTS=ON) so tests can assert on the exact
//     violation; in plain Release builds they compile to nothing — the
//     condition is not even evaluated — so the hot kernels pay zero cost.
//   * Contracts complement, never replace, the unconditional validation that
//     is part of a function's documented API (e.g. multiply() throwing
//     std::invalid_argument on shape mismatch in every build type).  A
//     contract guards against caller bugs; unconditional validation guards
//     documented error paths that callers are allowed to rely on.
//   * Enablement is a whole-build decision (NDEBUG / the global
//     REPRO_CONTRACTS definition from CMake), never per-target, so the
//     inline kContractsEnabled constant is identical in every translation
//     unit (no ODR hazard).
//
// The repro_lint `contracts` check enforces rollout: every public function
// in src/linalg/ and src/core/ taking a Matrix or Vector must invoke one of
// these macros (or carry an explicit `// repro-lint: allow(contracts)`
// suppression stating why no precondition exists).  See DESIGN.md §9.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace repro::util {

// Thrown on a failed contract in contract-checked builds.  Derives from
// std::invalid_argument (itself a std::logic_error): a violation is a bug in
// the caller, and a contract that fires ahead of a function's documented
// unconditional `throw std::invalid_argument` must still satisfy callers —
// and tests — that catch the documented type.  Checked builds refine the
// exception (file:line, expression, message); they never change its catch
// hierarchy.
class ContractViolation : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

#if defined(NDEBUG) && !defined(REPRO_CONTRACTS)
inline constexpr bool kContractsEnabled = false;
#else
inline constexpr bool kContractsEnabled = true;
#endif

// Compile-time constant mirroring whether the macros below are active; lets
// tests branch between the throwing and the compiled-out expectations.
constexpr bool contracts_enabled() { return kContractsEnabled; }

namespace detail {

[[noreturn]] inline void contract_fail(const char* file, int line,
                                       const char* expr,
                                       const std::string& message) {
  std::string what;
  what += file;
  what += ':';
  what += std::to_string(line);
  what += ": contract violated: ";
  what += message;
  what += " [";
  what += expr;
  what += ']';
  throw ContractViolation(what);
}

[[noreturn]] inline void dim_fail(const char* file, int line, const char* expr,
                                  std::size_t lhs, std::size_t rhs,
                                  const char* context) {
  std::string message;
  message += context;
  message += ": dimension mismatch ";
  message += std::to_string(lhs);
  message += " != ";
  message += std::to_string(rhs);
  contract_fail(file, line, expr, message);
}

}  // namespace detail
}  // namespace repro::util

#if !defined(NDEBUG) || defined(REPRO_CONTRACTS)

// Throws util::ContractViolation with `message` (const char* or std::string)
// when `cond` is false.
#define REPRO_CHECK(cond, message)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::repro::util::detail::contract_fail(                               \
          __FILE__, __LINE__, "REPRO_CHECK(" #cond ")", (message));       \
    }                                                                     \
  } while (false)

// Throws util::ContractViolation naming both extents when lhs != rhs;
// `context` names the function and the dimensions being matched, e.g.
// REPRO_CHECK_DIM(a.cols(), b.rows(), "multiply: inner dimensions").
#define REPRO_CHECK_DIM(lhs, rhs, context)                                \
  do {                                                                    \
    const std::size_t repro_dim_lhs_ = static_cast<std::size_t>(lhs);     \
    const std::size_t repro_dim_rhs_ = static_cast<std::size_t>(rhs);     \
    if (repro_dim_lhs_ != repro_dim_rhs_) {                               \
      ::repro::util::detail::dim_fail(                                    \
          __FILE__, __LINE__, "REPRO_CHECK_DIM(" #lhs ", " #rhs ")",      \
          repro_dim_lhs_, repro_dim_rhs_, (context));                     \
    }                                                                     \
  } while (false)

#else

#define REPRO_CHECK(cond, message) static_cast<void>(0)
#define REPRO_CHECK_DIM(lhs, rhs, context) static_cast<void>(0)

#endif
