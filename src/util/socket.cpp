#include "util/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace repro::util {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

// MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE out of send(); the
// write loop sees EPIPE and reports false instead.
constexpr int kSendFlags = MSG_NOSIGNAL;

bool fill_sockaddr(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void Fd::shutdown_read() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Fd::shutdown_write() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

bool send_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd, p, n, kSendFlags);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (sent == 0) return false;
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool recv_all(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF mid-read
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

Fd unix_listen(const std::string& path, int backlog) {
  sockaddr_un addr;
  if (!fill_sockaddr(path, addr)) {
    errno = EINVAL;
    return Fd();
  }
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Fd();
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Fd();
  }
  if (::listen(fd.get(), backlog) != 0) return Fd();
  return fd;
}

Fd unix_connect(const std::string& path) {
  sockaddr_un addr;
  if (!fill_sockaddr(path, addr)) {
    errno = EINVAL;
    return Fd();
  }
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Fd();
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno != EINTR) return Fd();
  }
}

Fd accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno != EINTR) return Fd();
  }
}

std::pair<Fd, Fd> socket_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return {Fd(), Fd()};
  }
  return {Fd(fds[0]), Fd(fds[1])};
}

bool BufferedReader::fill_some() {
  // Compact lazily: only once the consumed prefix dominates the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const std::size_t old = buf_.size();
  buf_.resize(old + kReadChunk);
  for (;;) {
    const ssize_t got = ::recv(fd_, buf_.data() + old, kReadChunk, 0);
    if (got > 0) {
      buf_.resize(old + static_cast<std::size_t>(got));
      return true;
    }
    buf_.resize(old);
    if (got < 0 && errno == EINTR) {
      buf_.resize(old + kReadChunk);
      continue;
    }
    return false;  // EOF or hard error
  }
}

bool BufferedReader::read_exact(void* out, std::size_t n) {
  while (buf_.size() - pos_ < n) {
    if (!fill_some()) return false;
  }
  std::memcpy(out, buf_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool BufferedReader::read_line(std::string& out, std::size_t max_len) {
  // Progress is tracked as an offset from pos_, not an absolute index:
  // fill_some() may compact the buffer and shift pos_ under us.
  std::size_t scanned = 0;
  for (;;) {
    std::size_t scan = pos_ + scanned;
    while (scan < buf_.size()) {
      if (buf_[scan] == '\n') {
        out.assign(buf_, pos_, scan - pos_);
        if (!out.empty() && out.back() == '\r') out.pop_back();
        pos_ = scan + 1;
        return true;
      }
      ++scan;
      ++scanned;
    }
    if (scanned > max_len) return false;  // unbounded line: drop peer
    if (!fill_some()) return false;
  }
}

bool BufferedReader::peek_buffered(void* out, std::size_t n) const {
  if (buf_.size() - pos_ < n) return false;
  std::memcpy(out, buf_.data() + pos_, n);
  return true;
}

bool BufferedReader::peek_byte(unsigned char& b) {
  while (buf_.size() == pos_) {
    if (!fill_some()) return false;
  }
  b = static_cast<unsigned char>(buf_[pos_]);
  return true;
}

}  // namespace repro::util
