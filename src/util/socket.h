// POSIX stream-socket helpers for the selection service (src/server/).
//
// RAII fd ownership, EINTR-safe full-buffer send/receive, AF_UNIX
// listen/connect, and a socketpair factory for in-process tests.  The IO
// idiom follows buffered network layers (cf. Galois' buffered net code):
// writers assemble a whole message into one contiguous buffer and flush it
// with a single send loop; readers pull large chunks into a staging buffer
// and serve exact-length (or line) requests out of it — syscalls per message
// stay O(1) no matter how small the frames are, and a frame is never
// half-written from the peer's point of view unless the connection died.
//
// Everything here reports failure by return value (invalid Fd / false), not
// exceptions: the server treats a dead peer as routine, and the helpers are
// used on paths where unwinding would skip cleanup of in-flight requests.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace repro::util {

// Owning file descriptor.  Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

  // ::shutdown wrappers (errors ignored: the peer may already be gone).
  // Shutting down the read side unblocks a reader thread parked in recv.
  void shutdown_read() const;
  void shutdown_write() const;

 private:
  int fd_ = -1;
};

// Sends exactly n bytes (looping over partial writes, retrying EINTR).
// False when the peer is gone.  SIGPIPE is suppressed per call.
bool send_all(int fd, const void* data, std::size_t n);

// Receives exactly n bytes; false on EOF or error before n arrived.
bool recv_all(int fd, void* data, std::size_t n);

// AF_UNIX stream endpoints.  All return an invalid Fd on failure with errno
// set.  unix_listen removes a stale socket file at `path` first.
Fd unix_listen(const std::string& path, int backlog = 16);
Fd unix_connect(const std::string& path);
// Blocking accept; invalid Fd on error (including the listener being shut
// down or closed — the accept loop treats that as "stop").
Fd accept_connection(int listen_fd);
// Connected AF_UNIX stream pair (first, second); both invalid on failure.
std::pair<Fd, Fd> socket_pair();

// Chunked reader: recv()s in large blocks, serves exact-length and
// line-delimited reads from the staging buffer.  Not thread-safe (one
// reader per connection by construction).
class BufferedReader {
 public:
  explicit BufferedReader(int fd) : fd_(fd) {}

  // Blocks until n bytes are available and copies them out; false on
  // EOF/error before n bytes arrived.
  bool read_exact(void* out, std::size_t n);
  // Reads up to and including '\n', which is stripped (as is a preceding
  // '\r').  False on EOF with no pending data, or when the line exceeds
  // max_len bytes (protocol abuse — the caller should drop the peer).
  bool read_line(std::string& out, std::size_t max_len);
  // Blocks for the next byte without consuming it; false on EOF/error.
  bool peek_byte(unsigned char& b);

  // Already-received bytes waiting in the buffer (never blocks).
  std::size_t buffered() const { return buf_.size() - pos_; }
  // Copies the next n buffered bytes without consuming them; false when
  // fewer than n are buffered.  Never calls recv — pair with buffered() to
  // decide whether more input is ready without risking a block.
  bool peek_buffered(void* out, std::size_t n) const;

 private:
  bool fill_some();  // one recv; false on EOF/error

  int fd_;
  std::string buf_;
  std::size_t pos_ = 0;
};

}  // namespace repro::util
