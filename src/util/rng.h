// Deterministic random number generation for reproducible experiments.
//
// Every experiment in this repository is seeded from a benchmark name (or an
// explicit integer) so that repeated runs print identical tables.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace repro::util {

// Small, fast, high-quality PRNG (xoshiro256**).  We implement our own engine
// (rather than wrapping std::mt19937_64) so that streams are stable across
// standard-library implementations, which matters for regenerating the exact
// tables in EXPERIMENTS.md on any platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derive a deterministic seed from a string (FNV-1a) mixed with a salt.
  static std::uint64_t seed_from(std::string_view name, std::uint64_t salt = 0);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  // Standard normal via Box-Muller (cached second deviate).
  double normal();
  double normal(double mean, double stddev);

  // Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int>& v);

  // Fork an independent child stream (used to give each Monte-Carlo worker
  // its own generator without correlated streams).
  Rng fork();

  // Deterministic independent stream derived from (seed, index): stream(s, i)
  // depends only on its arguments, never on generator state or call order.
  // This is the substrate for reproducible parallel sampling — each work
  // chunk (Monte-Carlo sample, yield-estimation draw) derives its own stream
  // from its global index, so results are bit-identical for any thread count
  // and any chunk partitioning.
  static Rng stream(std::uint64_t seed, std::uint64_t index);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace repro::util
