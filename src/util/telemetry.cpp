#include "util/telemetry.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <ostream>

#include "util/json.h"

namespace repro::util::telemetry {
namespace {

bool env_enabled() {
  const char* env = std::getenv("REPRO_TELEMETRY");
  return env == nullptr || std::string_view(env) != "0";
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

struct SpanAgg {
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
};

// std::map keyed by name: iteration is already sorted, and entries are
// stable so counter atomics can be bumped outside the mutex if ever needed.
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, SpanAgg, std::less<>> spans;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void count(std::string_view name, std::uint64_t n) {
  if (!enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    r.counters.emplace(std::string(name), n);
  } else {
    it->second += n;
  }
}

void set_gauge(std::string_view name, double value) {
  if (!enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end()) {
    r.gauges.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

Span::Span(std::string_view name) {
  if (!enabled()) return;
  name_ = name;
  start_ = std::chrono::steady_clock::now();
  active_ = true;
}

void Span::stop() {
  if (!active_) return;
  active_ = false;
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  SpanAgg& agg = r.spans[name_];
  ++agg.count;
  agg.total_ms += ms;
  agg.max_ms = std::max(agg.max_ms, ms);
}

Snapshot snapshot() {
  Snapshot out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  out.counters.reserve(r.counters.size());
  for (const auto& [name, v] : r.counters) out.counters.push_back({name, v});
  out.gauges.reserve(r.gauges.size());
  for (const auto& [name, v] : r.gauges) out.gauges.push_back({name, v});
  out.spans.reserve(r.spans.size());
  for (const auto& [name, a] : r.spans) {
    out.spans.push_back({name, a.count, a.total_ms, a.max_ms});
  }
  return out;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  r.counters.clear();
  r.gauges.clear();
  r.spans.clear();
}

std::string json_escape(std::string_view s) { return json::escape(s); }

std::string to_json() {
  const Snapshot snap = snapshot();
  std::string js;
  js += "{\"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) js += ", ";
    js += '"';
    js += json_escape(snap.counters[i].name);
    js += "\": ";
    js += std::to_string(snap.counters[i].value);
  }
  js += "}, \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) js += ", ";
    js += '"';
    js += json_escape(snap.gauges[i].name);
    js += "\": ";
    // Round-trip decimal; a NaN/Inf gauge renders as null — non-finite
    // literals are not JSON and would poison every strict consumer of the
    // snapshot (validate_bench_json.py, the server metrics endpoint).
    js += json::json_double(snap.gauges[i].value);
  }
  js += "}, \"spans\": {";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    if (i) js += ", ";
    const SpanSample& s = snap.spans[i];
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "{\"count\": %llu, \"total_ms\": %.3f, \"max_ms\": %.3f}",
                  static_cast<unsigned long long>(s.count), s.total_ms,
                  s.max_ms);
    js += '"';
    js += json_escape(s.name);
    js += "\": ";
    js += buf;
  }
  js += "}}";
  return js;
}

void report(std::ostream& os) {
  const Snapshot snap = snapshot();
  if (snap.empty()) {
    os << "[telemetry] empty (REPRO_TELEMETRY=0?)\n";
    return;
  }
  os << "[telemetry] spans (count / total ms / max ms):\n";
  for (const SpanSample& s : snap.spans) {
    os << "  " << s.name << ": " << s.count << " / " << fmt_ms(s.total_ms)
       << " / " << fmt_ms(s.max_ms) << "\n";
  }
  os << "[telemetry] counters:\n";
  for (const CounterSample& c : snap.counters) {
    os << "  " << c.name << ": " << c.value << "\n";
  }
  if (!snap.gauges.empty()) {
    os << "[telemetry] gauges:\n";
    for (const GaugeSample& g : snap.gauges) {
      os << "  " << g.name << ": " << g.value << "\n";
    }
  }
}

}  // namespace repro::util::telemetry
