// Minimal strict JSON: a recursive-descent parser plus the two formatting
// helpers every JSON producer in the tree shares.
//
// The repository emits JSON in three places (telemetry snapshots, bench
// records, the selection server's wire responses) and now also consumes it
// (the server's line-delimited debugging front end, the protocol regression
// tests).  One strict implementation keeps producer and consumer honest
// about the same grammar: RFC 8259 only — no NaN/Infinity literals, no
// comments, no trailing commas, no trailing garbage, no duplicate object
// keys.  Anything the parser here rejects would also break the CI validator
// (tools/validate_bench_json.py runs Python's json with non-finite constants
// rejected), so round-tripping through json::parse in a test is the
// project's definition of "valid record".
//
// Non-finite doubles have no JSON representation; json_double renders them
// as null so a NaN gauge degrades to a missing sample instead of poisoning
// the whole document (see util/telemetry.cpp and bench/bench_common.h).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace repro::util::json {

// Shortest decimal rendering of `v` that strtod parses back to exactly the
// same bits (tries %.15g, %.16g, %.17g); "null" for NaN / +-Inf.
std::string json_double(double v);

// JSON string-body escaping (quotes, backslash, control characters).  Does
// not add the surrounding quotes.
std::string escape(std::string_view s);

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

// One parsed JSON value.  A plain struct, not a variant: the tree is built
// by the parser and read by tests / the server front end, so transparent
// fields beat accessor ceremony.  Object members keep document order;
// lookups are linear (documents here are small).
struct Value {
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> items;                             // kArray
  std::vector<std::pair<std::string, Value>> members;   // kObject

  bool is_null() const { return kind == Kind::kNull; }
  // Member lookup; nullptr when not an object or the key is absent.
  const Value* find(std::string_view key) const;
  // Typed member conveniences for the server front end: the fallback is
  // returned when the key is absent or has the wrong kind.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string_view fallback) const;
};

// Strict parse of a complete document.  On success returns true and fills
// `out`; on failure returns false and describes the problem (with a byte
// offset) in `error`.  Never throws on malformed input — the server feeds
// this untrusted bytes.  Nesting beyond 64 levels is rejected.
bool parse(std::string_view text, Value& out, std::string& error);

// Throwing convenience for tests: std::invalid_argument on malformed input.
Value parse_or_throw(std::string_view text);

}  // namespace repro::util::json
