#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace repro::util::json {
namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.kind = Kind::kString;
        return parse_string(out.string);
      case 't':
        if (!consume_literal("true")) return fail("bad literal");
        out.kind = Kind::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (!consume_literal("false")) return fail("bad literal");
        out.kind = Kind::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (!consume_literal("null")) return fail("bad literal");
        out.kind = Kind::kNull;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out, int depth) {
    out.kind = Kind::kObject;
    ++pos;  // '{'
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      for (const auto& [k, v] : out.members) {
        (void)v;
        if (k == key) return fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      if (at_end() || peek() != ':') return fail("expected ':'");
      ++pos;
      Value member;
      if (!parse_value(member, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out, int depth) {
    out.kind = Kind::kArray;
    ++pos;  // '['
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos;
      return true;
    }
    for (;;) {
      Value item;
      if (!parse_value(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_hex4(unsigned& out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      unsigned d = 0;
      if (c >= '0' && c <= '9') {
        d = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        d = static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
      out = out * 16 + d;
    }
    pos += 4;
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    ++pos;  // opening quote
    out.clear();
    for (;;) {
      if (at_end()) return fail("unterminated string");
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos;
        continue;
      }
      ++pos;
      if (at_end()) return fail("truncated escape");
      const char e = text[pos];
      ++pos;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos + 2 > text.size() || text[pos] != '\\' ||
                text[pos + 1] != 'u') {
              return fail("lone high surrogate");
            }
            pos += 2;
            unsigned lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("bad surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("bad escape character");
      }
    }
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (!at_end() && peek() == '-') ++pos;
    // int part: 0, or [1-9][0-9]*
    if (at_end()) return fail("truncated number");
    if (peek() == '0') {
      ++pos;
    } else if (peek() >= '1' && peek() <= '9') {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos;
    } else {
      return fail("bad number");
    }
    if (!at_end() && peek() == '.') {
      ++pos;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("bad number fraction");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("bad number exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos;
    }
    // The slice is validated against the JSON grammar, so strtod consumes
    // exactly all of it; overflow saturates to +-inf, which is still the
    // closest double and keeps the parser total.
    const std::string slice(text.substr(start, pos - start));
    out.kind = Kind::kNumber;
    out.number = std::strtod(slice.c_str(), nullptr);
    return true;
  }
};

}  // namespace

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->kind == Kind::kNumber) ? v->number : fallback;
}

std::string Value::string_or(std::string_view key,
                             std::string_view fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->kind == Kind::kString) ? v->string
                                                    : std::string(fallback);
}

bool parse(std::string_view text, Value& out, std::string& error) {
  Parser p{text, 0, {}};
  out = Value{};
  if (!p.parse_value(out, 0)) {
    error = p.error;
    return false;
  }
  p.skip_ws();
  if (!p.at_end()) {
    p.fail("trailing garbage after document");
    error = p.error;
    return false;
  }
  error.clear();
  return true;
}

Value parse_or_throw(std::string_view text) {
  Value v;
  std::string error;
  if (!parse(text, v, error)) {
    throw std::invalid_argument("json::parse: " + error);
  }
  return v;
}

}  // namespace repro::util::json
