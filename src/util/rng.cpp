#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace repro::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::seed_from(std::string_view name, std::uint64_t salt) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h ^ (salt * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Rejection-free for our purposes: modulo bias is < 2^-40 for n < 2^24,
  // far below experiment noise, but we still use Lemire-style rejection to
  // stay exact.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

void Rng::shuffle(std::vector<int>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = uniform_index(i);
    std::swap(v[i - 1], v[j]);
  }
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

Rng Rng::stream(std::uint64_t seed, std::uint64_t index) {
  // Decorrelate the seed, then mix the stream index through an odd-constant
  // multiply (a bijection on u64) before expanding to the xoshiro state, so
  // neighbouring indices land in unrelated states.
  std::uint64_t sm = seed;
  const std::uint64_t base = splitmix64(sm);
  std::uint64_t sm2 = base ^ ((index + 1) * 0x9e3779b97f4a7c15ULL);
  Rng r(0);
  for (auto& s : r.s_) s = splitmix64(sm2);
  return r;
}

}  // namespace repro::util
