// Shared worker-thread pool: the single execution substrate for every
// parallel loop in the repository (GEMM row blocks, Monte-Carlo sample
// chunks, per-endpoint path enumeration, experiment sweeps).
//
// Design rules:
//   * One persistent pool, started lazily on first use, so hot loops never
//     pay per-call std::thread spawn/join cost.
//   * The caller always participates in parallel_for, so work completes even
//     with zero workers, and `set_threads(1)` degenerates to plain serial
//     execution (bit-identical to the single-threaded code path).
//   * Nested parallel regions run inline on the current thread instead of
//     re-entering the pool, so a parallel_for body may freely call code that
//     is itself parallelized (e.g. MC chunks calling pooled GEMM) without
//     deadlock or oversubscription.
//   * Parallelism must never change results: callers are responsible for
//     deterministic work partitioning (see core/monte_carlo.cpp for the
//     chunked-RNG scheme); the pool guarantees only that fn(b, e) is invoked
//     exactly once per chunk.
//
// The worker count defaults to hardware_concurrency (capped at 8, like the
// old per-call GEMM threading) and can be overridden by the REPRO_THREADS
// environment variable or set_threads().
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>

namespace repro::util {

class ThreadPool {
 public:
  // The global shared pool.  Workers are spawned on first parallel call.
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total concurrency (caller + workers) used by parallel_for; always >= 1.
  // Reconfiguring joins the existing workers first, so it must not race with
  // in-flight parallel work (intended for startup and tests).  Calling it
  // from inside a parallel region — a parallel_for body or a submitted pool
  // task — would self-join and deadlock, so that misuse throws
  // std::logic_error instead.
  void set_threads(std::size_t n);
  std::size_t threads() const;

  // Runs fn over disjoint subranges that exactly cover [begin, end),
  // distributing grain-sized chunks dynamically over the pool.  Blocks until
  // everything completed.  The first exception thrown by fn is rethrown on
  // the calling thread (remaining chunks are skipped).
  //
  // fn may be handed a merged run of consecutive chunks (in particular, the
  // serial fast path — one configured thread, a single chunk, or a nested
  // call — is one fn(begin, end) call), so determinism-sensitive callers
  // must iterate indices inside fn rather than treat [b, e) as one unit of
  // reduction (see core/monte_carlo.cpp for the per-chunk-slot pattern).
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  // Queues a task and returns its future.  With a single configured thread
  // the task runs synchronously.  Do not block on a future from inside a
  // pool task: workers do not steal while waiting.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    enqueue([task] { (*task)(); });
    return task->get_future();
  }

  // True when the current thread is executing inside a parallel region
  // (worker thread or a caller participating in parallel_for).
  static bool in_parallel_region();

 private:
  ThreadPool();
  void enqueue(std::function<void()> task);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Convenience wrappers over ThreadPool::instance().
void set_threads(std::size_t n);
std::size_t thread_count();

// Strictly parsed REPRO_THREADS override (nullptr = variable unset).  The
// whole string must be a positive integer — trailing garbage ("8x") and
// lists ("4,8") yield nullopt, which means "fall back to the hardware
// default", never a silently truncated parse.  Values are capped at 256.
// Exposed for unit testing; the pool applies it once at construction.
std::optional<std::size_t> env_thread_override(const char* value);
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace repro::util
