#include "util/text.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace repro::util {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<unsigned long> parse_ulong_strict(std::string_view s) {
  if (s.empty() || s.size() > 20) return std::nullopt;
  // strtoul skips whitespace and accepts a sign; forbid both up front so the
  // accepted language is exactly [0-9]+.
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
  }
  const std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const unsigned long v = std::strtoul(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double_strict(std::string_view s) {
  if (s.empty() || s.size() > 64) return std::nullopt;
  const unsigned char first = static_cast<unsigned char>(s.front());
  // Reject the leading whitespace strtod would skip, plus hex floats, nan,
  // and inf: an override is a plain decimal number or it is nothing.
  if (std::isspace(first)) return std::nullopt;
  for (char c : s) {
    if (c != '+' && c != '-' && c != '.' && c != 'e' && c != 'E' &&
        (c < '0' || c > '9')) {
      return std::nullopt;
    }
  }
  const std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision);
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << header_[c] << (c + 1 < header_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 < row.size() ? "," : "\n");
    }
  }
  return os.str();
}

int repro_scale_mode() {
  if (const char* f = std::getenv("REPRO_FULL"); f && f[0] == '1') return 2;
  if (const char* f = std::getenv("REPRO_FAST"); f && f[0] == '1') return 0;
  return 1;
}

}  // namespace repro::util
