// Wall-clock stopwatch for reporting per-experiment runtimes in the benches.
#pragma once

#include <chrono>

namespace repro::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double ms() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace repro::util
