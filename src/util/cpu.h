// Runtime CPU feature detection for the SIMD kernel dispatch.
//
// The SIMD micro-kernels (src/linalg/simd/) are always compiled on x86-64 —
// each tier's translation unit carries its own -mavx2/-mavx512f flags — so a
// portable binary still ships every tier and picks the widest one the CPU
// actually reports at startup.  This header is the single place that asks
// the hardware; everything above it goes through linalg::simd::dispatch.
#pragma once

#include <optional>

namespace repro::util {

struct CpuFeatures {
  bool avx2 = false;     // AVX2 + FMA (both required by the avx2 tier)
  bool avx512f = false;  // AVX-512 Foundation
  bool neon = false;     // AArch64 Advanced SIMD (compile-time on arm64)
};

// Detected once on first call, then cached for the process.
const CpuFeatures& cpu_features();

// Nominal core clock in GHz for the theoretical-peak telemetry gauges
// (linalg.*.peak_fraction).  Resolution order: the REPRO_CPU_GHZ environment
// variable, the "@ N.NNGHz" suffix of the /proc/cpuinfo model name, else a
// conservative 2.0.  A nominal value is fine here: peak_fraction is a gauge
// for humans reading bench records; the CI perf gate uses speedup-vs-scalar
// ratios, which cancel the clock entirely.
double nominal_cpu_ghz();

// Strictly parsed REPRO_CPU_GHZ override (nullptr = variable unset).  The
// whole string must be one plausible decimal clock (0.1 < v < 10); trailing
// garbage ("2.1GHz") yields nullopt and the /proc/cpuinfo fallback runs.
// Exposed for unit testing; nominal_cpu_ghz() applies it once per process.
std::optional<double> env_ghz_override(const char* value);

}  // namespace repro::util
