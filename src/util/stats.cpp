#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace repro::util {

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

double min_value(std::span<const double> v) {
  double m = std::numeric_limits<double>::infinity();
  for (double x : v) m = std::min(m, x);
  return m;
}

double max_value(std::span<const double> v) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : v) m = std::max(m, x);
  return m;
}

double quantile(std::vector<double> v, double q) {
  if (v.empty()) throw std::invalid_argument("quantile of empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

double normal_icdf(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_icdf requires p in (0,1)");
  }
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace repro::util
