// Process-wide observability registry: named counters, gauges, and RAII
// scoped-timer spans, shared by every layer (linalg kernels, selection
// drivers, Monte-Carlo evaluation, the thread pool) and exported by the
// bench harness as the uniform BENCH_<name>.json telemetry block.
//
// Design rules:
//   * One global registry behind a mutex; entries are created on first use
//     and live for the process.  Hot paths go through the free functions
//     (`count`, `set_gauge`, `Span`), which check the enabled flag first —
//     with telemetry disabled they return before touching the registry, so
//     nothing is ever registered (near-zero overhead: one relaxed atomic
//     load).
//   * Counter increments are relaxed atomic adds; span/gauge records take
//     the registry mutex.  Spans are per-phase (dozens to thousands per
//     run), never per-element, so the mutex is uncontended in practice.
//   * Spans aggregate per name — count, total time, max time — and nest
//     freely: a "core.select" span may enclose many "core.error_model"
//     spans; each aggregates under its own name.
//   * The enabled flag is read once from REPRO_TELEMETRY (unset or any
//     value but "0" = enabled) and can be overridden at runtime with
//     set_enabled() (tests, overhead measurement).
//
// Span naming convention: `<layer>.<component>[.<phase>]`, e.g.
// "linalg.svd", "core.select.gram", "bench.mc".  See DESIGN.md §8.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace repro::util::telemetry {

// Global switch.  `enabled()` is a single relaxed atomic load.
bool enabled();
void set_enabled(bool on);

// Adds n to the named counter (registered on first use).  No-op when
// telemetry is disabled.
void count(std::string_view name, std::uint64_t n = 1);

// Sets the named gauge to the latest value.  No-op when disabled.
void set_gauge(std::string_view name, double value);

// RAII scoped timer: measures construction-to-destruction wall time and
// folds it into the per-name aggregate (count/total/max).  Constructing
// with telemetry disabled records nothing.  `stop()` ends the span early.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span() { stop(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void stop();

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;
};

// Point-in-time copy of the registry, sorted by name (deterministic output).
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  double value = 0.0;
};
struct SpanSample {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
};
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<SpanSample> spans;
  bool empty() const {
    return counters.empty() && gauges.empty() && spans.empty();
  }
};
Snapshot snapshot();

// Removes every registered entry (bench harness start, tests).
void reset();

// {"counters": {...}, "gauges": {...}, "spans": {"name": {"count": ...,
// "total_ms": ..., "max_ms": ...}, ...}} — one self-contained JSON object.
std::string to_json();

// Human-readable aligned dump of the snapshot (bench stdout).
void report(std::ostream& os);

// Escapes a string for embedding inside a JSON string literal (quotes,
// backslashes, control characters).  Shared with the bench harness.
std::string json_escape(std::string_view s);

}  // namespace repro::util::telemetry
