#include "util/cpu.h"

#include <cstdlib>
#include <fstream>
#include <string>

#include "util/text.h"

namespace repro::util {
namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports executes CPUID once per process under the hood
  // (gcc and clang both cache); no intrinsics header needed, which keeps raw
  // _mm* usage confined to src/linalg/simd/ (repro_lint: simd-confinement).
  f.avx2 = __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
#elif defined(__aarch64__)
  // Advanced SIMD is architecturally mandatory on AArch64.
  f.neon = true;
#endif
  return f;
}

double parse_ghz_from_cpuinfo() {
  std::ifstream in("/proc/cpuinfo");
  if (!in) return 0.0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, 10, "model name") != 0) continue;
    // "model name : Intel(R) Xeon(R) Processor @ 2.10GHz"
    const std::size_t at = line.rfind("@ ");
    const std::size_t ghz = line.rfind("GHz");
    if (at == std::string::npos || ghz == std::string::npos || ghz <= at + 2) {
      return 0.0;
    }
    const std::string num = line.substr(at + 2, ghz - at - 2);
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    return (end != num.c_str() && v > 0.1 && v < 10.0) ? v : 0.0;
  }
  return 0.0;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = detect();
  return features;
}

double nominal_cpu_ghz() {
  static const double ghz = [] {
    if (const auto v = env_ghz_override(std::getenv("REPRO_CPU_GHZ"))) {
      return *v;
    }
    const double parsed = parse_ghz_from_cpuinfo();
    return parsed > 0.0 ? parsed : 2.0;
  }();
  return ghz;
}

std::optional<double> env_ghz_override(const char* value) {
  if (value == nullptr) return std::nullopt;
  // Full-string parse, same strictness as REPRO_THREADS: "2.1GHz" is a user
  // error, not a 2.1 override.
  const auto v = parse_double_strict(value);
  if (!v || !(*v > 0.1 && *v < 10.0)) return std::nullopt;
  return *v;
}

}  // namespace repro::util
