// Small statistics helpers shared by the variation model, the error model and
// the Monte-Carlo evaluation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace repro::util {

double mean(std::span<const double> v);
double variance(std::span<const double> v);  // population variance
double stddev(std::span<const double> v);
double min_value(std::span<const double> v);
double max_value(std::span<const double> v);

// q in [0,1]; linear interpolation between order statistics.
double quantile(std::vector<double> v, double q);

// Standard normal CDF / inverse CDF.  The inverse uses the Acklam rational
// approximation refined by one Halley step (relative error < 1e-13), enough
// for yield thresholds like 0.01 * (1 - Y).
double normal_cdf(double z);
double normal_icdf(double p);

// Pearson correlation of two equally sized samples.
double correlation(std::span<const double> a, std::span<const double> b);

// Running mean/variance accumulator (Welford) used by Monte Carlo loops so we
// never need to keep all N=10,000 samples per path in memory.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace repro::util
