// String and table-formatting helpers used by the bench binaries so every
// reproduced table prints with consistent layout (and a trailing CSV block
// for machine consumption).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace repro::util {

std::string trim(std::string_view s);
std::string to_lower(std::string_view s);
std::vector<std::string> split(std::string_view s, char delim);
bool starts_with(std::string_view s, std::string_view prefix);

// printf-style double formatting helpers.
std::string fmt_double(double v, int precision);
std::string fmt_percent(double fraction, int precision);  // 0.0123 -> "1.23"

// Strict full-string numeric parsing for environment overrides.  The entire
// string must be one number — trailing garbage ("8x"), embedded lists
// ("4,8"), empty strings, and (for the unsigned form) negative values all
// return nullopt so the caller falls back to its default instead of silently
// honoring half of what the user typed.  Leading/trailing whitespace is not
// accepted either: an override is machine-written, not prose.
std::optional<unsigned long> parse_ulong_strict(std::string_view s);
std::optional<double> parse_double_strict(std::string_view s);

// Minimal fixed-width text table.  Columns are sized to their widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  std::string render() const;       // human-readable aligned table
  std::string render_csv() const;   // header + rows, comma separated

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Reads an environment scale mode shared by all bench binaries:
//   REPRO_FAST=1 -> 0 (shrunk pools), default -> 1, REPRO_FULL=1 -> 2.
int repro_scale_mode();

}  // namespace repro::util
