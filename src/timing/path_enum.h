// K-worst path enumeration.
//
// Candidate target paths are generated in exactly non-increasing order of a
// per-gate additive score (nominal delay + sigma_weight * standalone delay
// sigma) using best-first search with the exact suffix bound — the classical
// implicit path-tree method for k-longest paths in a DAG.  The score is only
// a *candidate generator*: the paper's statistical yield filter (computed
// from the full correlated variation model) decides which candidates become
// target paths (see core/benchmarks).
#pragma once

#include <cstddef>
#include <vector>

#include "timing/timing_graph.h"

namespace repro::timing {

struct Path {
  std::vector<circuit::GateId> gates;  // launch point ... capture point
  double score = 0.0;                  // enumeration score, ps
};

struct PathEnumOptions {
  std::size_t max_paths = 10000;
  // Weight of the (uncorrelated) delay sigma in the enumeration score;
  // ~3 biases enumeration toward statistically-critical paths.
  double sigma_weight = 3.0;
  // Stop early once the next candidate's score falls below this fraction of
  // the best path's score (0 disables).
  double min_score_fraction = 0.0;
};

std::vector<Path> enumerate_worst_paths(const TimingGraph& graph,
                                        const PathEnumOptions& options = {});

// Endpoint-balanced enumeration (STA "n-worst per endpoint"): the k worst
// paths are enumerated separately for every capture point, so the candidate
// pool spans all near-critical cones instead of drowning in the exponential
// path count of the single worst cone.  Returns at most `options.max_paths`
// paths, merged and sorted by score (non-increasing).  The per-endpoint
// quota is max_paths / #endpoints, at least `min_quota`.
std::vector<Path> enumerate_worst_paths_per_endpoint(
    const TimingGraph& graph, const PathEnumOptions& options = {},
    std::size_t min_quota = 8);

// Coverage enumeration: the single worst path *through every gate* (best
// prefix + best suffix, one DP pass), deduplicated.  Guarantees that every
// gate's most critical path is a candidate, so the statistical filter — not
// the enumeration budget — decides which circuit regions produce target
// paths.  Complements the per-endpoint enumeration in the extraction flow.
std::vector<Path> worst_path_through_each_gate(
    const TimingGraph& graph, const PathEnumOptions& options = {});

// Total number of launch-to-capture paths (saturating at `cap`), used by
// tests and diagnostics.  Counted with one pass of dynamic programming.
double count_paths(const TimingGraph& graph, double cap = 1e18);

}  // namespace repro::timing
