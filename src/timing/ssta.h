// Block-based statistical static timing analysis (SSTA).
//
// Propagates first-order canonical delay forms through the timing graph:
// each arrival time is kept as  a0 + sum_i a_i x_i  over the normalized
// variation sources (region variables and per-gate random terms), with the
// MAX of two correlated Gaussians approximated by Clark's moment matching
// (Clark 1961), the standard approach the paper's reference [2] (Blaauw et
// al., "Statistical timing analysis: from basic principles to state of the
// art") surveys.
//
// Used as an analytic cross-check of the Monte-Carlo circuit-yield estimate
// in the experiment pipeline, and exercised directly by the SSTA tests.
#pragma once

#include <vector>

#include "linalg/matrix.h"

#include "timing/timing_graph.h"
#include "variation/spatial_model.h"

namespace repro::timing {

// First-order canonical form: value = mean + coeffs . x, x ~ N(0, I).
// Clark's max introduces approximation error that is folded into an extra
// independent term (variance `extra_var`), keeping the form conservative.
struct CanonicalForm {
  double mean = 0.0;
  linalg::Vector coeffs;   // dense over the global parameter space
  double extra_var = 0.0;  // variance not attributable to named sources

  double variance() const;
  double sigma() const;
  // Correlation-aware covariance with another form over the same basis.
  double covariance(const CanonicalForm& other) const;
};

// Clark max of two canonical forms (moment-matched Gaussian, with the
// residual second-moment mismatch pushed into extra_var).
CanonicalForm clark_max(const CanonicalForm& a, const CanonicalForm& b);

struct SstaResult {
  // Mean / sigma of the arrival at every capture point (full canonical
  // forms are folded into the circuit max on the fly to bound memory), plus
  // the canonical circuit-level max.
  struct ArrivalStats {
    double mean = 0.0;
    double sigma = 0.0;
  };
  std::vector<ArrivalStats> capture_stats;
  CanonicalForm circuit_delay;
  std::size_t num_params = 0;

  // P(circuit delay <= t_cons) under the Gaussian approximation.
  double yield(double t_cons) const;
};

// Runs block-based SSTA over the full circuit using the same parameter
// basis as the experiment pipeline: [Leff regions | Vt regions | per-gate
// random], all regions of the spatial model.
SstaResult run_ssta(const TimingGraph& graph,
                    const variation::SpatialModel& spatial,
                    double random_scale = 1.0);

}  // namespace repro::timing
