// Segment extraction (paper Section 2).
//
// Given the graph formed by the union of the target paths, a *segment* is a
// maximal chain of consecutive edges whose interior nodes have no other
// incoming or outgoing edges inside that union.  Because interior nodes have
// in-degree = out-degree = 1, any path touching one edge of a segment
// traverses the entire segment, so the path/segment incidence matrix G is
// 0/1 and d_Ptar = G d_S holds exactly with d_S the segment delays.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "timing/path_enum.h"

namespace repro::timing {

struct Segment {
  // Gate sequence g0 -> g1 -> ... -> gk; the traversed edges are
  // (g_i, g_{i+1}).  Delay contributors are gates[1..] (each timing arc
  // u -> v carries the delay of its sink gate v).
  std::vector<circuit::GateId> gates;
};

struct SegmentDecomposition {
  std::vector<Segment> segments;
  // Per path: ordered segment ids along the path.
  std::vector<std::vector<int>> path_segments;
  // G: n_paths x n_segments 0/1 incidence (paper Eqn (2)).
  linalg::Matrix incidence;
};

SegmentDecomposition extract_segments(const circuit::Netlist& netlist,
                                      const std::vector<Path>& paths);

// Nominal delay of a segment (sum of its contributor gates).
double segment_delay_ps(const TimingGraph& graph, const Segment& segment);

// Number of distinct gates covered by the paths (|G_C| in the paper's
// tables) -- counts only combinational gates.
std::size_t covered_gate_count(const circuit::Netlist& netlist,
                               const std::vector<Path>& paths);

}  // namespace repro::timing
