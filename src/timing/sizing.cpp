#include "timing/sizing.h"

#include <algorithm>

#include "timing/sta.h"

namespace repro::timing {
namespace {

double mean_comb_slack(const TimingGraph& graph, const StaResult& sta) {
  const circuit::Netlist& nl = graph.netlist();
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < nl.size(); ++i) {
    if (!circuit::is_combinational(
            nl.gate(static_cast<circuit::GateId>(i)).type)) {
      continue;
    }
    sum += sta.slack[i];
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

SizingReport emulate_area_recovery(TimingGraph& graph,
                                   const SizingOptions& options) {
  const circuit::Netlist& nl = graph.netlist();
  SizingReport rep;
  {
    const StaResult base = run_sta(graph);
    rep.t_cons = base.circuit_delay;
    rep.mean_slack_before = mean_comb_slack(graph, base);
  }
  const std::vector<double> original = graph.gate_delays_ps();

  for (int it = 0; it < options.iterations; ++it) {
    const StaResult sta = run_sta(graph, rep.t_cons);
    bool changed = false;
    for (std::size_t i = 0; i < nl.size(); ++i) {
      const auto id = static_cast<circuit::GateId>(i);
      if (!circuit::is_combinational(nl.gate(id).type)) continue;
      const double slack = sta.slack[i];
      if (slack <= 0.0) continue;
      // Per-path safety: every path through this gate has slack >= `slack`,
      // and the summed growth along any path is < its slack, so the circuit
      // delay never exceeds Tcons.
      const double grown = graph.gate_delay_ps(id) *
                           (1.0 + options.strength * slack / rep.t_cons);
      const double capped = std::min(grown, original[i] * options.max_scale);
      if (capped > graph.gate_delay_ps(id) * (1.0 + 1e-12)) {
        graph.set_gate_delay_ps(id, capped);
        changed = true;
      }
    }
    if (!changed) break;
  }

  const StaResult after = run_sta(graph, rep.t_cons);
  rep.mean_slack_after = mean_comb_slack(graph, after);
  rep.circuit_delay_after = after.circuit_delay;
  return rep;
}

}  // namespace repro::timing
