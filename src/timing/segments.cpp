#include "timing/segments.h"

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace repro::timing {
namespace {

std::uint64_t edge_key(circuit::GateId u, circuit::GateId v) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

}  // namespace

SegmentDecomposition extract_segments(const circuit::Netlist& netlist,
                                      const std::vector<Path>& paths) {
  SegmentDecomposition out;

  // Union graph of the paths: distinct edges, per-node successor/degree.
  std::unordered_set<std::uint64_t> edges;
  std::unordered_map<circuit::GateId, std::vector<circuit::GateId>> succ;
  std::unordered_map<circuit::GateId, int> indeg, outdeg;
  for (const Path& p : paths) {
    for (std::size_t i = 0; i + 1 < p.gates.size(); ++i) {
      const circuit::GateId u = p.gates[i];
      const circuit::GateId v = p.gates[i + 1];
      if (edges.insert(edge_key(u, v)).second) {
        succ[u].push_back(v);
        ++outdeg[u];
        ++indeg[v];
      }
    }
  }

  auto interior = [&](circuit::GateId w) {
    const auto ind = indeg.find(w);
    const auto outd = outdeg.find(w);
    return ind != indeg.end() && outd != outdeg.end() && ind->second == 1 &&
           outd->second == 1;
  };

  // Build segments: an edge (u, v) starts a segment iff u is not interior.
  std::unordered_map<std::uint64_t, int> edge_segment;
  for (const auto& [u, sinks] : succ) {
    if (interior(u)) continue;
    for (circuit::GateId v0 : sinks) {
      Segment seg;
      seg.gates.push_back(u);
      circuit::GateId v = v0;
      while (true) {
        seg.gates.push_back(v);
        if (!interior(v)) break;
        v = succ[v].front();
      }
      const int sid = static_cast<int>(out.segments.size());
      for (std::size_t i = 0; i + 1 < seg.gates.size(); ++i) {
        edge_segment[edge_key(seg.gates[i], seg.gates[i + 1])] = sid;
      }
      out.segments.push_back(std::move(seg));
    }
  }

  // Per-path segment sequences and incidence matrix.
  out.path_segments.resize(paths.size());
  out.incidence = linalg::Matrix(paths.size(), out.segments.size());
  for (std::size_t pi = 0; pi < paths.size(); ++pi) {
    const Path& p = paths[pi];
    int last = -1;
    for (std::size_t i = 0; i + 1 < p.gates.size(); ++i) {
      const auto it = edge_segment.find(edge_key(p.gates[i], p.gates[i + 1]));
      if (it == edge_segment.end()) {
        throw std::logic_error("extract_segments: edge without segment");
      }
      if (it->second != last) {
        out.path_segments[pi].push_back(it->second);
        out.incidence(pi, static_cast<std::size_t>(it->second)) = 1.0;
        last = it->second;
      }
    }
  }
  (void)netlist;
  return out;
}

double segment_delay_ps(const TimingGraph& graph, const Segment& segment) {
  double d = 0.0;
  for (std::size_t i = 1; i < segment.gates.size(); ++i) {
    d += graph.gate_delay_ps(segment.gates[i]);
  }
  return d;
}

std::size_t covered_gate_count(const circuit::Netlist& netlist,
                               const std::vector<Path>& paths) {
  std::unordered_set<circuit::GateId> covered;
  for (const Path& p : paths) {
    for (circuit::GateId id : p.gates) {
      if (circuit::is_combinational(netlist.gate(id).type)) covered.insert(id);
    }
  }
  return covered.size();
}

}  // namespace repro::timing
