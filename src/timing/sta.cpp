#include "timing/sta.h"

#include <algorithm>
#include <limits>

namespace repro::timing {

StaResult run_sta(const TimingGraph& graph, double t_constraint) {
  const circuit::Netlist& nl = graph.netlist();
  const std::size_t n = nl.size();
  StaResult r;
  r.arrival.assign(n, 0.0);
  r.required.assign(n, std::numeric_limits<double>::infinity());
  r.slack.assign(n, 0.0);

  // Forward: arrival(g) = max over fanins of arrival(fi) + delay(g).
  for (circuit::GateId id : graph.topological_order()) {
    const circuit::Gate& g = nl.gate(id);
    double arr = 0.0;
    for (circuit::GateId d : g.fanin) {
      arr = std::max(arr, r.arrival[static_cast<std::size_t>(d)]);
    }
    r.arrival[static_cast<std::size_t>(id)] = arr + graph.gate_delay_ps(id);
  }
  for (circuit::GateId id : nl.outputs()) {
    r.circuit_delay =
        std::max(r.circuit_delay, r.arrival[static_cast<std::size_t>(id)]);
  }
  const double tcons = (t_constraint > 0.0) ? t_constraint : r.circuit_delay;

  // Backward: required(g) = min over fanouts of required(fo) - delay(fo).
  const auto& topo = graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const circuit::GateId id = *it;
    const circuit::Gate& g = nl.gate(id);
    double req;
    if (g.fanout.empty()) {
      req = (g.type == circuit::GateType::kOutput)
                ? tcons
                : std::numeric_limits<double>::infinity();
    } else {
      req = std::numeric_limits<double>::infinity();
      for (circuit::GateId s : g.fanout) {
        req = std::min(req, r.required[static_cast<std::size_t>(s)] -
                                graph.gate_delay_ps(s));
      }
    }
    r.required[static_cast<std::size_t>(id)] = req;
    r.slack[static_cast<std::size_t>(id)] =
        req - r.arrival[static_cast<std::size_t>(id)];
  }

  // Nominal critical path: trace back from the worst capture point through
  // the worst-arrival fanins.
  circuit::GateId worst = circuit::kInvalidGate;
  double worst_arr = -1.0;
  for (circuit::GateId id : nl.outputs()) {
    if (r.arrival[static_cast<std::size_t>(id)] > worst_arr) {
      worst_arr = r.arrival[static_cast<std::size_t>(id)];
      worst = id;
    }
  }
  std::vector<circuit::GateId> rev;
  while (worst != circuit::kInvalidGate) {
    rev.push_back(worst);
    const circuit::Gate& g = nl.gate(worst);
    circuit::GateId best = circuit::kInvalidGate;
    double best_arr = -1.0;
    for (circuit::GateId d : g.fanin) {
      if (r.arrival[static_cast<std::size_t>(d)] > best_arr) {
        best_arr = r.arrival[static_cast<std::size_t>(d)];
        best = d;
      }
    }
    worst = best;
  }
  r.critical_path.assign(rev.rbegin(), rev.rend());
  return r;
}

double path_delay_ps(const TimingGraph& graph,
                     const std::vector<circuit::GateId>& path) {
  double d = 0.0;
  for (circuit::GateId id : path) d += graph.gate_delay_ps(id);
  return d;
}

}  // namespace repro::timing
