#include "timing/path_enum.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace repro::timing {
namespace {

constexpr double kNegInf = -1e300;

struct ArenaNode {
  circuit::GateId gate;
  int parent;  // index into arena, -1 for path start
};

struct HeapEntry {
  double bound;   // prefix score + exact suffix bound
  double prefix;  // score accumulated up to (and including) node
  int arena_idx;
  bool operator<(const HeapEntry& other) const { return bound < other.bound; }
};

std::vector<double> gate_scores(const TimingGraph& graph,
                                const PathEnumOptions& options) {
  const std::size_t n = graph.netlist().size();
  std::vector<double> score(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<circuit::GateId>(i);
    score[i] = graph.gate_delay_ps(id) +
               options.sigma_weight * graph.gate_sigma_total_ps(id);
  }
  return score;
}

// Exact suffix bound toward the capture set marked in `is_sink` (best
// remaining score from each gate to any marked sink; kNegInf if none
// reachable).
std::vector<double> suffix_bounds(const TimingGraph& graph,
                                  const std::vector<double>& score,
                                  const std::vector<char>& is_sink) {
  const circuit::Netlist& nl = graph.netlist();
  std::vector<double> suffix(nl.size(), kNegInf);
  const auto& topo = graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const circuit::GateId id = *it;
    const auto i = static_cast<std::size_t>(id);
    if (is_sink[i]) {
      suffix[i] = 0.0;
      continue;
    }
    double best = kNegInf;
    for (circuit::GateId s : nl.gate(id).fanout) {
      const double sfx = suffix[static_cast<std::size_t>(s)];
      if (sfx <= kNegInf) continue;
      best = std::max(best, score[static_cast<std::size_t>(s)] + sfx);
    }
    suffix[i] = best;
  }
  return suffix;
}

// Best-first enumeration with the implicit path tree; emits at most
// max_paths paths ending at marked sinks, in non-increasing score order.
std::vector<Path> best_first(const TimingGraph& graph,
                             const std::vector<double>& score,
                             const std::vector<double>& suffix,
                             const std::vector<char>& is_sink,
                             std::size_t max_paths,
                             double min_score_fraction) {
  const circuit::Netlist& nl = graph.netlist();
  std::vector<ArenaNode> arena;
  std::priority_queue<HeapEntry> heap;
  for (circuit::GateId id : nl.inputs()) {
    if (suffix[static_cast<std::size_t>(id)] <= kNegInf) continue;
    const double prefix = score[static_cast<std::size_t>(id)];
    arena.push_back({id, -1});
    heap.push({prefix + suffix[static_cast<std::size_t>(id)], prefix,
               static_cast<int>(arena.size()) - 1});
  }

  std::vector<Path> out;
  double best_score = -1.0;
  while (!heap.empty() && out.size() < max_paths) {
    const HeapEntry e = heap.top();
    heap.pop();
    const circuit::GateId gid =
        arena[static_cast<std::size_t>(e.arena_idx)].gate;
    const auto gi = static_cast<std::size_t>(gid);
    if (is_sink[gi]) {
      Path p;
      p.score = e.prefix;
      for (int cur = e.arena_idx; cur >= 0;
           cur = arena[static_cast<std::size_t>(cur)].parent) {
        p.gates.push_back(arena[static_cast<std::size_t>(cur)].gate);
      }
      std::reverse(p.gates.begin(), p.gates.end());
      if (best_score < 0.0) best_score = p.score;
      if (min_score_fraction > 0.0 &&
          p.score < min_score_fraction * best_score) {
        break;
      }
      out.push_back(std::move(p));
      continue;
    }
    for (circuit::GateId s : nl.gate(gid).fanout) {
      const double sfx = suffix[static_cast<std::size_t>(s)];
      if (sfx <= kNegInf) continue;
      const double prefix = e.prefix + score[static_cast<std::size_t>(s)];
      arena.push_back({s, e.arena_idx});
      heap.push({prefix + sfx, prefix, static_cast<int>(arena.size()) - 1});
    }
  }
  return out;
}

}  // namespace

std::vector<Path> enumerate_worst_paths(const TimingGraph& graph,
                                        const PathEnumOptions& options) {
  const circuit::Netlist& nl = graph.netlist();
  const std::vector<double> score = gate_scores(graph, options);
  std::vector<char> is_sink(nl.size(), 0);
  for (circuit::GateId id : nl.outputs()) {
    is_sink[static_cast<std::size_t>(id)] = 1;
  }
  const std::vector<double> suffix = suffix_bounds(graph, score, is_sink);
  std::vector<Path> out = best_first(graph, score, suffix, is_sink,
                                     options.max_paths,
                                     options.min_score_fraction);
  util::telemetry::count("timing.paths_enumerated", out.size());
  return out;
}

std::vector<Path> enumerate_worst_paths_per_endpoint(
    const TimingGraph& graph, const PathEnumOptions& options,
    std::size_t min_quota) {
  const circuit::Netlist& nl = graph.netlist();
  const auto& outputs = nl.outputs();
  if (outputs.empty()) return {};
  const std::vector<double> score = gate_scores(graph, options);
  const std::size_t quota = std::max(
      min_quota, options.max_paths / std::max<std::size_t>(outputs.size(), 1));

  // Every endpoint's cone is enumerated independently, so fan the per-sink
  // searches out over the shared pool and merge in endpoint order — the
  // result is identical to the serial loop for any thread count.
  const util::telemetry::Span span("timing.path_enum.per_endpoint");
  util::telemetry::count("timing.endpoints", outputs.size());
  std::vector<std::vector<Path>> per_endpoint(outputs.size());
  util::parallel_for(0, outputs.size(), 1, [&](std::size_t b, std::size_t e) {
    std::vector<char> is_sink(nl.size(), 0);
    for (std::size_t k = b; k < e; ++k) {
      std::fill(is_sink.begin(), is_sink.end(), 0);
      is_sink[static_cast<std::size_t>(outputs[k])] = 1;
      const std::vector<double> suffix = suffix_bounds(graph, score, is_sink);
      per_endpoint[k] = best_first(graph, score, suffix, is_sink, quota,
                                   options.min_score_fraction);
    }
  });
  // Telemetry after the join: counting inside the workers would contend on
  // the registry mutex and interleave with other threads' flushes.
  std::size_t enumerated = 0;
  for (const std::vector<Path>& paths : per_endpoint) {
    enumerated += paths.size();
  }
  util::telemetry::count("timing.paths_enumerated", enumerated);
  std::vector<Path> all;
  for (std::vector<Path>& paths : per_endpoint) {
    all.insert(all.end(), std::make_move_iterator(paths.begin()),
               std::make_move_iterator(paths.end()));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Path& a, const Path& b) { return a.score > b.score; });
  if (all.size() > options.max_paths) all.resize(options.max_paths);
  return all;
}

std::vector<Path> worst_path_through_each_gate(const TimingGraph& graph,
                                               const PathEnumOptions& options) {
  const circuit::Netlist& nl = graph.netlist();
  const std::size_t n = nl.size();
  const std::vector<double> score = gate_scores(graph, options);

  // Best prefix score (launch -> gate, inclusive) with predecessor links.
  std::vector<double> prefix(n, kNegInf);
  std::vector<circuit::GateId> pred(n, circuit::kInvalidGate);
  for (circuit::GateId id : graph.topological_order()) {
    const auto i = static_cast<std::size_t>(id);
    const circuit::Gate& g = nl.gate(id);
    if (g.type == circuit::GateType::kInput) {
      prefix[i] = score[i];
      continue;
    }
    for (circuit::GateId d : g.fanin) {
      const double p = prefix[static_cast<std::size_t>(d)];
      if (p <= kNegInf) continue;
      if (p + score[i] > prefix[i]) {
        prefix[i] = p + score[i];
        pred[i] = d;
      }
    }
  }
  // Best suffix score (gate -> capture, exclusive) with successor links.
  std::vector<double> suffix(n, kNegInf);
  std::vector<circuit::GateId> succ(n, circuit::kInvalidGate);
  const auto& topo = graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const circuit::GateId id = *it;
    const auto i = static_cast<std::size_t>(id);
    if (nl.gate(id).type == circuit::GateType::kOutput) {
      suffix[i] = 0.0;
      continue;
    }
    for (circuit::GateId s : nl.gate(id).fanout) {
      const double sf = suffix[static_cast<std::size_t>(s)];
      if (sf <= kNegInf) continue;
      if (score[static_cast<std::size_t>(s)] + sf > suffix[i]) {
        suffix[i] = score[static_cast<std::size_t>(s)] + sf;
        succ[i] = s;
      }
    }
  }

  std::vector<Path> out;
  std::unordered_set<std::size_t> seen;  // hash of the gate sequence
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<circuit::GateId>(i);
    if (!circuit::is_combinational(nl.gate(id).type)) continue;
    if (prefix[i] <= kNegInf || suffix[i] <= kNegInf) continue;
    Path p;
    p.score = prefix[i] + suffix[i];
    // Walk back to the launch, then forward to the capture.
    std::vector<circuit::GateId> back;
    for (circuit::GateId cur = id; cur != circuit::kInvalidGate;
         cur = pred[static_cast<std::size_t>(cur)]) {
      back.push_back(cur);
    }
    p.gates.assign(back.rbegin(), back.rend());
    for (circuit::GateId cur = succ[i]; cur != circuit::kInvalidGate;
         cur = succ[static_cast<std::size_t>(cur)]) {
      p.gates.push_back(cur);
      if (nl.gate(cur).type == circuit::GateType::kOutput) break;
    }
    // Dedup: many gates share the same worst path.
    std::size_t h = 1469598103934665603ull;
    for (circuit::GateId g : p.gates) {
      h ^= static_cast<std::size_t>(g) + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    if (seen.insert(h).second) out.push_back(std::move(p));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Path& a, const Path& b) { return a.score > b.score; });
  return out;
}

double count_paths(const TimingGraph& graph, double cap) {
  const circuit::Netlist& nl = graph.netlist();
  std::vector<double> count(nl.size(), 0.0);
  for (circuit::GateId id : nl.inputs()) {
    count[static_cast<std::size_t>(id)] = 1.0;
  }
  double total = 0.0;
  for (circuit::GateId id : graph.topological_order()) {
    const circuit::Gate& g = nl.gate(id);
    if (!g.fanin.empty()) {
      double c = 0.0;
      for (circuit::GateId d : g.fanin) {
        c += count[static_cast<std::size_t>(d)];
      }
      count[static_cast<std::size_t>(id)] = std::min(c, cap);
    }
    if (g.type == circuit::GateType::kOutput) {
      total = std::min(total + count[static_cast<std::size_t>(id)], cap);
    }
  }
  return total;
}

}  // namespace repro::timing
