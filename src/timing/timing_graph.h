// Timing graph: per-gate nominal delays plus cached topological structure.
//
// Delay model: each combinational gate contributes one delay from its input
// pins to its output (no pin-dependent arcs), sized by cell type and fanout
// load.  Launch (Input) and capture (Output) gates contribute zero delay, so
// a path delay is the sum of the delays of its combinational gates — the
// linear structure the paper's Eqn (1)/(2) relies on.
#pragma once

#include <vector>

#include "circuit/gate_library.h"
#include "circuit/netlist.h"

namespace repro::timing {

class TimingGraph {
 public:
  TimingGraph(const circuit::Netlist& netlist,
              const circuit::GateLibrary& library);

  const circuit::Netlist& netlist() const { return *netlist_; }
  const circuit::GateLibrary& library() const { return *library_; }

  double gate_delay_ps(circuit::GateId id) const {
    return nominal_delay_[static_cast<std::size_t>(id)];
  }
  const std::vector<double>& gate_delays_ps() const { return nominal_delay_; }

  // Overrides one gate's nominal delay (used by the synthesis-emulation
  // sizing pass) and rescales its variation sigmas, which are proportional
  // to the nominal delay.
  void set_gate_delay_ps(circuit::GateId id, double delay_ps);

  // One-sigma delay deviations per normalized variation source (see
  // GateLibrary::delay_sigmas_ps), cached per gate.
  const circuit::GateLibrary::DelaySigmas& gate_sigmas(
      circuit::GateId id) const {
    return sigmas_[static_cast<std::size_t>(id)];
  }

  // Total standalone delay sigma of a gate (all sources, uncorrelated view);
  // used only as a path-enumeration scoring heuristic.
  double gate_sigma_total_ps(circuit::GateId id) const;

  const std::vector<circuit::GateId>& topological_order() const {
    return topo_;
  }

 private:
  const circuit::Netlist* netlist_;
  const circuit::GateLibrary* library_;
  std::vector<double> nominal_delay_;
  std::vector<circuit::GateLibrary::DelaySigmas> sigmas_;
  std::vector<circuit::GateId> topo_;
};

}  // namespace repro::timing
