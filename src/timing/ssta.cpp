#include "timing/ssta.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/stats.h"

namespace repro::timing {
namespace {

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

}  // namespace

double CanonicalForm::variance() const {
  double v = extra_var;
  for (double c : coeffs) v += c * c;
  return v;
}

double CanonicalForm::sigma() const { return std::sqrt(variance()); }

double CanonicalForm::covariance(const CanonicalForm& other) const {
  return linalg::dot(coeffs, other.coeffs);
}

CanonicalForm clark_max(const CanonicalForm& a, const CanonicalForm& b) {
  const double va = a.variance();
  const double vb = b.variance();
  const double cov = a.covariance(b);
  const double theta2 = std::max(va + vb - 2.0 * cov, 0.0);
  const double theta = std::sqrt(theta2);

  // Degenerate case: (nearly) perfectly tracking inputs -> pick the larger
  // mean; the forms are interchangeable up to a deterministic shift.
  if (theta < 1e-12 * (1.0 + std::sqrt(va) + std::sqrt(vb))) {
    return a.mean >= b.mean ? a : b;
  }

  const double alpha = (a.mean - b.mean) / theta;
  const double t = util::normal_cdf(alpha);      // P(A > B)
  const double phi = normal_pdf(alpha);

  CanonicalForm out;
  out.mean = a.mean * t + b.mean * (1.0 - t) + theta * phi;
  const double e2 = (a.mean * a.mean + va) * t +
                    (b.mean * b.mean + vb) * (1.0 - t) +
                    (a.mean + b.mean) * theta * phi;
  const double var = std::max(e2 - out.mean * out.mean, 0.0);

  // Linear part: tightness-weighted combination (standard canonical-form
  // propagation); any variance Clark's moments carry beyond it becomes an
  // independent remainder so the total second moment is preserved.
  const std::size_t m = std::max(a.coeffs.size(), b.coeffs.size());
  out.coeffs.assign(m, 0.0);
  for (std::size_t i = 0; i < a.coeffs.size(); ++i) {
    out.coeffs[i] += t * a.coeffs[i];
  }
  for (std::size_t i = 0; i < b.coeffs.size(); ++i) {
    out.coeffs[i] += (1.0 - t) * b.coeffs[i];
  }
  double linear_var = t * t * a.extra_var + (1.0 - t) * (1.0 - t) * b.extra_var;
  for (double c : out.coeffs) linear_var += c * c;
  out.extra_var = std::max(var - linear_var, 0.0) + t * t * a.extra_var +
                  (1.0 - t) * (1.0 - t) * b.extra_var;
  return out;
}

double SstaResult::yield(double t_cons) const {
  const double s = circuit_delay.sigma();
  if (s <= 0.0) return circuit_delay.mean <= t_cons ? 1.0 : 0.0;
  return util::normal_cdf((t_cons - circuit_delay.mean) / s);
}

SstaResult run_ssta(const TimingGraph& graph,
                    const variation::SpatialModel& spatial,
                    double random_scale) {
  const circuit::Netlist& nl = graph.netlist();
  const std::size_t n = nl.size();
  const std::size_t num_regions = spatial.num_regions();
  const std::size_t m = 2 * num_regions + n;  // Leff | Vt | per-gate random

  SstaResult out;
  out.num_params = m;

  // Reference counting lets us free a node's canonical form once every
  // fanout has consumed it; peak memory is the max cut width, not the
  // circuit size.
  std::vector<int> remaining_uses(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    remaining_uses[i] = static_cast<int>(
        nl.gate(static_cast<circuit::GateId>(i)).fanout.size());
  }

  std::vector<CanonicalForm> arrival(n);
  for (circuit::GateId id : graph.topological_order()) {
    const auto i = static_cast<std::size_t>(id);
    const circuit::Gate& g = nl.gate(id);

    CanonicalForm arr;  // max over fanin arrivals
    bool first = true;
    for (circuit::GateId d : g.fanin) {
      const auto di = static_cast<std::size_t>(d);
      if (first) {
        arr = arrival[di];
        first = false;
      } else {
        arr = clark_max(arr, arrival[di]);
      }
      if (--remaining_uses[di] == 0) {
        arrival[di] = CanonicalForm{};  // free the coefficient vector
      }
    }
    if (arr.coeffs.empty()) arr.coeffs.assign(m, 0.0);

    // Add this gate's delay form.
    if (circuit::is_combinational(g.type)) {
      arr.mean += graph.gate_delay_ps(id);
      const auto& sig = graph.gate_sigmas(id);
      for (int l = 0; l < spatial.levels(); ++l) {
        const std::size_t region = spatial.region_index(l, g.x, g.y);
        const double w = spatial.level_weight(l);
        arr.coeffs[region] += sig.leff * w;
        arr.coeffs[num_regions + region] += sig.vt * w;
      }
      arr.coeffs[2 * num_regions + i] += sig.random * random_scale;
    }
    if (g.type == circuit::GateType::kOutput) {
      out.capture_stats.push_back({arr.mean, arr.sigma()});
      // Fold into the running circuit max immediately and drop the form:
      // capture points have no fanout, so we never hold more than the live
      // cut plus one circuit-level form.
      if (out.capture_stats.size() == 1) {
        out.circuit_delay = std::move(arr);
      } else {
        out.circuit_delay = clark_max(out.circuit_delay, arr);
      }
      continue;
    }
    arrival[i] = std::move(arr);
  }
  return out;
}

}  // namespace repro::timing
