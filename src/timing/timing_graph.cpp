#include "timing/timing_graph.h"

#include <cmath>

namespace repro::timing {

TimingGraph::TimingGraph(const circuit::Netlist& netlist,
                         const circuit::GateLibrary& library)
    : netlist_(&netlist), library_(&library) {
  const std::size_t n = netlist.size();
  nominal_delay_.resize(n);
  sigmas_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const circuit::Gate& g = netlist.gate(static_cast<circuit::GateId>(i));
    nominal_delay_[i] = library.nominal_delay_ps(g.type, g.fanout.size());
    sigmas_[i] = library.delay_sigmas_ps(g.type, nominal_delay_[i]);
  }
  topo_ = netlist.topological_order();
}

void TimingGraph::set_gate_delay_ps(circuit::GateId id, double delay_ps) {
  const auto i = static_cast<std::size_t>(id);
  nominal_delay_[i] = delay_ps;
  sigmas_[i] = library_->delay_sigmas_ps(netlist_->gate(id).type, delay_ps);
}

double TimingGraph::gate_sigma_total_ps(circuit::GateId id) const {
  const auto& s = sigmas_[static_cast<std::size_t>(id)];
  return std::sqrt(s.leff * s.leff + s.vt * s.vt + s.random * s.random);
}

}  // namespace repro::timing
