// Synthesis emulation: area recovery under a timing constraint.
//
// The paper's netlists are synthesized "for minimum area under a stringent
// timing constraint to ensure that the circuits are optimized".  Min-area
// synthesis downsizes (slows) every cell with positive slack until the slack
// wall: many paths end up near-critical, which is exactly what makes the
// target-path pool span many cones and gives A its published rank structure.
//
// This pass emulates that on the timing graph: iteratively, every
// combinational gate with positive slack s gets its delay scaled by
// (1 + strength * s / Tcons), capped at `max_scale` of the original delay.
// Gates on the critical path (s = 0) are untouched, so the circuit delay is
// preserved while the slack distribution compresses toward zero.
#pragma once

#include "timing/timing_graph.h"

namespace repro::timing {

// Defaults calibrated so the resulting slack distribution matches the
// breadth of the paper's pools: ~65% of s1423's gates end up within 5% of
// the wall (their 644 paths cover 63% of gates) while only ~9% of s38417's
// do (their 3507 paths cover 6%).  Stronger settings drive the entire
// circuit to the wall, which real discrete-size synthesis does not.
struct SizingOptions {
  int iterations = 1;
  double strength = 0.15;
  double max_scale = 1.3;  // max per-gate slowdown vs the original delay
};

struct SizingReport {
  double t_cons = 0.0;
  double mean_slack_before = 0.0;  // over combinational gates, ps
  double mean_slack_after = 0.0;
  double circuit_delay_after = 0.0;
};

SizingReport emulate_area_recovery(TimingGraph& graph,
                                   const SizingOptions& options = {});

}  // namespace repro::timing
