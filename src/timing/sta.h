// Nominal static timing analysis: arrival times, required times, slacks, and
// the nominal critical path.  The paper sets the timing constraint Tcons to
// the nominal circuit delay (Table 1) or a relaxed multiple of it (Table 2);
// this module computes that reference point.
#pragma once

#include <vector>

#include "timing/timing_graph.h"

namespace repro::timing {

struct StaResult {
  std::vector<double> arrival;   // per gate, ps (at gate output)
  std::vector<double> required;  // per gate, ps
  std::vector<double> slack;     // required - arrival
  double circuit_delay = 0.0;    // max arrival over capture points
  std::vector<circuit::GateId> critical_path;  // launch ... capture
};

// Runs nominal STA.  `t_constraint` defaults to the computed circuit delay
// (pass a positive value to use an explicit constraint for required times).
StaResult run_sta(const TimingGraph& graph, double t_constraint = -1.0);

// Delay of an explicit path (sum of combinational gate delays along it).
double path_delay_ps(const TimingGraph& graph,
                     const std::vector<circuit::GateId>& path);

}  // namespace repro::timing
