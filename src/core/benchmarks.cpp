#include "core/benchmarks.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "circuit/placement.h"
#include "timing/sizing.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/text.h"
#include "util/thread_pool.h"

namespace repro::core {
namespace {

// Per-gate delay sigmas resolved against the global (all-regions) parameter
// indexing used for yield estimation and candidate filtering:
//   [ Leff regions | Vt regions | one random slot per gate ].
struct GlobalParams {
  std::size_t num_regions;
  std::vector<std::vector<std::size_t>> gate_regions;  // per gate, per level
  std::size_t param_count(std::size_t num_gates) const {
    return 2 * num_regions + num_gates;
  }
};

GlobalParams global_params(const timing::TimingGraph& graph,
                           const variation::SpatialModel& spatial) {
  const circuit::Netlist& nl = graph.netlist();
  GlobalParams gp;
  gp.num_regions = spatial.num_regions();
  gp.gate_regions.resize(nl.size());
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const circuit::Gate& g = nl.gate(static_cast<circuit::GateId>(i));
    if (!circuit::is_combinational(g.type)) continue;
    gp.gate_regions[i] = spatial.covering_regions(g.x, g.y);
  }
  return gp;
}

// Statistical moments of one candidate path under the full correlated model
// (scratch accumulates the path's sensitivity row sparsely).
struct PathStats {
  double mu;
  double sigma;
};

class PathStatAccumulator {
 public:
  PathStatAccumulator(const timing::TimingGraph& graph,
                      const variation::SpatialModel& spatial,
                      const GlobalParams& gp, double random_scale)
      : graph_(&graph), spatial_(&spatial), gp_(&gp),
        random_scale_(random_scale),
        scratch_(gp.param_count(graph.netlist().size()), 0.0) {}

  PathStats stats(const timing::Path& p) {
    double mu = 0.0;
    for (std::size_t idx : touched_) scratch_[idx] = 0.0;
    touched_.clear();
    const circuit::Netlist& nl = graph_->netlist();
    for (circuit::GateId id : p.gates) {
      const circuit::Gate& g = nl.gate(id);
      if (!circuit::is_combinational(g.type)) continue;
      mu += graph_->gate_delay_ps(id);
      const auto& sig = graph_->gate_sigmas(id);
      const auto& regions = gp_->gate_regions[static_cast<std::size_t>(id)];
      for (int l = 0; l < spatial_->levels(); ++l) {
        const double w = spatial_->level_weight(l);
        add(regions[static_cast<std::size_t>(l)], sig.leff * w);
        add(gp_->num_regions + regions[static_cast<std::size_t>(l)],
            sig.vt * w);
      }
      add(2 * gp_->num_regions + static_cast<std::size_t>(id),
          sig.random * random_scale_);
    }
    double var = 0.0;
    for (std::size_t idx : touched_) var += scratch_[idx] * scratch_[idx];
    return {mu, std::sqrt(var)};
  }

 private:
  void add(std::size_t idx, double v) {
    if (scratch_[idx] == 0.0) touched_.push_back(idx);
    scratch_[idx] += v;
  }
  const timing::TimingGraph* graph_;
  const variation::SpatialModel* spatial_;
  const GlobalParams* gp_;
  double random_scale_;
  std::vector<double> scratch_;
  std::vector<std::size_t> touched_;
};

}  // namespace

double estimate_circuit_yield(const timing::TimingGraph& graph,
                              const variation::SpatialModel& spatial,
                              double t_cons, std::size_t samples,
                              std::uint64_t seed, double random_scale) {
  const circuit::Netlist& nl = graph.netlist();
  const GlobalParams gp = global_params(graph, spatial);

  // Sample s draws from the deterministic stream (seed, s), and the pass
  // count is an integer sum, so the estimate is bit-identical for any thread
  // count or chunk partitioning.
  constexpr std::size_t kChunk = 32;
  const std::size_t nchunks = (samples + kChunk - 1) / kChunk;
  std::vector<std::size_t> chunk_pass(nchunks, 0);
  util::parallel_for(0, nchunks, 1, [&](std::size_t cb, std::size_t ce) {
    std::vector<double> leff(gp.num_regions), vt(gp.num_regions);
    std::vector<double> delay(nl.size()), arrival(nl.size());
    for (std::size_t ci = cb; ci < ce; ++ci) {
      const std::size_t s0 = ci * kChunk;
      const std::size_t s1 = std::min(samples, s0 + kChunk);
      std::size_t pass = 0;
      for (std::size_t s = s0; s < s1; ++s) {
        util::Rng rng = util::Rng::stream(seed, s);
        for (double& v : leff) v = rng.normal();
        for (double& v : vt) v = rng.normal();
        for (std::size_t i = 0; i < nl.size(); ++i) {
          const auto id = static_cast<circuit::GateId>(i);
          const circuit::Gate& g = nl.gate(id);
          if (!circuit::is_combinational(g.type)) {
            delay[i] = 0.0;
            continue;
          }
          const auto& sig = graph.gate_sigmas(id);
          double dl = 0.0, dv = 0.0;
          for (int l = 0; l < spatial.levels(); ++l) {
            const double w = spatial.level_weight(l);
            dl += w * leff[gp.gate_regions[i][static_cast<std::size_t>(l)]];
            dv += w * vt[gp.gate_regions[i][static_cast<std::size_t>(l)]];
          }
          delay[i] = graph.gate_delay_ps(id) + sig.leff * dl + sig.vt * dv +
                     sig.random * random_scale * rng.normal();
        }
        double worst = 0.0;
        for (circuit::GateId id : graph.topological_order()) {
          const circuit::Gate& g = nl.gate(id);
          double arr = 0.0;
          for (circuit::GateId d : g.fanin) {
            arr = std::max(arr, arrival[static_cast<std::size_t>(d)]);
          }
          arrival[static_cast<std::size_t>(id)] =
              arr + delay[static_cast<std::size_t>(id)];
          if (g.type == circuit::GateType::kOutput) {
            worst = std::max(worst, arrival[static_cast<std::size_t>(id)]);
          }
        }
        if (worst <= t_cons) ++pass;
      }
      chunk_pass[ci] = pass;
    }
  });
  std::size_t pass = 0;
  for (std::size_t p : chunk_pass) pass += p;
  return static_cast<double>(pass) / static_cast<double>(samples);
}

std::vector<std::unique_ptr<Experiment>> build_experiments(
    const std::vector<ExperimentConfig>& configs) {
  std::vector<std::unique_ptr<Experiment>> out(configs.size());
  std::vector<std::future<void>> pending;
  pending.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    pending.push_back(util::ThreadPool::instance().submit(
        [&out, &configs, i] { out[i] = std::make_unique<Experiment>(configs[i]); }));
  }
  // Wait for everything before rethrowing: the tasks capture `out`/`configs`
  // by reference, so no future may outlive this frame.
  std::exception_ptr error;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
  return out;
}

Experiment::Experiment(const ExperimentConfig& config)
    : config_(config),
      netlist_(circuit::generate_benchmark(config.benchmark)) {
  const std::uint64_t seed =
      config_.seed != 0 ? config_.seed
                        : util::Rng::seed_from(config_.benchmark, 42);
  circuit::PlacementOptions popt;
  popt.seed = seed ^ 0x9e37;
  circuit::place(netlist_, popt);

  graph_ = std::make_unique<timing::TimingGraph>(netlist_, library_);
  if (config_.emulate_synthesis) {
    timing::emulate_area_recovery(*graph_);
  }
  const timing::StaResult sta = timing::run_sta(*graph_);
  nominal_delay_ = sta.circuit_delay;
  t_cons_ = nominal_delay_ * config_.tcons_factor;

  int levels = config_.hierarchy_levels;
  if (levels <= 0) {
    // Paper: 3-level model (21 regions) for smaller benchmarks, 5-level
    // (341 regions) for larger ones; threshold at ~2000 gates.
    levels = (netlist_.combinational_count() < 2000) ? 3 : 5;
  }
  spatial_ = std::make_unique<variation::SpatialModel>(levels);

  yield_ = estimate_circuit_yield(*graph_, *spatial_, t_cons_,
                                  config_.yield_mc_samples, seed ^ 0xA0,
                                  config_.random_scale);

  // Candidate enumeration: per-gate coverage paths first (the worst path
  // through every gate, so the statistical filter sees every circuit
  // region), then endpoint-balanced k-worst enumeration for volume.
  timing::PathEnumOptions popts;
  popts.max_paths = config_.max_candidates;
  popts.sigma_weight = config_.enum_sigma_weight;
  std::vector<timing::Path> candidates =
      timing::worst_path_through_each_gate(*graph_, popts);
  const std::size_t coverage_count = candidates.size();
  {
    std::vector<timing::Path> extra =
        timing::enumerate_worst_paths_per_endpoint(*graph_, popts);
    std::unordered_set<std::size_t> seen;
    auto path_hash = [](const timing::Path& p) {
      std::size_t h = 1469598103934665603ull;
      for (circuit::GateId g : p.gates) {
        h ^= static_cast<std::size_t>(g) + 0x9e3779b9 + (h << 6) + (h >> 2);
      }
      return h;
    };
    for (const timing::Path& p : candidates) seen.insert(path_hash(p));
    for (timing::Path& p : extra) {
      if (candidates.size() >= config_.max_candidates + coverage_count) break;
      if (seen.insert(path_hash(p)).second) candidates.push_back(std::move(p));
    }
  }
  candidates_ = candidates.size();

  const GlobalParams gp = global_params(*graph_, *spatial_);
  PathStatAccumulator acc(*graph_, *spatial_, gp, config_.random_scale);
  const double threshold = config_.yield_loss_factor * (1.0 - yield_);
  struct Scored {
    std::size_t index;
    double fail_prob;
  };
  std::vector<Scored> scored;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const PathStats st = acc.stats(candidates[i]);
    if (st.sigma <= 0.0) continue;
    const double q = 1.0 - util::normal_cdf((t_cons_ - st.mu) / st.sigma);
    if (q > threshold) scored.push_back({i, q});
  }
  std::stable_sort(scored.begin(), scored.end(), [](const Scored& a,
                                                    const Scored& b) {
    return a.fail_prob > b.fail_prob;
  });
  if (scored.size() > config_.max_target_paths) {
    // The paper keeps *every* path above the yield-loss threshold; under a
    // budget we must truncate, and truncating purely by fail probability
    // would collapse the pool into the single worst cone.  Keep the
    // qualifying coverage paths (breadth), then fill round-robin across
    // capture points, most-critical first within each endpoint.
    std::vector<Scored> kept;
    kept.reserve(config_.max_target_paths);
    const std::size_t coverage_budget = static_cast<std::size_t>(
        config_.max_coverage_fraction *
        static_cast<double>(config_.max_target_paths));
    std::vector<Scored> rest;
    for (const Scored& s : scored) {
      if (s.index < coverage_count && kept.size() < coverage_budget) {
        kept.push_back(s);
      } else {
        rest.push_back(s);
      }
    }
    scored = std::move(rest);
    std::unordered_map<circuit::GateId, std::vector<std::size_t>> by_endpoint;
    std::vector<circuit::GateId> endpoint_order;
    for (std::size_t k = 0; k < scored.size(); ++k) {
      const circuit::GateId cap = candidates[scored[k].index].gates.back();
      auto [it, fresh] = by_endpoint.try_emplace(cap);
      if (fresh) endpoint_order.push_back(cap);
      it->second.push_back(k);
    }
    for (std::size_t round = 0; kept.size() < config_.max_target_paths;
         ++round) {
      bool any = false;
      for (circuit::GateId cap : endpoint_order) {
        const auto& list = by_endpoint[cap];
        if (round >= list.size()) continue;
        kept.push_back(scored[list[round]]);
        any = true;
        if (kept.size() >= config_.max_target_paths) break;
      }
      if (!any) break;
    }
    std::stable_sort(kept.begin(), kept.end(), [](const Scored& a,
                                                  const Scored& b) {
      return a.fail_prob > b.fail_prob;
    });
    scored = std::move(kept);
  }
  targets_.reserve(scored.size());
  for (const Scored& s : scored) targets_.push_back(std::move(candidates[s.index]));
  if (targets_.empty()) {
    throw std::runtime_error("Experiment: no target paths extracted for " +
                             config_.benchmark);
  }

  segments_ = timing::extract_segments(netlist_, targets_);
  variation::VariationOptions vopt;
  vopt.random_scale = config_.random_scale;
  model_ = std::make_unique<variation::VariationModel>(*graph_, *spatial_,
                                                       targets_, segments_,
                                                       vopt);
}

std::size_t Experiment::total_gates() const {
  return netlist_.combinational_count();
}

ExperimentConfig default_experiment_config(const std::string& benchmark) {
  ExperimentConfig cfg;
  cfg.benchmark = benchmark;
  switch (util::repro_scale_mode()) {
    case 0:  // REPRO_FAST
      cfg.max_target_paths = 500;
      cfg.max_candidates = 5000;
      cfg.yield_mc_samples = 500;
      break;
    case 2:  // REPRO_FULL
      cfg.max_target_paths = 4000;
      cfg.max_candidates = 40000;
      cfg.yield_mc_samples = 4000;
      break;
    default:
      cfg.max_target_paths = 2000;
      cfg.max_candidates = 20000;
      cfg.yield_mc_samples = 2000;
      break;
  }
  return cfg;
}

std::size_t default_mc_samples() {
  switch (util::repro_scale_mode()) {
    case 0: return 2000;
    case 2: return 10000;
    default: return 10000;
  }
}

}  // namespace repro::core
