// Deterministic model of imperfect post-silicon delay measurement.
//
// The paper's predictor (Eqn 5) assumes representative-path delays are read
// off silicon exactly.  Real delay test hardware gives noisy, quantized and
// occasionally absurd numbers, and some paths simply cannot be sensitized on
// a given die (EffiTest-style limited test access).  This module injects
// those faults into the clean "silicon" delays produced by the linear model:
//
//   * additive Gaussian sensor noise, sigma per slot = noise_sigma_ps +
//     noise_sigma_frac * |nominal slot delay|;
//   * heavy-tailed outliers: with probability outlier_rate the noise deviate
//     is scaled by outlier_scale (a Gaussian mixture, heavy-tailed across
//     the die population);
//   * tester quantization to a quantization_ps LSB;
//   * dropped measurements: slots listed in dead_slots are unmeasurable on
//     every die; every other slot independently drops out with probability
//     dropout_rate per die.
//
// Reproducibility contract: the fault schedule for die k is drawn from
// util::Rng::stream(spec.seed, k) in fixed slot order, so it depends only on
// (spec, die index) — never on thread count, chunking or call order.  This
// extends the PR-1 bit-identical parallel Monte-Carlo guarantee to the
// fault-injected protocol.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace repro::core {

struct FaultSpec {
  double noise_sigma_frac = 0.0;  // Gaussian noise, fraction of |nominal|
  double noise_sigma_ps = 0.0;    // additive Gaussian noise floor (ps)
  double quantization_ps = 0.0;   // tester LSB; 0 = no quantization
  double outlier_rate = 0.0;      // per-slot probability of an outlier
  double outlier_scale = 10.0;    // outlier noise multiplier
  double dropout_rate = 0.0;      // per-slot per-die dropout probability
  std::vector<int> dead_slots;    // slots unmeasurable on every die
  std::uint64_t seed = 0xFA17;    // fault-schedule seed (independent of MC)

  // True when no fault mechanism is active (the clean-measurement paper
  // protocol).
  bool clean() const;
};

// The default noisy-silicon regime used by bench_robustness and the
// acceptance test: 1% of nominal Gaussian sensor noise, 5% outliers at 10x
// the noise sigma, and the first (most informative) representative slot dead.
FaultSpec default_fault_spec();

// Copy of `spec` with dead_slots cleared.  Used when evaluating a predictor
// that was already rebuilt without the dead paths (graceful degradation):
// its measurement vector no longer contains the dead slots, so the schedule
// must not kill a surviving slot by position.
FaultSpec without_dead_slots(FaultSpec spec);

// Expected per-slot noise sigma (ps) under `spec`, averaged over the nominal
// slot delays; feeds RobustOptions::measurement_sigma_ps so the IRLS
// calibration knows the sensor noise scale.
double expected_noise_sigma(const FaultSpec& spec,
                            std::span<const double> nominal);

struct NoisyMeasurements {
  linalg::Vector values;    // faulted measurements; invalid slots hold nominal
  std::vector<char> valid;  // 0 = dropped/unmeasurable on this die
  int outliers = 0;         // slots that drew the outlier mixture component
  int dropped = 0;          // slots invalid on this die (dead + dropout)
  // Per-fault-mode breakdown (dropped == dead + dropout): lets evaluation
  // telemetry distinguish tester faults from model drift.
  int dead = 0;             // slots invalid because listed in dead_slots
  int dropout = 0;          // slots invalid from the per-die dropout draw
  std::vector<int> outlier_slots;  // which slots drew the outlier component
};

// Applies the fault schedule for die `die` to the clean measurements.
// `clean` are the exact silicon delays of the measured slots; `nominal` the
// corresponding nominal (mean) delays, used both to scale the relative noise
// and as the placeholder value of invalid slots.
NoisyMeasurements apply_faults(std::span<const double> clean,
                               std::span<const double> nominal,
                               const FaultSpec& spec, std::uint64_t die);

}  // namespace repro::core
