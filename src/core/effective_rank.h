// Effective rank (paper Section 4.2, after Chua et al., "Network Kriging").
//
// Given the singular values of the path-sensitivity matrix A, the effective
// rank at threshold eta is the smallest k whose leading singular values
// capture (1 - eta) of the total energy E = sum_i lambda_i.  It lower-bounds
// how many representative paths are needed for a given prediction accuracy,
// and is the quantity Figure 2 visualizes.
#pragma once

#include <cstddef>

#include "linalg/matrix.h"

namespace repro::core {

// `singular_values` must be sorted non-increasing (as produced by
// linalg::svd).  eta in [0, 1); eta = 0 returns the count of nonzero values.
std::size_t effective_rank(const linalg::Vector& singular_values, double eta);

// Normalized singular values lambda_i / sum(lambda), the series plotted in
// Figure 2.
linalg::Vector normalized_singular_values(const linalg::Vector& singular_values);

}  // namespace repro::core
