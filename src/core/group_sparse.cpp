#include "core/group_sparse.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/gemm.h"

namespace repro::core {
namespace {

// Projects one row (already in the eigenbasis of Q) onto the ellipsoid
// {w : sum_k d_k w_k^2 <= t2}.  Newton on the secular equation
// phi(lambda) = sum_k d_k q_k^2 / (1 + lambda d_k)^2 - t2 with a bisection
// safeguard; phi is decreasing and convex for lambda >= 0.
void project_row_eigenbasis(std::span<double> q, std::span<const double> d,
                            double t2) {
  double phi0 = 0.0;
  for (std::size_t k = 0; k < q.size(); ++k) phi0 += d[k] * q[k] * q[k];
  if (phi0 <= t2) return;  // already inside

  double lambda = 0.0;
  double lo = 0.0;
  // Upper bracket: phi(lambda) <= dmax * |q|^2 / (1 + lambda dmin_pos)^2 ...
  // simpler: grow until phi < t2.
  double hi = 1.0;
  auto phi = [&](double lam) {
    double s = 0.0;
    for (std::size_t k = 0; k < q.size(); ++k) {
      const double den = 1.0 + lam * d[k];
      const double w = q[k] / den;
      s += d[k] * w * w;
    }
    return s;
  };
  while (phi(hi) > t2) {
    lo = hi;
    hi *= 4.0;
    if (hi > 1e18) break;  // numerically flat; accept hi
  }
  lambda = 0.5 * (lo + hi);
  for (int it = 0; it < 100; ++it) {
    double val = 0.0, deriv = 0.0;
    for (std::size_t k = 0; k < q.size(); ++k) {
      const double den = 1.0 + lambda * d[k];
      const double w = q[k] / den;
      const double dk_w2 = d[k] * w * w;
      val += dk_w2;
      deriv -= 2.0 * dk_w2 * d[k] / den;
    }
    if (val > t2) {
      lo = lambda;
    } else {
      hi = lambda;
    }
    const double err = val - t2;
    if (std::abs(err) <= 1e-12 * t2 + 1e-300) break;
    double next = lambda - err / deriv;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);  // safeguard
    if (std::abs(next - lambda) <= 1e-15 * std::max(1.0, lambda)) {
      lambda = next;
      break;
    }
    lambda = next;
  }
  for (std::size_t k = 0; k < q.size(); ++k) q[k] /= (1.0 + lambda * d[k]);
}

}  // namespace

// The radius precondition is validated unconditionally below in every
// build; a contract would duplicate it.
// repro-lint: allow(contracts)
linalg::Vector project_l1_ball(linalg::Vector v, double radius) {
  if (radius < 0.0) throw std::invalid_argument("project_l1_ball: radius < 0");
  double l1 = 0.0;
  for (double x : v) l1 += std::abs(x);
  if (l1 <= radius) return v;
  if (radius == 0.0) {
    std::fill(v.begin(), v.end(), 0.0);
    return v;
  }
  // Find the soft threshold theta: sum_k max(|v_k| - theta, 0) = radius.
  linalg::Vector mag(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) mag[i] = std::abs(v[i]);
  std::sort(mag.begin(), mag.end(), std::greater<double>());
  double cum = 0.0;
  double theta = 0.0;
  for (std::size_t k = 0; k < mag.size(); ++k) {
    cum += mag[k];
    const double cand = (cum - radius) / static_cast<double>(k + 1);
    if (k + 1 == mag.size() || mag[k + 1] <= cand) {
      theta = cand;
      break;
    }
  }
  for (double& x : v) {
    const double m = std::abs(x) - theta;
    x = (m > 0.0) ? (x > 0.0 ? m : -m) : 0.0;
  }
  return v;
}

// Shape preconditions are validated unconditionally below in every build;
// a contract would duplicate them.
// repro-lint: allow(contracts)
SegmentQuadratic build_segment_quadratic(const linalg::Matrix& sigma,
                                         const linalg::Vector& mu_s,
                                         double kappa) {
  const std::size_t ns = sigma.rows();
  if (mu_s.size() != ns) {
    throw std::invalid_argument("build_segment_quadratic: shape mismatch");
  }
  SegmentQuadratic out;
  out.q = linalg::gram(sigma);
  out.q *= kappa * kappa;
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < ns; ++j) out.q(i, j) += mu_s[i] * mu_s[j];
  }
  linalg::EigenSymResult eig = linalg::eigen_sym(out.q);
  if (!eig.converged) {
    throw std::runtime_error(
        "build_segment_quadratic: eigendecomposition failed");
  }
  out.d = std::move(eig.values);
  for (double& x : out.d) x = std::max(x, 0.0);  // clamp tiny negative noise
  out.v = std::move(eig.vectors);
  return out;
}

// Delegates; build_segment_quadratic and the quadratic overload validate
// every shape unconditionally in every build.
// repro-lint: allow(contracts)
GroupSparseResult select_segments(const linalg::Matrix& g_r1,
                                  const linalg::Matrix& sigma,
                                  const linalg::Vector& mu_s, double bound,
                                  const GroupSparseOptions& options) {
  return select_segments(g_r1,
                         build_segment_quadratic(sigma, mu_s, options.kappa),
                         bound, options);
}

// Shape and bound preconditions are validated unconditionally below in
// every build; a contract would duplicate them.
// repro-lint: allow(contracts)
GroupSparseResult select_segments(const linalg::Matrix& g_r1,
                                  const SegmentQuadratic& quad, double bound,
                                  const GroupSparseOptions& options) {
  const std::size_t r1 = g_r1.rows();
  const std::size_t ns = g_r1.cols();
  if (quad.q.rows() != ns) {
    throw std::invalid_argument("select_segments: shape mismatch");
  }
  if (bound <= 0.0) throw std::invalid_argument("select_segments: bound <= 0");

  const linalg::Matrix& q = quad.q;
  const linalg::Vector& d = quad.d;
  const linalg::Matrix& v_basis = quad.v;  // Q = V diag(d) V^T
  const double t2 = bound * bound;

  // Scale-aware default rho: the prox threshold 1/rho should be comparable
  // to typical column magnitudes of G (entries are 0/1).
  double rho = options.rho;
  if (rho <= 0.0) rho = 1.0;

  // ADMM state.  Start at the feasible point B = Z = G (zero modeling error).
  linalg::Matrix b = g_r1;
  linalg::Matrix z = g_r1;
  linalg::Matrix u(r1, ns);

  GroupSparseResult out;
  const double sqrt_dim = std::sqrt(static_cast<double>(r1 * ns));
  for (int it = 0; it < options.max_iterations; ++it) {
    // ---- B-update: row-wise projection of (Z - U) onto the ellipsoid
    // centered at the corresponding row of G. ----
    linalg::Matrix p = g_r1;          // q_i = g_i - (z_i - u_i)
    p -= z;
    p += u;
    linalg::Matrix pt = linalg::multiply(p, v_basis);  // rows into eigenbasis
    for (std::size_t i = 0; i < r1; ++i) {
      project_row_eigenbasis(pt.row(i), d, t2);
    }
    const linalg::Matrix w = linalg::multiply_bt(pt, v_basis);  // back
    b = g_r1;
    b -= w;  // b_i = g_i - w_i

    // ---- Z-update: column-wise prox of (1/rho) * l-inf norm. ----
    const linalg::Matrix z_prev = z;
    linalg::Vector col(r1);
    for (std::size_t j = 0; j < ns; ++j) {
      for (std::size_t i = 0; i < r1; ++i) col[i] = b(i, j) + u(i, j);
      const linalg::Vector proj = project_l1_ball(col, 1.0 / rho);
      for (std::size_t i = 0; i < r1; ++i) z(i, j) = col[i] - proj[i];
    }

    // ---- Dual update and residuals. ----
    double r_norm2 = 0.0, s_norm2 = 0.0;
    for (std::size_t i = 0; i < r1; ++i) {
      for (std::size_t j = 0; j < ns; ++j) {
        const double pr = b(i, j) - z(i, j);
        u(i, j) += pr;
        r_norm2 += pr * pr;
        const double du = z(i, j) - z_prev(i, j);
        s_norm2 += du * du;
      }
    }
    const double r_norm = std::sqrt(r_norm2);
    const double s_norm = rho * std::sqrt(s_norm2);
    out.iterations = it + 1;
    const double eps_pri =
        sqrt_dim * options.abs_tol +
        options.rel_tol * std::max(b.frobenius_norm(), z.frobenius_norm());
    const double eps_dual =
        sqrt_dim * options.abs_tol + options.rel_tol * rho * u.frobenius_norm();
    if (r_norm <= eps_pri && s_norm <= eps_dual) {
      out.converged = true;
      break;
    }
    // Residual balancing.
    if (r_norm > 10.0 * s_norm) {
      rho *= 2.0;
      u *= 0.5;
    } else if (s_norm > 10.0 * r_norm) {
      rho *= 0.5;
      u *= 2.0;
    }
  }

  // ---- Column support from Z (the sparse iterate). ----
  linalg::Vector col_inf(ns, 0.0);
  double max_inf = 0.0;
  for (std::size_t j = 0; j < ns; ++j) {
    for (std::size_t i = 0; i < r1; ++i) {
      col_inf[j] = std::max(col_inf[j], std::abs(z(i, j)));
    }
    max_inf = std::max(max_inf, col_inf[j]);
    out.objective += col_inf[j];
  }
  std::vector<char> in_support(ns, 0);
  for (std::size_t j = 0; j < ns; ++j) {
    if (col_inf[j] > options.column_threshold_rel * max_inf) in_support[j] = 1;
  }

  // ---- Constrained least-squares refit on the support, growing it while
  // any row violates its bound by more than refit_slack. ----
  // Constrained least-squares refit on a support, batched across all rows:
  //   c_N = g_N fixed,  c_S = -Q_SS^{-1} Q_SN g_N  (per row),
  //   wc^2 = c Q c^T = g_N Q_NN g_N^T - c_S . (Q_SN g_N)
  // (the cross terms collapse because Q_SS c_S = -Q_SN g_N).
  auto refit = [&](const std::vector<char>& support, linalg::Matrix& b_out,
                   linalg::Vector& wc_out) -> double {
    std::vector<int> s_idx, n_idx;
    for (std::size_t j = 0; j < ns; ++j) {
      (support[j] ? s_idx : n_idx).push_back(static_cast<int>(j));
    }
    const std::size_t nss = s_idx.size();
    b_out = linalg::Matrix(r1, ns);
    wc_out.assign(r1, 0.0);

    const linalg::Matrix g_n = g_r1.select_cols(n_idx);          // r1 x |N|
    const linalg::Matrix q_nn = q.select_rows(n_idx).select_cols(n_idx);
    // t_i = g_N Q_NN g_N^T per row, via one GEMM.
    const linalg::Matrix gq = linalg::multiply(g_n, q_nn);       // r1 x |N|
    linalg::Vector base(r1);
    for (std::size_t i = 0; i < r1; ++i) {
      base[i] = linalg::dot(gq.row(i), g_n.row(i));
    }

    double worst = 0.0;
    if (nss == 0) {
      for (std::size_t i = 0; i < r1; ++i) {
        wc_out[i] = std::sqrt(std::max(base[i], 0.0));
        worst = std::max(worst, wc_out[i]);
      }
      return worst;
    }

    linalg::Matrix q_ss = q.select_rows(s_idx).select_cols(s_idx);
    const linalg::Matrix q_sn = q.select_rows(s_idx).select_cols(n_idx);
    // RHS rows: r_i = Q_SN g_N (per row of g_n) -> batched as g_n * Q_SN^T.
    const linalg::Matrix rhs = linalg::multiply_bt(g_n, q_sn);   // r1 x |S|
    const linalg::RegularizedChol rc = linalg::chol_factor_regularized(q_ss);
    linalg::Vector r_row(nss);
    for (std::size_t i = 0; i < r1; ++i) {
      for (std::size_t a = 0; a < nss; ++a) r_row[a] = -rhs(i, a);
      const linalg::Vector c_s = linalg::chol_solve(rc.factors, r_row);
      // b_i = g_i - c_i on the support (zero elsewhere by construction).
      double cross = 0.0;
      for (std::size_t a = 0; a < nss; ++a) {
        const auto j = static_cast<std::size_t>(s_idx[a]);
        b_out(i, j) = g_r1(i, j) - c_s[a];
        cross += c_s[a] * rhs(i, a);
      }
      // c Q c^T = base + c_S . r  (cross <= 0: the support only helps).
      wc_out[i] = std::sqrt(std::max(base[i] + cross, 0.0));
      worst = std::max(worst, wc_out[i]);
    }
    return worst;
  };

  linalg::Vector wc;
  double worst = refit(in_support, out.b, wc);
  int grow_rounds = 0;
  std::size_t grow_step = std::max<std::size_t>(1, ns / 50);
  while (worst > bound * (1.0 + options.refit_slack) && grow_rounds < 16) {
    std::size_t selected = 0;
    for (char f : in_support) selected += (f != 0);
    if (selected + grow_step >= ns) {
      // Near-full support: take every segment (b = g is exactly feasible
      // with zero error), avoiding pathological refit churn at tight bounds.
      std::fill(in_support.begin(), in_support.end(), 1);
      worst = refit(in_support, out.b, wc);
      break;
    }
    // Grow the support with the unselected columns of largest |B| magnitude
    // from the (feasible) ADMM B iterate; the step doubles each round so
    // the total number of refits stays logarithmic.
    std::vector<std::pair<double, int>> candidates;
    for (std::size_t j = 0; j < ns; ++j) {
      if (in_support[j]) continue;
      double m = 0.0;
      for (std::size_t i = 0; i < r1; ++i) m = std::max(m, std::abs(b(i, j)));
      candidates.emplace_back(m, static_cast<int>(j));
    }
    if (candidates.empty()) break;
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b2) { return a.first > b2.first; });
    const std::size_t add = std::min(candidates.size(), grow_step);
    for (std::size_t k = 0; k < add; ++k) {
      in_support[static_cast<std::size_t>(candidates[k].second)] = 1;
    }
    grow_step *= 2;
    worst = refit(in_support, out.b, wc);
    ++grow_rounds;
  }
  out.row_wc = std::move(wc);
  for (std::size_t j = 0; j < ns; ++j) {
    if (in_support[j]) out.selected_segments.push_back(static_cast<int>(j));
  }
  return out;
}

}  // namespace repro::core
