// Convex segment selection (paper Eqn (10)): find a coefficient matrix B
// mapping segment delays to the exactly-selected paths' delays,
//
//   min_B   sum_j ||B column j||_inf        (l1/l-inf relaxation of l0/l-inf)
//   s.t.    WC(Delta_i) <= bound            for every row i,
//
// where Delta_i = (g_i - b_i) d_S and d_S = mu_S + Sigma x.  Segments whose
// column is nonzero are the representative segments S_r1.
//
// Worst case: following the paper's note that the constraint "is quadratic
// with respect to B after taking square operation on both sides", we use the
// smooth surrogate WC2(y) = mean(y)^2 + kappa^2 var(y), which turns every row
// constraint into one shared ellipsoid
//
//   (g_i - b_i) Q (g_i - b_i)^T <= bound^2,  Q = mu_S mu_S^T + kappa^2 Sigma Sigma^T.
//
// Solver: ADMM with splitting B = Z.
//   B-update: row-wise Euclidean projection onto the ellipsoid — one shared
//             symmetric eigendecomposition of Q, then a secular-equation
//             Newton solve per row (all rows batched through two GEMMs).
//   Z-update: column-wise prox of the l-inf norm (Moreau identity via
//             projection onto the l1 ball).
// After ADMM, the column support is extracted and B is re-fit by constrained
// least squares on that support (one Cholesky of Q_SS shared by all rows),
// greedily growing the support if any row would violate its bound.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace repro::core {

struct GroupSparseOptions {
  double kappa = 3.0;
  int max_iterations = 60;
  double rho = -1.0;          // ADMM penalty; <= 0 selects a scale-aware value
  double abs_tol = 1e-7;
  double rel_tol = 1e-4;
  // A column is considered selected when its l-inf norm exceeds this fraction
  // of the largest column norm of the solution.
  double column_threshold_rel = 1e-2;
  // Allowed relative constraint violation after the support refit before the
  // support is greedily grown.
  double refit_slack = 0.02;
};

struct GroupSparseResult {
  linalg::Matrix b;                   // r1 x nS, refit on the selected support
  std::vector<int> selected_segments; // ascending segment ids
  linalg::Vector row_wc;              // achieved WC surrogate per row (ps)
  double objective = 0.0;             // l1/l-inf objective of the ADMM point
  int iterations = 0;
  bool converged = false;
};

// The shared worst-case quadratic form Q = mu mu^T + kappa^2 Sigma Sigma^T
// and its eigendecomposition.  Building it costs O(nS^2 m + nS^3); it does
// not depend on the bound, so callers sweeping eps' should build it once.
struct SegmentQuadratic {
  linalg::Matrix q;  // nS x nS, PSD
  linalg::Vector d;  // eigenvalues, ascending, clamped >= 0
  linalg::Matrix v;  // eigenvectors (columns), Q = V diag(d) V^T
};
SegmentQuadratic build_segment_quadratic(const linalg::Matrix& sigma,
                                         const linalg::Vector& mu_s,
                                         double kappa);

// g_r1: r1 x nS incidence rows of the exactly-selected paths;
// sigma:  nS x m segment sensitivities;  mu_s: nS nominal segment delays;
// bound = eps' * Tcons (ps).
GroupSparseResult select_segments(const linalg::Matrix& g_r1,
                                  const linalg::Matrix& sigma,
                                  const linalg::Vector& mu_s, double bound,
                                  const GroupSparseOptions& options = {});

// Same, with the quadratic form precomputed (options.kappa is ignored; the
// kappa baked into `quad` applies).
GroupSparseResult select_segments(const linalg::Matrix& g_r1,
                                  const SegmentQuadratic& quad, double bound,
                                  const GroupSparseOptions& options = {});

// Exposed for testing: Euclidean projection of v onto the l1 ball of the
// given radius (Duchi et al. linear-time algorithm, here O(n log n)).
linalg::Vector project_l1_ball(linalg::Vector v, double radius);

}  // namespace repro::core
