// Clustered representative-path selection (paper Section 4.4: "if the
// number of target paths is very large, we can apply a clustering procedure
// to form clusters of paths of smaller size for speedup").
//
// Paths are clustered by the direction of their sensitivity rows (spherical
// k-means, cosine similarity — paths correlated through shared segments and
// regions land together), Algorithm 1 runs independently inside every
// cluster, and the merged representatives are verified against the FULL
// target set; paths whose cross-cluster error still exceeds eps are added
// greedily.  The per-cluster factorizations cost O(sum n_c^3) ~ O(n^3 / k^2)
// instead of O(n^3), trading a slightly larger selection for speed — the
// ablation bench quantifies that trade.
#pragma once

#include <cstdint>

#include "core/path_selection.h"

namespace repro::core {

struct ClusteredSelectionOptions {
  std::size_t num_clusters = 0;  // 0 = auto: ~500 paths per cluster
  int kmeans_iterations = 16;
  std::uint64_t seed = 0x5eed5;
  PathSelectionOptions selection;
};

struct ClusteredSelectionResult {
  std::vector<int> representatives;   // indices into A's rows
  std::vector<int> cluster_of_path;   // per path
  std::size_t clusters_used = 0;
  SelectionErrors errors;             // verified on the full set
  double eps_r = 0.0;                 // achieved global error
  std::size_t greedy_additions = 0;   // paths added by the global repair step
};

ClusteredSelectionResult select_paths_clustered(
    const linalg::Matrix& a, double t_cons,
    const ClusteredSelectionOptions& options = {});

// Exposed for testing: spherical k-means over the rows of A.  Returns the
// cluster index per row; clusters are non-empty for k <= distinct nonzero
// rows.
std::vector<int> cluster_rows_spherical(const linalg::Matrix& a,
                                        std::size_t k, int iterations,
                                        std::uint64_t seed);

// Unit-length mean directions of the clusters in `assign` (values in
// [0, k)), with empty clusters dropped — the result has one row per
// non-empty cluster, in ascending cluster order.  Dropping empties matters
// for streamed assignment: a zero center has similarity 0 to everything and
// would capture every row whose best cosine is negative.  Used by the
// sharded pipeline to carry a k-means run on a sample out to the full pool.
linalg::Matrix spherical_centers(const linalg::Matrix& a,
                                 const std::vector<int>& assign,
                                 std::size_t k);

}  // namespace repro::core
