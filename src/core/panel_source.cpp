#include "core/panel_source.h"

#include <algorithm>
#include <stdexcept>

#include "util/contracts.h"

namespace repro::core {

double PathPanelSource::path_weight(int) const { return 1.0; }

MatrixPanelSource::MatrixPanelSource(const linalg::Matrix& a,
                                     std::span<const double> weights)
    : a_(&a), weights_(weights) {
  if (!weights_.empty() && weights_.size() != a.rows()) {
    throw std::invalid_argument(
        "MatrixPanelSource: weights size must match matrix rows");
  }
}

void MatrixPanelSource::fill_rows(std::span<const int> ids,
                                  linalg::Matrix& out) const {
  REPRO_CHECK_DIM(out.rows(), ids.size(),
                  "MatrixPanelSource::fill_rows: panel rows vs ids");
  REPRO_CHECK_DIM(out.cols(), a_->cols(),
                  "MatrixPanelSource::fill_rows: panel cols vs params");
  const std::size_t m = a_->cols();
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const int id = ids[k];
    if (id < 0 || static_cast<std::size_t>(id) >= a_->rows()) {
      throw std::out_of_range("MatrixPanelSource::fill_rows: path id");
    }
    const double* src = a_->row(static_cast<std::size_t>(id)).data();
    double* dst = out.row(k).data();
    std::copy(src, src + m, dst);
  }
}

double MatrixPanelSource::path_weight(int id) const {
  if (weights_.empty()) return 1.0;
  if (id < 0 || static_cast<std::size_t>(id) >= weights_.size()) {
    throw std::out_of_range("MatrixPanelSource::path_weight: path id");
  }
  return weights_[static_cast<std::size_t>(id)];
}

FunctionPanelSource::FunctionPanelSource(std::size_t paths, std::size_t params,
                                         RowFn row, WeightFn weight)
    : paths_(paths), params_(params), row_(std::move(row)),
      weight_(std::move(weight)) {
  if (paths_ == 0 || params_ == 0) {
    throw std::invalid_argument(
        "FunctionPanelSource: pool dimensions must be positive");
  }
  if (!row_) {
    throw std::invalid_argument("FunctionPanelSource: row callback required");
  }
}

void FunctionPanelSource::fill_rows(std::span<const int> ids,
                                    linalg::Matrix& out) const {
  REPRO_CHECK_DIM(out.rows(), ids.size(),
                  "FunctionPanelSource::fill_rows: panel rows vs ids");
  REPRO_CHECK_DIM(out.cols(), params_,
                  "FunctionPanelSource::fill_rows: panel cols vs params");
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const int id = ids[k];
    if (id < 0 || static_cast<std::size_t>(id) >= paths_) {
      throw std::out_of_range("FunctionPanelSource::fill_rows: path id");
    }
    row_(id, out.row(k));
  }
}

double FunctionPanelSource::path_weight(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= paths_) {
    throw std::out_of_range("FunctionPanelSource::path_weight: path id");
  }
  return weight_ ? weight_(id) : 1.0;
}

}  // namespace repro::core
