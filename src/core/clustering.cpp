#include "core/clustering.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/gemm.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace repro::core {
namespace {

void normalize_rows(linalg::Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double n = linalg::norm2(m.row(i));
    if (n > 0.0) linalg::scale(m.row(i), 1.0 / n);
  }
}

}  // namespace

// The only precondition (k in [1, rows]) is validated unconditionally just
// below in every build; a contract would duplicate it.
// repro-lint: allow(contracts)
std::vector<int> cluster_rows_spherical(const linalg::Matrix& a,
                                        std::size_t k, int iterations,
                                        std::uint64_t seed) {
  const std::size_t n = a.rows();
  if (k == 0 || k > n) {
    throw std::invalid_argument("cluster_rows_spherical: bad k");
  }
  linalg::Matrix rows = a;
  normalize_rows(rows);

  util::Rng rng(seed);
  // k-means++-style seeding on cosine distance: first center random, each
  // next center the row farthest (in expectation) from current centers.
  linalg::Matrix centers(k, a.cols());
  std::vector<double> best_sim(n, -2.0);
  {
    const std::size_t first = rng.uniform_index(n);
    centers.set_row(0, rows.row(first));
    for (std::size_t c = 1; c < k; ++c) {
      double worst = 2.0;
      std::size_t pick = 0;
      for (std::size_t i = 0; i < n; ++i) {
        best_sim[i] = std::max(best_sim[i],
                               linalg::dot(rows.row(i), centers.row(c - 1)));
        // Prefer rows least similar to any existing center; small random
        // tie-break keeps the seeding from being adversarially determined.
        const double key = best_sim[i] + 1e-9 * rng.uniform();
        if (key < worst) {
          worst = key;
          pick = i;
        }
      }
      centers.set_row(c, rows.row(pick));
    }
  }

  std::vector<int> assign(n, 0);
  for (int it = 0; it < iterations; ++it) {
    // Assign: max cosine similarity (rows and centers unit length).
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      double best = -2.0;
      int arg = assign[i];
      for (std::size_t c = 0; c < k; ++c) {
        const double s = linalg::dot(rows.row(i), centers.row(c));
        if (s > best) {
          best = s;
          arg = static_cast<int>(c);
        }
      }
      if (arg != assign[i]) {
        assign[i] = arg;
        changed = true;
      }
    }
    if (!changed && it > 0) break;
    // Update: mean direction per cluster; reseed empty clusters.
    centers = linalg::Matrix(k, a.cols());
    std::vector<std::size_t> count(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      linalg::axpy(1.0, rows.row(i),
                   centers.row(static_cast<std::size_t>(assign[i])));
      ++count[static_cast<std::size_t>(assign[i])];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (count[c] == 0) {
        centers.set_row(c, rows.row(rng.uniform_index(n)));
        continue;
      }
      const double nrm = linalg::norm2(centers.row(c));
      if (nrm > 0.0) linalg::scale(centers.row(c), 1.0 / nrm);
    }
  }
  return assign;
}

linalg::Matrix spherical_centers(const linalg::Matrix& a,
                                 const std::vector<int>& assign,
                                 std::size_t k) {
  REPRO_CHECK_DIM(assign.size(), a.rows(),
                  "spherical_centers: assignment vs rows");
  if (k == 0) throw std::invalid_argument("spherical_centers: k == 0");
  linalg::Matrix sums(k, a.cols());
  std::vector<std::size_t> count(k, 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const int c = assign[i];
    if (c < 0 || static_cast<std::size_t>(c) >= k) {
      throw std::out_of_range("spherical_centers: cluster index");
    }
    // Accumulate unit directions so large rows don't dominate the mean.
    const double nrm = linalg::norm2(a.row(i));
    if (nrm > 0.0) {
      linalg::axpy(1.0 / nrm, a.row(i), sums.row(static_cast<std::size_t>(c)));
    }
    ++count[static_cast<std::size_t>(c)];
  }
  std::size_t nonempty = 0;
  for (std::size_t c = 0; c < k; ++c) {
    if (count[c] > 0) ++nonempty;
  }
  linalg::Matrix centers(std::max<std::size_t>(nonempty, 1), a.cols());
  std::size_t out = 0;
  for (std::size_t c = 0; c < k; ++c) {
    if (count[c] == 0) continue;
    const double nrm = linalg::norm2(sums.row(c));
    centers.set_row(out, sums.row(c));
    if (nrm > 0.0) linalg::scale(centers.row(out), 1.0 / nrm);
    ++out;
  }
  return centers;
}

ClusteredSelectionResult select_paths_clustered(
    const linalg::Matrix& a, double t_cons,
    const ClusteredSelectionOptions& options) {
  REPRO_CHECK(t_cons > 0.0, "select_paths_clustered: t_cons must be positive");
  const std::size_t n = a.rows();
  if (n == 0) throw std::invalid_argument("select_paths_clustered: empty A");
  std::size_t k = options.num_clusters;
  if (k == 0) k = std::max<std::size_t>(1, (n + 499) / 500);
  k = std::min(k, n);

  ClusteredSelectionResult out;
  out.clusters_used = k;
  out.cluster_of_path =
      cluster_rows_spherical(a, k, options.kmeans_iterations, options.seed);

  // Per-cluster Algorithm 1.
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<int> members;
    for (std::size_t i = 0; i < n; ++i) {
      if (out.cluster_of_path[i] == static_cast<int>(c)) {
        members.push_back(static_cast<int>(i));
      }
    }
    if (members.empty()) continue;
    if (members.size() == 1) {
      out.representatives.push_back(members.front());
      continue;
    }
    const linalg::Matrix a_c = a.select_rows(members);
    const PathSelectionResult sel =
        select_representative_paths(a_c, t_cons, options.selection);
    for (int local : sel.representatives) {
      out.representatives.push_back(members[static_cast<std::size_t>(local)]);
    }
  }
  std::sort(out.representatives.begin(), out.representatives.end());

  // Global verification + greedy repair: the per-cluster tolerance does not
  // bound cross-cluster residuals, so check against the full set and add
  // the worst offender until the global bound holds.
  const linalg::Matrix gram = linalg::gram(a);
  out.errors = selection_errors_from_gram(gram, out.representatives, t_cons,
                                          options.selection.kappa);
  while (out.errors.eps_r > options.selection.epsilon &&
         out.representatives.size() < n) {
    // Worst remaining path joins the representatives.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < out.errors.per_path_eps.size(); ++i) {
      if (out.errors.per_path_eps[i] > out.errors.per_path_eps[worst]) {
        worst = i;
      }
    }
    out.representatives.push_back(out.errors.remaining[worst]);
    std::sort(out.representatives.begin(), out.representatives.end());
    ++out.greedy_additions;
    out.errors = selection_errors_from_gram(gram, out.representatives, t_cons,
                                            options.selection.kappa);
  }
  out.eps_r = out.errors.eps_r;
  return out;
}

}  // namespace repro::core
