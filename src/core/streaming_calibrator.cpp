#include "core/streaming_calibrator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/guardband.h"
#include "linalg/gemm.h"
#include "linalg/solve.h"
#include "util/telemetry.h"

namespace repro::core {

const char* to_string(StreamHealth h) {
  switch (h) {
    case StreamHealth::kOk: return "ok";
    case StreamHealth::kDegraded: return "degraded";
    case StreamHealth::kUnusable: return "unusable";
  }
  return "?";
}

const char* to_string(StreamGate g) {
  switch (g) {
    case StreamGate::kNone: return "accepted";
    case StreamGate::kStreamUnusable: return "stream_unusable";
    case StreamGate::kSizeMismatch: return "size_mismatch";
    case StreamGate::kNoUsableSlots: return "no_usable_slots";
    case StreamGate::kPathologicalSolve: return "pathological_solve";
    case StreamGate::kExcessScreening: return "excess_screening";
    case StreamGate::kInnovationOutlier: return "innovation_outlier";
    case StreamGate::kIllConditioned: return "ill_conditioned";
  }
  return "?";
}

namespace {

bool quarantine_gate(StreamGate g) {
  // Rejected = failed the robust gate but was a well-formed die; quarantined
  // = unusable input or a pathological update system.
  return g != StreamGate::kExcessScreening &&
         g != StreamGate::kInnovationOutlier;
}

bool all_finite(std::span<const double> v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

double median_of(linalg::Vector v) {
  const std::size_t n = v.size();
  const std::size_t h = n / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(h),
                   v.end());
  double med = v[h];
  if (n % 2 == 0) {
    med = 0.5 * (med + *std::max_element(
                           v.begin(), v.begin() + static_cast<std::ptrdiff_t>(h)));
  }
  return med;
}

}  // namespace

// The streaming entry points deliberately convert every precondition
// violation into a quarantined DieRecord / StreamStatus instead of aborting:
// the stream must survive fault-injected input.
// repro-lint: allow-file(contracts)

StreamingCalibrator::StreamingCalibrator(const RobustPredictor& predictor,
                                         const StreamingOptions& options)
    : predictor_(predictor), options_(options) {
  // Sanitize the knobs that feed divisions.
  if (!(options_.forgetting > 0.0 && options_.forgetting <= 1.0)) {
    options_.forgetting = 1.0;
  }
  if (!(options_.prior_precision > 0.0)) options_.prior_precision = 1.0;
  if (!predictor_.status.usable()) {
    mark_unusable("batch predictor unusable: " + predictor_.status.message);
    publish_telemetry();
    return;
  }
  m_ = predictor_.a_meas.cols();
  const std::size_t n_rem = predictor_.a_rem.rows();
  b_.assign(m_, 0.0);
  const double prior_var = 1.0 / options_.prior_precision;
  p_ = linalg::Matrix(m_, m_);
  for (std::size_t i = 0; i < m_; ++i) p_(i, i) = prior_var;
  q_.assign(n_rem, 0.0);
  for (std::size_t i = 0; i < n_rem; ++i) {
    const double a2 = linalg::dot(predictor_.a_rem.row(i),
                                  predictor_.a_rem.row(i));
    q_[i] = prior_var * a2;
  }
  base_sigma_ = predictor_.error_sigmas();
  shift_meas_.assign(predictor_.base.mu_meas.size(), 0.0);
  shift_rem_.assign(n_rem, 0.0);
  drift_ref_meas_ = shift_meas_;
  if (options_.drift_ref_interval == 0) options_.drift_ref_interval = 1;
  status_.health = StreamHealth::kOk;
  status_.info_condition = 1.0;  // prior covariance is a scaled identity
  const AdaptiveGuardband g = adaptive_guardband(
      base_sigma_, q_, predictor_.base.mu_rem, options_.guard_kappa);
  status_.guardband = g.eps;
  publish_telemetry();
}

void StreamingCalibrator::mark_unusable(std::string why) {
  status_.health = StreamHealth::kUnusable;
  status_.message = std::move(why);
}

void StreamingCalibrator::refresh_shift_cache() {
  shift_meas_ = linalg::matvec(predictor_.a_meas, b_);
  shift_rem_ = linalg::matvec(predictor_.a_rem, b_);
  double norm2 = 0.0;
  for (double v : b_) norm2 += v * v;
  status_.shift_norm = std::sqrt(norm2);
}

void StreamingCalibrator::publish_telemetry() const {
  util::telemetry::set_gauge("core.stream.drift_score", status_.drift_score);
  util::telemetry::set_gauge("core.stream.guardband", status_.guardband);
}

DieRecord StreamingCalibrator::gated(std::size_t die, StreamGate gate,
                                     RobustPrediction&& rp) {
  DieRecord rec;
  rec.die = die;
  rec.accepted = false;
  rec.gate = gate;
  rec.prediction_health = rp.health;
  rec.predicted = std::move(rp.values);
  rec.screened_slots = rp.screened.size();
  rec.missing_slots = rp.missing.size();
  rec.drift_score = status_.drift_score;
  rec.drift_flagged = status_.drift_flagged;
  rec.guardband = status_.guardband;
  status_.gate_counts[static_cast<std::size_t>(gate)]++;
  if (quarantine_gate(gate)) {
    ++status_.dies_quarantined;
    util::telemetry::count("core.stream.dies_quarantined");
  } else {
    ++status_.dies_rejected;
    util::telemetry::count("core.stream.dies_rejected");
  }
  util::telemetry::count(std::string("core.stream.gate.") + to_string(gate));
  publish_telemetry();
  return rec;
}

RobustPrediction StreamingCalibrator::predict(std::span<const double> measured,
                                              std::span<const char> valid)
    const {
  if (!status_.usable() || measured.size() != shift_meas_.size()) {
    // Graceful degradation: exactly the batch robust predictor (which itself
    // nominal-falls-back on malformed input).
    return predictor_.predict(measured, valid);
  }
  // Screen and solve against the shift-corrected model, then move the
  // prediction back: the learned systematic shift relocates the nominal
  // point of the whole die population.
  linalg::Vector corrected(measured.begin(), measured.end());
  for (std::size_t i = 0; i < corrected.size(); ++i) {
    corrected[i] -= shift_meas_[i];
  }
  RobustPrediction rp = predictor_.predict(corrected, valid);
  for (std::size_t i = 0; i < rp.values.size(); ++i) {
    rp.values[i] += shift_rem_[i];
  }
  return rp;
}

DieRecord StreamingCalibrator::observe(std::size_t die,
                                       std::span<const double> measured,
                                       std::span<const char> valid) {
  ++status_.dies_seen;
  if (!status_.usable()) {
    return gated(die, StreamGate::kStreamUnusable,
                 predictor_.predict(measured, valid));
  }
  const std::size_t n_meas = predictor_.base.mu_meas.size();
  if (measured.size() != n_meas ||
      (!valid.empty() && valid.size() != n_meas)) {
    return gated(die, StreamGate::kSizeMismatch,
                 predictor_.predict(measured, valid));
  }

  // Robust screening gate on the shift-corrected measurements.  The gate is
  // the PR-2 IRLS/Huber calibration: MAD-scaled z-score outlier screening,
  // missing-slot handling, nominal fallback — reused verbatim.
  linalg::Vector corrected(measured.begin(), measured.end());
  for (std::size_t i = 0; i < n_meas; ++i) corrected[i] -= shift_meas_[i];
  RobustPrediction rp = predictor_.predict(corrected, valid);
  for (std::size_t i = 0; i < rp.values.size(); ++i) {
    rp.values[i] += shift_rem_[i];
  }
  if (rp.health == PredictorHealth::kFailed) {
    return gated(die,
                 rp.missing.size() == n_meas ? StreamGate::kNoUsableSlots
                                             : StreamGate::kPathologicalSolve,
                 std::move(rp));
  }

  // Survivor slots: usable on this die and not screened as outliers.
  std::vector<char> excluded(n_meas, 0);
  for (int i : rp.missing) excluded[static_cast<std::size_t>(i)] = 1;
  for (int i : rp.screened) excluded[static_cast<std::size_t>(i)] = 1;
  std::vector<int> survivors;
  survivors.reserve(n_meas);
  for (std::size_t i = 0; i < n_meas; ++i) {
    if (!excluded[i]) survivors.push_back(static_cast<int>(i));
  }
  const std::size_t usable = n_meas - rp.missing.size();
  if (survivors.empty() ||
      (usable > 0 &&
       static_cast<double>(rp.screened.size()) >
           options_.max_screened_fraction * static_cast<double>(usable))) {
    return gated(die, StreamGate::kExcessScreening, std::move(rp));
  }
  const std::size_t k = survivors.size();

  // Innovation system on the survivors:
  //   S = A_v (P/lambda) A_v^T + A_v A_v^T + sigma^2 I,
  // solved with the reported-ridge robust policy (condest_spd inside).
  const double inv_lambda = 1.0 / options_.forgetting;
  const linalg::Matrix a_v = predictor_.a_meas.select_rows(survivors);
  linalg::Matrix u = linalg::multiply_bt(p_, a_v);  // m x k  (= Pf A_v^T)
  u *= inv_lambda;
  linalg::Matrix s = linalg::multiply(a_v, u);      // k x k
  {
    const linalg::Matrix r_die =
        predictor_.gram_meas.select_rows(survivors).select_cols(survivors);
    s += r_die;
    const double sigma = predictor_.options.measurement_sigma_ps;
    for (std::size_t i = 0; i < k; ++i) s(i, i) += sigma * sigma;
  }
  linalg::Vector r(k);
  for (std::size_t j = 0; j < k; ++j) {
    const auto slot = static_cast<std::size_t>(survivors[j]);
    r[j] = measured[slot] - predictor_.base.mu_meas[slot] - shift_meas_[slot];
  }
  linalg::SpdSolveInfo info;
  const linalg::Vector w =
      linalg::spd_solve_robust(s, r, &info, options_.max_condition);
  if (!info.ok || !all_finite(w)) {
    return gated(die, StreamGate::kIllConditioned, std::move(rp));
  }

  // Standardized chi-square innovation: r^T S^{-1} r ~ chi^2_k under the
  // model, so z = (t - k)/sqrt(2k) ~ approx N(0, 1).  Any persistent model
  // mismatch — mean shift in any direction, variance growth — inflates t.
  const double t_stat = linalg::dot(r, w);
  const double z =
      (t_stat - static_cast<double>(k)) / std::sqrt(2.0 * static_cast<double>(k));
  // Whitened coherent-shift statistic: u = r^T S^{-1} 1 / sqrt(1^T S^{-1} 1),
  // the matched filter for a shift that moves every slot the same way.  A
  // process shift gives u a persistent mean, die after die; symmetric sensor
  // noise — even the heavy-tailed outlier mixture — cancels.  The quadratic
  // z above cannot make that distinction (any variance inflation looks like
  // drift); u can, so the CUSUM runs on u and z only gates gross outliers.
  // Whitening with the full S matters: the slots share the die's spatial
  // parameters, so per-slot normalization would under-weight exactly the
  // correlated direction a common shift lives in.  Residuals are taken
  // against the *lagged* shift snapshot: the filter absorbs a genuine shift
  // within a few dies, which would starve the CUSUM of evidence; against the
  // snapshot the shift stays visible for a full drift_ref_interval.
  double u_stat = std::numeric_limits<double>::quiet_NaN();
  {
    linalg::SpdSolveInfo ones_info;
    const linalg::Vector s_inv_ones = linalg::spd_solve_robust(
        s, linalg::Vector(k, 1.0), &ones_info, options_.max_condition);
    if (ones_info.ok && all_finite(s_inv_ones)) {
      double quad = 0.0, proj = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        const auto slot = static_cast<std::size_t>(survivors[j]);
        const double r_ref = measured[slot] - predictor_.base.mu_meas[slot] -
                             drift_ref_meas_[slot];
        quad += s_inv_ones[j];
        proj += r_ref * s_inv_ones[j];
      }
      if (quad > 0.0) u_stat = proj / std::sqrt(quad);
    }
  }
  DieRecord rec;
  rec.die = die;
  rec.prediction_health = rp.health;
  rec.screened_slots = rp.screened.size();
  rec.missing_slots = rp.missing.size();
  rec.innovation_z = z;

  // Drift monitor.  During warmup the observed u_stat values calibrate a
  // median/MAD baseline; once armed, the CUSUM runs on the clipped deviation
  // from that baseline.  It sees gated-but-measurable dies too, so a gross
  // persistent shift cannot hide behind the per-die gate.
  if (std::isfinite(u_stat)) {
    if (!drift_armed_) {
      drift_warmup_.push_back(u_stat);
      if (drift_warmup_.size() >= options_.min_dies_for_drift) {
        drift_mu0_ = median_of(drift_warmup_);
        linalg::Vector dev = drift_warmup_;
        for (double& d : dev) d = std::abs(d - drift_mu0_);
        // MAD -> sigma, floored at the theoretical unit sigma: an over-quiet
        // warmup must not make the monitor trigger-happy.
        drift_sd0_ = std::max(1.4826 * median_of(std::move(dev)), 1.0);
        drift_var0_ = drift_sd0_ * drift_sd0_;
        drift_armed_ = true;
        drift_warmup_.clear();
        drift_warmup_.shrink_to_fit();
      }
    } else {
      const double u_std = (u_stat - drift_mu0_) / drift_sd0_;
      const double uc =
          std::clamp(u_std, -options_.cusum_clip, options_.cusum_clip);
      cusum_pos_ = std::max(0.0, cusum_pos_ + uc - options_.cusum_k);
      cusum_neg_ = std::max(0.0, cusum_neg_ - uc - options_.cusum_k);
      status_.drift_score = std::max(cusum_pos_, cusum_neg_);
      // Robust EWMA baseline tracking (see StreamingOptions::baseline_adapt):
      // in-control deviations update the baseline slowly; adaptation freezes
      // on any single step beyond 3 baseline sigmas AND whenever the CUSUM
      // is past half its threshold — a suspect shift must finish
      // accumulating into the score, not be learned into the baseline.
      if (options_.baseline_adapt > 0.0 && std::abs(u_std) < 3.0 &&
          status_.drift_score <= 0.5 * options_.cusum_h) {
        const double a = options_.baseline_adapt;
        drift_mu0_ += a * (u_stat - drift_mu0_);
        const double dev = u_stat - drift_mu0_;
        drift_var0_ += a * (dev * dev - drift_var0_);
        drift_sd0_ = std::max(std::sqrt(drift_var0_), 1.0);
      }
      if (status_.drift_score > options_.cusum_h && !status_.drift_flagged) {
        status_.drift_flagged = true;
        status_.drift_flag_die = die;
        if (status_.health == StreamHealth::kOk) {
          status_.health = StreamHealth::kDegraded;
        }
        status_.message = "drift flagged at die " + std::to_string(die) +
                          " (CUSUM " + std::to_string(status_.drift_score) +
                          ")";
        util::telemetry::count("core.stream.drift_flags");
      }
    }
  }
  if (!std::isfinite(z) || !std::isfinite(u_stat) ||
      std::abs(z) > options_.innovation_z_max) {
    DieRecord out = gated(die, StreamGate::kInnovationOutlier, std::move(rp));
    out.innovation_z = z;
    return out;
  }

  // Commit the Kalman/RLS update.  One k x (m + n_rem) solve prices both the
  // covariance downdate (S^{-1} U^T) and the per-path variance downdate
  // (S^{-1} V^T with V = A_rem U) off the same factorization policy.
  const std::size_t n_rem = predictor_.a_rem.rows();
  const linalg::Matrix v = linalg::multiply(predictor_.a_rem, u);  // n_rem x k
  linalg::Matrix rhs(k, m_ + n_rem);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < m_; ++j) rhs(i, j) = u(j, i);
    for (std::size_t j = 0; j < n_rem; ++j) rhs(i, m_ + j) = v(j, i);
  }
  linalg::SpdSolveInfo info2;
  const linalg::Matrix x =
      linalg::spd_solve_robust(s, rhs, &info2, options_.max_condition);
  if (!info2.ok) {
    return gated(die, StreamGate::kIllConditioned, std::move(rp));
  }
  // b <- b + U w.
  const linalg::Vector db = linalg::matvec(u, w);
  for (std::size_t i = 0; i < m_; ++i) b_[i] += db[i];
  // P <- P/lambda - U X_left, then symmetrize against drift of the two
  // triangles (X_left = S^{-1} U^T).
  if (inv_lambda != 1.0) p_ *= inv_lambda;
  for (std::size_t i = 0; i < m_; ++i) {
    const double* urow = u.row(i).data();
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t l = 0; l < k; ++l) acc += urow[l] * x(l, j);
      const double val = 0.5 * (p_(i, j) + p_(j, i)) - acc;
      p_(i, j) = val;
      p_(j, i) = val;
    }
  }
  // q_i <- q_i/lambda - v_i^T S^{-1} v_i, clamped against roundoff.
  for (std::size_t i = 0; i < n_rem; ++i) {
    double acc = 0.0;
    for (std::size_t l = 0; l < k; ++l) acc += v(i, l) * x(l, m_ + i);
    q_[i] = std::max(0.0, q_[i] * inv_lambda - acc);
  }

  // A non-finite posterior means the stream state is lost for good: latch
  // unusable so predictions degrade to the batch robust predictor.
  bool finite = all_finite(b_) && all_finite(q_);
  for (std::size_t i = 0; finite && i < m_; ++i) {
    if (!std::isfinite(p_(i, i))) finite = false;
  }
  if (!finite) {
    mark_unusable("non-finite posterior after die " + std::to_string(die));
    DieRecord out = gated(die, StreamGate::kIllConditioned, std::move(rp));
    out.innovation_z = z;
    return out;
  }

  const bool ridged = info.regularized || info2.regularized;
  if (ridged) {
    rec.ridge = std::max(info.ridge, info2.ridge);
    status_.last_ridge = rec.ridge;
    ++status_.ridge_events;
    if (status_.health == StreamHealth::kOk) {
      status_.health = StreamHealth::kDegraded;
      status_.message = "innovation system ill-conditioned at die " +
                        std::to_string(die) + "; ridge " +
                        std::to_string(rec.ridge) + " applied";
    }
  }

  rec.accepted = true;
  ++status_.dies_accepted;
  util::telemetry::count("core.stream.dies_accepted");
  refresh_shift_cache();
  if (++drift_ref_age_ >= options_.drift_ref_interval) {
    // Hold the snapshot while the CUSUM is elevated: refreshing would fold
    // the filter's partial adaptation of the suspect shift into the
    // reference and wipe the accumulating evidence.  Only an at-rest score
    // (or a latched flag) refreshes; on a clean stream the score touches
    // zero every few dies, so staleness stays bounded in practice.
    if (status_.drift_score <= 2.0 * options_.cusum_k ||
        status_.drift_flagged) {
      drift_ref_age_ = 0;
      drift_ref_meas_ = shift_meas_;
    }
  }

  // Periodic posterior-conditioning audit: a collapsed covariance gets a
  // reported diagonal floor (and q stays consistent with P).
  if (++accepted_since_check_ >= options_.condition_check_interval) {
    accepted_since_check_ = 0;
    status_.info_condition = linalg::condest_spd(p_);
    if (!(status_.info_condition <= options_.max_condition)) {
      double max_diag = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        max_diag = std::max(max_diag, std::abs(p_(i, i)));
      }
      const double floor =
          std::max(max_diag / options_.max_condition, 1e-300) * 10.0;
      for (std::size_t i = 0; i < m_; ++i) p_(i, i) += floor;
      for (std::size_t i = 0; i < n_rem; ++i) {
        const double a2 = linalg::dot(predictor_.a_rem.row(i),
                                      predictor_.a_rem.row(i));
        q_[i] += floor * a2;
      }
      status_.last_ridge = floor;
      ++status_.ridge_events;
      if (status_.health == StreamHealth::kOk) {
        status_.health = StreamHealth::kDegraded;
      }
      status_.message = "posterior covariance floored (condest " +
                        std::to_string(status_.info_condition) + ")";
      util::telemetry::count("core.stream.covariance_floors");
    }
  }

  const AdaptiveGuardband g = adaptive_guardband(
      base_sigma_, q_, predictor_.base.mu_rem, options_.guard_kappa);
  status_.guardband = g.eps;

  rec.predicted = std::move(rp.values);
  rec.drift_score = status_.drift_score;
  rec.drift_flagged = status_.drift_score > options_.cusum_h;
  rec.guardband = status_.guardband;
  status_.gate_counts[static_cast<std::size_t>(StreamGate::kNone)]++;
  publish_telemetry();
  return rec;
}

}  // namespace repro::core
