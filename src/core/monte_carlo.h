// Monte-Carlo evaluation of a predictor (paper Section 6 protocol).
//
// N samples of x ~ N(0, I) are pushed through the exact linear model to get
// "silicon" delays; the predictor sees only the measured components and
// predicts the rest.  Metrics follow the paper exactly:
//   eps_i     = max_k |pred_i^k - true_i^k| / true_i^k   (per remaining path)
//   eps-hat_i = mean_k of the same ratio
//   e1 = mean_i eps_i,   e2 = mean_i eps-hat_i.
//
// Sampling runs batch-parallel on the shared util::ThreadPool.  Sample k
// draws from the deterministic stream util::Rng::stream(seed, k) and the
// per-chunk partial results are reduced in fixed chunk order, so every
// metric is bit-identical for any thread count (and any chunk size, up to
// the reassociation of the eps_mean sums).
#pragma once

#include <cstdint>

#include "core/predictor.h"
#include "variation/variation_model.h"

namespace repro::core {

struct McOptions {
  std::size_t samples = 10000;
  // Samples per GEMM batch; also the unit of work handed to pool threads.
  // Affects performance only, never the sampled values.
  std::size_t chunk = 256;
  std::uint64_t seed = 0x5eed;
};

struct McMetrics {
  double e1 = 0.0;  // average over remaining paths of the max relative error
  double e2 = 0.0;  // average over remaining paths of the mean relative error
  double worst_eps = 0.0;             // max_i eps_i
  linalg::Vector eps_max;             // per remaining path
  linalg::Vector eps_mean;            // per remaining path
  std::size_t samples = 0;
};

McMetrics evaluate_predictor(const variation::VariationModel& model,
                             const LinearPredictor& predictor,
                             const McOptions& options = {});

}  // namespace repro::core
