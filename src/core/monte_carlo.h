// Monte-Carlo evaluation of a predictor (paper Section 6 protocol).
//
// N samples of x ~ N(0, I) are pushed through the exact linear model to get
// "silicon" delays; the predictor sees only the measured components and
// predicts the rest.  Metrics follow the paper exactly:
//   eps_i     = max_k |pred_i^k - true_i^k| / true_i^k   (per remaining path)
//   eps-hat_i = mean_k of the same ratio
//   e1 = mean_i eps_i,   e2 = mean_i eps-hat_i.
//
// Sampling runs batch-parallel on the shared util::ThreadPool.  Sample k
// draws from the deterministic stream util::Rng::stream(seed, k) and the
// per-chunk partial results are reduced in fixed chunk order, so every
// metric is bit-identical for any thread count (and any chunk size, up to
// the reassociation of the eps_mean sums).
#pragma once

#include <cstdint>

#include "core/measurement.h"
#include "core/predictor.h"
#include "core/streaming_calibrator.h"
#include "variation/variation_model.h"

namespace repro::core {

struct McOptions {
  std::size_t samples = 10000;
  // Samples per GEMM batch; also the unit of work handed to pool threads.
  // Affects performance only, never the sampled values.
  std::size_t chunk = 256;
  std::uint64_t seed = 0x5eed;
};

struct McMetrics {
  double e1 = 0.0;  // average over remaining paths of the max relative error
  double e2 = 0.0;  // average over remaining paths of the mean relative error
  double worst_eps = 0.0;             // max_i eps_i
  linalg::Vector eps_max;             // per remaining path
  linalg::Vector eps_mean;            // per remaining path
  std::size_t samples = 0;
};

McMetrics evaluate_predictor(const variation::VariationModel& model,
                             const LinearPredictor& predictor,
                             const McOptions& options = {});

// --- Fault-injected evaluation (noisy-silicon robustness protocol) --------
//
// Runs the same e1/e2 protocol, but each die's measurements pass through the
// core/measurement.h fault model before prediction.  Die k draws its
// parameter sample from stream(mc.seed, k) and its fault schedule from
// stream(faults.seed, k), so metrics stay bit-identical for any thread count
// and chunking — the PR-1 guarantee extended to the fault-injected protocol.
//
// Two prediction modes:
//   * robust (default): RobustPredictor::predict — per-die IRLS/Huber
//     calibration, dropout-aware subset solves, outlier screening;
//   * naive == true: the plain Theorem-2 linear map applied to the faulty
//     values, with invalid slots filled by their nominal delay (what a
//     pipeline unaware of measurement faults would compute).
//
// Never throws for fault-injected input: an unusable predictor or an empty
// remaining set yields zero metrics with failed_dies == samples (resp. 0).
struct FaultyMcOptions {
  McOptions mc;
  FaultSpec faults;
  bool naive = false;
};

struct FaultyMcMetrics {
  McMetrics metrics;
  std::size_t failed_dies = 0;   // dies that fell back to nominal prediction
  double mean_screened = 0.0;    // outlier slots screened per die (robust)
  double mean_missing = 0.0;     // invalid measurement slots per die
  double mean_outliers = 0.0;    // outlier slots injected per die
  // Per-fault-mode breakdown (telemetry mirrors: core.mc.reject_outlier,
  // .reject_noise, .slots_dead, .slots_dropout).  Screened slots are
  // attributed to the fault that produced them: an injected heavy-tail
  // outlier vs. plain sensor noise; invalid slots split dead vs. dropout.
  double mean_screened_outlier = 0.0;  // screened slots that were injected
  double mean_screened_noise = 0.0;    // screened slots that were only noisy
  double mean_dead = 0.0;              // dead (always-unmeasurable) slots/die
  double mean_dropout = 0.0;           // per-die dropout slots/die
};

FaultyMcMetrics evaluate_predictor_under_faults(
    const variation::VariationModel& model, const RobustPredictor& predictor,
    const FaultyMcOptions& options = {});

// --- Streaming evaluation (deterministic die stream) ----------------------
//
// Feeds a StreamingCalibrator one die at a time in die order: die k draws its
// silicon from stream(mc.seed, k) and its fault schedule from
// stream(faults.seed, k), exactly like the batch fault protocol.  Die
// *generation* runs block-parallel (per-die RNG streams written to
// die-indexed storage, reduced in fixed order) while the calibrator pass is
// sequential by design — the state recursion is order-dependent — so every
// metric and the full trajectory are bit-identical for any thread count.
//
// Optionally injects a model-drift scenario: from `start_die` on, the silicon
// parameter mean shifts by `magnitude` (in parameter sigmas) along
// `direction` (default: common-mode, all parameters equally).  This is the
// drift the CUSUM monitor must flag; the injected shift moves both the
// measured slots and the true remaining-path delays.
struct DriftScenario {
  std::size_t start_die = kNoDie;  // kNoDie = no drift injected
  double magnitude = 0.0;          // parameter-space norm of the mean shift
  linalg::Vector direction;        // optional; normalized internally.  Empty
                                   // = common-mode 1/sqrt(m) per parameter.
  bool active() const { return start_die != kNoDie && magnitude != 0.0; }
};

struct StreamingMcOptions {
  McOptions mc;              // samples = dies in the stream; chunk = GEMM batch
  FaultSpec faults;
  StreamingOptions stream;
  DriftScenario drift;
  // Dies generated per parallel block (bounds the die-indexed staging
  // buffers; performance/memory only, never the sampled values).
  std::size_t block = 1024;
  bool record_trajectory = true;  // per-die guard-band / drift-score curves
};

struct StreamingMcMetrics {
  McMetrics metrics;    // e1/e2 of the per-die streaming predictions
  StreamStatus status;  // final calibrator status (gate counts, drift, ...)
  linalg::Vector guardband_trajectory;  // per die (empty unless recorded)
  linalg::Vector drift_trajectory;      // CUSUM score per die
  std::size_t dies = 0;
  std::size_t drift_flag_die = kNoDie;  // first die the CUSUM flagged
  double initial_guardband = 0.0;       // prior-only adaptive guard-band
  double final_guardband = 0.0;
  // True when the guard-band never inflated along the stream (expected on a
  // clean stream with forgetting 1).
  bool guardband_monotone = true;
};

// Never throws: an unusable predictor yields an unusable stream whose
// metrics are the nominal-fallback errors.
StreamingMcMetrics evaluate_predictor_streaming(
    const variation::VariationModel& model, const RobustPredictor& predictor,
    const StreamingMcOptions& options = {});

}  // namespace repro::core
