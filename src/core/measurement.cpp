#include "core/measurement.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace repro::core {

bool FaultSpec::clean() const {
  return noise_sigma_frac == 0.0 && noise_sigma_ps == 0.0 &&
         quantization_ps == 0.0 && outlier_rate == 0.0 &&
         dropout_rate == 0.0 && dead_slots.empty();
}

FaultSpec default_fault_spec() {
  FaultSpec spec;
  spec.noise_sigma_frac = 0.01;
  spec.outlier_rate = 0.05;
  spec.outlier_scale = 10.0;
  spec.dead_slots = {0};
  return spec;
}

FaultSpec without_dead_slots(FaultSpec spec) {
  spec.dead_slots.clear();
  return spec;
}

double expected_noise_sigma(const FaultSpec& spec,
                            std::span<const double> nominal) {
  if (nominal.empty()) return spec.noise_sigma_ps;
  double mean_abs = 0.0;
  for (double v : nominal) mean_abs += std::abs(v);
  mean_abs /= static_cast<double>(nominal.size());
  return spec.noise_sigma_ps + spec.noise_sigma_frac * mean_abs;
}

NoisyMeasurements apply_faults(std::span<const double> clean,
                               std::span<const double> nominal,
                               const FaultSpec& spec, std::uint64_t die) {
  if (clean.size() != nominal.size()) {
    throw std::invalid_argument("apply_faults: clean/nominal size mismatch");
  }
  const std::size_t n = clean.size();
  NoisyMeasurements out;
  out.values.assign(clean.begin(), clean.end());
  out.valid.assign(n, 1);
  for (int s : spec.dead_slots) {
    if (s >= 0 && static_cast<std::size_t>(s) < n) {
      out.valid[static_cast<std::size_t>(s)] = 0;
    }
  }

  // One stream per die; every slot consumes the same number of deviates in
  // the same order regardless of which faults trigger, so the schedule of
  // slot i on die k is a pure function of (spec.seed, k, i).
  util::Rng rng = util::Rng::stream(spec.seed, die);
  for (std::size_t i = 0; i < n; ++i) {
    const double u_drop = rng.uniform();
    const double u_outlier = rng.uniform();
    const double z = rng.normal();
    if (!out.valid[i]) {
      out.values[i] = nominal[i];
      ++out.dropped;
      ++out.dead;
      continue;
    }
    if (u_drop < spec.dropout_rate) {
      out.valid[i] = 0;
      out.values[i] = nominal[i];
      ++out.dropped;
      ++out.dropout;
      continue;
    }
    const double sigma =
        spec.noise_sigma_ps + spec.noise_sigma_frac * std::abs(nominal[i]);
    double noise = z * sigma;
    if (u_outlier < spec.outlier_rate) {
      noise *= spec.outlier_scale;
      ++out.outliers;
      out.outlier_slots.push_back(static_cast<int>(i));
    }
    double v = clean[i] + noise;
    if (spec.quantization_ps > 0.0) {
      v = std::round(v / spec.quantization_ps) * spec.quantization_ps;
    }
    out.values[i] = v;
  }
  return out;
}

}  // namespace repro::core
