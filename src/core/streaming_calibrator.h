// Streaming recalibration: the predictor learns from every measured die.
//
// The paper calibrates once per die batch; real post-silicon flows see dies
// *stream* in (EffiTest-style).  This module maintains a recursive-least-
// squares / Kalman posterior over a *systematic process shift* b in the
// normalized parameter space of the variation model:
//
//   die k silicon:  x_k = b + v_k,          v_k ~ N(0, I)   (die-to-die)
//   measurements:   y_k = mu_y + A_v x_k + e_k,  e_k ~ N(0, sigma^2 I)
//
// so each die observes b through the effective noise n_k = A_v v_k + e_k
// with covariance R = A_v A_v^T + sigma^2 I.  With prior b ~ N(0, I/tau)
// the posterior N(b_hat, P) updates per accepted die by the standard Kalman
// recursion (information accumulates, P shrinks).  This is exactly the
// posterior-mean inversion of core/diagnosis.h, made recursive: one die at a
// time instead of one batch solve.
//
// Robust update gating (PR-2 machinery in front of the state):
//   * every incoming die passes the RobustPredictor IRLS/Huber calibration
//     with MAD z-score outlier screening, applied to the *shift-corrected*
//     measurements (y - A_v b_hat), so the gate screens against the current
//     model, not the stale nominal one;
//   * dies whose screening rejects too many slots, or whose whole-die
//     innovation is a gross outlier, are rejected (no state update) with a
//     structured reason; dies with no usable measurement, or whose update
//     system is pathological, are quarantined likewise;
//   * the per-die innovation system S = A_v (P/lambda) A_v^T + R is solved
//     via linalg::spd_solve_robust with the condest_spd conditioning gate:
//     an ill-conditioned S triggers a *reported* ridge fallback (health
//     degrades, never throws), and the posterior covariance itself is
//     periodically conditioning-checked and floored when collapsed.
//
// Drift detection: a two-sided CUSUM on the whitened coherent-shift
// statistic u = r^T S^{-1} 1 / sqrt(1^T S^{-1} 1) over the survivor slots —
// the matched filter for a shift that moves every slot the same way, with
// unit variance under the model by construction.  A process shift gives u a
// persistent mean, die after die; symmetric sensor noise, including
// heavy-tailed outlier mixtures, cancels both within a die and across dies,
// and whitening with the full S keeps the correlated direction the die's
// shared spatial parameters span correctly weighted.  (The quadratic
// z_k = (r^T S^{-1} r - k) / sqrt(2k) cannot make that distinction — any
// variance inflation looks like drift — so it serves only as the whole-die
// outlier gate.)  The residuals
// feeding u are taken against a *lagged snapshot* of the shift estimate
// (refreshed every drift_ref_interval accepted dies), not the live one: the
// filter absorbs a genuine shift within a few dies, which would starve the
// CUSUM of evidence; against the snapshot the shift stays visible for a
// full refresh interval — two timescales, fast filter, slow reference.  A real
// tester's noise never matches the scalar sigma prior exactly, so the
// monitor self-calibrates: the u values of the first min_dies_for_drift
// measurable dies fix a median/MAD baseline, a robust EWMA tracks its slow
// transients, and the CUSUM runs on the clipped deviation from that
// baseline — no single weird die can flag, and drift means "the stream
// changed", not "the stream differs from an idealized noise model".
// Limitation: drift present before the warmup window completes is absorbed
// into the baseline.  The score and the
// per-die adaptive guard-band are published as telemetry gauges
// (core.stream.drift_score, core.stream.guardband) next to the
// dies_accepted / dies_rejected / dies_quarantined counters.
//
// Adaptive guard-band: the shift-posterior variance contribution
// q_i = a_i^T P a_i of every remaining path is maintained exactly across
// updates and combined with the batch predictor's analytic error sigmas by
// core::adaptive_guardband (core/guardband.h).  With forgetting = 1 every
// accepted die shrinks P, so the guard-band is monotonically non-inflating
// on a clean stream and tightens as fab data accumulates.
//
// Failure contract: mirrors PR 2 — the calibrator never throws on
// fault-injected input.  Unusable input quarantines the die; a corrupted
// state (non-finite posterior) latches health kUnusable and every subsequent
// prediction degrades to the batch robust predictor unchanged.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "core/predictor.h"
#include "linalg/matrix.h"

namespace repro::core {

// "No die" sentinel for die indices (drift flag, scenario start).
inline constexpr std::size_t kNoDie = static_cast<std::size_t>(-1);

enum class StreamHealth {
  kOk,        // clean state, no fallback engaged
  kDegraded,  // usable, but ridge/floor applied, dies gated, or drift flagged
  kUnusable,  // no usable state: predictions fall back to the batch predictor
};
const char* to_string(StreamHealth h);

// Why a die did not update the state.  kAccepted dies carry kNone.
enum class StreamGate {
  kNone = 0,           // accepted
  kStreamUnusable,     // calibrator health is kUnusable (no gating attempted)
  kSizeMismatch,       // measurement vector length != predictor slot count
  kNoUsableSlots,      // every slot dead / dropped / non-finite on this die
  kPathologicalSolve,  // robust gate could not solve (non-finite system)
  kExcessScreening,    // screened+missing fraction above the reject threshold
  kInnovationOutlier,  // whole-die standardized innovation beyond the gate
  kIllConditioned,     // update system unsolvable even with the ridge policy
};
constexpr std::size_t kNumStreamGates = 8;
const char* to_string(StreamGate g);

struct StreamingOptions {
  // The per-die screening gate reuses the RobustOptions the batch predictor
  // was built with (predictor.options) — one source of truth for the Huber
  // tuning, z-score threshold, and measurement_sigma_ps, which doubles as
  // the sensor-noise term of the innovation covariance here.
  //
  // RLS forgetting factor lambda in (0, 1]: 1 = infinite memory (guard-band
  // monotone); < 1 tracks slow drift at the cost of a variance floor.
  double forgetting = 1.0;
  // Prior precision tau: b ~ N(0, I/tau).  Larger = stronger belief that
  // the batch variation model is already centred.
  double prior_precision = 4.0;
  // Conditioning limit for the innovation system and the posterior
  // covariance (checked via condest_spd; above it the reported ridge / floor
  // fallback engages).
  double max_condition = 1e12;
  // Posterior-covariance conditioning is re-estimated every this many
  // accepted dies (a full condest_spd is O(m^3)).
  std::size_t condition_check_interval = 64;
  // Reject a die when more than this fraction of its usable slots was
  // screened by the robust gate.
  double max_screened_fraction = 0.5;
  // Reject a die whose |standardized innovation| exceeds this gate (gross
  // whole-die outlier; the CUSUM still sees it, clipped).
  double innovation_z_max = 12.0;
  // CUSUM reference value and decision threshold, in baseline sigmas of the
  // signed mean innovation u.
  double cusum_k = 0.5;
  double cusum_h = 12.0;
  // Per-die CUSUM contribution clip (baseline sigmas): one pathological die
  // cannot cross cusum_h alone, drift needs persistence.
  double cusum_clip = 4.0;
  // Measurable dies whose innovation z calibrates the CUSUM baseline
  // (median/MAD) before the monitor arms.  Drift that begins inside this
  // window is absorbed into the baseline.
  std::size_t min_dies_for_drift = 32;
  // Robust EWMA rate for the armed baseline (0 = frozen after warmup).  The
  // innovation statistic has a slow transient — as the posterior shrinks,
  // the weight of any sensor-noise misspecification grows — and the EWMA
  // absorbs it; adaptation freezes whenever the standardized deviation
  // exceeds 3 baseline sigmas, so a genuine step change cannot be learned
  // away before the CUSUM flags it.  (Correspondingly, drift slower than
  // roughly this rate per die is absorbed — CUSUM targets abrupt change.)
  double baseline_adapt = 0.02;
  // Accepted dies between refreshes of the lagged shift snapshot the drift
  // statistic measures against.  The lag bounds how long a sustained shift
  // stays visible to the CUSUM while the filter adapts it away; it also
  // bounds the detection horizon — drift must accumulate cusum_h within
  // roughly one interval.
  std::size_t drift_ref_interval = 64;
  // Guard-band sigma multiplier (kappa * sigma_i / |mu_i|).
  double guard_kappa = 3.0;
};

// Mirror of PredictorStatus for the stream: one glanceable health roll-up.
struct StreamStatus {
  StreamHealth health = StreamHealth::kUnusable;
  std::size_t dies_seen = 0;
  std::size_t dies_accepted = 0;
  std::size_t dies_rejected = 0;     // gated by screening/innovation checks
  std::size_t dies_quarantined = 0;  // unusable input or pathological update
  std::array<std::size_t, kNumStreamGates> gate_counts{};  // by StreamGate
  double drift_score = 0.0;          // current CUSUM statistic (max of sides)
  bool drift_flagged = false;        // latched once the CUSUM crossed cusum_h
  std::size_t drift_flag_die = kNoDie;  // first die at which it crossed
  double guardband = 0.0;            // current adaptive guard-band (relative)
  double info_condition = 0.0;       // last condest_spd of the posterior cov
  double last_ridge = 0.0;           // ridge applied by the latest update
  std::size_t ridge_events = 0;      // updates that needed ridge or floor
  double shift_norm = 0.0;           // ||b_hat|| (parameter sigmas)
  std::string message;               // human-readable reason when not kOk
  bool usable() const { return health != StreamHealth::kUnusable; }
};

// Per-die outcome, returned by observe().
struct DieRecord {
  std::size_t die = 0;
  bool accepted = false;
  StreamGate gate = StreamGate::kNone;  // why the die did not update
  PredictorHealth prediction_health = PredictorHealth::kFailed;
  linalg::Vector predicted;    // remaining-path delays under the current state
  std::size_t screened_slots = 0;  // robust-gate outlier rejections
  std::size_t missing_slots = 0;   // dead / dropped / non-finite slots
  double innovation_z = 0.0;   // standardized chi-square innovation
  double drift_score = 0.0;    // CUSUM after this die
  bool drift_flagged = false;  // score above threshold at this die
  double guardband = 0.0;      // adaptive guard-band after this die
  double ridge = 0.0;          // ridge the update solve needed (0 = none)
};

class StreamingCalibrator {
 public:
  // The calibrator owns a copy of the batch robust predictor (its screening
  // gate and degradation target).  An unusable predictor yields an unusable
  // stream: every die quarantines and predictions are nominal fallbacks.
  // Never throws on a failed predictor.
  explicit StreamingCalibrator(const RobustPredictor& predictor,
                               const StreamingOptions& options = {});

  // Feeds one measured die: robust screening gate, state update (when
  // accepted), drift/guard-band refresh, and the per-die prediction under
  // the updated state.  `die` is the global die index (telemetry and
  // quarantine bookkeeping only — the state recursion is order-dependent by
  // design).  Never throws on fault-injected input.
  DieRecord observe(std::size_t die, std::span<const double> measured,
                    std::span<const char> valid = {});

  // Shift-corrected robust prediction under the current state, without
  // updating it.  When the stream is unusable this is exactly the batch
  // robust predictor's prediction (graceful degradation).
  RobustPrediction predict(std::span<const double> measured,
                           std::span<const char> valid = {}) const;

  const StreamStatus& status() const { return status_; }
  const RobustPredictor& predictor() const { return predictor_; }
  // Posterior mean of the systematic shift (parameter sigmas).
  const linalg::Vector& shift() const { return b_; }
  // Posterior covariance diagonal contribution per remaining path:
  // q_i = a_i^T P a_i (ps^2), the guard-band's shrinking term.
  const linalg::Vector& shift_variance() const { return q_; }
  // Current adaptive guard-band (mean relative eps over remaining paths).
  double guardband() const { return status_.guardband; }
  const StreamingOptions& options() const { return options_; }

 private:
  void publish_telemetry() const;
  void refresh_shift_cache();
  void mark_unusable(std::string why);
  DieRecord gated(std::size_t die, StreamGate gate, RobustPrediction&& rp);

  RobustPredictor predictor_;
  StreamingOptions options_;
  StreamStatus status_;

  std::size_t m_ = 0;       // parameter count
  linalg::Vector b_;        // posterior mean of the shift
  linalg::Matrix p_;        // posterior covariance (m x m)
  linalg::Vector q_;        // a_i^T P a_i per remaining path (ps^2)
  linalg::Vector base_sigma_;  // batch per-path error sigmas (cached)
  linalg::Vector shift_meas_;  // A_meas b_hat (cached, ps)
  linalg::Vector shift_rem_;   // A_rem  b_hat (cached, ps)
  // Lagged snapshot of shift_meas_ the drift statistic measures against
  // (refreshed every drift_ref_interval accepted dies).
  linalg::Vector drift_ref_meas_;
  std::size_t drift_ref_age_ = 0;
  double cusum_pos_ = 0.0;
  double cusum_neg_ = 0.0;
  // Self-calibrated CUSUM baseline: warmup z samples, then frozen
  // median / MAD-sigma once armed.
  linalg::Vector drift_warmup_;
  double drift_mu0_ = 0.0;
  double drift_sd0_ = 1.0;
  double drift_var0_ = 1.0;
  bool drift_armed_ = false;
  std::size_t accepted_since_check_ = 0;
};

}  // namespace repro::core
