// Guard-band analysis (paper Section 6.3).
//
// After prediction, a path i is declared failing when its predicted delay,
// inflated by its guard-band, exceeds Tcons:
//
//   flag_i  <=>  d_pred(i) / (1 - eps_i) > Tcons,
//
// with eps_i the per-path worst-case relative error (analytic, from the
// error model).  Because eps_i bounds the true relative error with
// worst-case confidence, a flagged-clean path is clean "with full
// confidence"; the analysis quantifies that on Monte-Carlo silicon: missed
// failures (should be ~0) and false alarms (the price of the guard-band).
#pragma once

#include "core/monte_carlo.h"
#include "core/predictor.h"
#include "variation/variation_model.h"

namespace repro::core {

struct GuardbandReport {
  double epsilon = 0.0;         // configured tolerance (upper bound on eps_i)
  double avg_guardband = 0.0;   // average analytic eps_i over remaining paths
  double max_guardband = 0.0;   // max analytic eps_i
  // Failure-detection confusion counts over (samples x remaining paths):
  std::size_t true_fails = 0;    // true delay > Tcons
  std::size_t flagged = 0;       // guard-banded prediction > Tcons
  std::size_t missed = 0;        // true fail not flagged
  std::size_t false_alarms = 0;  // flagged but not a true fail
  std::size_t observations = 0;  // samples * remaining paths
  McMetrics mc;                  // e1/e2 of the underlying predictor
};

// `per_path_eps` must align with predictor.remaining (analytic worst-case
// relative errors, e.g. SelectionErrors::per_path_eps or
// kappa * predictor.error_sigmas() / t_cons).
GuardbandReport guardband_analysis(const variation::VariationModel& model,
                                   const LinearPredictor& predictor,
                                   const linalg::Vector& per_path_eps,
                                   double t_cons, double epsilon,
                                   const McOptions& options = {});

// ---------------------------------------------------------------------------
// Streaming adaptive guard-band (core/streaming_calibrator.h).
//
// Per remaining path i the total prediction sigma combines the batch
// predictor's analytic error sigma with the streaming shift-posterior
// variance q_i = a_i^T P a_i:
//
//   sigma_i = sqrt(base_i^2 + q_i),   eps_i = kappa * sigma_i / |mu_i|.
//
// The guard-band is the mean eps_i.  Along a clean stream with forgetting 1
// every accepted die shrinks P (and so every q_i), so the guard-band is
// monotonically non-inflating and tightens as information accumulates.
// ---------------------------------------------------------------------------

struct AdaptiveGuardband {
  double eps = 0.0;            // mean relative guard-band over remaining paths
  double max_eps = 0.0;        // worst per-path relative guard-band
  double mean_sigma_ps = 0.0;  // mean total per-path sigma
  double shift_share = 0.0;    // mean variance fraction from the shift term
};

// `base_sigma_ps` are the batch per-path error sigmas (e.g.
// RobustPredictor::error_sigmas()), `shift_var_ps2` the per-path posterior
// variances q_i, `mu_rem_ps` the nominal remaining-path delays; all three
// must align.  Empty inputs yield a zero guard-band.
AdaptiveGuardband adaptive_guardband(std::span<const double> base_sigma_ps,
                                     std::span<const double> shift_var_ps2,
                                     std::span<const double> mu_rem_ps,
                                     double kappa);

}  // namespace repro::core
