#include "core/diagnosis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "linalg/cholesky.h"
#include "linalg/gemm.h"

namespace repro::core {

DiagnosisResult diagnose(const variation::VariationModel& model,
                         const timing::TimingGraph& graph,
                         const variation::SpatialModel& spatial,
                         const std::vector<int>& measured_paths,
                         const std::vector<int>& measured_segments,
                         std::span<const double> values,
                         const DiagnosisOptions& options) {
  const std::size_t n_meas = measured_paths.size() + measured_segments.size();
  if (values.size() != n_meas) {
    throw std::invalid_argument("diagnose: measurement count mismatch");
  }
  if (n_meas == 0) throw std::invalid_argument("diagnose: no measurements");
  const std::size_t m = model.num_params();

  // Measurement matrix and centered observations.
  linalg::Matrix meas(n_meas, m);
  linalg::Vector centered(n_meas);
  {
    std::size_t row = 0;
    for (int i : measured_paths) {
      meas.set_row(row, model.a().row(static_cast<std::size_t>(i)));
      centered[row] = values[row] - model.mu_paths()[static_cast<std::size_t>(i)];
      ++row;
    }
    for (int s : measured_segments) {
      meas.set_row(row, model.sigma().row(static_cast<std::size_t>(s)));
      centered[row] =
          values[row] - model.mu_segments()[static_cast<std::size_t>(s)];
      ++row;
    }
  }

  // Posterior mean: x_hat = M^T (M M^T + ridge)? z.
  linalg::Matrix s = linalg::gram(meas);
  if (options.ridge > 0.0) {
    const double scale = std::max(s.max_abs(), 1.0);
    for (std::size_t i = 0; i < s.rows(); ++i) {
      s(i, i) += options.ridge * scale;
    }
  }
  const linalg::RegularizedChol rc = linalg::chol_factor_regularized(s);
  const linalg::Vector z = linalg::chol_solve(rc.factors, centered);

  DiagnosisResult out;
  out.x_hat = linalg::matvec_transposed(meas, z);

  // Residual in measurement space.
  const linalg::Vector reproj = linalg::matvec(meas, out.x_hat);
  double resid2 = 0.0;
  for (std::size_t i = 0; i < n_meas; ++i) {
    resid2 += (reproj[i] - centered[i]) * (reproj[i] - centered[i]);
  }
  out.measurement_residual_ps = std::sqrt(resid2);

  // Region variation map.
  const std::size_t rc_count = model.covered_regions();
  out.regions.resize(rc_count);
  for (std::size_t k = 0; k < rc_count; ++k) {
    out.regions[k].region = model.region_slots()[k];
    out.regions[k].leff_sigma = out.x_hat[k];
    out.regions[k].vt_sigma = out.x_hat[rc_count + k];
  }

  // Gate suspects: estimated delay shift of every covered gate under x_hat.
  std::unordered_map<std::size_t, std::size_t> region_to_slot;
  for (std::size_t k = 0; k < rc_count; ++k) {
    region_to_slot.emplace(model.region_slots()[k], k);
  }
  const circuit::Netlist& nl = graph.netlist();
  std::vector<GateSuspect> suspects;
  suspects.reserve(model.covered_gates());
  for (std::size_t k = 0; k < model.covered_gates(); ++k) {
    const circuit::GateId id = model.gate_slots()[k];
    const circuit::Gate& g = nl.gate(id);
    const auto& sig = graph.gate_sigmas(id);
    double shift = sig.random * out.x_hat[2 * rc_count + k];
    for (int l = 0; l < spatial.levels(); ++l) {
      const std::size_t region = spatial.region_index(l, g.x, g.y);
      const auto it = region_to_slot.find(region);
      if (it == region_to_slot.end()) continue;
      const double w = spatial.level_weight(l);
      shift += sig.leff * w * out.x_hat[it->second];
      shift += sig.vt * w * out.x_hat[rc_count + it->second];
    }
    suspects.push_back({id, shift});
  }
  std::stable_sort(suspects.begin(), suspects.end(),
                   [](const GateSuspect& a, const GateSuspect& b) {
                     return std::abs(a.delay_shift_ps) >
                            std::abs(b.delay_shift_ps);
                   });
  if (suspects.size() > options.top_gates) {
    suspects.resize(options.top_gates);
  }
  out.suspects = std::move(suspects);

  // Implied path delays (equals the Theorem-2 prediction because both are
  // the conditional mean under the same Gaussian model).
  out.predicted_path_delays = linalg::matvec(model.a(), out.x_hat);
  for (std::size_t i = 0; i < out.predicted_path_delays.size(); ++i) {
    out.predicted_path_delays[i] += model.mu_paths()[i];
  }
  return out;
}

}  // namespace repro::core
