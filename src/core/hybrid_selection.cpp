#include "core/hybrid_selection.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/path_selection.h"
#include "core/subset_select.h"
#include "linalg/gemm.h"
#include "linalg/qr_colpivot.h"
#include "util/contracts.h"

namespace repro::core {
namespace {

// Shared (expensive) artifacts hoisted out of the eps' sweep.
struct HybridContext {
  linalg::Matrix gram;            // A A^T
  SubsetSelector selector;
  PathSelectionResult path_only;  // Algorithm-1 fallback at eps
  SegmentQuadratic quad;          // Eqn-10 worst-case form, eps'-independent

  static SubsetSelector make_selector(const linalg::Matrix& a,
                                      const linalg::Matrix& w) {
    return (a.cols() >= a.rows()) ? SubsetSelector(a, w) : SubsetSelector(a);
  }

  HybridContext(const linalg::Matrix& a, const linalg::Matrix& sigma,
                const linalg::Vector& mu_segments, double t_cons,
                const HybridOptions& options)
      : gram(linalg::gram(a)),
        selector(make_selector(a, gram)),
        quad(build_segment_quadratic(sigma, mu_segments, options.kappa)) {
    PathSelectionOptions popt;
    popt.epsilon = options.epsilon;
    popt.kappa = options.kappa;
    path_only = select_representative_paths(selector, gram, t_cons, popt);
  }
};

// Step-4 pruning: exact subset selection on the stacked measurement matrix
// M = [A rows of P_r2 ; Sigma rows of S_r1].  Rows that add no numerical
// rank are redundant measurements and are dropped (zero error tolerance:
// the spanned row space, hence the predictor, is unchanged).
void prune_measurements(const linalg::Matrix& a, const linalg::Matrix& sigma,
                        std::vector<int>& rep_paths,
                        std::vector<int>& rep_segments) {
  const std::size_t n_meas = rep_paths.size() + rep_segments.size();
  if (n_meas == 0) return;
  linalg::Matrix m(n_meas, a.cols());
  std::size_t row = 0;
  for (int i : rep_paths) {
    m.set_row(row++, a.row(static_cast<std::size_t>(i)));
  }
  for (int s : rep_segments) {
    m.set_row(row++, sigma.row(static_cast<std::size_t>(s)));
  }
  // Pivoted QR on M^T: pivot columns = linearly independent measurement rows.
  const linalg::QrcpResult f = linalg::qr_colpivot(m.transposed());
  const std::size_t rank = linalg::qrcp_rank(f);
  std::vector<char> keep(n_meas, 0);
  for (std::size_t k = 0; k < rank; ++k) {
    keep[static_cast<std::size_t>(f.perm[k])] = 1;
  }
  std::vector<int> paths_out, segs_out;
  for (std::size_t k = 0; k < rep_paths.size(); ++k) {
    if (keep[k]) paths_out.push_back(rep_paths[k]);
  }
  for (std::size_t k = 0; k < rep_segments.size(); ++k) {
    if (keep[rep_paths.size() + k]) segs_out.push_back(rep_segments[k]);
  }
  rep_paths = std::move(paths_out);
  rep_segments = std::move(segs_out);
}

HybridResult run_with_context(const HybridContext& ctx,
                              const linalg::Matrix& a,
                              const linalg::Vector& mu_paths,
                              const linalg::Matrix& g,
                              const linalg::Matrix& sigma,
                              const linalg::Vector& mu_segments,
                              double t_cons, double eps_prime,
                              const HybridOptions& options) {
  if (eps_prime <= 0.0 || eps_prime >= options.epsilon) {
    throw std::invalid_argument("run_hybrid_selection: need 0 < eps' < eps");
  }
  const std::size_t n = a.rows();
  HybridResult out;
  out.eps_prime = eps_prime;

  // --- Step 1: exact representative paths P_r1 (zero error). ---
  out.exact_rank = ctx.selector.rank();
  const std::vector<int> p_r1 = ctx.selector.select(out.exact_rank);

  // --- Step 2: representative segments modeling d_Pr1 within eps'. ---
  const linalg::Matrix g_r1 = g.select_rows(p_r1);
  GroupSparseOptions gs = options.group_sparse;
  gs.kappa = options.kappa;
  const GroupSparseResult seg =
      select_segments(g_r1, ctx.quad, eps_prime * t_cons, gs);
  out.rep_segments = seg.selected_segments;
  out.admm_iterations = seg.iterations;

  // --- Step 3: predict every target path from d_S_r1 alone; detect P_r2 =
  // paths with worst-case error above eps * Tcons. ---
  std::vector<int> all_paths(n);
  for (std::size_t i = 0; i < n; ++i) all_paths[i] = static_cast<int>(i);
  const LinearPredictor seg_only =
      make_joint_predictor(a, mu_paths, sigma, mu_segments,
                           /*rep_paths=*/{}, out.rep_segments, all_paths);
  const linalg::Vector seg_err = seg_only.error_sigmas();
  std::vector<int> p_r2;
  for (std::size_t i = 0; i < n; ++i) {
    if (options.kappa * seg_err[i] > options.epsilon * t_cons) {
      p_r2.push_back(static_cast<int>(i));
    }
  }
  out.detected_paths = p_r2.size();

  // --- Step 4: final measurement set, pruned of redundancy. ---
  out.rep_paths = p_r2;
  if (options.prune_redundant) {
    prune_measurements(a, sigma, out.rep_paths, out.rep_segments);
  }
  std::vector<char> measured(n, 0);
  for (int i : out.rep_paths) measured[static_cast<std::size_t>(i)] = 1;
  std::vector<int> remaining;
  for (std::size_t i = 0; i < n; ++i) {
    if (!measured[i]) remaining.push_back(static_cast<int>(i));
  }
  out.predictor = make_joint_predictor(a, mu_paths, sigma, mu_segments,
                                       out.rep_paths, out.rep_segments,
                                       remaining);
  const linalg::Vector final_err = out.predictor.error_sigmas();
  double worst = 0.0;
  for (double s : final_err) worst = std::max(worst, s);
  out.eps_achieved = options.kappa * worst / t_cons;

  // Hybrid selection exists to *reduce* post-silicon measurements; when the
  // segment route ends up costlier than plain Algorithm-1 path selection at
  // the same tolerance (possible when segments outnumber rank(A), e.g. tiny
  // designs), fall back to the cheaper path-only measurement set.
  const PathSelectionResult& path_only = ctx.path_only;
  if (path_only.representatives.size() <
      out.rep_paths.size() + out.rep_segments.size()) {
    out.rep_paths = path_only.representatives;
    out.rep_segments.clear();
    out.detected_paths = out.rep_paths.size();
    std::vector<char> meas(n, 0);
    for (int i : out.rep_paths) meas[static_cast<std::size_t>(i)] = 1;
    std::vector<int> rem2;
    for (std::size_t i = 0; i < n; ++i) {
      if (!meas[i]) rem2.push_back(static_cast<int>(i));
    }
    out.predictor = make_joint_predictor(a, mu_paths, sigma, mu_segments,
                                         out.rep_paths, {}, rem2);
    out.eps_achieved = path_only.eps_r;
  }
  return out;
}

}  // namespace

HybridResult run_hybrid_selection(const linalg::Matrix& a,
                                  const linalg::Vector& mu_paths,
                                  const linalg::Matrix& g,
                                  const linalg::Matrix& sigma,
                                  const linalg::Vector& mu_segments,
                                  double t_cons, double eps_prime,
                                  const HybridOptions& options) {
  REPRO_CHECK_DIM(mu_paths.size(), a.rows(),
                  "run_hybrid_selection: path means vs path count");
  REPRO_CHECK_DIM(a.cols(), sigma.cols(),
                  "run_hybrid_selection: parameter count of A vs Sigma");
  const HybridContext ctx(a, sigma, mu_segments, t_cons, options);
  return run_with_context(ctx, a, mu_paths, g, sigma, mu_segments, t_cons,
                          eps_prime, options);
}

HybridResult sweep_hybrid_selection(const linalg::Matrix& a,
                                    const linalg::Vector& mu_paths,
                                    const linalg::Matrix& g,
                                    const linalg::Matrix& sigma,
                                    const linalg::Vector& mu_segments,
                                    double t_cons,
                                    const std::vector<double>& eps_primes,
                                    const HybridOptions& options) {
  if (eps_primes.empty()) {
    throw std::invalid_argument("sweep_hybrid_selection: empty sweep");
  }
  REPRO_CHECK_DIM(mu_paths.size(), a.rows(),
                  "sweep_hybrid_selection: path means vs path count");
  REPRO_CHECK_DIM(a.cols(), sigma.cols(),
                  "sweep_hybrid_selection: parameter count of A vs Sigma");
  const HybridContext ctx(a, sigma, mu_segments, t_cons, options);
  HybridResult best;
  std::size_t best_cost = std::numeric_limits<std::size_t>::max();
  for (double ep : eps_primes) {
    HybridResult r = run_with_context(ctx, a, mu_paths, g, sigma, mu_segments,
                                      t_cons, ep, options);
    const std::size_t cost = r.rep_paths.size() + r.rep_segments.size();
    if (cost < best_cost ||
        (cost == best_cost && r.eps_achieved < best.eps_achieved)) {
      best_cost = cost;
      best = std::move(r);
    }
  }
  return best;
}

}  // namespace repro::core
