// Post-silicon variation diagnosis (the paper's Section 7 future work,
// realized): invert the measured representative delays back into the
// process-parameter space.
//
// With x ~ N(0, I) a priori and noiseless measurements y = mu_y + M x, the
// posterior mean (= MAP, = minimum-norm) estimate is
//
//   x_hat = M^T (M M^T + ridge I)^+ (y - mu_y),
//
// the network-kriging inverse the selection framework is built on.  From
// x_hat we reconstruct a per-region variation map (estimated Leff / Vt
// shifts in sigmas for every covered quad-tree region) and rank individual
// gates by their estimated delay shift — turning the prediction framework
// into a localization tool for silicon debug.
#pragma once

#include <vector>

#include "core/predictor.h"
#include "variation/variation_model.h"

namespace repro::core {

struct DiagnosisOptions {
  double ridge = 1e-8;        // relative Tikhonov factor on M M^T
  std::size_t top_gates = 20; // how many gate suspects to report
};

struct GateSuspect {
  circuit::GateId gate = circuit::kInvalidGate;
  double delay_shift_ps = 0.0;  // estimated deviation from nominal
};

struct RegionShift {
  std::size_t region = 0;  // global spatial-model region id
  double leff_sigma = 0.0; // estimated shift of the region variable, in sigmas
  double vt_sigma = 0.0;
};

struct DiagnosisResult {
  linalg::Vector x_hat;                 // posterior-mean parameter estimate
  std::vector<RegionShift> regions;     // per covered region
  std::vector<GateSuspect> suspects;    // top |delay shift| gates, descending
  double measurement_residual_ps = 0.0; // ||M x_hat - (y - mu_y)||
  // Path-delay predictions implied by x_hat (all target paths); identical to
  // the Theorem-2 predictor output by construction.
  linalg::Vector predicted_path_delays;
};

// `measured_paths` / `measured_segments` index into the model's target paths
// and segments; `values` stacks the measured delays in the same order
// (paths first), exactly like LinearPredictor::predict.
DiagnosisResult diagnose(const variation::VariationModel& model,
                         const timing::TimingGraph& graph,
                         const variation::SpatialModel& spatial,
                         const std::vector<int>& measured_paths,
                         const std::vector<int>& measured_segments,
                         std::span<const double> values,
                         const DiagnosisOptions& options = {});

}  // namespace repro::core
