// Out-of-core access to the path sensitivity matrix.
//
// Algorithm 1 at paper scale holds the full n x m sensitivity matrix A in
// one address space, which caps the pool at tens of thousands of paths.  The
// sharded pipeline (core/sharded_selection.h) never touches the full matrix:
// every consumer asks a PathPanelSource to materialize just the rows it
// needs into a caller-owned panel whose size is bounded by the streaming
// block configuration.  The source abstracts where rows come from — an
// in-memory matrix (tests, server sessions), a deterministic generator (the
// synthetic scale bench), or eventually a file/mmap reader — and the
// PanelBudget accounts every resident panel so peak memory is observable
// and gateable.
//
// Contract for fill_rows implementations: `out` is pre-sized by the caller
// to ids.size() x params(); the implementation writes every cell and MUST
// NOT allocate (these are the per-shard inner loops; repro_lint's
// hot-path-alloc check is pointed at them, see tools/repro_lint/lint.h).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace repro::core {

// Tracks the bytes of all currently materialized panels plus the running
// peak.  Thread-safe: shard tasks lease panels concurrently from inside
// parallel_for bodies (plain atomics, no telemetry calls in hot regions —
// the orchestrator publishes the peak as a gauge after each phase).
class PanelBudget {
 public:
  void add(std::size_t bytes) {
    const std::size_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }
  void sub(std::size_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  std::size_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  std::size_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
};

// RAII reservation against a PanelBudget: charge on construction, release on
// destruction.  Budget may be null (tracking disabled), which makes the
// lease free.
class PanelLease {
 public:
  PanelLease() = default;
  PanelLease(PanelBudget* budget, std::size_t bytes)
      : budget_(budget), bytes_(bytes) {
    if (budget_ != nullptr) budget_->add(bytes_);
  }
  ~PanelLease() { release(); }
  PanelLease(PanelLease&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  PanelLease& operator=(PanelLease&& other) noexcept {
    if (this != &other) {
      release();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  PanelLease(const PanelLease&) = delete;
  PanelLease& operator=(const PanelLease&) = delete;

  void release() {
    if (budget_ != nullptr) budget_->sub(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

 private:
  PanelBudget* budget_ = nullptr;
  std::size_t bytes_ = 0;
};

// Bytes of a rows x cols double panel (the unit every lease is charged in).
inline std::size_t panel_bytes(std::size_t rows, std::size_t cols) {
  return rows * cols * sizeof(double);
}

class PathPanelSource {
 public:
  virtual ~PathPanelSource() = default;

  // Pool dimensions: n target paths x m process parameters.
  virtual std::size_t paths() const = 0;
  virtual std::size_t params() const = 0;

  // Materializes the sensitivity rows for the given global path ids into
  // `out` (pre-sized to ids.size() x params() by the caller; throws
  // otherwise).  Row k of `out` receives path ids[k].  Must not allocate —
  // see the file comment.
  virtual void fill_rows(std::span<const int> ids,
                         linalg::Matrix& out) const = 0;

  // Per-path weight for gate-balanced sharding (e.g. the path's gate
  // count).  Defaults to 1.0, which makes gate-balanced collapse to
  // path-balanced.
  virtual double path_weight(int id) const;
};

// In-memory source: wraps an existing sensitivity matrix (tests, server
// sessions, pools that do fit).  Optional per-path weights back the
// gate-balanced policy.  The matrix and weights are borrowed, not copied —
// they must outlive the source.
class MatrixPanelSource final : public PathPanelSource {
 public:
  explicit MatrixPanelSource(const linalg::Matrix& a,
                             std::span<const double> weights = {});

  std::size_t paths() const override { return a_->rows(); }
  std::size_t params() const override { return a_->cols(); }
  void fill_rows(std::span<const int> ids,
                 linalg::Matrix& out) const override;
  double path_weight(int id) const override;

 private:
  const linalg::Matrix* a_;
  std::span<const double> weights_;
};

// Generator-backed source: row i is produced on demand by a deterministic
// function of the path id (the synthetic scale bench derives each row from
// util::Rng::stream(seed, id), so a row's bits never depend on which block
// materializes it).  The callbacks themselves must not allocate.
class FunctionPanelSource final : public PathPanelSource {
 public:
  using RowFn = std::function<void(int id, std::span<double> row)>;
  using WeightFn = std::function<double(int id)>;

  FunctionPanelSource(std::size_t paths, std::size_t params, RowFn row,
                      WeightFn weight = {});

  std::size_t paths() const override { return paths_; }
  std::size_t params() const override { return params_; }
  void fill_rows(std::span<const int> ids,
                 linalg::Matrix& out) const override;
  double path_weight(int id) const override;

 private:
  std::size_t paths_ = 0;
  std::size_t params_ = 0;
  RowFn row_;
  WeightFn weight_;
};

}  // namespace repro::core
