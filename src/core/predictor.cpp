#include "core/predictor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/gemm.h"
#include "linalg/solve.h"
#include "util/contracts.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace repro::core {
namespace {

// Shared core: given the measurement matrix m_y (n_meas x m) and the
// remaining-path sensitivities a_rem, build coef = A_rem M_y^T (M_y M_y^T)^+
// and omega = coef * M_y - A_rem.
void build(LinearPredictor& p, const linalg::Matrix& a_rem,
           const linalg::Matrix& m_y) {
  // Gram of the measurements (n_meas x n_meas) and cross block.
  const linalg::Matrix s = linalg::gram(m_y);
  const linalg::Matrix cross = linalg::multiply_bt(a_rem, m_y);
  // coef^T = S^+ cross^T  ->  solve S Z = cross^T.
  // S can be singular when measurements are redundant; pseudo-inverse via
  // regularized Cholesky matches the paper's () ^+ notation.
  const linalg::Matrix z = linalg::spd_solve(s, cross.transposed());
  p.coef = z.transposed();
  p.omega = linalg::multiply(p.coef, m_y);
  p.omega -= a_rem;
}

}  // namespace

linalg::Vector LinearPredictor::predict(
    std::span<const double> measured) const {
  if (measured.size() != mu_meas.size()) {
    throw std::invalid_argument(
        "LinearPredictor::predict: got " + std::to_string(measured.size()) +
        " measurements, predictor expects " + std::to_string(mu_meas.size()));
  }
  linalg::Vector centered(measured.begin(), measured.end());
  for (std::size_t i = 0; i < centered.size(); ++i) centered[i] -= mu_meas[i];
  linalg::Vector out = linalg::matvec(coef, centered);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += mu_rem[i];
  return out;
}

linalg::Vector LinearPredictor::error_sigmas() const {
  linalg::Vector s(omega.rows());
  for (std::size_t i = 0; i < omega.rows(); ++i) {
    s[i] = linalg::norm2(omega.row(i));
  }
  return s;
}

linalg::Matrix predict_panel(const LinearPredictor& p,
                             const linalg::Matrix& measured) {
  REPRO_CHECK_DIM(measured.cols(), p.mu_meas.size(),
                  "predict_panel: measurement slots per die");
  if (measured.cols() != p.mu_meas.size()) {
    throw std::invalid_argument(
        "predict_panel: got " + std::to_string(measured.cols()) +
        " measurement columns, predictor expects " +
        std::to_string(p.mu_meas.size()));
  }
  const std::size_t dies = measured.rows();
  const std::size_t n_rem = p.mu_rem.size();
  linalg::Matrix centered = measured;
  for (std::size_t d = 0; d < dies; ++d) {
    const auto row = centered.row(d);
    for (std::size_t k = 0; k < row.size(); ++k) row[k] -= p.mu_meas[k];
  }
  util::telemetry::count("core.predict.panels");
  util::telemetry::count("core.predict.panel_dies", dies);
  linalg::Matrix out(dies, n_rem);
  // Output element (d, i) is dot(coef.row(i), centered.row(d)) + mu_rem[i] —
  // exactly the arithmetic of predict()'s matvec element, so every die's row
  // matches the serial result bitwise.  The loop nest keeps one coef row hot
  // across the whole batch (coef streams once per panel, not once per die),
  // and the parallel split over output columns never reorders an element's
  // operands, so the panel is also thread-count invariant.
  util::parallel_for(0, n_rem, 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const auto crow = p.coef.row(i);
      for (std::size_t d = 0; d < dies; ++d) {
        out(d, i) = linalg::dot(crow, centered.row(d)) + p.mu_rem[i];
      }
    }
  });
  return out;
}

LinearPredictor make_path_predictor(const linalg::Matrix& a,
                                    const linalg::Vector& mu,
                                    const std::vector<int>& rep) {
  REPRO_CHECK_DIM(mu.size(), a.rows(), "make_path_predictor: mu vs paths");
  REPRO_CHECK(rep.size() <= a.rows(),
              "make_path_predictor: more representatives than paths");
  if (mu.size() != a.rows()) {
    throw std::invalid_argument("make_path_predictor: mu size");
  }
  LinearPredictor p;
  p.measured_paths = rep;
  std::vector<char> is_rep(a.rows(), 0);
  for (int i : rep) is_rep[static_cast<std::size_t>(i)] = 1;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    if (!is_rep[i]) p.remaining.push_back(static_cast<int>(i));
  }
  const linalg::Matrix a_r = a.select_rows(rep);
  const linalg::Matrix a_m = a.select_rows(p.remaining);
  p.mu_meas.resize(rep.size());
  for (std::size_t k = 0; k < rep.size(); ++k) {
    p.mu_meas[k] = mu[static_cast<std::size_t>(rep[k])];
  }
  p.mu_rem.resize(p.remaining.size());
  for (std::size_t k = 0; k < p.remaining.size(); ++k) {
    p.mu_rem[k] = mu[static_cast<std::size_t>(p.remaining[k])];
  }
  build(p, a_m, a_r);
  return p;
}

LinearPredictor make_joint_predictor(const linalg::Matrix& a,
                                     const linalg::Vector& mu_paths,
                                     const linalg::Matrix& sigma,
                                     const linalg::Vector& mu_segments,
                                     const std::vector<int>& rep_paths,
                                     const std::vector<int>& rep_segments,
                                     const std::vector<int>& remaining) {
  // The A-vs-Sigma parameter count is validated unconditionally below; the
  // contract states only what is not:
  REPRO_CHECK_DIM(mu_paths.size(), a.rows(),
                  "make_joint_predictor: path means vs path count");
  if (a.cols() != sigma.cols()) {
    throw std::invalid_argument("make_joint_predictor: parameter mismatch");
  }
  LinearPredictor p;
  p.measured_paths = rep_paths;
  p.measured_segments = rep_segments;
  p.remaining = remaining;

  const std::size_t n_meas = rep_paths.size() + rep_segments.size();
  linalg::Matrix m_y(n_meas, a.cols());
  p.mu_meas.resize(n_meas);
  std::size_t row = 0;
  for (int i : rep_paths) {
    m_y.set_row(row, a.row(static_cast<std::size_t>(i)));
    p.mu_meas[row] = mu_paths[static_cast<std::size_t>(i)];
    ++row;
  }
  for (int s : rep_segments) {
    m_y.set_row(row, sigma.row(static_cast<std::size_t>(s)));
    p.mu_meas[row] = mu_segments[static_cast<std::size_t>(s)];
    ++row;
  }

  const linalg::Matrix a_m = a.select_rows(remaining);
  p.mu_rem.resize(remaining.size());
  for (std::size_t k = 0; k < remaining.size(); ++k) {
    p.mu_rem[k] = mu_paths[static_cast<std::size_t>(remaining[k])];
  }
  build(p, a_m, m_y);
  return p;
}

// ---------------------------------------------------------------------------
// Noisy-silicon robustness layer.
// ---------------------------------------------------------------------------

const char* to_string(PredictorHealth h) {
  switch (h) {
    case PredictorHealth::kOk: return "ok";
    case PredictorHealth::kDegraded: return "degraded";
    case PredictorHealth::kFailed: return "failed";
  }
  return "?";
}

namespace {

double median_abs(std::vector<double> v) {
  if (v.empty()) return 0.0;
  for (double& x : v) x = std::abs(x);
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    // Lower-half max completes the even-size median.
    double lo = v[0];
    for (std::size_t i = 1; i < mid; ++i) lo = std::max(lo, v[i]);
    m = 0.5 * (m + lo);
  }
  return m;
}

}  // namespace

linalg::Vector RobustPredictor::error_sigmas() const {
  linalg::Vector s = base.error_sigmas();
  const double noise2 =
      options.measurement_sigma_ps * options.measurement_sigma_ps;
  if (noise2 > 0.0) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      const double cn = linalg::norm2(base.coef.row(i));
      s[i] = std::sqrt(s[i] * s[i] + noise2 * cn * cn);
    }
  }
  return s;
}

RobustPrediction RobustPredictor::predict(std::span<const double> measured,
                                          std::span<const char> valid) const {
  RobustPrediction out;
  out.values = base.mu_rem;  // nominal fallback, overwritten on success
  const std::size_t n_meas = base.mu_meas.size();
  if (!status.usable() || measured.size() != n_meas ||
      (!valid.empty() && valid.size() != n_meas)) {
    return out;
  }

  // Usable measurement slots: flagged valid and finite.
  std::vector<int> slots;
  for (std::size_t i = 0; i < n_meas; ++i) {
    if ((valid.empty() || valid[i]) && std::isfinite(measured[i])) {
      slots.push_back(static_cast<int>(i));
    } else {
      out.missing.push_back(static_cast<int>(i));
    }
  }
  if (slots.empty()) return out;  // nothing measurable on this die

  const double lam0 =
      options.measurement_sigma_ps * options.measurement_sigma_ps;
  auto solve_slots = [&](const std::vector<int>& use,
                         const linalg::Vector& weights,
                         linalg::Vector& z) -> bool {
    linalg::Matrix s = gram_meas.select_rows(use).select_cols(use);
    linalg::Vector r0(use.size());
    for (std::size_t i = 0; i < use.size(); ++i) {
      const auto slot = static_cast<std::size_t>(use[i]);
      r0[i] = measured[slot] - base.mu_meas[slot];
      if (lam0 > 0.0) s(i, i) += lam0 / weights[i];
    }
    linalg::SpdSolveInfo info;
    z = linalg::spd_solve_robust(s, r0, &info, options.max_condition);
    return info.ok;
  };

  // Huber IRLS over the dual variable z of the MAP estimate
  //   x = A_v^T (A_v A_v^T + lam0 W^{-1})^{-1} (y - mu);
  // residuals come from the k x k system (r = r0 - S0 z), so each iteration
  // costs O(k^3) with k = #valid slots.  With lam0 == 0 the system
  // interpolates exactly and the loop converges immediately (classic
  // Theorem-2 behaviour).
  linalg::Vector w(slots.size(), 1.0);
  linalg::Vector z;
  const linalg::Matrix s0 =
      gram_meas.select_rows(slots).select_cols(slots);
  linalg::Vector r0(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const auto slot = static_cast<std::size_t>(slots[i]);
    r0[i] = measured[slot] - base.mu_meas[slot];
  }
  double scale = options.measurement_sigma_ps;
  for (int iter = 0; iter < std::max(1, options.irls_iterations); ++iter) {
    ++out.irls_iterations;
    if (!solve_slots(slots, w, z)) return out;  // pathological input
    if (lam0 <= 0.0) break;
    // Residuals and a robust scale estimate (MAD, floored at the sensor
    // noise so a lucky die cannot declare everything an outlier).
    const linalg::Vector sz = linalg::matvec(s0, z);
    std::vector<double> resid(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) resid[i] = r0[i] - sz[i];
    scale = std::max(options.measurement_sigma_ps,
                     1.4826 * median_abs(resid));
    double max_dw = 0.0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const double ar = std::abs(resid[i]);
      const double wi =
          (ar <= options.huber_delta * scale || ar == 0.0)
              ? 1.0
              : options.huber_delta * scale / ar;
      max_dw = std::max(max_dw, std::abs(wi - w[i]));
      w[i] = wi;
    }
    if (max_dw < options.irls_tol) break;
  }
  out.residual_scale = scale;

  // Residual-based outlier screening: slots whose standardized residual
  // exceeds the z-score threshold are removed outright and the final solve
  // is redone on the survivors.
  std::vector<int> kept = slots;
  if (lam0 > 0.0 && scale > 0.0 && slots.size() >= 4) {
    const linalg::Vector sz = linalg::matvec(s0, z);
    std::vector<int> survivors;
    linalg::Vector w_kept;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (std::abs(r0[i] - sz[i]) > options.outlier_zscore * scale) {
        out.screened.push_back(slots[i]);
      } else {
        survivors.push_back(slots[i]);
        w_kept.push_back(w[i]);
      }
    }
    if (!out.screened.empty() && !survivors.empty()) {
      kept = std::move(survivors);
      if (!solve_slots(kept, w_kept, z)) return out;
    } else if (survivors.empty()) {
      return out;  // every measurement looked insane: nominal fallback
    }
  }

  // x = A_v^T z, then d_rem = mu_rem + A_rem x.
  const linalg::Matrix a_v = a_meas.select_rows(kept);
  const linalg::Vector x = linalg::matvec_transposed(a_v, z);
  out.values = linalg::matvec(a_rem, x);
  for (std::size_t i = 0; i < out.values.size(); ++i) {
    out.values[i] += base.mu_rem[i];
  }
  out.health = (out.screened.empty() && out.missing.empty())
                   ? PredictorHealth::kOk
                   : PredictorHealth::kDegraded;
  return out;
}

// Deliberately contract-free: the robust entry point converts every
// precondition violation into PredictorStatus (graceful degradation under
// fault injection); an aborting contract here would defeat its purpose.
// repro-lint: allow(contracts)
RobustPredictor make_robust_path_predictor(const linalg::Matrix& a,
                                           const linalg::Vector& mu,
                                           const std::vector<int>& rep,
                                           const std::vector<int>& dead,
                                           const RobustOptions& options) {
  RobustPredictor rp;
  rp.options = options;
  auto fail = [&](std::string msg) {
    rp.status.health = PredictorHealth::kFailed;
    rp.status.message = std::move(msg);
    return rp;
  };
  if (a.empty()) {
    return fail(a.rows() == 0 ? "no target paths (A has zero rows)"
                              : "no variation parameters (A has zero columns)");
  }
  if (mu.size() != a.rows()) {
    return fail("mu size " + std::to_string(mu.size()) +
                " != path count " + std::to_string(a.rows()));
  }
  const auto n = static_cast<int>(a.rows());
  std::vector<char> is_dead(a.rows(), 0);
  for (int d : dead) {
    if (d < 0 || d >= n) return fail("dead path index out of range");
    is_dead[static_cast<std::size_t>(d)] = 1;
  }
  std::vector<char> in_meas(a.rows(), 0);
  std::vector<int> live;
  for (int r : rep) {
    if (r < 0 || r >= n) return fail("representative index out of range");
    if (in_meas[static_cast<std::size_t>(r)]) continue;  // duplicate
    if (is_dead[static_cast<std::size_t>(r)]) {
      rp.status.dropped_paths.push_back(r);
      continue;
    }
    in_meas[static_cast<std::size_t>(r)] = 1;
    live.push_back(r);
  }
  if (options.promote_backups && !rp.status.dropped_paths.empty()) {
    for (int b : options.backup_order) {
      if (live.size() >= rep.size()) break;
      if (b < 0 || b >= n) continue;
      if (in_meas[static_cast<std::size_t>(b)] ||
          is_dead[static_cast<std::size_t>(b)]) {
        continue;
      }
      in_meas[static_cast<std::size_t>(b)] = 1;
      live.push_back(b);
      rp.status.promoted_paths.push_back(b);
    }
  }
  if (live.empty()) {
    return fail(rep.empty() ? "no representative paths given"
                            : "all representative paths are dead");
  }

  LinearPredictor& p = rp.base;
  p.measured_paths = live;
  for (int i = 0; i < n; ++i) {
    if (!in_meas[static_cast<std::size_t>(i)]) p.remaining.push_back(i);
  }
  rp.a_meas = a.select_rows(live);
  rp.a_rem = a.select_rows(p.remaining);
  p.mu_meas.resize(live.size());
  for (std::size_t k = 0; k < live.size(); ++k) {
    p.mu_meas[k] = mu[static_cast<std::size_t>(live[k])];
  }
  p.mu_rem.resize(p.remaining.size());
  for (std::size_t k = 0; k < p.remaining.size(); ++k) {
    p.mu_rem[k] = mu[static_cast<std::size_t>(p.remaining[k])];
  }

  // Reported robust Gram solve instead of the throwing spd_solve.
  rp.gram_meas = linalg::gram(rp.a_meas);
  const linalg::Matrix cross = linalg::multiply_bt(rp.a_rem, rp.a_meas);
  linalg::SpdSolveInfo info;
  const linalg::Matrix z = linalg::spd_solve_robust(
      rp.gram_meas, cross.transposed(), &info, options.max_condition);
  rp.status.gram_condition = info.condition;
  rp.status.ridge = info.ridge;
  if (!info.ok) {
    return fail("measured Gram system unsolvable (non-finite sensitivities?)");
  }
  p.coef = z.transposed();
  p.omega = linalg::multiply(p.coef, rp.a_meas);
  p.omega -= rp.a_rem;

  // Status roll-up: ridge fallback or dead-path drop => degraded.
  const bool degraded = info.regularized || !rp.status.dropped_paths.empty();
  rp.status.health =
      degraded ? PredictorHealth::kDegraded : PredictorHealth::kOk;
  if (info.regularized) {
    rp.status.message =
        "gram condition " + std::to_string(info.condition) +
        " above threshold; ridge " + std::to_string(info.ridge) + " applied";
  } else if (!rp.status.dropped_paths.empty()) {
    rp.status.message =
        std::to_string(rp.status.dropped_paths.size()) +
        " dead representative path(s) dropped, " +
        std::to_string(rp.status.promoted_paths.size()) + " backup(s) promoted";
  }

  // Mean inflation of the analytic error sigmas by the noise prior.
  if (options.measurement_sigma_ps > 0.0 && !p.remaining.empty()) {
    const linalg::Vector clean = p.error_sigmas();
    const linalg::Vector noisy = rp.error_sigmas();
    double sc = 0.0, sn = 0.0;
    for (std::size_t i = 0; i < clean.size(); ++i) {
      sc += clean[i];
      sn += noisy[i];
    }
    rp.status.sigma_inflation = (sc > 0.0) ? sn / sc : 1.0;
  }
  return rp;
}

}  // namespace repro::core
