#include "core/predictor.h"

#include <algorithm>
#include <stdexcept>

#include "linalg/gemm.h"
#include "linalg/solve.h"

namespace repro::core {
namespace {

// Shared core: given the measurement matrix m_y (n_meas x m) and the
// remaining-path sensitivities a_rem, build coef = A_rem M_y^T (M_y M_y^T)^+
// and omega = coef * M_y - A_rem.
void build(LinearPredictor& p, const linalg::Matrix& a_rem,
           const linalg::Matrix& m_y) {
  // Gram of the measurements (n_meas x n_meas) and cross block.
  const linalg::Matrix s = linalg::gram(m_y);
  const linalg::Matrix cross = linalg::multiply_bt(a_rem, m_y);
  // coef^T = S^+ cross^T  ->  solve S Z = cross^T.
  // S can be singular when measurements are redundant; pseudo-inverse via
  // regularized Cholesky matches the paper's () ^+ notation.
  const linalg::Matrix z = linalg::spd_solve(s, cross.transposed());
  p.coef = z.transposed();
  p.omega = linalg::multiply(p.coef, m_y);
  p.omega -= a_rem;
}

}  // namespace

linalg::Vector LinearPredictor::predict(std::span<const double> measured) const {
  if (measured.size() != mu_meas.size()) {
    throw std::invalid_argument("LinearPredictor::predict: size mismatch");
  }
  linalg::Vector centered(measured.begin(), measured.end());
  for (std::size_t i = 0; i < centered.size(); ++i) centered[i] -= mu_meas[i];
  linalg::Vector out = linalg::matvec(coef, centered);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += mu_rem[i];
  return out;
}

linalg::Vector LinearPredictor::error_sigmas() const {
  linalg::Vector s(omega.rows());
  for (std::size_t i = 0; i < omega.rows(); ++i) {
    s[i] = linalg::norm2(omega.row(i));
  }
  return s;
}

LinearPredictor make_path_predictor(const linalg::Matrix& a,
                                    const linalg::Vector& mu,
                                    const std::vector<int>& rep) {
  if (mu.size() != a.rows()) {
    throw std::invalid_argument("make_path_predictor: mu size");
  }
  LinearPredictor p;
  p.measured_paths = rep;
  std::vector<char> is_rep(a.rows(), 0);
  for (int i : rep) is_rep[static_cast<std::size_t>(i)] = 1;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    if (!is_rep[i]) p.remaining.push_back(static_cast<int>(i));
  }
  const linalg::Matrix a_r = a.select_rows(rep);
  const linalg::Matrix a_m = a.select_rows(p.remaining);
  p.mu_meas.resize(rep.size());
  for (std::size_t k = 0; k < rep.size(); ++k) {
    p.mu_meas[k] = mu[static_cast<std::size_t>(rep[k])];
  }
  p.mu_rem.resize(p.remaining.size());
  for (std::size_t k = 0; k < p.remaining.size(); ++k) {
    p.mu_rem[k] = mu[static_cast<std::size_t>(p.remaining[k])];
  }
  build(p, a_m, a_r);
  return p;
}

LinearPredictor make_joint_predictor(const linalg::Matrix& a,
                                     const linalg::Vector& mu_paths,
                                     const linalg::Matrix& sigma,
                                     const linalg::Vector& mu_segments,
                                     const std::vector<int>& rep_paths,
                                     const std::vector<int>& rep_segments,
                                     const std::vector<int>& remaining) {
  if (a.cols() != sigma.cols()) {
    throw std::invalid_argument("make_joint_predictor: parameter mismatch");
  }
  LinearPredictor p;
  p.measured_paths = rep_paths;
  p.measured_segments = rep_segments;
  p.remaining = remaining;

  const std::size_t n_meas = rep_paths.size() + rep_segments.size();
  linalg::Matrix m_y(n_meas, a.cols());
  p.mu_meas.resize(n_meas);
  std::size_t row = 0;
  for (int i : rep_paths) {
    m_y.set_row(row, a.row(static_cast<std::size_t>(i)));
    p.mu_meas[row] = mu_paths[static_cast<std::size_t>(i)];
    ++row;
  }
  for (int s : rep_segments) {
    m_y.set_row(row, sigma.row(static_cast<std::size_t>(s)));
    p.mu_meas[row] = mu_segments[static_cast<std::size_t>(s)];
    ++row;
  }

  const linalg::Matrix a_m = a.select_rows(remaining);
  p.mu_rem.resize(remaining.size());
  for (std::size_t k = 0; k < remaining.size(); ++k) {
    p.mu_rem[k] = mu_paths[static_cast<std::size_t>(remaining[k])];
  }
  build(p, a_m, m_y);
  return p;
}

}  // namespace repro::core
