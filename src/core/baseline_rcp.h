// Baseline: the representative critical path (RCP) of Liu & Sapatnekar
// (ISPD 2009), the comparison approach the paper discusses in Section 1.
//
// RCP picks ONE path whose delay correlates maximally with the circuit
// delay; measuring it post-silicon predicts the *chip frequency* via a
// linear regressor.  The paper's critique — "this approach cannot localize
// the timing failure" — is exactly what the framework's per-path selection
// fixes; this module implements the baseline so the comparison can be run
// (bench_baseline_rcp).
//
// Implementation: the circuit-delay distribution comes from the SSTA
// canonical form (Clark max over all capture points); each target path's
// canonical form is its sensitivity row mapped into the same global
// parameter basis, so correlations are analytic.  The predictor is the MMSE
// line  chip ~ slope * d_path + intercept.
#pragma once

#include "timing/ssta.h"
#include "variation/variation_model.h"

namespace repro::core {

struct RcpResult {
  int path_index = -1;      // target path chosen as the RCP
  double correlation = 0.0; // model correlation with the circuit delay
  double slope = 0.0;       // chip-delay predictor: slope * d_path + intercept
  double intercept = 0.0;
  double chip_mean = 0.0;   // SSTA circuit-delay moments (ps)
  double chip_sigma = 0.0;
  // Correlation of every target path with the circuit delay (diagnostics).
  linalg::Vector all_correlations;
};

// Selects the RCP among the model's target paths against the SSTA
// circuit-delay form.  `ssta` must come from run_ssta on the same graph /
// spatial model / random scale as `model`.
RcpResult select_representative_critical_path(
    const variation::VariationModel& model,
    const variation::SpatialModel& spatial, const timing::SstaResult& ssta);

}  // namespace repro::core
