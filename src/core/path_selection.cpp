#include "core/path_selection.h"

#include <algorithm>
#include <stdexcept>

#include "linalg/gemm.h"
#include "util/contracts.h"
#include "util/telemetry.h"

namespace repro::core {
namespace {

struct Candidate {
  std::vector<int> rep;
  SelectionErrors errors;
};

Candidate evaluate(const SubsetSelector& selector, const linalg::Matrix& gram,
                   double t_cons, double kappa, std::size_t r) {
  Candidate c;
  c.rep = selector.select(r);
  c.errors = selection_errors_from_gram(gram, c.rep, t_cons, kappa);
  return c;
}

}  // namespace

PathSelectionResult select_representative_paths(
    const SubsetSelector& selector, const linalg::Matrix& gram, double t_cons,
    const PathSelectionOptions& options) {
  REPRO_CHECK_DIM(gram.rows(), gram.cols(),
                  "select_representative_paths: Gram matrix must be square");
  REPRO_CHECK(t_cons > 0.0,
              "select_representative_paths: timing constraint must be > 0");
  const util::telemetry::Span span("core.select");
  const std::size_t rank = selector.rank();
  if (rank == 0) {
    throw std::invalid_argument("select_representative_paths: rank(A) == 0");
  }
  PathSelectionResult out;
  out.exact_rank = rank;
  // min_r above rank is unreachable (the search space is [1, rank]); clamp
  // so both drivers agree on the edge instead of the bisection loop silently
  // never running and falling back to the exact selection.
  const std::size_t min_r =
      std::min(rank, std::max<std::size_t>(options.min_r, 1));

  Candidate best;
  bool have_best = false;
  if (options.strategy == SelectionStrategy::kLinearDecrement) {
    // Paper Algorithm 1: start from the exact selection (r = rank(A),
    // eps_r = 0 by Theorem 1) and decrement while the error stays within
    // epsilon.
    best = evaluate(selector, gram, t_cons, options.kappa, rank);
    have_best = true;
    out.candidates_evaluated = 1;
    std::size_t r = rank;
    while (r > min_r) {
      Candidate next = evaluate(selector, gram, t_cons, options.kappa, r - 1);
      ++out.candidates_evaluated;
      if (next.errors.eps_r > options.epsilon) break;
      best = std::move(next);
      --r;
    }
  } else if (options.strategy == SelectionStrategy::kGreedySweep) {
    // Nested greedy route: every candidate r is a prefix of one fixed
    // pivoted-Cholesky order, so a single sweep prices all of them at the
    // cost of evaluating just the largest one the per-candidate way.
    const std::vector<int>& order = selector.greedy_order(gram);
    const std::size_t effective = std::min(rank, order.size());
    const SelectionErrorSweep sweep =
        selection_error_sweep(gram, order, t_cons, options.kappa, effective);
    // Smallest prefix in [min_r, effective] within tolerance, scanning from
    // the near-exact full-rank prefix downward (Algorithm 1's decrement,
    // with every probe already priced).  sweep.eps_r[r - 2] is the error of
    // the (r-1)-prefix.
    std::size_t r = effective;
    while (r > min_r && sweep.eps_r[r - 2] <= options.epsilon) --r;
    best.rep.assign(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(r));
    // Re-price the chosen prefix through the panel evaluator so the result
    // carries the full per-path error vectors like the other drivers.
    best.errors =
        selection_errors_from_gram(gram, best.rep, t_cons, options.kappa);
    have_best = true;
    out.candidates_evaluated = sweep.steps;
    util::telemetry::count("core.select.sweep_steps", sweep.steps);
  } else {
    // Bisection on the smallest feasible r in [min_r, rank].  r = rank is
    // feasible by Theorem 1 without evaluation, so the search only ever
    // factors subspaces of the sizes it visits (which keeps the lazy
    // eigenpair capture small).
    std::size_t lo = min_r;  // maybe infeasible
    std::size_t hi = rank;   // known feasible (eps_r = 0)
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      Candidate c = evaluate(selector, gram, t_cons, options.kappa, mid);
      ++out.candidates_evaluated;
      if (c.errors.eps_r <= options.epsilon) {
        best = std::move(c);
        have_best = true;
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
  }
  if (!have_best) {
    // Nothing below rank met the tolerance: fall back to exact selection.
    best = evaluate(selector, gram, t_cons, options.kappa, rank);
    ++out.candidates_evaluated;
  }

  util::telemetry::count("core.select.candidates", out.candidates_evaluated);
  out.representatives = std::move(best.rep);
  out.errors = std::move(best.errors);
  out.eps_r = out.errors.eps_r;
  return out;
}

PathSelectionResult select_representative_paths(
    const linalg::Matrix& a, double t_cons, const PathSelectionOptions& options,
    const linalg::Matrix* gram) {
  REPRO_CHECK(gram == nullptr || gram->rows() == a.rows(),
              "select_representative_paths: precomputed Gram vs path count");
  linalg::Matrix w_local;
  if (gram == nullptr) {
    const util::telemetry::Span span("core.select.gram");
    w_local = linalg::gram(a);
    gram = &w_local;
  }
  // Wide matrices (many process parameters): derive U and the singular
  // values from the Gram matrix we need anyway — O(n^3) instead of the
  // O(m n^2) bidiagonalization.
  const SubsetSelector selector =
      (a.cols() >= a.rows()) ? SubsetSelector(a, *gram) : SubsetSelector(a);
  return select_representative_paths(selector, *gram, t_cons, options);
}

}  // namespace repro::core
