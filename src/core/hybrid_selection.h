// Algorithm 3: hybrid path/segment selection.
//
//   1. Select P_r1: exact representative paths (r1 = rank(A), zero error).
//   2. Select segments S_r1 modeling d_Pr1 within eps' < eps (Eqn (10) ADMM).
//   3. Predict all target paths from d_S_r1 (optimal linear predictor);
//      detect P_r2 = paths whose worst-case prediction error exceeds
//      eps * Tcons.
//   4. Final measurement set = P_r2 (paths) + S_r1 (segments); redundant
//      measurements are pruned by exact (rank-preserving) subset selection
//      on the stacked measurement matrix, and the joint optimal predictor is
//      verified to keep every remaining path within eps.
//
// eps' is swept (the paper parallelizes this at design stage and keeps the
// eps' minimizing |P_r| + |S_r|); run_hybrid_selection evaluates one eps',
// and sweep_hybrid_selection returns the best over a list.
#pragma once

#include <vector>

#include "core/group_sparse.h"
#include "core/predictor.h"
#include "linalg/matrix.h"

namespace repro::core {

struct HybridOptions {
  double epsilon = 0.08;  // overall tolerance (fraction of Tcons)
  double kappa = 3.0;
  GroupSparseOptions group_sparse;
  // Prune measurement rows that add no numerical rank (Step 4).
  bool prune_redundant = true;
};

struct HybridResult {
  std::vector<int> rep_paths;     // P_r (indices into the target-path set)
  std::vector<int> rep_segments;  // S_r (segment ids)
  LinearPredictor predictor;      // joint predictor for the remaining paths
  double eps_prime = 0.0;         // segment-stage tolerance used
  double eps_achieved = 0.0;      // analytic worst-case error fraction
  std::size_t exact_rank = 0;     // |P_r1| = rank(A)
  std::size_t detected_paths = 0; // |P_r2| before pruning
  int admm_iterations = 0;
};

HybridResult run_hybrid_selection(const linalg::Matrix& a,
                                  const linalg::Vector& mu_paths,
                                  const linalg::Matrix& g,
                                  const linalg::Matrix& sigma,
                                  const linalg::Vector& mu_segments,
                                  double t_cons, double eps_prime,
                                  const HybridOptions& options = {});

// Evaluates each eps' and returns the result minimizing
// |rep_paths| + |rep_segments| (ties: smaller achieved error).
HybridResult sweep_hybrid_selection(const linalg::Matrix& a,
                                    const linalg::Vector& mu_paths,
                                    const linalg::Matrix& g,
                                    const linalg::Matrix& sigma,
                                    const linalg::Vector& mu_segments,
                                    double t_cons,
                                    const std::vector<double>& eps_primes,
                                    const HybridOptions& options = {});

}  // namespace repro::core
