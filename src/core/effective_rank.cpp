#include "core/effective_rank.h"

#include <stdexcept>

#include "util/contracts.h"

namespace repro::core {

// The eta range and non-negative spectrum are validated unconditionally
// below in every build; a contract would duplicate them.
// repro-lint: allow(contracts)
std::size_t effective_rank(const linalg::Vector& singular_values, double eta) {
  if (eta < 0.0 || eta >= 1.0) {
    throw std::invalid_argument("effective_rank: eta must be in [0, 1)");
  }
  double energy = 0.0;
  for (double s : singular_values) {
    if (s < 0.0) throw std::invalid_argument("effective_rank: negative value");
    energy += s;
  }
  if (energy == 0.0) return 0;
  const double target = (1.0 - eta) * energy;
  double acc = 0.0;
  std::size_t k = 0;
  for (double s : singular_values) {
    if (acc >= target) break;
    if (s == 0.0) break;  // remaining values are zero; target unreachable gap
    acc += s;
    ++k;
  }
  return k;
}

linalg::Vector normalized_singular_values(
    const linalg::Vector& singular_values) {
  double energy = 0.0;
  for (double s : singular_values) {
    REPRO_CHECK(s >= 0.0, "normalized_singular_values: negative value");
    energy += s;
  }
  linalg::Vector out(singular_values.size(), 0.0);
  if (energy == 0.0) return out;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = singular_values[i] / energy;
  }
  return out;
}

}  // namespace repro::core
