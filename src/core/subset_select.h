// Algorithm 2: selection of r representative rows of A.
//
//   1. SVD:  A = U diag(s) V^T.
//   2. QR with column pivoting on U_r^T (U_r = first r columns of U); the
//      permutation ranks the rows of A by how much independent direction
//      each contributes within the dominant r-dimensional row space.
//   3. The first r pivots are the representative rows.
//
// The factorization is computed once and shared across all r (Algorithm 1
// calls this for many candidate r values).  For large instances the Gram
// route is used: rank(A) comes from a pivoted Cholesky of W = A A^T in
// O(n rank^2), and the leading eigenpairs of W (= left singular vectors)
// are captured lazily by a randomized eigensolver sized to the largest r
// actually requested — never an O(n^3) dense eigendecomposition.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/svd.h"

namespace repro::core {

class SubsetSelector {
 public:
  // Precomputes the SVD of `a`.  Throws if the SVD does not converge.
  explicit SubsetSelector(const linalg::Matrix& a);

  // Constructs from an existing SVD of A (avoids recomputation when the
  // caller already has one, e.g. for effective-rank reporting).
  SubsetSelector(linalg::SvdResult svd, std::size_t rows, std::size_t cols);

  // Gram route: rank and singular vectors derived from W = A A^T
  // (sigma_i = sqrt(lambda_i), U = eigenvectors).  For n > 512 the
  // eigenpairs are captured lazily (see file comment); below that the dense
  // symmetric eigensolver is used directly.
  SubsetSelector(const linalg::Matrix& a, const linalg::Matrix& gram);

  // Numerical rank of A.
  std::size_t rank() const { return rank_; }

  // Singular values; on the lazy Gram route this triggers capture of the
  // full numerically-nonzero spectrum (values beyond rank() are zero).
  const linalg::Vector& singular_values() const;

  // Representative row indices for a given r (1 <= r <= rank()).  The
  // returned order is the pivot order (most informative row first).
  // Results are memoized per r: Algorithm 1's bisection probes the same
  // candidate sizes repeatedly, and the QRCP on U_r^T is not nested across
  // r, so each distinct r pays for exactly one factorization.
  std::vector<int> select(std::size_t r) const;

  // Alternative heuristic: greedy residual-variance selection = the pivot
  // order of a rank-revealing Cholesky of W = A A^T (equivalently, QR with
  // column pivoting on A^T directly, without the SVD truncation of
  // Algorithm 2).  One factorization serves every r; the ablation bench
  // compares the two.  Requires the Gram-route constructor.
  std::vector<int> select_greedy(std::size_t r) const;

  // Full greedy pivot order (pivoted Cholesky of W = A A^T), computed once
  // and cached.  On the Gram route the retained Gram is used; otherwise the
  // caller-supplied `gram` backs the factorization — this is what lets the
  // prefix-sweep evaluator run on SVD-route selectors too.  Only the first
  // rank() entries are meaningful pivots; the tail lists the never-chosen
  // indices.
  const std::vector<int>& greedy_order(const linalg::Matrix& gram) const;

 private:
  void ensure_captured(std::size_t k) const;

  mutable linalg::SvdResult svd_;  // captured leading part on the lazy route
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t rank_ = 0;
  linalg::Matrix gram_;  // retained only on the Gram route
  bool lazy_ = false;
  bool have_gram_ = false;
  mutable std::vector<int> greedy_order_;  // pivoted-Cholesky order, lazy
  // Memoized select(r) results (selector is logically const; probes repeat).
  mutable std::map<std::size_t, std::vector<int>> select_memo_;
};

// Picks the cheaper factorization automatically: the Gram route for wide A
// (cols >= rows), the direct SVD otherwise.
SubsetSelector make_subset_selector(const linalg::Matrix& a,
                                    const linalg::Matrix& gram);

}  // namespace repro::core
