#include "core/baseline_rcp.h"

#include <cmath>
#include <stdexcept>

namespace repro::core {

RcpResult select_representative_critical_path(
    const variation::VariationModel& model,
    const variation::SpatialModel& spatial, const timing::SstaResult& ssta) {
  const std::size_t n = model.num_paths();
  if (n == 0) {
    throw std::invalid_argument("select_representative_critical_path: empty");
  }
  const std::size_t num_regions = spatial.num_regions();
  const linalg::Vector& c = ssta.circuit_delay.coeffs;  // global basis
  if (c.size() < 2 * num_regions) {
    throw std::invalid_argument(
        "select_representative_critical_path: ssta basis mismatch");
  }
  const double chip_var = ssta.circuit_delay.variance();
  const double chip_sigma = std::sqrt(chip_var);

  RcpResult out;
  out.chip_mean = ssta.circuit_delay.mean;
  out.chip_sigma = chip_sigma;
  out.all_correlations.assign(n, 0.0);

  const std::size_t rc = model.covered_regions();
  double best_cov = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    // Covariance of path p with the circuit delay: the path's sensitivity
    // row lives in the covered-parameter basis; map each slot to its global
    // SSTA index ([Leff regions | Vt regions | per-gate random]).
    const auto row = model.a().row(p);
    double cov = 0.0;
    double var_p = 0.0;
    for (std::size_t k = 0; k < rc; ++k) {
      const std::size_t region = model.region_slots()[k];
      cov += row[k] * c[region];
      cov += row[rc + k] * c[num_regions + region];
      var_p += row[k] * row[k] + row[rc + k] * row[rc + k];
    }
    for (std::size_t k = 0; k < model.covered_gates(); ++k) {
      const auto gate = static_cast<std::size_t>(model.gate_slots()[k]);
      cov += row[2 * rc + k] * c[2 * num_regions + gate];
      var_p += row[2 * rc + k] * row[2 * rc + k];
    }
    const double sigma_p = std::sqrt(var_p);
    const double corr =
        (sigma_p > 0.0 && chip_sigma > 0.0) ? cov / (sigma_p * chip_sigma)
                                            : 0.0;
    out.all_correlations[p] = corr;
    if (out.path_index < 0 || corr > out.correlation) {
      out.path_index = static_cast<int>(p);
      out.correlation = corr;
      best_cov = cov;
    }
  }

  // MMSE line chip ~ slope * d_path + intercept for the chosen path.
  const auto pi = static_cast<std::size_t>(out.path_index);
  const double var_best = model.path_sigma(pi) * model.path_sigma(pi);
  out.slope = var_best > 0.0 ? best_cov / var_best : 0.0;
  out.intercept = out.chip_mean - out.slope * model.path_mu(pi);
  return out;
}

}  // namespace repro::core
