// End-to-end experiment pipeline (paper Section 6 configuration):
//
//   benchmark name -> synthetic ISCAS'89-scale netlist -> placement ->
//   timing graph -> nominal STA (Tcons) -> k-worst candidate paths ->
//   circuit-yield Monte Carlo -> statistical target-path extraction
//   (yield-loss > factor * (1 - Y), after [Xie ASPDAC'09]) ->
//   segment decomposition -> variation model (A, Sigma, G, mu).
//
// Everything downstream (Tables 1-2, Figure 2, guard-band analysis, the
// ablations) consumes an Experiment built here, so all experiments share
// one deterministic, documented configuration path.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "circuit/generator.h"
#include "circuit/netlist.h"
#include "timing/path_enum.h"
#include "timing/segments.h"
#include "timing/sta.h"
#include "timing/timing_graph.h"
#include "variation/spatial_model.h"
#include "variation/variation_model.h"

namespace repro::core {

struct ExperimentConfig {
  std::string benchmark = "s1423";
  // 0 = auto: 3 levels (21 regions) for small circuits, 5 (341) for large,
  // matching the paper's "3-level model ... for larger ones 5-level".
  int hierarchy_levels = 0;
  double tcons_factor = 1.0;       // Tcons = factor * nominal circuit delay
  double yield_loss_factor = 0.01; // extract paths with q_p > f * (1 - Y)
  std::size_t max_target_paths = 2000;
  std::size_t max_candidates = 20000;
  // At most this fraction of the target budget goes to per-gate coverage
  // paths (breadth); the rest is filled endpoint-round-robin (depth).  The
  // paper's pools are strongly overlapping (s38417: 3507 paths over 1386
  // gates); an uncapped coverage share would triple the parameter count.
  double max_coverage_fraction = 0.25;
  std::size_t yield_mc_samples = 2000;
  double random_scale = 1.0;       // Figure 2(b): 3.0
  double enum_sigma_weight = 3.0;
  // Emulate the paper's min-area synthesis (area recovery toward the slack
  // wall) so that many cones are near-critical, as in real synthesized
  // netlists.  See timing/sizing.h.
  bool emulate_synthesis = true;
  std::uint64_t seed = 0;          // 0 = derive from benchmark name
};

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config);

  const ExperimentConfig& config() const { return config_; }
  const circuit::Netlist& netlist() const { return netlist_; }
  const timing::TimingGraph& graph() const { return *graph_; }
  const variation::SpatialModel& spatial() const { return *spatial_; }
  const variation::VariationModel& model() const { return *model_; }
  const std::vector<timing::Path>& target_paths() const { return targets_; }
  const timing::SegmentDecomposition& segments() const { return segments_; }

  double nominal_delay_ps() const { return nominal_delay_; }
  double t_cons_ps() const { return t_cons_; }
  double circuit_yield() const { return yield_; }
  std::size_t candidates_enumerated() const { return candidates_; }

  // Table columns: |G|, |R| (total), |G_C|, |R_C| (covered).
  std::size_t total_gates() const;
  std::size_t total_regions() const { return spatial_->num_regions(); }
  std::size_t covered_gates() const { return model_->covered_gates(); }
  std::size_t covered_regions() const { return model_->covered_regions(); }

 private:
  ExperimentConfig config_;
  circuit::GateLibrary library_;
  circuit::Netlist netlist_;
  std::unique_ptr<timing::TimingGraph> graph_;
  std::unique_ptr<variation::SpatialModel> spatial_;
  double nominal_delay_ = 0.0;
  double t_cons_ = 0.0;
  double yield_ = 0.0;
  std::size_t candidates_ = 0;
  std::vector<timing::Path> targets_;
  timing::SegmentDecomposition segments_;
  std::unique_ptr<variation::VariationModel> model_;
};

// Scale-aware defaults: REPRO_FAST shrinks pools ~4x, REPRO_FULL lifts the
// caps to (beyond) paper scale.  See util::repro_scale_mode().
ExperimentConfig default_experiment_config(const std::string& benchmark);
std::size_t default_mc_samples();

// Builds one Experiment per config concurrently through the shared
// util::ThreadPool (per-circuit sweep fan-out for the table/ablation
// drivers); results come back in input order and each build is internally
// deterministic, so the output is independent of the thread count.  The
// first construction failure is rethrown after all builds finish.
std::vector<std::unique_ptr<Experiment>> build_experiments(
    const std::vector<ExperimentConfig>& configs);

// Circuit timing yield P(circuit delay <= t_cons) by sampling correlated
// gate delays and running a forward arrival pass per sample (exact over all
// paths, not just enumerated candidates).  Parallel over sample chunks with
// one deterministic RNG stream per sample: the returned yield is
// bit-identical for any thread count.
double estimate_circuit_yield(const timing::TimingGraph& graph,
                              const variation::SpatialModel& spatial,
                              double t_cons, std::size_t samples,
                              std::uint64_t seed, double random_scale = 1.0);

}  // namespace repro::core
