#include "core/error_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "linalg/trsm.h"
#include "util/contracts.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace repro::core {
namespace {

// Paths per reduction chunk.  Each chunk owns a disjoint slice of the output
// vectors plus one max slot; slots are combined in chunk order after the
// join, so results are bit-identical for any thread count (the monte_carlo
// reduction pattern).
constexpr std::size_t kChunk = 512;

// Validates rep/order indices against an n-path Gram and returns the
// is-member mask.  Shared by the single-selection and sweep entry points.
std::vector<char> member_mask(std::size_t n, const std::vector<int>& rep,
                              const char* what) {
  std::vector<char> mask(n, 0);
  for (int i : rep) {
    if (i < 0 || static_cast<std::size_t>(i) >= n) {
      throw std::out_of_range(std::string(what) + ": rep index");
    }
    // A duplicate representative makes S = W[rep, rep] exactly singular;
    // the regularized Cholesky would absorb that silently and return wrong
    // per-path sigmas, so reject it up front.
    if (mask[static_cast<std::size_t>(i)]) {
      throw std::invalid_argument(std::string(what) +
                                  ": duplicate representative index " +
                                  std::to_string(i));
    }
    mask[static_cast<std::size_t>(i)] = 1;
  }
  return mask;
}

}  // namespace

SelectionErrors selection_errors_from_gram(const linalg::Matrix& gram,
                                           const std::vector<int>& rep,
                                           double t_cons, double kappa) {
  REPRO_CHECK_DIM(gram.rows(), gram.cols(),
                  "selection_errors_from_gram: square Gram matrix");
  if (t_cons <= 0.0) throw std::invalid_argument("selection_errors: t_cons");
  const util::telemetry::Span span("core.error_model");
  const std::size_t n = gram.rows();
  SelectionErrors out;
  const std::vector<char> is_rep = member_mask(n, rep, "selection_errors");
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_rep[i]) out.remaining.push_back(static_cast<int>(i));
  }

  // S = W[rep, rep]; factor once.
  const std::size_t r = rep.size();
  linalg::Matrix s(r, r);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      s(i, j) = gram(static_cast<std::size_t>(rep[i]),
                     static_cast<std::size_t>(rep[j]));
    }
  }
  const linalg::RegularizedChol rc = linalg::chol_factor_regularized(s);

  // Gather W[rep, remaining] once as an r x nrem panel and run one blocked
  // multi-RHS solve; the previous per-path loop allocated a fresh w/y pair
  // and re-streamed L for every remaining path.
  const std::size_t nrem = out.remaining.size();
  out.sigma.resize(nrem);
  out.per_path_eps.resize(nrem);
  linalg::Matrix panel(r, nrem);
  for (std::size_t j = 0; j < r; ++j) {
    double* pj = panel.row(j).data();
    const double* gj =
        gram.row(static_cast<std::size_t>(rep[j])).data();
    for (std::size_t k = 0; k < nrem; ++k) {
      pj[k] = gj[static_cast<std::size_t>(out.remaining[k])];
    }
  }
  if (r > 0 && nrem > 0) linalg::trsm_lower_inplace(rc.factors.l, panel);

  const std::size_t nchunks = (nrem + kChunk - 1) / kChunk;
  std::vector<double> part_max(nchunks, 0.0);
  const auto reduce_chunks = [&](std::size_t cb, std::size_t ce) {
    for (std::size_t ci = cb; ci < ce; ++ci) {
      const std::size_t ke = std::min(nrem, (ci + 1) * kChunk);
      double local_max = 0.0;
      for (std::size_t k = ci * kChunk; k < ke; ++k) {
        const auto i = static_cast<std::size_t>(out.remaining[k]);
        // Var = W_ii - w^T S^+ w = W_ii - ||L^{-1} w||^2; the solved panel
        // column holds L^{-1} w.  Subtract in j order — the same
        // floating-point sequence as the per-vector reference.
        double var = gram(i, i);
        for (std::size_t j = 0; j < r; ++j) {
          const double v = panel(j, k);
          var -= v * v;
        }
        var = std::max(var, 0.0);
        out.sigma[k] = std::sqrt(var);
        const double wc = kappa * out.sigma[k];
        out.per_path_eps[k] = wc / t_cons;
        local_max = std::max(local_max, wc);
      }
      part_max[ci] = local_max;
    }
  };
  if (util::thread_count() <= 1 || nchunks <= 1) {
    reduce_chunks(0, nchunks);
  } else {
    util::parallel_for(0, nchunks, 1, reduce_chunks);
  }
  for (std::size_t ci = 0; ci < nchunks; ++ci) {
    out.max_wc = std::max(out.max_wc, part_max[ci]);
  }
  out.eps_r = out.max_wc / t_cons;
  // One panel allocation per call (the bench asserts allocs/call == 1);
  // counted after the parallel region per the parallel-telemetry lint.
  util::telemetry::count("core.error_model.calls");
  util::telemetry::count("core.error_model.panel_allocs");
  return out;
}

SelectionErrorSweep selection_error_sweep(const linalg::Matrix& gram,
                                          const std::vector<int>& order,
                                          double t_cons, double kappa,
                                          std::size_t max_r) {
  REPRO_CHECK_DIM(gram.rows(), gram.cols(),
                  "selection_error_sweep: square Gram matrix");
  if (gram.rows() != gram.cols()) {
    throw std::invalid_argument("selection_error_sweep: Gram " +
                                gram.shape_string() + " not square");
  }
  if (t_cons <= 0.0) {
    throw std::invalid_argument("selection_error_sweep: t_cons");
  }
  const std::size_t n = gram.rows();
  member_mask(n, order, "selection_error_sweep");  // validate, mask unused
  const std::size_t steps =
      (max_r == 0) ? order.size() : std::min(order.size(), max_r);

  const util::telemetry::Span span("core.error_model.sweep");
  SelectionErrorSweep out;
  out.steps = steps;
  out.max_wc.resize(steps);
  out.eps_r.resize(steps);
  if (steps == 0) return out;

  // Left-looking Cholesky along the fixed order: d holds the running
  // Schur-complement diagonal (the per-path residual variances), lfac row i
  // holds path i's elimination coefficients.  Pivots whose residual diagonal
  // has fallen below the rank floor (same floor as pivoted_cholesky's
  // default stop) contribute no elimination column — the selection gains a
  // numerically redundant representative, which changes no variance.
  linalg::Vector d(n);
  double maxdiag0 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = gram(i, i);
    maxdiag0 = std::max(maxdiag0, std::abs(d[i]));
  }
  const double floor_tol = maxdiag0 * static_cast<double>(n) *
                           std::numeric_limits<double>::epsilon() * 16.0;
  linalg::Matrix lfac(n, steps);
  std::vector<char> in_prefix(n, 0);
  const std::size_t nchunks = (n + kChunk - 1) / kChunk;
  std::vector<double> part_max(nchunks);

  for (std::size_t k = 0; k < steps; ++k) {
    const auto p = static_cast<std::size_t>(order[k]);
    const bool extend = d[p] > floor_tol;
    const double ljj = extend ? std::sqrt(d[p]) : 0.0;
    in_prefix[p] = 1;
    // One fused pass per chunk: elimination-column entry, diagonal
    // downdate, and the local residual max.  Each path's arithmetic is
    // independent and each chunk writes disjoint state plus its own max
    // slot, so the sweep is bit-identical for any thread count.
    const double* lp = lfac.row(p).data();
    const auto step_chunks = [&](std::size_t cb, std::size_t ce) {
      for (std::size_t ci = cb; ci < ce; ++ci) {
        const std::size_t ie = std::min(n, (ci + 1) * kChunk);
        double local_max = 0.0;
        for (std::size_t i = ci * kChunk; i < ie; ++i) {
          if (extend) {
            const double* li = lfac.row(i).data();
            double v = gram(i, p);
            for (std::size_t t = 0; t < k; ++t) v -= li[t] * lp[t];
            const double lik = v / ljj;
            lfac(i, k) = lik;
            d[i] -= lik * lik;
          }
          if (!in_prefix[i]) {
            local_max = std::max(local_max, std::max(d[i], 0.0));
          }
        }
        part_max[ci] = local_max;
      }
    };
    if (util::thread_count() <= 1 || nchunks <= 1 || n * (k + 1) < 65536) {
      step_chunks(0, nchunks);
    } else {
      util::parallel_for(0, nchunks, 1, step_chunks);
    }
    double var_max = 0.0;
    for (std::size_t ci = 0; ci < nchunks; ++ci) {
      var_max = std::max(var_max, part_max[ci]);
    }
    out.max_wc[k] = kappa * std::sqrt(var_max);
    out.eps_r[k] = out.max_wc[k] / t_cons;
  }
  util::telemetry::count("core.error_model.sweep.calls");
  util::telemetry::count("core.error_model.sweep.steps", steps);
  return out;
}

// Thin wrapper: t_cons and the rep indices are validated unconditionally by
// selection_errors_from_gram, which also states the Gram-shape contract;
// a contract here would duplicate that validation.
// repro-lint: allow(contracts)
SelectionErrors selection_errors(const linalg::Matrix& a,
                                 const std::vector<int>& rep, double t_cons,
                                 double kappa) {
  return selection_errors_from_gram(linalg::gram(a), rep, t_cons, kappa);
}

double worst_case_gaussian(double mean, double sigma, double kappa) {
  return std::abs(mean) + kappa * sigma;
}

}  // namespace repro::core
