#include "core/error_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "util/contracts.h"
#include "util/telemetry.h"

namespace repro::core {

SelectionErrors selection_errors_from_gram(const linalg::Matrix& gram,
                                           const std::vector<int>& rep,
                                           double t_cons, double kappa) {
  REPRO_CHECK_DIM(gram.rows(), gram.cols(),
                  "selection_errors_from_gram: square Gram matrix");
  if (t_cons <= 0.0) throw std::invalid_argument("selection_errors: t_cons");
  const util::telemetry::Span span("core.error_model");
  const std::size_t n = gram.rows();
  SelectionErrors out;
  std::vector<char> is_rep(n, 0);
  for (int i : rep) {
    if (i < 0 || static_cast<std::size_t>(i) >= n) {
      throw std::out_of_range("selection_errors: rep index");
    }
    // A duplicate representative makes S = W[rep, rep] exactly singular;
    // the regularized Cholesky would absorb that silently and return wrong
    // per-path sigmas, so reject it up front.
    if (is_rep[static_cast<std::size_t>(i)]) {
      throw std::invalid_argument(
          "selection_errors: duplicate representative index " +
          std::to_string(i));
    }
    is_rep[static_cast<std::size_t>(i)] = 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_rep[i]) out.remaining.push_back(static_cast<int>(i));
  }

  // S = W[rep, rep]; factor once.
  const std::size_t r = rep.size();
  linalg::Matrix s(r, r);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      s(i, j) = gram(static_cast<std::size_t>(rep[i]),
                     static_cast<std::size_t>(rep[j]));
    }
  }
  const linalg::RegularizedChol rc = linalg::chol_factor_regularized(s);

  out.sigma.resize(out.remaining.size());
  out.per_path_eps.resize(out.remaining.size());
  linalg::Vector w(r);
  for (std::size_t k = 0; k < out.remaining.size(); ++k) {
    const auto i = static_cast<std::size_t>(out.remaining[k]);
    for (std::size_t j = 0; j < r; ++j) {
      w[j] = gram(i, static_cast<std::size_t>(rep[j]));
    }
    // Var = W_ii - w^T S^+ w via one forward solve: ||L^{-1} w||^2.
    const linalg::Vector y = linalg::chol_forward(rc.factors, w);
    double var = gram(i, i);
    for (double v : y) var -= v * v;
    var = std::max(var, 0.0);
    out.sigma[k] = std::sqrt(var);
    const double wc = kappa * out.sigma[k];
    out.per_path_eps[k] = wc / t_cons;
    out.max_wc = std::max(out.max_wc, wc);
  }
  out.eps_r = out.max_wc / t_cons;
  return out;
}

// Thin wrapper: t_cons and the rep indices are validated unconditionally by
// selection_errors_from_gram, which also states the Gram-shape contract;
// a contract here would duplicate that validation.
// repro-lint: allow(contracts)
SelectionErrors selection_errors(const linalg::Matrix& a,
                                 const std::vector<int>& rep, double t_cons,
                                 double kappa) {
  return selection_errors_from_gram(linalg::gram(a), rep, t_cons, kappa);
}

double worst_case_gaussian(double mean, double sigma, double kappa) {
  return std::abs(mean) + kappa * sigma;
}

}  // namespace repro::core
