// Algorithm 1: representative path selection under an error tolerance.
//
//   1. r = rank(A); select r paths exactly (eps_r = 0).
//   2. While eps_r <= eps: r -= 1; select r paths (Algorithm 2); recompute
//      eps_r.  The answer is the smallest r whose error stays within eps.
//
// Three drivers are provided: the paper-verbatim linear decrement, a
// bisection driver exploiting that eps_r is (numerically) non-increasing in
// r (O(log rank) candidates instead of O(rank) — the default for large
// instances), and a greedy prefix sweep that swaps Algorithm 2's QRCP
// selection for the nested pivoted-Cholesky order, which makes every
// candidate r a prefix of one fixed order and prices ALL of them in a
// single O(n^2 rank) pass (see selection_error_sweep).  All share one SVD
// and one Gram matrix.
#pragma once

#include <cstddef>
#include <vector>

#include "core/error_model.h"
#include "core/subset_select.h"
#include "linalg/matrix.h"

namespace repro::core {

enum class SelectionStrategy {
  kLinearDecrement,  // paper Algorithm 1, verbatim
  kBisection,        // same result up to error-monotonicity noise, much faster
  kGreedySweep,      // nested greedy order + one prefix sweep over all r;
                     // representatives may differ from the QRCP route (it is
                     // the select_greedy heuristic made end-to-end cheap)
};

struct PathSelectionOptions {
  double epsilon = 0.05;  // tolerance, fraction of Tcons
  double kappa = 3.0;     // worst-case multiplier: WC(y) = kappa * std(y)
  SelectionStrategy strategy = SelectionStrategy::kBisection;
  std::size_t min_r = 1;
};

struct PathSelectionResult {
  std::vector<int> representatives;  // row indices into A (pivot order)
  std::size_t exact_rank = 0;        // rank(A) = exact-selection size
  double eps_r = 0.0;                // achieved worst-case error fraction
  SelectionErrors errors;            // per-remaining-path analytic errors
  std::size_t candidates_evaluated = 0;
};

// Selects representative paths from A (rows = target paths).  `gram` may be
// passed in when precomputed (A A^T); pass nullptr to compute internally.
PathSelectionResult select_representative_paths(
    const linalg::Matrix& a, double t_cons, const PathSelectionOptions& options,
    const linalg::Matrix* gram = nullptr);

// Same, reusing an existing SubsetSelector (shared SVD).
PathSelectionResult select_representative_paths(
    const SubsetSelector& selector, const linalg::Matrix& gram, double t_cons,
    const PathSelectionOptions& options);

}  // namespace repro::core
