// Analytic prediction-error model (paper Eqns (6)-(7)).
//
// With representatives P_r, the prediction error of remaining path i is
// Delta_i = omega_i . x, a zero-mean Gaussian, so its worst case is
// WC(Delta_i) = kappa * ||omega_i||, and the paper's selection error is
//
//   eps_r = max_i WC(Delta_i) / Tcons.
//
// The key computational identity used here: with the full path Gram matrix
// W = A A^T precomputed once,
//
//   Var(Delta_i) = W_ii - w_i^T S^+ w_i,   S = A_r A_r^T = W[r, r],
//
// so evaluating eps_r for a candidate r costs one Cholesky of S plus one
// blocked multi-RHS triangular solve over the gathered panel W[rep, :] — no
// matrix the size of A is touched, no per-path allocation, and the per-path
// variance reduction is a chunked deterministic parallel_for (bit-identical
// for any thread count).  Algorithm 1 evaluates dozens of candidate r
// values; this identity is what makes that loop fast at the paper's scale.
//
// For a FIXED nested selection order (the greedy pivoted-Cholesky route),
// selection_error_sweep goes further: it extends one Cholesky factor
// row-by-row along the order and reads every prefix's residual variances off
// the running Schur-complement diagonal, producing eps_r for ALL r in
// [1, rank] in a single O(n * rank^2) pass — the same total cost as
// evaluating just the single largest candidate the old way.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace repro::core {

struct SelectionErrors {
  std::vector<int> remaining;         // path indices not in the selection
  linalg::Vector sigma;               // per-remaining-path error sigma (ps)
  double max_wc = 0.0;                // max_i kappa * sigma_i (ps)
  double eps_r = 0.0;                 // max_wc / Tcons
  linalg::Vector per_path_eps;        // kappa * sigma_i / Tcons
};

// `gram` is A A^T for the full target-path set.  `kappa` is the worst-case
// multiplier (WC(y) = kappa * std(y) for the zero-mean errors here).
SelectionErrors selection_errors_from_gram(const linalg::Matrix& gram,
                                           const std::vector<int>& rep,
                                           double t_cons, double kappa);

// Convenience for tests / small cases: computes the Gram internally.
SelectionErrors selection_errors(const linalg::Matrix& a,
                                 const std::vector<int>& rep, double t_cons,
                                 double kappa);

// Selection errors for every prefix of a fixed selection order.
// max_wc[k] / eps_r[k] describe the selection {order[0], ..., order[k]},
// i.e. r = k + 1 representatives.
struct SelectionErrorSweep {
  std::vector<double> max_wc;  // per-prefix max_i kappa * sigma_i (ps)
  std::vector<double> eps_r;   // per-prefix max_wc / Tcons
  std::size_t steps = 0;       // prefixes evaluated (== eps_r.size())
};

// Prefix-sweep evaluator: one left-looking Cholesky pass of `gram` along the
// fixed pivot `order` (no re-pivoting).  After k elimination steps the
// Schur-complement diagonal entry d_i is exactly Var(Delta_i) for the
// k-representative selection, so each step costs O(n * k) and the whole
// sweep costs O(n * steps^2) — versus O(steps * n * r^2) for re-factoring
// every prefix from scratch.  A step whose pivot's residual diagonal falls
// below the rank floor (gram numerically rank-deficient along the order)
// adds no elimination column; the prefix still gets its error recorded.
// `max_r` truncates the sweep (0 = all of `order`).  Throws
// std::invalid_argument / std::out_of_range on the same conditions as
// selection_errors_from_gram.
SelectionErrorSweep selection_error_sweep(const linalg::Matrix& gram,
                                          const std::vector<int>& order,
                                          double t_cons, double kappa,
                                          std::size_t max_r = 0);

// Worst-case value of a Gaussian(mean, sigma): |mean| + kappa * sigma.  Used
// wherever the error has a nonzero mean (hybrid segment modeling).
double worst_case_gaussian(double mean, double sigma, double kappa);

}  // namespace repro::core
