// Analytic prediction-error model (paper Eqns (6)-(7)).
//
// With representatives P_r, the prediction error of remaining path i is
// Delta_i = omega_i . x, a zero-mean Gaussian, so its worst case is
// WC(Delta_i) = kappa * ||omega_i||, and the paper's selection error is
//
//   eps_r = max_i WC(Delta_i) / Tcons.
//
// The key computational identity used here: with the full path Gram matrix
// W = A A^T precomputed once,
//
//   Var(Delta_i) = W_ii - w_i^T S^+ w_i,   S = A_r A_r^T = W[r, r],
//
// so evaluating eps_r for a candidate r costs one Cholesky of S plus one
// triangular solve per remaining path — no matrix the size of A is touched.
// Algorithm 1 evaluates dozens of candidate r values; this identity is what
// makes that loop fast at the paper's scale.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace repro::core {

struct SelectionErrors {
  std::vector<int> remaining;         // path indices not in the selection
  linalg::Vector sigma;               // per-remaining-path error sigma (ps)
  double max_wc = 0.0;                // max_i kappa * sigma_i (ps)
  double eps_r = 0.0;                 // max_wc / Tcons
  linalg::Vector per_path_eps;        // kappa * sigma_i / Tcons
};

// `gram` is A A^T for the full target-path set.  `kappa` is the worst-case
// multiplier (WC(y) = kappa * std(y) for the zero-mean errors here).
SelectionErrors selection_errors_from_gram(const linalg::Matrix& gram,
                                           const std::vector<int>& rep,
                                           double t_cons, double kappa);

// Convenience for tests / small cases: computes the Gram internally.
SelectionErrors selection_errors(const linalg::Matrix& a,
                                 const std::vector<int>& rep, double t_cons,
                                 double kappa);

// Worst-case value of a Gaussian(mean, sigma): |mean| + kappa * sigma.  Used
// wherever the error has a nonzero mean (hybrid segment modeling).
double worst_case_gaussian(double mean, double sigma, double kappa);

}  // namespace repro::core
