#include "core/subset_select.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/qr_colpivot.h"
#include "linalg/randomized_eig.h"
#include "util/contracts.h"
#include "util/telemetry.h"

namespace repro::core {
namespace {

// Rank threshold on Gram eigenvalues: noise below dim * eps * lambda_max
// turns into spurious singular values of order sqrt(dim * eps) * sigma_max,
// so the singular-value threshold must sit above that level.
double gram_rank_rel_tol(std::size_t rows, std::size_t cols) {
  const double dim = static_cast<double>(std::max(rows, cols));
  return std::sqrt(dim * std::numeric_limits<double>::epsilon()) * 4.0;
}

}  // namespace

SubsetSelector::SubsetSelector(const linalg::Matrix& a)
    : svd_(linalg::svd(a)), rows_(a.rows()), cols_(a.cols()) {
  util::telemetry::count("core.select.svd_route");
  if (!svd_.converged) {
    throw std::runtime_error("SubsetSelector: SVD did not converge");
  }
  rank_ = linalg::svd_rank(svd_, a.rows(), a.cols());
}

SubsetSelector::SubsetSelector(linalg::SvdResult svd, std::size_t rows,
                               std::size_t cols)
    : svd_(std::move(svd)), rows_(rows), cols_(cols) {
  if (!svd_.converged) {
    throw std::runtime_error("SubsetSelector: SVD did not converge");
  }
  rank_ = linalg::svd_rank(svd_, rows, cols);
}

SubsetSelector::SubsetSelector(const linalg::Matrix& a,
                               const linalg::Matrix& gram)
    : rows_(a.rows()), cols_(a.cols()) {
  if (gram.rows() != a.rows() || gram.cols() != a.rows()) {
    throw std::invalid_argument("SubsetSelector: gram shape mismatch");
  }
  const util::telemetry::Span span("core.select.factorize");
  util::telemetry::count("core.select.gram_route");
  const std::size_t n = a.rows();
  svd_.converged = true;
  gram_ = gram;
  have_gram_ = true;
  if (n > 512) {
    // Lazy route: rank from pivoted Cholesky (O(n rank^2)); eigenpairs are
    // captured on demand by ensure_captured().
    const double tol = gram_rank_rel_tol(rows_, cols_);
    const linalg::PivotedChol pc =
        linalg::pivoted_cholesky(gram_, tol * tol);  // eigenvalue-scale tol
    rank_ = pc.rank;
    greedy_order_ = pc.perm;
    lazy_ = true;
    return;
  }
  const linalg::EigenSymResult eig = linalg::eigen_sym(gram);
  if (!eig.converged) {
    throw std::runtime_error("SubsetSelector: eigendecomposition failed");
  }
  svd_.s.resize(n);
  svd_.u = linalg::Matrix(n, n);
  // Eigenvalues come ascending; singular values must be non-increasing.
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t src = n - 1 - k;
    svd_.s[k] = std::sqrt(std::max(eig.values[src], 0.0));
    for (std::size_t i = 0; i < n; ++i) {
      svd_.u(i, k) = eig.vectors(i, src);
    }
  }
  rank_ = linalg::svd_rank(svd_, a.rows(), a.cols(),
                           gram_rank_rel_tol(rows_, cols_));
}

void SubsetSelector::ensure_captured(std::size_t k) const {
  if (!lazy_ || svd_.s.size() >= k) return;
  const util::telemetry::Span span("core.select.eig_capture");
  linalg::RandomizedEigOptions opt;
  opt.initial_rank = std::min(rows_, std::max(k, 2 * svd_.s.size()));
  opt.adaptive = false;  // capture exactly what was asked (plus oversample)
  linalg::RandomizedEigResult eig = linalg::randomized_eig_psd(gram_, opt);
  svd_.s.resize(eig.values.size());
  for (std::size_t i = 0; i < eig.values.size(); ++i) {
    svd_.s[i] = std::sqrt(eig.values[i]);
  }
  svd_.u = std::move(eig.vectors);
}

const linalg::Vector& SubsetSelector::singular_values() const {
  // The spectrum beyond rank() is numerically zero, so capturing `rank_`
  // values yields the complete energy profile.
  ensure_captured(rank_);
  return svd_.s;
}

SubsetSelector make_subset_selector(const linalg::Matrix& a,
                                    const linalg::Matrix& gram) {
  REPRO_CHECK_DIM(gram.rows(), a.rows(),
                  "make_subset_selector: Gram order vs path count");
  REPRO_CHECK_DIM(gram.rows(), gram.cols(),
                  "make_subset_selector: Gram matrix must be square");
  return (a.cols() >= a.rows()) ? SubsetSelector(a, gram) : SubsetSelector(a);
}

std::vector<int> SubsetSelector::select(std::size_t r) const {
  if (r == 0 || r > rank_ || r > rows_) {
    throw std::invalid_argument("SubsetSelector::select: bad r");
  }
  // QRCP on U_r^T is not nested across r (the row space truncation changes
  // with r), but it IS deterministic per r — so bisection probes that
  // revisit a candidate size hit the memo instead of re-pivoting.
  const auto hit = select_memo_.find(r);
  if (hit != select_memo_.end()) return hit->second;
  ensure_captured(r);
  // U_r^T is r x n; column pivoting needs only the first r pivot steps.
  linalg::Matrix urt(r, rows_);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < rows_; ++j) urt(i, j) = svd_.u(j, i);
  }
  const linalg::QrcpResult f = linalg::qr_colpivot(std::move(urt), r);
  std::vector<int> rows(f.perm.begin(),
                        f.perm.begin() + static_cast<std::ptrdiff_t>(r));
  return select_memo_.emplace(r, std::move(rows)).first->second;
}

std::vector<int> SubsetSelector::select_greedy(std::size_t r) const {
  if (!have_gram_) {
    throw std::logic_error(
        "SubsetSelector::select_greedy needs the Gram-route constructor");
  }
  if (r == 0 || r > rank_ || r > rows_) {
    throw std::invalid_argument("SubsetSelector::select_greedy: bad r");
  }
  const std::vector<int>& order = greedy_order(gram_);
  return {order.begin(), order.begin() + static_cast<std::ptrdiff_t>(r)};
}

const std::vector<int>& SubsetSelector::greedy_order(
    const linalg::Matrix& gram) const {
  REPRO_CHECK_DIM(gram.rows(), gram.cols(),
                  "SubsetSelector::greedy_order: square Gram");
  if (greedy_order_.empty()) {
    // The Gram-route constructor retains its own copy; SVD-route selectors
    // factor the caller-supplied Gram (same W = A A^T, supplied externally).
    const linalg::Matrix& w = have_gram_ ? gram_ : gram;
    if (w.rows() != rows_ || w.cols() != rows_) {
      throw std::invalid_argument(
          "SubsetSelector::greedy_order: Gram order vs path count");
    }
    const double tol = gram_rank_rel_tol(rows_, cols_);
    greedy_order_ = linalg::pivoted_cholesky(w, tol * tol).perm;
  }
  return greedy_order_;
}

}  // namespace repro::core
