#include "core/sharded_selection.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/clustering.h"
#include "core/subset_select.h"
#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "linalg/trsm.h"
#include "util/contracts.h"
#include "util/stopwatch.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace repro::core {
namespace {

double policy_weight(const PathPanelSource& source,
                     const ShardedSelectionOptions& options, int id) {
  return options.policy == ShardPolicy::kGateBalanced ? source.path_weight(id)
                                                      : 1.0;
}

std::size_t desired_shards(std::size_t pool, std::size_t explicit_shards,
                           std::size_t target) {
  std::size_t s = explicit_shards;
  if (s == 0) s = (pool + target - 1) / std::max<std::size_t>(target, 1);
  return std::min(std::max<std::size_t>(s, 1), pool);
}

// Materializes the panel for `ids` under a budget lease and returns it.
linalg::Matrix leased_panel(const PathPanelSource& source,
                            std::span<const int> ids, PanelBudget* budget,
                            PanelLease& lease) {
  lease = PanelLease(budget, panel_bytes(ids.size(), source.params()));
  linalg::Matrix panel(ids.size(), source.params());
  source.fill_rows(ids, panel);
  return panel;
}

struct ShardSelection {
  std::vector<int> representatives;  // global ids
  ShardStats stats;
};

// Algorithm 1 on one shard: shard-local panel + SYRK Gram, greedy-sweep
// driver at the tightened tolerance, representatives mapped back to global
// ids.  Runs inside the shard-level parallel_for — no telemetry calls here;
// stats are flushed by the orchestrator after the parallel region.
ShardSelection select_one_shard(const PathPanelSource& source,
                                const std::vector<int>& members, double weight,
                                double t_cons,
                                const PathSelectionOptions& shard_opts,
                                PanelBudget* budget) {
  util::Stopwatch timer;
  ShardSelection out;
  out.stats.paths = members.size();
  out.stats.weight = weight;
  if (members.size() == 1) {
    out.representatives = members;
    out.stats.representatives = 1;
    out.stats.seconds = timer.seconds();
    return out;
  }
  PanelLease panel_lease;
  const linalg::Matrix a_s = leased_panel(source, members, budget, panel_lease);
  PanelLease gram_lease(budget, panel_bytes(a_s.rows(), a_s.rows()));
  const linalg::Matrix w = linalg::gram(a_s);
  // Direct Gram-route construction: shard panels are tall (paths >> params),
  // so make_subset_selector would pick the SVD route; the greedy-sweep
  // driver only needs the pivoted-Cholesky machinery the Gram route carries.
  const SubsetSelector selector(a_s, w);
  const PathSelectionResult sel =
      select_representative_paths(selector, w, t_cons, shard_opts);
  out.representatives.reserve(sel.representatives.size());
  for (int local : sel.representatives) {
    out.representatives.push_back(members[static_cast<std::size_t>(local)]);
  }
  std::sort(out.representatives.begin(), out.representatives.end());
  out.stats.representatives = out.representatives.size();
  out.stats.seconds = timer.seconds();
  return out;
}

struct VerifyOutcome {
  double eps_r = 0.0;
  std::vector<std::pair<double, int>> violators;  // (eps, global id)
  std::size_t blocks = 0;
};

// Streamed global verification: prices the current selection against every
// path of the pool without materializing more than one block panel at a
// time.  Var(Delta_i) = ||a_i||^2 - ||L^{-1} A_R a_i||^2 with S = A_R A_R^T
// = L L^T; per block that is one panel fill, one cross GEMM and one
// multi-RHS trsm.  Serial over blocks — the kernels inside are
// thread-count-invariant, so the outcome is too.
VerifyOutcome verify_selection(const PathPanelSource& source,
                               const std::vector<int>& reps, double t_cons,
                               double kappa, double epsilon,
                               std::size_t block_rows, PanelBudget* budget) {
  const std::size_t n = source.paths();
  const std::size_t m = source.params();
  const std::size_t r = reps.size();

  PanelLease rep_lease;
  const linalg::Matrix a_r = leased_panel(source, reps, budget, rep_lease);
  const linalg::RegularizedChol chol = [&] {
    PanelLease gram_lease(budget, panel_bytes(r, r));
    return linalg::chol_factor_regularized(linalg::gram(a_r));
  }();
  if (!chol.factors.ok) {
    throw std::runtime_error(
        "select_paths_sharded: representative Gram not factorizable");
  }

  VerifyOutcome out;
  const std::size_t block = std::max<std::size_t>(block_rows, 1);
  std::vector<int> ids(std::min(block, n));
  linalg::Matrix panel(ids.size(), m);
  PanelLease block_lease(budget, panel_bytes(ids.size(), m));
  for (std::size_t start = 0; start < n; start += block) {
    const std::size_t stop = std::min(n, start + block);
    const std::size_t b = stop - start;
    ids.resize(b);
    for (std::size_t j = 0; j < b; ++j) {
      ids[j] = static_cast<int>(start + j);
    }
    if (panel.rows() != b) panel = linalg::Matrix(b, m);
    source.fill_rows(ids, panel);
    // cross(i, j) = <rep row i, pool row start+j>; after the solve, column j
    // holds L^{-1} w_j.
    PanelLease cross_lease(budget, panel_bytes(r, b));
    linalg::Matrix cross = linalg::multiply_bt(a_r, panel);
    linalg::trsm_lower_inplace(chol.factors.l, cross);
    for (std::size_t j = 0; j < b; ++j) {
      const int id = ids[j];
      if (std::binary_search(reps.begin(), reps.end(), id)) continue;
      double var = linalg::dot(panel.row(j), panel.row(j));
      for (std::size_t i = 0; i < r; ++i) {
        var -= cross(i, j) * cross(i, j);
      }
      const double eps = kappa * std::sqrt(std::max(var, 0.0)) / t_cons;
      out.eps_r = std::max(out.eps_r, eps);
      if (eps > epsilon) out.violators.emplace_back(eps, id);
    }
    ++out.blocks;
  }
  return out;
}

}  // namespace
// The panel-source parameters carry their own fill contracts; pool and
// option validation below is unconditional in every build.
// repro-lint: allow(contracts)
ShardPlan plan_shards(const PathPanelSource& source,
                      std::span<const int> pool_ids,
                      const ShardedSelectionOptions& options,
                      PanelBudget* budget) {
  const std::size_t n = pool_ids.size();
  if (n == 0) throw std::invalid_argument("plan_shards: empty pool");
  const std::size_t m = source.params();
  const std::size_t shards =
      desired_shards(n, options.num_shards, options.target_shard_paths);

  ShardPlan plan;
  if (shards <= 1) {
    plan.members.emplace_back(pool_ids.begin(), pool_ids.end());
    plan.weight.push_back(0.0);
    for (int id : pool_ids) {
      plan.weight[0] += policy_weight(source, options, id);
    }
    plan.clusters_used = 1;
    return plan;
  }

  // 1. Deterministic evenly-spaced sample of the pool; spherical k-means on
  //    the sample discovers the direction structure without touching every
  //    row.
  const std::size_t sample =
      std::min(n, std::max<std::size_t>(options.sample_paths, shards));
  std::vector<int> sample_ids(sample);
  for (std::size_t j = 0; j < sample; ++j) {
    sample_ids[j] = pool_ids[(j * n) / sample];
  }
  linalg::Matrix centers;
  {
    PanelLease lease;
    const linalg::Matrix sample_panel =
        leased_panel(source, sample_ids, budget, lease);
    const std::size_t k = std::min(sample, shards);
    const std::vector<int> assign = cluster_rows_spherical(
        sample_panel, k, options.kmeans_iterations, options.seed);
    centers = spherical_centers(sample_panel, assign, k);
  }
  plan.clusters_used = centers.rows();

  // 2. Streamed assignment of the full pool to the nearest center (cosine;
  //    centers are unit length, so argmax over plain dot products — the row
  //    norm is a positive per-row constant).  Ties break to the lowest
  //    center index; zero rows land on center 0.  Serial over blocks.
  std::vector<std::vector<int>> cluster_members(centers.rows());
  std::vector<std::vector<double>> cluster_weights(centers.rows());
  {
    const std::size_t block = std::max<std::size_t>(options.block_rows, 1);
    std::vector<int> ids(std::min(block, n));
    linalg::Matrix panel(ids.size(), m);
    PanelLease block_lease(budget, panel_bytes(ids.size(), m));
    for (std::size_t start = 0; start < n; start += block) {
      const std::size_t stop = std::min(n, start + block);
      const std::size_t b = stop - start;
      ids.resize(b);
      for (std::size_t j = 0; j < b; ++j) ids[j] = pool_ids[start + j];
      if (panel.rows() != b) panel = linalg::Matrix(b, m);
      source.fill_rows(ids, panel);
      PanelLease sims_lease(budget, panel_bytes(b, centers.rows()));
      const linalg::Matrix sims = linalg::multiply_bt(panel, centers);
      for (std::size_t j = 0; j < b; ++j) {
        std::size_t arg = 0;
        double best = sims(j, 0);
        for (std::size_t c = 1; c < centers.rows(); ++c) {
          if (sims(j, c) > best) {
            best = sims(j, c);
            arg = c;
          }
        }
        cluster_members[arg].push_back(ids[j]);
        cluster_weights[arg].push_back(
            policy_weight(source, options, ids[j]));
      }
    }
  }

  // 3. Split oversized clusters into consecutive runs near the target size
  //    (cluster members are ascending, so runs stay direction-coherent),
  //    then pack runs onto the least-loaded shard by policy weight.
  struct Chunk {
    std::vector<int> ids;
    double weight = 0.0;
  };
  std::vector<Chunk> chunks;
  const std::size_t target = std::max<std::size_t>(1, (n + shards - 1) / shards);
  for (std::size_t c = 0; c < cluster_members.size(); ++c) {
    const std::vector<int>& ids = cluster_members[c];
    if (ids.empty()) continue;
    const std::size_t pieces = (ids.size() + target - 1) / target;
    const std::size_t per = (ids.size() + pieces - 1) / pieces;
    for (std::size_t start = 0; start < ids.size(); start += per) {
      const std::size_t stop = std::min(ids.size(), start + per);
      Chunk chunk;
      chunk.ids.assign(ids.begin() + static_cast<std::ptrdiff_t>(start),
                       ids.begin() + static_cast<std::ptrdiff_t>(stop));
      for (std::size_t j = start; j < stop; ++j) {
        chunk.weight += cluster_weights[c][j];
      }
      chunks.push_back(std::move(chunk));
    }
  }
  // Heaviest-first greedy packing; all ties break on the first member id /
  // lowest shard index, so the plan is a deterministic function of its
  // inputs.
  std::sort(chunks.begin(), chunks.end(), [](const Chunk& a, const Chunk& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.ids.front() < b.ids.front();
  });
  const std::size_t bins = std::min(shards, chunks.size());
  plan.members.resize(bins);
  plan.weight.assign(bins, 0.0);
  for (Chunk& chunk : chunks) {
    std::size_t lightest = 0;
    for (std::size_t s = 1; s < bins; ++s) {
      if (plan.weight[s] < plan.weight[lightest]) lightest = s;
    }
    plan.weight[lightest] += chunk.weight;
    plan.members[lightest].insert(plan.members[lightest].end(),
                                  chunk.ids.begin(), chunk.ids.end());
  }
  for (std::vector<int>& members : plan.members) {
    std::sort(members.begin(), members.end());
  }
  return plan;
}

// Pool and tolerance validation below is unconditional in every build; the
// matrix-shaped preconditions live on the panel source's fill contract.
// repro-lint: allow(contracts)
ShardedSelectionResult select_paths_sharded(
    const PathPanelSource& source, double t_cons,
    const ShardedSelectionOptions& options) {
  if (t_cons <= 0.0) {
    throw std::invalid_argument(
        "select_paths_sharded: t_cons must be positive");
  }
  const std::size_t n = source.paths();
  if (n == 0) throw std::invalid_argument("select_paths_sharded: empty pool");

  PanelBudget budget;
  ShardedSelectionResult result;
  result.shards = 1;

  PathSelectionOptions shard_opts = options.selection;
  shard_opts.strategy = SelectionStrategy::kGreedySweep;
  shard_opts.epsilon =
      options.selection.epsilon * std::min(options.merge_epsilon_scale, 1.0);

  std::vector<int> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = static_cast<int>(i);

  // PLAN + SELECT + recursive MERGE: shrink the pool level by level until it
  // fits the monolithic cap.
  std::size_t level = 0;
  while (true) {
    ShardedSelectionOptions level_opts = options;
    if (level > 0) level_opts.num_shards = 0;  // explicit count is level-0 only
    const std::size_t shards = desired_shards(
        pool.size(), level_opts.num_shards, level_opts.target_shard_paths);
    const bool must_shrink = pool.size() > options.merge_pool_cap;
    if (shards <= 1 || (!must_shrink && level > 0) ||
        (!must_shrink && options.num_shards <= 1)) {
      break;
    }

    ShardPlan plan;
    {
      util::telemetry::Span span("core.shard.plan");
      plan = plan_shards(source, pool, level_opts, &budget);
    }
    std::vector<ShardSelection> slots(plan.members.size());
    {
      util::telemetry::Span span("core.shard.select");
      // Memory cap: each in-flight shard leases its fill panel plus its
      // Gram, so unbounded parallelism makes the peak scale with the
      // worker count.  Process shards in waves sized so the widest
      // possible wave of working sets fits memory_cap_bytes (floor: one
      // shard).  Slots are indexed, so waves do not affect the result.
      std::size_t wave = plan.members.size();
      if (options.memory_cap_bytes > 0) {
        std::size_t max_ws = 1;
        for (const std::vector<int>& members : plan.members) {
          const std::size_t ws =
              panel_bytes(members.size(), source.params()) +
              panel_bytes(members.size(), members.size());
          max_ws = std::max(max_ws, ws);
        }
        wave = std::max<std::size_t>(1, options.memory_cap_bytes / max_ws);
      }
      for (std::size_t start = 0; start < plan.members.size(); start += wave) {
        const std::size_t stop =
            std::min(start + wave, plan.members.size());
        util::parallel_for(
            start, stop, 1, [&](std::size_t lo, std::size_t hi) {
              for (std::size_t s = lo; s < hi; ++s) {
                slots[s] = select_one_shard(source, plan.members[s],
                                            plan.weight[s], t_cons,
                                            shard_opts, &budget);
              }
            });
      }
    }
    if (level == 0) {
      result.shards = plan.members.size();
      result.shard_stats.reserve(slots.size());
      for (const ShardSelection& slot : slots) {
        result.shard_stats.push_back(slot.stats);
      }
    }
    std::vector<int> merged;
    for (const ShardSelection& slot : slots) {
      merged.insert(merged.end(), slot.representatives.begin(),
                    slot.representatives.end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    ++level;
    const bool shrank = merged.size() < pool.size();
    pool = std::move(merged);
    if (!shrank) break;  // selection saturated; recursing again cannot help
    if (pool.size() <= options.merge_pool_cap) break;
  }
  result.levels = level;
  result.union_paths = pool.size();

  // Final monolithic selection over the (now small) pool at full tolerance.
  {
    util::telemetry::Span span("core.shard.merge");
    if (pool.size() == 1) {
      result.representatives = pool;
    } else {
      PanelLease lease;
      const linalg::Matrix a_u = leased_panel(source, pool, &budget, lease);
      PanelLease gram_lease(&budget, panel_bytes(a_u.rows(), a_u.rows()));
      const linalg::Matrix w = linalg::gram(a_u);
      const SubsetSelector selector(a_u, w);
      const PathSelectionResult sel =
          select_representative_paths(selector, w, t_cons, options.selection);
      result.representatives.reserve(sel.representatives.size());
      for (int local : sel.representatives) {
        result.representatives.push_back(pool[static_cast<std::size_t>(local)]);
      }
      std::sort(result.representatives.begin(), result.representatives.end());
    }
  }

  // VERIFY + batched repair against the full pool.
  {
    util::telemetry::Span span("core.shard.verify");
    std::size_t blocks = 0;
    for (std::size_t round = 0;; ++round) {
      VerifyOutcome verdict = verify_selection(
          source, result.representatives, t_cons, options.selection.kappa,
          options.selection.epsilon, options.block_rows, &budget);
      blocks += verdict.blocks;
      result.eps_r = verdict.eps_r;
      if (verdict.violators.empty()) {
        result.tolerance_met = true;
        break;
      }
      if (round >= options.max_repair_rounds ||
          result.representatives.size() >= n) {
        result.tolerance_met = false;
        break;
      }
      // Promote the worst offenders (error-descending, id tie-break) in one
      // batch; the next round re-verifies with them included.
      std::sort(verdict.violators.begin(), verdict.violators.end(),
                [](const std::pair<double, int>& a,
                   const std::pair<double, int>& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      const std::size_t take =
          std::min<std::size_t>(options.max_promotions_per_round,
                                verdict.violators.size());
      for (std::size_t j = 0; j < take; ++j) {
        result.representatives.push_back(verdict.violators[j].second);
      }
      std::sort(result.representatives.begin(), result.representatives.end());
      result.repair_promotions += take;
      ++result.repair_rounds;
    }
    util::telemetry::count("core.shard.blocks_streamed", blocks);
  }

  result.peak_panel_bytes = budget.peak();
  util::telemetry::count("core.shard.shards", result.shards);
  util::telemetry::count("core.shard.union_paths", result.union_paths);
  util::telemetry::count("core.shard.levels", result.levels);
  util::telemetry::count("core.shard.repair_promotions",
                         result.repair_promotions);
  util::telemetry::set_gauge("core.shard.peak_panel_bytes",
                             static_cast<double>(result.peak_panel_bytes));
  util::telemetry::set_gauge("core.shard.eps_r", result.eps_r);
  return result;
}

}  // namespace repro::core
