// Theorem 2: the optimal (minimum-MSE) linear predictor of unmeasured path
// delays from measured path / segment delays.
//
// With all delays jointly Gaussian under d = mu + M x, x ~ N(0, I), the
// conditional mean of the unmeasured block given measurements y is
//
//   d_m = mu_m + A_m M_y^T (M_y M_y^T)^+ (y - mu_y),
//
// which for path-only measurements is exactly the paper's Eqn (5).  The same
// construction with M_y stacking rows of A (measured paths) and rows of
// Sigma (measured segments) powers the hybrid Algorithm 3.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace repro::core {

struct LinearPredictor {
  // Prediction: d_rem = mu_rem + coef * (y - mu_meas).
  linalg::Matrix coef;        // n_rem x n_meas
  linalg::Vector mu_meas;
  linalg::Vector mu_rem;
  std::vector<int> remaining;      // target-path indices being predicted
  std::vector<int> measured_paths;     // target-path indices measured
  std::vector<int> measured_segments;  // segment ids measured (may be empty)

  // The error-shape matrix Omega = coef * M_y - A_rem (paper Eqn (6)):
  // prediction error Delta = -Omega... stored as rows so that
  // Delta_i = omega_i . x; per-path error sigma = ||omega row i||.
  linalg::Matrix omega;

  linalg::Vector predict(std::span<const double> measured) const;
  // Per-remaining-path one-sigma prediction error (ps).
  linalg::Vector error_sigmas() const;
};

// Paper Eqn (5): measure the rows `rep` of A; predict all remaining rows.
LinearPredictor make_path_predictor(const linalg::Matrix& a,
                                    const linalg::Vector& mu,
                                    const std::vector<int>& rep);

// Hybrid measurement set: rows `rep_paths` of A plus rows `rep_segments` of
// Sigma.  Predicts the target paths in `remaining` (pass all non-measured
// path indices).
LinearPredictor make_joint_predictor(const linalg::Matrix& a,
                                     const linalg::Vector& mu_paths,
                                     const linalg::Matrix& sigma,
                                     const linalg::Vector& mu_segments,
                                     const std::vector<int>& rep_paths,
                                     const std::vector<int>& rep_segments,
                                     const std::vector<int>& remaining);

}  // namespace repro::core
