// Theorem 2: the optimal (minimum-MSE) linear predictor of unmeasured path
// delays from measured path / segment delays.
//
// With all delays jointly Gaussian under d = mu + M x, x ~ N(0, I), the
// conditional mean of the unmeasured block given measurements y is
//
//   d_m = mu_m + A_m M_y^T (M_y M_y^T)^+ (y - mu_y),
//
// which for path-only measurements is exactly the paper's Eqn (5).  The same
// construction with M_y stacking rows of A (measured paths) and rows of
// Sigma (measured segments) powers the hybrid Algorithm 3.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace repro::core {

struct LinearPredictor {
  // Prediction: d_rem = mu_rem + coef * (y - mu_meas).
  linalg::Matrix coef;        // n_rem x n_meas
  linalg::Vector mu_meas;
  linalg::Vector mu_rem;
  std::vector<int> remaining;      // target-path indices being predicted
  std::vector<int> measured_paths;     // target-path indices measured
  std::vector<int> measured_segments;  // segment ids measured (may be empty)

  // The error-shape matrix Omega = coef * M_y - A_rem (paper Eqn (6)):
  // prediction error Delta = -Omega... stored as rows so that
  // Delta_i = omega_i . x; per-path error sigma = ||omega row i||.
  linalg::Matrix omega;

  linalg::Vector predict(std::span<const double> measured) const;
  // Per-remaining-path one-sigma prediction error (ps).
  linalg::Vector error_sigmas() const;
};

// Paper Eqn (5): measure the rows `rep` of A; predict all remaining rows.
LinearPredictor make_path_predictor(const linalg::Matrix& a,
                                    const linalg::Vector& mu,
                                    const std::vector<int>& rep);

// Batched prediction: one die per row of `measured` (n_dies x n_meas), one
// die per row of the result (n_dies x n_rem).  This is the selection
// server's batch-gather entry point: concurrent predict requests are
// gathered into a panel and answered in one pass, so each row of `coef`
// streams from memory once per BATCH instead of once per die — the same
// multi-RHS win as the trsm panel in core/error_model.  Every output row is
// computed element-for-element with LinearPredictor::predict's arithmetic
// (the same linalg::dot kernel in the same order), and the parallel split
// over output columns never changes any element's operand order, so batched
// results are bit-identical to per-die serial predicts at any thread count.
// Throws std::invalid_argument on a column-count mismatch.
linalg::Matrix predict_panel(const LinearPredictor& p,
                             const linalg::Matrix& measured);

// Hybrid measurement set: rows `rep_paths` of A plus rows `rep_segments` of
// Sigma.  Predicts the target paths in `remaining` (pass all non-measured
// path indices).
LinearPredictor make_joint_predictor(const linalg::Matrix& a,
                                     const linalg::Vector& mu_paths,
                                     const linalg::Matrix& sigma,
                                     const linalg::Vector& mu_segments,
                                     const std::vector<int>& rep_paths,
                                     const std::vector<int>& rep_segments,
                                     const std::vector<int>& remaining);

// ---------------------------------------------------------------------------
// Noisy-silicon robustness layer.
//
// Real post-silicon test gives noisy, quantized, occasionally missing
// measurements (see core/measurement.h).  The types below wrap the Theorem-2
// predictor with (a) structured status reporting instead of exceptions,
// (b) a condition-number / ridge fallback for ill-conditioned measured Gram
// systems, (c) graceful degradation when representative paths are dead
// (rebuild on the surviving subset, optionally promoting backups from the
// Algorithm-2 pivot order), and (d) a per-die IRLS/Huber calibration with
// residual-based outlier screening.
// ---------------------------------------------------------------------------

enum class PredictorHealth {
  kOk,        // clean construction / prediction
  kDegraded,  // usable, but ridge-regularized, dead paths dropped, or
              // measurements screened/missing
  kFailed,    // no usable predictor / prediction (values fall back to nominal)
};
const char* to_string(PredictorHealth h);

struct PredictorStatus {
  PredictorHealth health = PredictorHealth::kFailed;
  double gram_condition = 0.0;     // cond_1 estimate of A_r A_r^T (original)
  double ridge = 0.0;              // ridge applied to the Gram solve (0=none)
  std::vector<int> dropped_paths;  // representative paths removed as dead
  std::vector<int> promoted_paths; // backups promoted from the pivot order
  double sigma_inflation = 1.0;    // mean noise-inflated / clean error sigma
  std::string message;             // human-readable reason when not kOk
  bool usable() const { return health != PredictorHealth::kFailed; }
};

struct RobustOptions {
  // Gram systems above this 1-norm condition estimate trigger the reported
  // ridge fallback (and a kDegraded status).
  double max_condition = 1e12;
  // Huber tuning constant, in units of the residual scale (1.345 = 95%
  // Gaussian efficiency).
  double huber_delta = 1.345;
  int irls_iterations = 12;
  double irls_tol = 1e-8;          // max weight change declaring convergence
  // Standardized-residual threshold beyond which a measurement is screened
  // out as an outlier after IRLS converges.
  double outlier_zscore = 4.0;
  // Known 1-sigma sensor noise (ps).  This is the MAP noise prior of the
  // IRLS solve; with 0 the solve interpolates the measurements exactly
  // (residuals vanish) and neither reweighting nor screening can act — pass
  // core::expected_noise_sigma(spec, mu_meas) when simulating faults.
  double measurement_sigma_ps = 0.0;
  // When representative paths are dead, refill the measured set from
  // backup_order (the Algorithm-2 column-pivot order; entries already
  // measured or dead are skipped).
  bool promote_backups = true;
  std::vector<int> backup_order;
};

struct RobustPrediction {
  linalg::Vector values;      // predicted remaining-path delays (ps); on
                              // kFailed these are the nominal delays
  PredictorHealth health = PredictorHealth::kFailed;
  std::vector<int> screened;  // measurement slots rejected as outliers
  std::vector<int> missing;   // slots invalid on input (dropped/non-finite)
  int irls_iterations = 0;
  double residual_scale = 0.0;  // robust residual sigma estimate (ps)
};

struct RobustPredictor {
  LinearPredictor base;    // Theorem-2 predictor on the surviving rep set
  linalg::Matrix a_meas;   // surviving measurement sensitivities (n_meas x m)
  linalg::Matrix a_rem;    // remaining-path sensitivities   (n_rem x m)
  linalg::Matrix gram_meas;  // A_r A_r^T, cached for per-die subset solves
  PredictorStatus status;
  RobustOptions options;

  // Robust per-die prediction: Huber-IRLS parameter estimate from the valid
  // measurements, residual outlier screening, then d_rem = mu_rem + A_rem x.
  // `valid` (optional, one flag per measurement slot) marks slots usable on
  // this die; non-finite measured values are screened unconditionally.
  // Never throws; with no usable measurement the nominal delays are returned
  // with health kFailed.
  RobustPrediction predict(std::span<const double> measured,
                           std::span<const char> valid = {}) const;

  // Analytic per-remaining-path error sigma inflated by the measurement
  // noise prior: sqrt(||omega_i||^2 + sigma_meas^2 ||coef_i||^2).
  linalg::Vector error_sigmas() const;
};

// Builds the robust predictor for measured rows `rep` of A, excluding the
// paths listed in `dead` (flagged unmeasurable pre-calibration; they join
// the predicted remaining set) and promoting backups per `options`.  Never
// throws on bad input or ill-conditioned Gram systems: inspect
// result.status (kFailed predictors return nominal-delay predictions).
RobustPredictor make_robust_path_predictor(const linalg::Matrix& a,
                                           const linalg::Vector& mu,
                                           const std::vector<int>& rep,
                                           const std::vector<int>& dead = {},
                                           const RobustOptions& options = {});

}  // namespace repro::core
