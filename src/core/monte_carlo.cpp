#include "core/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "linalg/gemm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace repro::core {

McMetrics evaluate_predictor(const variation::VariationModel& model,
                             const LinearPredictor& predictor,
                             const McOptions& options) {
  const std::size_t m = model.num_params();
  const std::size_t n_rem = predictor.remaining.size();
  const std::size_t n_meas = predictor.mu_meas.size();
  if (n_rem == 0) throw std::invalid_argument("evaluate_predictor: no paths");

  McMetrics out;
  out.eps_max.assign(n_rem, 0.0);
  out.eps_mean.assign(n_rem, 0.0);

  // Measurement sensitivity rows stacked once (paths first, then segments,
  // matching LinearPredictor's mu_meas layout).
  linalg::Matrix meas_rows(n_meas, m);
  {
    std::size_t row = 0;
    for (int i : predictor.measured_paths) {
      meas_rows.set_row(row++, model.a().row(static_cast<std::size_t>(i)));
    }
    for (int s : predictor.measured_segments) {
      meas_rows.set_row(row++, model.sigma().row(static_cast<std::size_t>(s)));
    }
  }
  const linalg::Matrix a_rem_rows = model.a().select_rows(predictor.remaining);

  // Batch-parallel sampling over fixed-size chunks.  Sample j draws its
  // normals from util::Rng::stream(seed, j) — a stream that depends only on
  // the global sample index — so the sampled values are independent of both
  // the chunk size (a GEMM batching detail) and the thread count.  Each
  // chunk accumulates into its own slot and the partials are reduced in
  // chunk order afterwards, which keeps the floating-point summation order
  // fixed: eps_max / eps_mean / e1 / e2 are bit-identical for 1..N threads.
  const std::size_t chunk = std::max<std::size_t>(1, options.chunk);
  const std::size_t nchunks = (options.samples + chunk - 1) / chunk;
  std::vector<std::vector<double>> part_max(nchunks), part_sum(nchunks);
  util::parallel_for(0, nchunks, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t ci = cb; ci < ce; ++ci) {
      const std::size_t s0 = ci * chunk;
      const std::size_t c = std::min(chunk, options.samples - s0);
      // Parameter samples for this chunk: m x c, one RNG stream per sample.
      linalg::Matrix x(m, c);
      for (std::size_t j = 0; j < c; ++j) {
        util::Rng rng = util::Rng::stream(options.seed, s0 + j);
        for (std::size_t i = 0; i < m; ++i) x(i, j) = rng.normal();
      }
      // True delays of the remaining paths and measured quantities.
      const linalg::Matrix d_true =
          linalg::multiply(a_rem_rows, x);                        // n_rem x c
      const linalg::Matrix y = linalg::multiply(meas_rows, x);    // n_meas x c
      // Predictions: coef * y_centered; y here is already centered because
      // the model means enter both sides additively (d = mu + A x), so
      // pred_centered = coef * (A_meas x) and error = pred - true uses only
      // centered values; the relative error denominator needs the full delay.
      const linalg::Matrix pred = linalg::multiply(predictor.coef, y);

      std::vector<double>& pmax = part_max[ci];
      std::vector<double>& psum = part_sum[ci];
      pmax.assign(n_rem, 0.0);
      psum.assign(n_rem, 0.0);
      for (std::size_t i = 0; i < n_rem; ++i) {
        const double mu_i = predictor.mu_rem[i];
        for (std::size_t j = 0; j < c; ++j) {
          const double t = mu_i + d_true(i, j);
          const double p = mu_i + pred(i, j);
          const double rel = std::abs(p - t) / std::abs(t);
          pmax[i] = std::max(pmax[i], rel);
          psum[i] += rel;
        }
      }
    }
  });
  for (std::size_t ci = 0; ci < nchunks; ++ci) {
    for (std::size_t i = 0; i < n_rem; ++i) {
      out.eps_max[i] = std::max(out.eps_max[i], part_max[ci][i]);
      out.eps_mean[i] += part_sum[ci][i];
    }
  }

  for (std::size_t i = 0; i < n_rem; ++i) {
    out.eps_mean[i] /= static_cast<double>(options.samples);
    out.e1 += out.eps_max[i];
    out.e2 += out.eps_mean[i];
    out.worst_eps = std::max(out.worst_eps, out.eps_max[i]);
  }
  out.e1 /= static_cast<double>(n_rem);
  out.e2 /= static_cast<double>(n_rem);
  out.samples = options.samples;
  return out;
}

}  // namespace repro::core
