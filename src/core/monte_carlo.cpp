#include "core/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/gemm.h"
#include "util/rng.h"

namespace repro::core {

McMetrics evaluate_predictor(const variation::VariationModel& model,
                             const LinearPredictor& predictor,
                             const McOptions& options) {
  const std::size_t m = model.num_params();
  const std::size_t n_rem = predictor.remaining.size();
  const std::size_t n_meas = predictor.mu_meas.size();
  if (n_rem == 0) throw std::invalid_argument("evaluate_predictor: no paths");

  util::Rng rng(options.seed);
  McMetrics out;
  out.eps_max.assign(n_rem, 0.0);
  out.eps_mean.assign(n_rem, 0.0);

  // Measurement sensitivity rows stacked once (paths first, then segments,
  // matching LinearPredictor's mu_meas layout).
  linalg::Matrix meas_rows(n_meas, m);
  {
    std::size_t row = 0;
    for (int i : predictor.measured_paths) {
      meas_rows.set_row(row++, model.a().row(static_cast<std::size_t>(i)));
    }
    for (int s : predictor.measured_segments) {
      meas_rows.set_row(row++, model.sigma().row(static_cast<std::size_t>(s)));
    }
  }
  const linalg::Matrix a_rem_rows = model.a().select_rows(predictor.remaining);

  std::size_t done = 0;
  while (done < options.samples) {
    const std::size_t c = std::min(options.chunk, options.samples - done);
    // Parameter samples for this chunk: m x c, filled sample-by-sample so
    // the RNG stream (and hence every metric) is independent of the chunk
    // size.
    linalg::Matrix x(m, c);
    for (std::size_t j = 0; j < c; ++j) {
      for (std::size_t i = 0; i < m; ++i) x(i, j) = rng.normal();
    }
    // True delays of the remaining paths and measured quantities.
    const linalg::Matrix d_true = linalg::multiply(a_rem_rows, x);  // n_rem x c
    const linalg::Matrix y = linalg::multiply(meas_rows, x);        // n_meas x c
    // Predictions: coef * y_centered; y here is already centered because the
    // model means enter both sides additively (d = mu + A x), so
    // pred_centered = coef * (A_meas x) and error = pred - true uses only
    // centered values; the relative error denominator needs the full delay.
    const linalg::Matrix pred = linalg::multiply(predictor.coef, y);

    for (std::size_t i = 0; i < n_rem; ++i) {
      const double mu_i = predictor.mu_rem[i];
      for (std::size_t j = 0; j < c; ++j) {
        const double t = mu_i + d_true(i, j);
        const double p = mu_i + pred(i, j);
        const double rel = std::abs(p - t) / std::abs(t);
        out.eps_max[i] = std::max(out.eps_max[i], rel);
        out.eps_mean[i] += rel;
      }
    }
    done += c;
  }

  for (std::size_t i = 0; i < n_rem; ++i) {
    out.eps_mean[i] /= static_cast<double>(options.samples);
    out.e1 += out.eps_max[i];
    out.e2 += out.eps_mean[i];
    out.worst_eps = std::max(out.worst_eps, out.eps_max[i]);
  }
  out.e1 /= static_cast<double>(n_rem);
  out.e2 /= static_cast<double>(n_rem);
  out.samples = options.samples;
  return out;
}

}  // namespace repro::core
