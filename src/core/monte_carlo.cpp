#include "core/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "linalg/gemm.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace repro::core {

McMetrics evaluate_predictor(const variation::VariationModel& model,
                             const LinearPredictor& predictor,
                             const McOptions& options) {
  const std::size_t m = model.num_params();
  const std::size_t n_rem = predictor.remaining.size();
  const std::size_t n_meas = predictor.mu_meas.size();
  if (n_rem == 0) throw std::invalid_argument("evaluate_predictor: no paths");
  const util::telemetry::Span span("core.mc.evaluate");
  util::telemetry::count("core.mc.samples", options.samples);

  McMetrics out;
  out.eps_max.assign(n_rem, 0.0);
  out.eps_mean.assign(n_rem, 0.0);

  // Measurement sensitivity rows stacked once (paths first, then segments,
  // matching LinearPredictor's mu_meas layout).
  linalg::Matrix meas_rows(n_meas, m);
  {
    std::size_t row = 0;
    for (int i : predictor.measured_paths) {
      meas_rows.set_row(row++, model.a().row(static_cast<std::size_t>(i)));
    }
    for (int s : predictor.measured_segments) {
      meas_rows.set_row(row++, model.sigma().row(static_cast<std::size_t>(s)));
    }
  }
  const linalg::Matrix a_rem_rows = model.a().select_rows(predictor.remaining);

  // Batch-parallel sampling over fixed-size chunks.  Sample j draws its
  // normals from util::Rng::stream(seed, j) — a stream that depends only on
  // the global sample index — so the sampled values are independent of both
  // the chunk size (a GEMM batching detail) and the thread count.  Each
  // chunk accumulates into its own slot and the partials are reduced in
  // chunk order afterwards, which keeps the floating-point summation order
  // fixed: eps_max / eps_mean / e1 / e2 are bit-identical for 1..N threads.
  const std::size_t chunk = std::max<std::size_t>(1, options.chunk);
  const std::size_t nchunks = (options.samples + chunk - 1) / chunk;
  std::vector<std::vector<double>> part_max(nchunks), part_sum(nchunks);
  util::parallel_for(0, nchunks, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t ci = cb; ci < ce; ++ci) {
      const std::size_t s0 = ci * chunk;
      const std::size_t c = std::min(chunk, options.samples - s0);
      // Parameter samples for this chunk: m x c, one RNG stream per sample.
      linalg::Matrix x(m, c);
      for (std::size_t j = 0; j < c; ++j) {
        util::Rng rng = util::Rng::stream(options.seed, s0 + j);
        for (std::size_t i = 0; i < m; ++i) x(i, j) = rng.normal();
      }
      // True delays of the remaining paths and measured quantities.
      const linalg::Matrix d_true =
          linalg::multiply(a_rem_rows, x);                        // n_rem x c
      const linalg::Matrix y = linalg::multiply(meas_rows, x);    // n_meas x c
      // Predictions: coef * y_centered; y here is already centered because
      // the model means enter both sides additively (d = mu + A x), so
      // pred_centered = coef * (A_meas x) and error = pred - true uses only
      // centered values; the relative error denominator needs the full delay.
      const linalg::Matrix pred = linalg::multiply(predictor.coef, y);

      std::vector<double>& pmax = part_max[ci];
      std::vector<double>& psum = part_sum[ci];
      pmax.assign(n_rem, 0.0);
      psum.assign(n_rem, 0.0);
      for (std::size_t i = 0; i < n_rem; ++i) {
        const double mu_i = predictor.mu_rem[i];
        for (std::size_t j = 0; j < c; ++j) {
          const double t = mu_i + d_true(i, j);
          const double p = mu_i + pred(i, j);
          const double rel = std::abs(p - t) / std::abs(t);
          pmax[i] = std::max(pmax[i], rel);
          psum[i] += rel;
        }
      }
    }
  });
  for (std::size_t ci = 0; ci < nchunks; ++ci) {
    for (std::size_t i = 0; i < n_rem; ++i) {
      out.eps_max[i] = std::max(out.eps_max[i], part_max[ci][i]);
      out.eps_mean[i] += part_sum[ci][i];
    }
  }

  for (std::size_t i = 0; i < n_rem; ++i) {
    out.eps_mean[i] /= static_cast<double>(options.samples);
    out.e1 += out.eps_max[i];
    out.e2 += out.eps_mean[i];
    out.worst_eps = std::max(out.worst_eps, out.eps_max[i]);
  }
  out.e1 /= static_cast<double>(n_rem);
  out.e2 /= static_cast<double>(n_rem);
  out.samples = options.samples;
  return out;
}

FaultyMcMetrics evaluate_predictor_under_faults(
    const variation::VariationModel& model, const RobustPredictor& predictor,
    const FaultyMcOptions& options) {
  const std::size_t m = model.num_params();
  const std::size_t n_rem = predictor.base.remaining.size();
  const std::size_t n_meas = predictor.base.mu_meas.size();
  const util::telemetry::Span span("core.mc.evaluate_faulty");
  util::telemetry::count("core.mc.faulty_samples", options.mc.samples);
  FaultyMcMetrics out;
  out.metrics.samples = options.mc.samples;
  out.metrics.eps_max.assign(n_rem, 0.0);
  out.metrics.eps_mean.assign(n_rem, 0.0);
  if (!predictor.status.usable()) {
    // Defined degradation, not a throw: every die is a nominal-fallback die.
    // Checked before n_rem: a failed construction leaves `remaining` empty.
    out.failed_dies = options.mc.samples;
    util::telemetry::count("core.mc.dies_failed", out.failed_dies);
    return out;
  }
  if (options.mc.samples == 0 || n_rem == 0) return out;

  // Same chunked-deterministic scheme as evaluate_predictor: per-die streams
  // for both the parameter sample and the fault schedule, per-chunk partial
  // slots reduced in fixed chunk order.
  const std::size_t chunk = std::max<std::size_t>(1, options.mc.chunk);
  const std::size_t nchunks = (options.mc.samples + chunk - 1) / chunk;
  std::vector<std::vector<double>> part_max(nchunks), part_sum(nchunks);
  struct Counters {
    std::size_t failed = 0;
    std::size_t ok = 0;
    std::size_t degraded = 0;
    std::size_t screened = 0;
    std::size_t missing = 0;
    std::size_t outliers = 0;
    // Per-fault-mode attribution (see FaultyMcMetrics).
    std::size_t screened_outlier = 0;
    std::size_t screened_noise = 0;
    std::size_t dead = 0;
    std::size_t dropout = 0;
  };
  std::vector<Counters> part_cnt(nchunks);
  util::parallel_for(0, nchunks, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t ci = cb; ci < ce; ++ci) {
      const std::size_t s0 = ci * chunk;
      const std::size_t c = std::min(chunk, options.mc.samples - s0);
      linalg::Matrix x(m, c);
      for (std::size_t j = 0; j < c; ++j) {
        util::Rng rng = util::Rng::stream(options.mc.seed, s0 + j);
        for (std::size_t i = 0; i < m; ++i) x(i, j) = rng.normal();
      }
      const linalg::Matrix d_true =
          linalg::multiply(predictor.a_rem, x);                    // n_rem x c
      const linalg::Matrix y = linalg::multiply(predictor.a_meas, x);

      std::vector<double>& pmax = part_max[ci];
      std::vector<double>& psum = part_sum[ci];
      Counters& cnt = part_cnt[ci];
      pmax.assign(n_rem, 0.0);
      psum.assign(n_rem, 0.0);
      linalg::Vector clean(n_meas), pred(n_rem);
      for (std::size_t j = 0; j < c; ++j) {
        for (std::size_t i = 0; i < n_meas; ++i) {
          clean[i] = predictor.base.mu_meas[i] + y(i, j);
        }
        const NoisyMeasurements noisy = apply_faults(
            clean, predictor.base.mu_meas, options.faults, s0 + j);
        cnt.outliers += static_cast<std::size_t>(noisy.outliers);
        cnt.missing += static_cast<std::size_t>(noisy.dropped);
        cnt.dead += static_cast<std::size_t>(noisy.dead);
        cnt.dropout += static_cast<std::size_t>(noisy.dropout);
        if (options.naive) {
          // Plain linear map on the faulty values; invalid slots sit at
          // their nominal delay, i.e. a centered value of zero.
          linalg::Vector centered(n_meas, 0.0);
          for (std::size_t i = 0; i < n_meas; ++i) {
            if (noisy.valid[i]) {
              centered[i] = noisy.values[i] - predictor.base.mu_meas[i];
            }
          }
          pred = linalg::matvec(predictor.base.coef, centered);
          for (std::size_t i = 0; i < n_rem; ++i) {
            pred[i] += predictor.base.mu_rem[i];
          }
        } else {
          RobustPrediction rp = predictor.predict(noisy.values, noisy.valid);
          cnt.screened += rp.screened.size();
          // Attribute each screened slot to the fault that produced it: an
          // injected heavy-tail outlier vs. plain sensor noise (the outlier
          // list per die is short, so a linear scan beats a mask rebuild).
          for (int s : rp.screened) {
            bool injected = false;
            for (int o : noisy.outlier_slots) {
              if (o == s) {
                injected = true;
                break;
              }
            }
            if (injected) {
              ++cnt.screened_outlier;
            } else {
              ++cnt.screened_noise;
            }
          }
          switch (rp.health) {
            case PredictorHealth::kOk: ++cnt.ok; break;
            case PredictorHealth::kDegraded: ++cnt.degraded; break;
            case PredictorHealth::kFailed: ++cnt.failed; break;
          }
          pred = std::move(rp.values);
        }
        for (std::size_t i = 0; i < n_rem; ++i) {
          const double t = predictor.base.mu_rem[i] + d_true(i, j);
          const double rel = std::abs(pred[i] - t) / std::abs(t);
          pmax[i] = std::max(pmax[i], rel);
          psum[i] += rel;
        }
      }
    }
  });
  for (std::size_t ci = 0; ci < nchunks; ++ci) {
    for (std::size_t i = 0; i < n_rem; ++i) {
      out.metrics.eps_max[i] = std::max(out.metrics.eps_max[i], part_max[ci][i]);
      out.metrics.eps_mean[i] += part_sum[ci][i];
    }
    out.failed_dies += part_cnt[ci].failed;
    out.mean_screened += static_cast<double>(part_cnt[ci].screened);
    out.mean_missing += static_cast<double>(part_cnt[ci].missing);
    out.mean_outliers += static_cast<double>(part_cnt[ci].outliers);
    out.mean_screened_outlier +=
        static_cast<double>(part_cnt[ci].screened_outlier);
    out.mean_screened_noise += static_cast<double>(part_cnt[ci].screened_noise);
    out.mean_dead += static_cast<double>(part_cnt[ci].dead);
    out.mean_dropout += static_cast<double>(part_cnt[ci].dropout);
  }
  {
    // Per-die PredictorStatus tallies, reduced once per evaluation so the
    // hot loop never touches the registry.  Rejections are broken down per
    // fault mode so drift diagnosis can tell tester faults from model drift.
    std::size_t ok = 0, degraded = 0;
    std::size_t rej_outlier = 0, rej_noise = 0, dead = 0, dropout = 0;
    for (const Counters& c : part_cnt) {
      ok += c.ok;
      degraded += c.degraded;
      rej_outlier += c.screened_outlier;
      rej_noise += c.screened_noise;
      dead += c.dead;
      dropout += c.dropout;
    }
    util::telemetry::count("core.mc.dies_ok", ok);
    util::telemetry::count("core.mc.dies_degraded", degraded);
    util::telemetry::count("core.mc.dies_failed", out.failed_dies);
    util::telemetry::count("core.mc.reject_outlier", rej_outlier);
    util::telemetry::count("core.mc.reject_noise", rej_noise);
    util::telemetry::count("core.mc.slots_dead", dead);
    util::telemetry::count("core.mc.slots_dropout", dropout);
  }
  const auto samples = static_cast<double>(options.mc.samples);
  for (std::size_t i = 0; i < n_rem; ++i) {
    out.metrics.eps_mean[i] /= samples;
    out.metrics.e1 += out.metrics.eps_max[i];
    out.metrics.e2 += out.metrics.eps_mean[i];
    out.metrics.worst_eps = std::max(out.metrics.worst_eps,
                                     out.metrics.eps_max[i]);
  }
  out.metrics.e1 /= static_cast<double>(n_rem);
  out.metrics.e2 /= static_cast<double>(n_rem);
  out.mean_screened /= samples;
  out.mean_missing /= samples;
  out.mean_outliers /= samples;
  out.mean_screened_outlier /= samples;
  out.mean_screened_noise /= samples;
  out.mean_dead /= samples;
  out.mean_dropout /= samples;
  return out;
}

StreamingMcMetrics evaluate_predictor_streaming(
    const variation::VariationModel& model, const RobustPredictor& predictor,
    const StreamingMcOptions& options) {
  const std::size_t m = model.num_params();
  const std::size_t n_rem = predictor.base.remaining.size();
  const std::size_t n_meas = predictor.base.mu_meas.size();
  const util::telemetry::Span span("core.mc.evaluate_streaming");
  util::telemetry::count("core.mc.streaming_dies", options.mc.samples);

  StreamingMcMetrics out;
  out.dies = options.mc.samples;
  out.metrics.samples = options.mc.samples;
  out.metrics.eps_max.assign(n_rem, 0.0);
  out.metrics.eps_mean.assign(n_rem, 0.0);

  StreamingCalibrator cal(predictor, options.stream);
  out.initial_guardband = cal.guardband();
  if (options.mc.samples == 0 || n_rem == 0 || !cal.status().usable()) {
    // Defined degradation: an unusable predictor makes an unusable stream.
    // Feeding dies would only quarantine them one by one; report as-is.
    out.status = cal.status();
    out.final_guardband = cal.guardband();
    return out;
  }

  // Shift images of the injected drift scenario (once, outside the loop):
  // the silicon mean moves by `delta`, so measured slots shift by
  // A_meas delta and true remaining delays by A_rem delta.
  linalg::Vector drift_meas, drift_rem;
  const bool has_drift = options.drift.active();
  if (has_drift) {
    linalg::Vector delta(m, 0.0);
    if (options.drift.direction.size() == m &&
        linalg::norm2(options.drift.direction) > 0.0) {
      const double s =
          options.drift.magnitude / linalg::norm2(options.drift.direction);
      for (std::size_t i = 0; i < m; ++i) {
        delta[i] = s * options.drift.direction[i];
      }
    } else {
      // Common-mode default: every parameter shifts equally.  A random
      // direction would be invisible to most measured slots; common-mode is
      // the physically meaningful "process moved" scenario.
      const double s = options.drift.magnitude /
                       std::sqrt(static_cast<double>(std::max<std::size_t>(m, 1)));
      for (std::size_t i = 0; i < m; ++i) delta[i] = s;
    }
    drift_meas = linalg::matvec(predictor.a_meas, delta);
    drift_rem = linalg::matvec(predictor.a_rem, delta);
  }

  if (options.record_trajectory) {
    out.guardband_trajectory.reserve(options.mc.samples);
    out.drift_trajectory.reserve(options.mc.samples);
  }

  // Block-parallel generation, sequential calibration.  The staging buffers
  // are die-indexed and each die's sample comes from its own RNG stream, so
  // the generated values are independent of both chunking and thread count;
  // the calibrator pass then runs in strict die order.
  const std::size_t block = std::max<std::size_t>(1, options.block);
  const std::size_t chunk = std::max<std::size_t>(1, options.mc.chunk);
  double prev_guard = out.initial_guardband;
  linalg::Vector clean(n_meas);
  for (std::size_t b0 = 0; b0 < options.mc.samples; b0 += block) {
    const std::size_t bc = std::min(block, options.mc.samples - b0);
    linalg::Matrix d_true(n_rem, bc);
    linalg::Matrix y(n_meas, bc);
    const std::size_t nchunks = (bc + chunk - 1) / chunk;
    util::parallel_for(0, nchunks, 1, [&](std::size_t cb, std::size_t ce) {
      for (std::size_t ci = cb; ci < ce; ++ci) {
        const std::size_t s0 = ci * chunk;
        const std::size_t c = std::min(chunk, bc - s0);
        linalg::Matrix x(m, c);
        for (std::size_t j = 0; j < c; ++j) {
          util::Rng rng = util::Rng::stream(options.mc.seed, b0 + s0 + j);
          for (std::size_t i = 0; i < m; ++i) x(i, j) = rng.normal();
        }
        const linalg::Matrix dt = linalg::multiply(predictor.a_rem, x);
        const linalg::Matrix yy = linalg::multiply(predictor.a_meas, x);
        for (std::size_t i = 0; i < n_rem; ++i) {
          for (std::size_t j = 0; j < c; ++j) d_true(i, s0 + j) = dt(i, j);
        }
        for (std::size_t i = 0; i < n_meas; ++i) {
          for (std::size_t j = 0; j < c; ++j) y(i, s0 + j) = yy(i, j);
        }
      }
    });
    for (std::size_t j = 0; j < bc; ++j) {
      const std::size_t die = b0 + j;
      const bool drifted = has_drift && die >= options.drift.start_die;
      for (std::size_t i = 0; i < n_meas; ++i) {
        clean[i] = predictor.base.mu_meas[i] + y(i, j) +
                   (drifted ? drift_meas[i] : 0.0);
      }
      const NoisyMeasurements noisy = apply_faults(
          clean, predictor.base.mu_meas, options.faults, die);
      const DieRecord rec = cal.observe(die, noisy.values, noisy.valid);
      if (options.record_trajectory) {
        out.guardband_trajectory.push_back(rec.guardband);
        out.drift_trajectory.push_back(rec.drift_score);
      }
      // Non-inflation check with a tiny absolute slack for the symmetrized
      // covariance roundoff.
      if (rec.guardband > prev_guard + 1e-12) out.guardband_monotone = false;
      prev_guard = rec.guardband;
      if (rec.predicted.size() == n_rem) {
        for (std::size_t i = 0; i < n_rem; ++i) {
          const double t = predictor.base.mu_rem[i] + d_true(i, j) +
                           (drifted ? drift_rem[i] : 0.0);
          const double rel = std::abs(rec.predicted[i] - t) / std::abs(t);
          out.metrics.eps_max[i] = std::max(out.metrics.eps_max[i], rel);
          out.metrics.eps_mean[i] += rel;
        }
      }
    }
  }

  const auto samples = static_cast<double>(options.mc.samples);
  for (std::size_t i = 0; i < n_rem; ++i) {
    out.metrics.eps_mean[i] /= samples;
    out.metrics.e1 += out.metrics.eps_max[i];
    out.metrics.e2 += out.metrics.eps_mean[i];
    out.metrics.worst_eps =
        std::max(out.metrics.worst_eps, out.metrics.eps_max[i]);
  }
  out.metrics.e1 /= static_cast<double>(n_rem);
  out.metrics.e2 /= static_cast<double>(n_rem);
  out.status = cal.status();
  out.final_guardband = cal.guardband();
  out.drift_flag_die = out.status.drift_flag_die;
  return out;
}

}  // namespace repro::core
