#include "core/guardband.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/gemm.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace repro::core {

// The eps-vs-remaining size precondition is validated unconditionally just
// below in every build; a contract would duplicate it.
// repro-lint: allow(contracts)
GuardbandReport guardband_analysis(const variation::VariationModel& model,
                                   const LinearPredictor& predictor,
                                   const linalg::Vector& per_path_eps,
                                   double t_cons, double epsilon,
                                   const McOptions& options) {
  const std::size_t n_rem = predictor.remaining.size();
  if (per_path_eps.size() != n_rem) {
    throw std::invalid_argument("guardband_analysis: eps size mismatch");
  }
  GuardbandReport rep;
  rep.epsilon = epsilon;
  for (double e : per_path_eps) {
    rep.avg_guardband += e;
    rep.max_guardband = std::max(rep.max_guardband, e);
  }
  if (n_rem > 0) rep.avg_guardband /= static_cast<double>(n_rem);

  const std::size_t m = model.num_params();
  const std::size_t n_meas = predictor.mu_meas.size();
  util::Rng rng(options.seed);

  linalg::Matrix meas_rows(n_meas, m);
  {
    std::size_t row = 0;
    for (int i : predictor.measured_paths) {
      meas_rows.set_row(row++, model.a().row(static_cast<std::size_t>(i)));
    }
    for (int s : predictor.measured_segments) {
      meas_rows.set_row(row++, model.sigma().row(static_cast<std::size_t>(s)));
    }
  }
  const linalg::Matrix a_rem_rows = model.a().select_rows(predictor.remaining);

  // Accumulate MC metrics inline (shares samples with the detection counts).
  rep.mc.eps_max.assign(n_rem, 0.0);
  rep.mc.eps_mean.assign(n_rem, 0.0);

  std::size_t done = 0;
  while (done < options.samples) {
    const std::size_t c = std::min(options.chunk, options.samples - done);
    // Sample-major fill keeps results chunk-size invariant (see
    // monte_carlo.cpp).
    linalg::Matrix x(m, c);
    for (std::size_t j = 0; j < c; ++j) {
      for (std::size_t i = 0; i < m; ++i) x(i, j) = rng.normal();
    }
    const linalg::Matrix d_true = linalg::multiply(a_rem_rows, x);
    const linalg::Matrix y = linalg::multiply(meas_rows, x);
    const linalg::Matrix pred = linalg::multiply(predictor.coef, y);

    for (std::size_t i = 0; i < n_rem; ++i) {
      const double mu_i = predictor.mu_rem[i];
      const double guard = 1.0 - per_path_eps[i];
      for (std::size_t j = 0; j < c; ++j) {
        const double t = mu_i + d_true(i, j);
        const double p = mu_i + pred(i, j);
        const double rel = std::abs(p - t) / std::abs(t);
        rep.mc.eps_max[i] = std::max(rep.mc.eps_max[i], rel);
        rep.mc.eps_mean[i] += rel;

        const bool fails = t > t_cons;
        const bool flag = (guard > 0.0) ? (p / guard > t_cons) : true;
        if (fails) ++rep.true_fails;
        if (flag) ++rep.flagged;
        if (fails && !flag) ++rep.missed;
        if (flag && !fails) ++rep.false_alarms;
      }
    }
    done += c;
  }
  rep.observations = options.samples * n_rem;
  for (std::size_t i = 0; i < n_rem; ++i) {
    rep.mc.eps_mean[i] /= static_cast<double>(options.samples);
    rep.mc.e1 += rep.mc.eps_max[i];
    rep.mc.e2 += rep.mc.eps_mean[i];
    rep.mc.worst_eps = std::max(rep.mc.worst_eps, rep.mc.eps_max[i]);
  }
  if (n_rem > 0) {
    rep.mc.e1 /= static_cast<double>(n_rem);
    rep.mc.e2 /= static_cast<double>(n_rem);
  }
  rep.mc.samples = options.samples;
  return rep;
}

AdaptiveGuardband adaptive_guardband(std::span<const double> base_sigma_ps,
                                     std::span<const double> shift_var_ps2,
                                     std::span<const double> mu_rem_ps,
                                     double kappa) {
  REPRO_CHECK_DIM(base_sigma_ps.size(), shift_var_ps2.size(),
                  "adaptive_guardband: base sigmas vs shift variances");
  REPRO_CHECK_DIM(base_sigma_ps.size(), mu_rem_ps.size(),
                  "adaptive_guardband: base sigmas vs nominal delays");
  AdaptiveGuardband g;
  const std::size_t n = base_sigma_ps.size();
  if (n == 0 || base_sigma_ps.size() != shift_var_ps2.size() ||
      base_sigma_ps.size() != mu_rem_ps.size()) {
    return g;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double base2 = base_sigma_ps[i] * base_sigma_ps[i];
    const double q = std::max(0.0, shift_var_ps2[i]);
    const double var = base2 + q;
    const double sigma = std::sqrt(var);
    // |mu| == 0 cannot happen for a real path delay; guard the division so a
    // degenerate synthetic input degrades to "no guard-band" per path
    // instead of an inf that poisons the mean.
    const double mu = std::abs(mu_rem_ps[i]);
    const double eps = (mu > 0.0) ? kappa * sigma / mu : 0.0;
    g.eps += eps;
    g.max_eps = std::max(g.max_eps, eps);
    g.mean_sigma_ps += sigma;
    g.shift_share += (var > 0.0) ? q / var : 0.0;
  }
  const auto dn = static_cast<double>(n);
  g.eps /= dn;
  g.mean_sigma_ps /= dn;
  g.shift_share /= dn;
  return g;
}

}  // namespace repro::core
