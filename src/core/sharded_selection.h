// Sharded out-of-core representative-path selection.
//
// Algorithm 1 on a dense pool needs the n x m sensitivity matrix and an
// n x n Gram in one address space, capping n at tens of thousands.  This
// orchestrator scales the same selection to multi-million-path pools on one
// box by decomposition:
//
//   1. PLAN    — spherical k-means on a deterministic sample of the pool
//                yields direction clusters; cluster centers are carried out
//                to the full pool by streamed block assignment; clusters are
//                split to the target shard size and packed into shards under
//                a pluggable balance policy (path- or gate-balanced,
//                mirroring node-/edge-balanced graph splits).
//   2. SELECT  — Algorithm 1 (greedy-sweep driver) runs per shard in
//                parallel on the shared thread pool, each shard against its
//                own SYRK Gram panel; only shard-sized panels are ever
//                resident, never the full n x m matrix.  Per-shard tolerance
//                is tightened (merge_epsilon_scale) so the union stays
//                repairable.
//   3. MERGE   — the union of shard representatives is re-sharded and
//                re-selected recursively until it fits merge_pool_cap, then
//                selected monolithically at the full tolerance.
//   4. VERIFY  — the final selection is priced against the ENTIRE pool by a
//                streamed pass (per block: one panel fill, one cross GEMM
//                against the representative panel, one multi-RHS trsm),
//                using the identity Var(Delta_i) = ||a_i||^2 - ||L^{-1} A_R
//                a_i||^2.  Paths whose error exceeds eps are promoted into
//                the selection in batches until the global bound holds (or
//                max_repair_rounds is exhausted — tolerance_met reports
//                honestly).
//
// Every materialized panel is leased against a PanelBudget, so the result
// carries the true peak resident panel footprint; bench_shard_scale gates it
// against the dense-matrix baseline in CI.  The pipeline is bit-identical
// across REPRO_THREADS settings: planning and verification are serial block
// loops over deterministic kernels, and per-shard selection is independent
// per shard with results written to indexed slots.  See DESIGN.md §14.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/panel_source.h"
#include "core/path_selection.h"

namespace repro::core {

enum class ShardPolicy {
  kPathBalanced,  // equalize path counts per shard
  kGateBalanced,  // equalize summed path_weight (e.g. gate counts) per shard
};

struct ShardedSelectionOptions {
  ShardPolicy policy = ShardPolicy::kPathBalanced;
  std::size_t num_shards = 0;           // 0 = auto: ceil(n / target_shard_paths)
  std::size_t target_shard_paths = 2000;
  std::size_t sample_paths = 4096;      // k-means planning sample size
  int kmeans_iterations = 12;
  std::uint64_t seed = 0x5eed10;
  std::size_t block_rows = 8192;        // streamed assignment / verify block
  std::size_t merge_pool_cap = 4000;    // largest pool selected monolithically
  double merge_epsilon_scale = 0.5;     // per-shard tolerance tightening
  std::size_t max_repair_rounds = 8;
  std::size_t max_promotions_per_round = 64;
  // Upper bound, in bytes, on the per-shard working sets (fill panel +
  // shard Gram) leased concurrently during SELECT: shards are processed in
  // waves sized so the sum of their working sets fits the cap, instead of
  // letting every pool worker lease one at once.  0 = uncapped (waves as
  // wide as the plan).  A cap below one shard's working set degrades to
  // serial shards — one working set is the floor, by construction.  The
  // merge level's monolithic selection is bounded separately by
  // merge_pool_cap^2, and the streamed verify pass by block_rows * m.
  std::size_t memory_cap_bytes = 0;
  PathSelectionOptions selection;       // epsilon / kappa for the global bound
};

struct ShardPlan {
  std::vector<std::vector<int>> members;  // per-shard global ids, ascending
  std::vector<double> weight;             // per-shard summed policy weight
  std::size_t clusters_used = 0;          // non-empty k-means clusters
};

struct ShardStats {
  std::size_t paths = 0;
  std::size_t representatives = 0;
  double weight = 0.0;
  double seconds = 0.0;
};

struct ShardedSelectionResult {
  std::vector<int> representatives;  // global path ids, ascending
  double eps_r = 0.0;                // verified against the FULL pool
  bool tolerance_met = false;        // eps_r <= selection.epsilon at exit
  std::size_t levels = 0;            // recursive merge levels run
  std::size_t shards = 0;            // level-0 shard count
  std::size_t union_paths = 0;       // union entering the final selection
  std::size_t repair_rounds = 0;
  std::size_t repair_promotions = 0;
  std::size_t peak_panel_bytes = 0;  // high-water resident panel footprint
  std::vector<ShardStats> shard_stats;  // level-0 shards only
};

// Partitions `pool_ids` (ascending global path ids) into shards; the plan is
// a pure function of the source contents, the pool, and the options — in
// particular it does not depend on the thread count.  `budget` (optional)
// accounts the sample and assignment panels.
ShardPlan plan_shards(const PathPanelSource& source,
                      std::span<const int> pool_ids,
                      const ShardedSelectionOptions& options,
                      PanelBudget* budget = nullptr);

// Runs the full plan/select/merge/verify pipeline over every path of
// `source`.  Peak resident panel memory is O(shard^2 + block_rows * m), not
// O(n * m).  Throws std::invalid_argument on an empty source or
// non-positive t_cons.
ShardedSelectionResult select_paths_sharded(
    const PathPanelSource& source, double t_cons,
    const ShardedSelectionOptions& options = {});

}  // namespace repro::core
