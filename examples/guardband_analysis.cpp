// Guard-band analysis example (Section 6.3): how the per-path analytic error
// bounds translate into a post-silicon pass/fail screen with zero missed
// failures and a quantified false-alarm rate.
//
// Usage: example_guardband_analysis [benchmark] [epsilon%] [tcons_factor]
//        defaults: s1196 5 1.02
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/benchmarks.h"
#include "core/guardband.h"
#include "core/path_selection.h"
#include "util/stopwatch.h"

using namespace repro;

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "s1196";
  const double eps = (argc > 2 ? std::atof(argv[2]) : 5.0) / 100.0;
  const double tf = argc > 3 ? std::atof(argv[3]) : 1.02;

  std::printf("=== Guard-band analysis: %s (eps = %.1f%%, Tcons = %.2fx "
              "nominal) ===\n\n",
              bench.c_str(), eps * 100.0, tf);
  util::Stopwatch sw;

  core::ExperimentConfig cfg = core::default_experiment_config(bench);
  cfg.tcons_factor = tf;
  const core::Experiment e(cfg);

  core::PathSelectionOptions popt;
  popt.epsilon = eps;
  const core::PathSelectionResult sel =
      core::select_representative_paths(e.model().a(), e.t_cons_ps(), popt);
  const core::LinearPredictor pred = core::make_path_predictor(
      e.model().a(), e.model().mu_paths(), sel.representatives);

  core::McOptions mc;
  mc.samples = core::default_mc_samples();
  const core::GuardbandReport rep = core::guardband_analysis(
      e.model(), pred, sel.errors.per_path_eps, e.t_cons_ps(), eps, mc);

  std::printf("selection: %zu representative paths predict %zu others\n",
              sel.representatives.size(), pred.remaining.size());
  std::printf("analytic guard-bands: avg %.2f%%, max %.2f%% (tolerance "
              "%.1f%%)\n",
              rep.avg_guardband * 100.0, rep.max_guardband * 100.0,
              eps * 100.0);
  std::printf("observed errors:      e1 %.2f%%, e2 %.2f%%\n\n",
              rep.mc.e1 * 100.0, rep.mc.e2 * 100.0);

  std::printf("failure screen over %zu (sample, path) observations:\n",
              rep.observations);
  std::printf("  true timing failures : %zu\n", rep.true_fails);
  std::printf("  flagged by screen    : %zu\n", rep.flagged);
  std::printf("  missed failures      : %zu   <- guard-band guarantee\n",
              rep.missed);
  std::printf("  false alarms         : %zu   (cost of the guard-band)\n",
              rep.false_alarms);
  const double fa_rate =
      rep.observations ? 100.0 * static_cast<double>(rep.false_alarms) /
                             static_cast<double>(rep.observations)
                       : 0.0;
  std::printf("  false-alarm rate     : %.3f%% of observations\n", fa_rate);
  std::printf("\ntotal %.1f s\n", sw.seconds());
  return 0;
}
