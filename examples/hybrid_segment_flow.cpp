// Hybrid path/segment selection flow (the Table-2 recipe): when the random
// variation dimension is high, measuring a few *segments* via custom test
// structures beats measuring paths alone.
//
// Usage: example_hybrid_segment_flow [benchmark] [epsilon%]
//        defaults: s1423 8
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/benchmarks.h"
#include "core/hybrid_selection.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "util/stopwatch.h"

using namespace repro;

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "s1423";
  const double eps = (argc > 2 ? std::atof(argv[2]) : 8.0) / 100.0;

  std::printf("=== Hybrid path/segment selection: %s (eps = %.1f%%) ===\n\n",
              bench.c_str(), eps * 100.0);
  util::Stopwatch sw;

  core::ExperimentConfig cfg = core::default_experiment_config(bench);
  cfg.max_target_paths *= 2;  // Table-2-style larger target pool
  const core::Experiment e(cfg);
  const auto& m = e.model();
  std::printf("targets %zu paths / %zu segments / %zu parameters\n\n",
              m.num_paths(), m.num_segments(), m.num_params());

  // Baseline: path-only approximate selection.
  core::PathSelectionOptions popt;
  popt.epsilon = eps;
  const core::PathSelectionResult psel =
      core::select_representative_paths(m.a(), e.t_cons_ps(), popt);
  std::printf("path-only Algorithm 1: |Pr| = %zu (rank(A) = %zu)\n",
              psel.representatives.size(), psel.exact_rank);

  // Hybrid Algorithm 3 with eps' sweep.
  core::HybridOptions hopt;
  hopt.epsilon = eps;
  const core::HybridResult hyb = core::sweep_hybrid_selection(
      m.a(), m.mu_paths(), m.g(), m.sigma(), m.mu_segments(), e.t_cons_ps(),
      {0.03, 0.05}, hopt);
  std::printf("hybrid Algorithm 3 (best eps' = %.1f%%):\n",
              hyb.eps_prime * 100.0);
  std::printf("  measured paths    |Pr| = %zu\n", hyb.rep_paths.size());
  std::printf("  measured segments |Sr| = %zu\n", hyb.rep_segments.size());
  std::printf("  total measurements      = %zu  (vs %zu path-only, %zu "
              "exact)\n",
              hyb.rep_paths.size() + hyb.rep_segments.size(),
              psel.representatives.size(), hyb.exact_rank);
  std::printf("  analytic worst-case error = %.2f%% (tolerance %.1f%%)\n",
              hyb.eps_achieved * 100.0, eps * 100.0);
  std::printf("  ADMM iterations: %d, paths detected in step 3: %zu\n",
              hyb.admm_iterations, hyb.detected_paths);

  // The selected segments are the ones to instrument with custom test
  // structures; print the first few as a design hint.
  std::printf("\nsegments to instrument (first 10 of %zu):\n",
              hyb.rep_segments.size());
  for (std::size_t k = 0; k < std::min<std::size_t>(10, hyb.rep_segments.size());
       ++k) {
    const auto& seg = e.segments().segments[
        static_cast<std::size_t>(hyb.rep_segments[k])];
    std::printf("  segment %d: %s .. %s (%zu gates)\n", hyb.rep_segments[k],
                e.netlist().gate(seg.gates.front()).name.c_str(),
                e.netlist().gate(seg.gates.back()).name.c_str(),
                seg.gates.size());
  }

  // Monte-Carlo validation of the joint predictor.
  core::McOptions mc;
  mc.samples = core::default_mc_samples();
  const core::McMetrics met = core::evaluate_predictor(m, hyb.predictor, mc);
  std::printf("\nMonte-Carlo (%zu samples): e1 = %.2f%%, e2 = %.2f%%\n",
              met.samples, met.e1 * 100.0, met.e2 * 100.0);
  std::printf("\ntotal %.1f s\n", sw.seconds());
  return 0;
}
