// Streaming recalibration flow: the predictor learns from every tested die.
//
// Walks core::StreamingCalibrator end to end on a benchmark circuit:
//   1. select representative paths and build the robust batch predictor
//      (the PR-2 flow) — it is both the screening gate in front of the
//      streaming state and the graceful-degradation target behind it;
//   2. feed faulted dies one at a time with observe(), watching individual
//      dies get accepted, rejected (gross whole-die innovation), or
//      quarantined (no usable measurement) with structured gate reasons;
//   3. read the status roll-up: the adaptive guard-band tightening as fab
//      data accumulates, the learned shift norm, and the gate counters;
//   4. re-run the stream with a common-mode process drift injected
//      mid-stream and watch the CUSUM monitor flag it within a few dies.
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "core/benchmarks.h"
#include "core/measurement.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "core/predictor.h"
#include "core/streaming_calibrator.h"
#include "linalg/gemm.h"
#include "util/rng.h"
#include "util/text.h"

using namespace repro;

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main() {
  std::printf("=== Streaming recalibration: robust gating, guard-bands, "
              "drift ===\n\n");

  // 1. Clean selection and the robust batch predictor, as in
  //    examples/noisy_silicon_flow.
  const core::Experiment e(core::default_experiment_config("s1196"));
  const auto& model = e.model();
  const linalg::Matrix gram = linalg::gram(model.a());
  const core::SubsetSelector selector =
      core::make_subset_selector(model.a(), gram);
  core::PathSelectionOptions popt;
  popt.epsilon = 0.05;
  const core::PathSelectionResult sel =
      core::select_representative_paths(selector, gram, e.t_cons_ps(), popt);
  const std::vector<int>& rep = sel.representatives;

  const core::FaultSpec spec =
      core::without_dead_slots(core::default_fault_spec());
  core::RobustOptions ropt;
  ropt.measurement_sigma_ps =
      core::expected_noise_sigma(spec, model.mu_paths());
  const core::RobustPredictor robust = core::make_robust_path_predictor(
      model.a(), model.mu_paths(), rep, /*dead=*/{}, ropt);
  std::printf("s1196: %zu target paths, %zu representatives (eps = 5%%)\n\n",
              e.target_paths().size(), rep.size());

  // 2. The calibrator starts from the batch predictor and its prior alone.
  core::StreamingCalibrator cal(robust);
  const double prior_guardband = cal.guardband();
  std::printf("prior state: guard-band %.4f, shift ||b|| = %.3f, health %s\n\n",
              prior_guardband, cal.status().shift_norm,
              core::to_string(cal.status().health));

  // Nominal delays of the measured slots (fault placeholder + noise scale).
  linalg::Vector nominal(rep.size());
  for (std::size_t k = 0; k < rep.size(); ++k) {
    nominal[k] = model.mu_paths()[static_cast<std::size_t>(rep[k])];
  }

  // 3. Stream 200 dies through the tester-fault schedule.  Two dies are
  //    sabotaged beyond what the schedule produces, to show the gates.
  util::Rng rng(2026);
  linalg::Vector x(model.num_params());
  constexpr std::size_t kDies = 200;
  constexpr std::size_t kDeadTester = 60;    // every reading non-finite
  constexpr std::size_t kMassOutlier = 120;  // half the slots +30 sigma
  for (std::size_t die = 0; die < kDies; ++die) {
    for (double& v : x) v = rng.normal();
    const linalg::Vector d = model.path_delays(x);
    linalg::Vector clean(rep.size());
    for (std::size_t k = 0; k < rep.size(); ++k) {
      clean[k] = d[static_cast<std::size_t>(rep[k])];
    }
    core::NoisyMeasurements nm =
        core::apply_faults(clean, nominal, spec, die);
    if (die == kDeadTester) {
      for (double& v : nm.values) {
        v = std::numeric_limits<double>::quiet_NaN();
      }
    } else if (die == kMassOutlier) {
      for (std::size_t k = 0; k < nm.values.size(); k += 2) {
        nm.values[k] += 30.0 * ropt.measurement_sigma_ps;
      }
    }
    const core::DieRecord rec = cal.observe(die, nm.values, nm.valid);
    if (die < 2 || die == kDeadTester || die == kMassOutlier ||
        die + 1 == kDies) {
      std::printf("  die %3zu: %-11s gate=%-18s screened=%zu missing=%zu "
                  "guard-band=%.4f\n",
                  die, rec.accepted ? "accepted" : "not updated",
                  core::to_string(rec.gate), rec.screened_slots,
                  rec.missing_slots, rec.guardband);
    }
  }

  // 4. The roll-up after 200 dies: information accumulated, band tightened.
  const core::StreamStatus& st = cal.status();
  std::printf("\nafter %zu dies: health %s, accepted %zu / rejected %zu / "
              "quarantined %zu\n",
              kDies, core::to_string(st.health), st.dies_accepted,
              st.dies_rejected, st.dies_quarantined);
  std::printf("  guard-band %.4f (from %.4f), learned shift ||b|| = %.3f "
              "sigma, drift score %.2f (threshold %.0f)\n",
              st.guardband, prior_guardband, st.shift_norm, st.drift_score,
              cal.options().cusum_h);

  // 5. Same stream, but the process mean drifts mid-stream: the default
  //    common-mode scenario of evaluate_predictor_streaming shifts every
  //    parameter equally from start_die on.  The CUSUM monitor runs on the
  //    whitened coherent-shift statistic and must flag it within a few
  //    dies, with zero false alarms before the shift.
  core::StreamingMcOptions sopt;
  sopt.mc.samples = 400;
  sopt.faults = spec;
  sopt.drift.start_die = 200;
  sopt.drift.magnitude = 10.0;  // parameter-space norm of the mean shift
  const core::StreamingMcMetrics drifted =
      core::evaluate_predictor_streaming(model, robust, sopt);
  std::printf("\ndrift scenario: %.1f-sigma common-mode shift at die %zu\n",
              sopt.drift.magnitude, sopt.drift.start_die);
  if (drifted.drift_flag_die != core::kNoDie) {
    std::printf("  flagged at die %zu (latency %zu dies), final score %.1f, "
                "health %s\n",
                drifted.drift_flag_die,
                drifted.drift_flag_die - sopt.drift.start_die,
                drifted.status.drift_score,
                core::to_string(drifted.status.health));
  } else {
    std::printf("  NOT flagged (final score %.1f)\n",
                drifted.status.drift_score);
  }
  std::printf("\nDone. Next: bench/bench_streaming for the gated latency / "
              "false-alarm / parity record on s1423.\n");
  return 0;
}
