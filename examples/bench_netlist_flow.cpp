// Running the framework on a real ISCAS'89 `.bench` netlist.
//
// Usage: example_bench_netlist_flow [path/to/netlist.bench]
//
// Without an argument, an embedded copy of the classic s27 benchmark is
// used, demonstrating the whole flow — parse, split DFFs into launch/capture
// pins, place, time, extract paths/segments, build the variation model,
// select representatives, and diagnose a synthetic silicon sample — on a
// netlist the library did not generate itself.
#include <cstdio>
#include <string>

#include "circuit/bench_io.h"
#include "circuit/placement.h"
#include "core/diagnosis.h"
#include "core/path_selection.h"
#include "core/predictor.h"
#include "timing/segments.h"
#include "timing/sta.h"
#include "util/rng.h"
#include "variation/variation_model.h"

using namespace repro;

namespace {

// ISCAS'89 s27: 4 PIs, 1 PO, 3 DFFs, 10 gates — the standard tiny benchmark.
const char* kS27 = R"(# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

}  // namespace

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  circuit::Netlist nl = (argc > 1)
                            ? circuit::read_bench_file(argv[1])
                            : circuit::read_bench_string(kS27, "s27");
  std::printf("=== .bench flow: %s ===\n\n", nl.name().c_str());
  const auto problems = nl.validate();
  if (!problems.empty()) {
    std::printf("netlist problems:\n");
    for (const auto& p : problems) std::printf("  %s\n", p.c_str());
    return 1;
  }
  std::printf("%zu gates, %zu launch points, %zu capture points, depth %zu\n",
              nl.combinational_count(), nl.inputs().size(),
              nl.outputs().size(), nl.depth());

  circuit::place(nl);
  const circuit::GateLibrary lib;
  const timing::TimingGraph graph(nl, lib);
  const timing::StaResult sta = timing::run_sta(graph);
  std::printf("nominal circuit delay: %.1f ps\n", sta.circuit_delay);

  const auto paths = timing::enumerate_worst_paths(graph, {.max_paths = 2000});
  const auto segs = timing::extract_segments(nl, paths);
  const variation::SpatialModel spatial(3);
  const variation::VariationModel model(graph, spatial, paths, segs, {});
  std::printf("%zu launch-to-capture paths, %zu segments, %zu parameters\n\n",
              paths.size(), segs.segments.size(), model.num_params());

  core::PathSelectionOptions opt;
  opt.epsilon = 0.05;
  const core::PathSelectionResult sel =
      core::select_representative_paths(model.a(), sta.circuit_delay, opt);
  std::printf("rank(A) = %zu; representatives at eps=5%%: %zu (eps_r = "
              "%.2f%%)\n",
              sel.exact_rank, sel.representatives.size(), sel.eps_r * 100.0);

  // Fake one silicon sample and diagnose it from the representative
  // measurements alone.
  util::Rng rng(7);
  linalg::Vector x_true(model.num_params());
  for (double& v : x_true) v = rng.normal();
  const linalg::Vector d = model.path_delays(x_true);
  linalg::Vector y(sel.representatives.size());
  for (std::size_t k = 0; k < y.size(); ++k) {
    y[k] = d[static_cast<std::size_t>(sel.representatives[k])];
  }
  const core::DiagnosisResult diag =
      core::diagnose(model, graph, spatial, sel.representatives, {}, y);
  std::printf("\ndiagnosis from %zu measurements (residual %.2e ps):\n",
              y.size(), diag.measurement_residual_ps);
  std::printf("  top gate suspects by estimated delay shift:\n");
  for (std::size_t k = 0; k < std::min<std::size_t>(5, diag.suspects.size());
       ++k) {
    std::printf("    %-8s %+7.2f ps\n",
                nl.gate(diag.suspects[k].gate).name.c_str(),
                diag.suspects[k].delay_shift_ps);
  }
  std::printf("\nPrediction check on one unmeasured path:\n");
  const core::LinearPredictor pred =
      core::make_path_predictor(model.a(), model.mu_paths(),
                                sel.representatives);
  if (!pred.remaining.empty()) {
    const auto i = static_cast<std::size_t>(pred.remaining.front());
    const linalg::Vector p = pred.predict(y);
    std::printf("  predicted %.2f ps vs true %.2f ps\n", p[0], d[i]);
  }
  return 0;
}
