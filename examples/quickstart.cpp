// Quickstart: the paper's Figure-1 example end to end.
//
// Builds the 9-gate subcircuit with four launch-to-capture paths that merge
// at G5, shows that three measured paths predict the fourth with zero error
// (d_p1 = d_p2 - d_p3 + d_p4), and then runs the generic selection machinery
// to find that answer automatically.
#include <cstdio>

#include "circuit/netlist.h"
#include "circuit/placement.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "core/predictor.h"
#include "timing/path_enum.h"
#include "timing/segments.h"
#include "timing/sta.h"
#include "util/rng.h"
#include "variation/variation_model.h"

using namespace repro;

namespace {

circuit::Netlist build_figure1() {
  using circuit::GateType;
  circuit::Netlist nl("figure1");
  const auto i1 = nl.add_gate("pi1", GateType::kInput);
  const auto i2 = nl.add_gate("pi2", GateType::kInput);
  const auto g1 = nl.add_gate("G1", GateType::kBuf);
  const auto g2 = nl.add_gate("G2", GateType::kBuf);
  const auto g3 = nl.add_gate("G3", GateType::kBuf);
  const auto g4 = nl.add_gate("G4", GateType::kBuf);
  const auto g5 = nl.add_gate("G5", GateType::kAnd);
  const auto g6 = nl.add_gate("G6", GateType::kBuf);
  const auto g7 = nl.add_gate("G7", GateType::kBuf);
  const auto g8 = nl.add_gate("G8", GateType::kNot);
  const auto g9 = nl.add_gate("G9", GateType::kNot);
  const auto o1 = nl.add_gate("po1", GateType::kOutput);
  const auto o2 = nl.add_gate("po2", GateType::kOutput);
  nl.connect(i1, g1);
  nl.connect(i2, g2);
  nl.connect(g1, g3);
  nl.connect(g2, g4);
  nl.connect(g3, g5);
  nl.connect(g4, g5);
  nl.connect(g5, g6);
  nl.connect(g5, g7);
  nl.connect(g6, g8);
  nl.connect(g7, g9);
  nl.connect(g8, o1);
  nl.connect(g9, o2);
  return nl;
}

std::string path_string(const circuit::Netlist& nl,
                        const std::vector<circuit::GateId>& gates) {
  std::string s;
  for (circuit::GateId id : gates) {
    if (!s.empty()) s += " -> ";
    s += nl.gate(id).name;
  }
  return s;
}

}  // namespace

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main() {
  std::printf("=== Quickstart: Figure-1 representative path selection ===\n\n");

  circuit::Netlist nl = build_figure1();
  circuit::place(nl);
  const circuit::GateLibrary lib;
  const timing::TimingGraph graph(nl, lib);

  // Enumerate all four launch-to-capture paths.
  const auto paths = timing::enumerate_worst_paths(graph, {.max_paths = 16});
  std::printf("target paths (|Ptar| = %zu):\n", paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::printf("  p%zu: %s  (nominal %.1f ps)\n", i + 1,
                path_string(nl, paths[i].gates).c_str(),
                timing::path_delay_ps(graph, paths[i].gates));
  }

  // Segment decomposition + variation model (3-level quad tree, 21 regions).
  const auto segs = timing::extract_segments(nl, paths);
  const variation::SpatialModel spatial(3);
  const variation::VariationModel model(graph, spatial, paths, segs, {});
  std::printf("\nsegments: %zu, parameters: %zu (= 2*%zu regions + %zu gates)\n",
              model.num_segments(), model.num_params(),
              model.covered_regions(), model.covered_gates());

  // Automatic exact selection: rank(A) = 3 of 4 paths suffice.
  core::PathSelectionOptions opt;
  opt.epsilon = 1e-9;
  double t_cons = 0.0;
  for (double mu : model.mu_paths()) t_cons = std::max(t_cons, mu);
  const core::PathSelectionResult sel =
      core::select_representative_paths(model.a(), t_cons, opt);
  std::printf("\nrank(A) = %zu -> representative paths: ", sel.exact_rank);
  for (int i : sel.representatives) std::printf("p%d ", i + 1);
  std::printf("(the remaining path is predicted exactly)\n");

  // Demonstrate the zero-error prediction on random "silicon".
  const core::LinearPredictor pred = core::make_path_predictor(
      model.a(), model.mu_paths(), sel.representatives);
  util::Rng rng(2026);
  linalg::Vector x(model.num_params());
  std::printf("\nsample  measured -> predicted vs true (remaining path)\n");
  for (int trial = 0; trial < 3; ++trial) {
    for (double& v : x) v = rng.normal();
    const linalg::Vector d = model.path_delays(x);
    linalg::Vector meas(sel.representatives.size());
    for (std::size_t k = 0; k < meas.size(); ++k) {
      meas[k] = d[static_cast<std::size_t>(sel.representatives[k])];
    }
    const linalg::Vector p = pred.predict(meas);
    const auto rem = static_cast<std::size_t>(pred.remaining.front());
    std::printf("  #%d     predicted %.3f ps, true %.3f ps, error %.2e ps\n",
                trial + 1, p[0], d[rem], std::abs(p[0] - d[rem]));
  }

  // And the analytic statement of Figure 1: d_p1 = d_p2 - d_p3 + d_p4.
  std::printf(
      "\nFigure-1 identity check (coefficients of the optimal predictor):\n");
  for (std::size_t k = 0; k < pred.coef.cols(); ++k) {
    std::printf("  coefficient on p%d = %+.3f\n", sel.representatives[k] + 1,
                pred.coef(0, k));
  }
  std::printf("\nDone. Next: examples/path_selection_flow for a full "
              "benchmark-scale run.\n");
  return 0;
}
