// Noisy-silicon flow: what changes when measurements stop being exact.
//
// Walks the robustness layer end to end on a benchmark-scale circuit:
//   1. select representative paths (the clean paper flow);
//   2. inject measurement faults on a single die and watch the naive linear
//      predictor absorb an outlier while the robust one screens it;
//   3. kill a representative path outright and show graceful degradation —
//      the predictor is rebuilt on the survivors, a backup is promoted from
//      the Algorithm-2 pivot order, and the structured PredictorStatus says
//      exactly what happened;
//   4. compare clean / robust / naive e1 over a fault-injected Monte Carlo.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/benchmarks.h"
#include "core/measurement.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "core/predictor.h"
#include "linalg/gemm.h"
#include "util/rng.h"
#include "util/text.h"

using namespace repro;

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main() {
  std::printf("=== Noisy-silicon flow: robust prediction under measurement "
              "faults ===\n\n");

  // 1. Clean selection, as in examples/path_selection_flow.
  const core::Experiment e(core::default_experiment_config("s1196"));
  const auto& model = e.model();
  const linalg::Matrix gram = linalg::gram(model.a());
  const core::SubsetSelector selector =
      core::make_subset_selector(model.a(), gram);
  core::PathSelectionOptions popt;
  popt.epsilon = 0.05;
  const core::PathSelectionResult sel =
      core::select_representative_paths(selector, gram, e.t_cons_ps(), popt);
  const std::vector<int>& rep = sel.representatives;
  std::printf("s1196: %zu target paths, %zu representatives (eps = 5%%)\n\n",
              e.target_paths().size(), rep.size());

  // 2. One die, one absurd tester reading.
  const core::FaultSpec spec = core::default_fault_spec();
  core::RobustOptions ropt;
  ropt.measurement_sigma_ps =
      core::expected_noise_sigma(spec, model.mu_paths());
  const core::RobustPredictor robust = core::make_robust_path_predictor(
      model.a(), model.mu_paths(), rep, /*dead=*/{}, ropt);

  util::Rng rng(2026);
  linalg::Vector x(model.num_params());
  for (double& v : x) v = rng.normal();
  const linalg::Vector d = model.path_delays(x);
  linalg::Vector meas(rep.size());
  for (std::size_t k = 0; k < rep.size(); ++k) {
    meas[k] = d[static_cast<std::size_t>(rep[k])];
  }
  linalg::Vector faulty = meas;
  faulty[1] += 40.0 * ropt.measurement_sigma_ps;  // stuck-at-ish outlier

  const linalg::Vector naive_pred = robust.base.predict(faulty);
  const core::RobustPrediction robust_pred = robust.predict(faulty);
  const linalg::Vector true_pred = robust.base.predict(meas);
  double naive_err = 0.0, robust_err = 0.0;
  for (std::size_t i = 0; i < true_pred.size(); ++i) {
    naive_err = std::max(naive_err, std::abs(naive_pred[i] - true_pred[i]));
    robust_err =
        std::max(robust_err, std::abs(robust_pred.values[i] - true_pred[i]));
  }
  std::printf("single die, slot 1 corrupted by %+0.f ps:\n",
              40.0 * ropt.measurement_sigma_ps);
  std::printf("  naive  max prediction shift: %8.3f ps\n", naive_err);
  std::printf("  robust max prediction shift: %8.3f ps  (screened %zu slot(s),"
              " health %s)\n\n",
              robust_err, robust_pred.screened.size(),
              core::to_string(robust_pred.health));

  // 3. Kill the most informative representative path.
  core::RobustOptions dopt = ropt;
  dopt.backup_order =
      selector.select(std::min(selector.rank(), rep.size() + 8));
  const core::RobustPredictor degraded = core::make_robust_path_predictor(
      model.a(), model.mu_paths(), rep, /*dead=*/{rep[0]}, dopt);
  const core::PredictorStatus& st = degraded.status;
  std::printf("representative path %d declared unmeasurable:\n", rep[0]);
  std::printf("  health:          %s\n", core::to_string(st.health));
  std::printf("  message:         %s\n", st.message.c_str());
  std::printf("  dropped paths:   %zu\n", st.dropped_paths.size());
  std::printf("  promoted backup: %s\n",
              st.promoted_paths.empty()
                  ? "(none)"
                  : std::to_string(st.promoted_paths.front()).c_str());
  std::printf("  gram condition:  %.3e (ridge %.3e)\n", st.gram_condition,
              st.ridge);
  std::printf("  sigma inflation: %.4f\n\n", st.sigma_inflation);

  // 4. Population view: fault-injected Monte Carlo, robust vs naive.
  const core::LinearPredictor clean_pred =
      core::make_path_predictor(model.a(), model.mu_paths(), rep);
  core::McOptions cmc;
  cmc.samples = 1000;
  const core::McMetrics clean = core::evaluate_predictor(model, clean_pred, cmc);

  core::FaultyMcOptions rmc;
  rmc.mc.samples = 1000;
  rmc.faults = core::without_dead_slots(spec);
  const core::FaultyMcMetrics rob =
      core::evaluate_predictor_under_faults(model, degraded, rmc);
  core::FaultyMcOptions nmc;
  nmc.mc.samples = 1000;
  nmc.faults = spec;
  nmc.naive = true;
  const core::FaultyMcMetrics nai =
      core::evaluate_predictor_under_faults(model, robust, nmc);

  std::printf("Monte Carlo over 1000 dies (default fault spec):\n");
  std::printf("  clean  e1 = %s   (exact measurements)\n",
              util::fmt_percent(clean.e1, 2).c_str());
  std::printf("  robust e1 = %s   (screened %.2f slots/die, %zu failed dies)\n",
              util::fmt_percent(rob.metrics.e1, 2).c_str(), rob.mean_screened,
              rob.failed_dies);
  std::printf("  naive  e1 = %s   (outliers absorbed into predictions)\n",
              util::fmt_percent(nai.metrics.e1, 2).c_str());
  std::printf("\nDone. Next: bench/bench_robustness for the full sweep on "
              "s1423.\n");
  return 0;
}
