// Example client for the selection service (src/server/): opens several
// concurrent sessions against a running selection_serverd, drives pipelined
// predicts (which the server gathers into panels), streams a few
// fault-injected dies through the session calibrator, and scrapes the
// telemetry endpoint.  The CI server-smoke job runs exactly this flow and
// validates the scraped metrics with the strict JSON parser.
//
// Usage: example_selection_client <socket-path> [options]
//   --benchmark <name>     circuit to select on        (default s1196)
//   --sessions <n>         concurrent client threads   (default 4)
//   --predicts <n>         pipelined predicts/thread   (default 16)
//   --dies <n>             observed dies on thread 0   (default 4)
//   --metrics-out <file>   write the /metrics JSON here
//   --shutdown             ask the daemon to drain and exit afterwards
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"

using namespace repro;

namespace {

struct Args {
  std::string socket_path;
  std::string benchmark = "s1196";
  std::string metrics_out;
  int sessions = 4;
  int predicts = 16;
  int dies = 4;
  bool shutdown = false;
};

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.socket_path = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_value = i + 1 < argc;
    if (a == "--benchmark" && has_value) {
      args.benchmark = argv[++i];
    } else if (a == "--sessions" && has_value) {
      args.sessions = std::atoi(argv[++i]);
    } else if (a == "--predicts" && has_value) {
      args.predicts = std::atoi(argv[++i]);
    } else if (a == "--dies" && has_value) {
      args.dies = std::atoi(argv[++i]);
    } else if (a == "--metrics-out" && has_value) {
      args.metrics_out = argv[++i];
    } else if (a == "--shutdown") {
      args.shutdown = true;
    } else {
      return false;
    }
  }
  return args.sessions > 0 && args.predicts >= 0 && args.dies >= 0;
}

server::SessionConfig small_session(const std::string& benchmark) {
  server::SessionConfig cfg;
  cfg.benchmark = benchmark;
  // Shrunk pools: the session builds in about a second; the protocol and
  // batching behavior are identical to full scale.
  cfg.max_target_paths = 250;
  cfg.max_candidates = 4000;
  cfg.yield_samples = 300;
  return cfg;
}

// One client thread: open (shared) session, pipeline predicts, stream a few
// fault-injected dies.
void worker(const Args& args, int index, std::atomic<int>& failures) {
  server::Client client;
  if (!client.connect(args.socket_path)) {
    std::fprintf(stderr, "worker %d: connect failed\n", index);
    failures.fetch_add(1);
    return;
  }
  server::SessionInfo info;
  if (!client.open_session(small_session(args.benchmark), info)) {
    std::fprintf(stderr, "worker %d: open failed: %s\n", index,
                 client.last_error_message().c_str());
    failures.fetch_add(1);
    return;
  }
  if (index == 0) {
    std::printf("session %u: rank %u, %u measured -> %u predicted paths "
                "(eps_r %.3f, cached=%d)\n",
                info.session, info.rank, info.n_meas, info.n_rem, info.eps_r,
                info.cached ? 1 : 0);
  }

  // Pipelined predicts: deterministic per-die offsets around nominal (zero
  // in centered measurement space).  Keeping several requests in flight is
  // what lets the server gather panels across workers.
  std::vector<std::uint32_t> seqs;
  for (int k = 0; k < args.predicts; ++k) {
    std::vector<double> measured(info.n_meas);
    for (std::uint32_t j = 0; j < info.n_meas; ++j) {
      measured[j] = 0.5 * (index + 1) + 0.25 * k + 0.01 * j;
    }
    std::uint32_t seq = 0;
    if (!client.send_predict(info.session, measured, seq)) {
      failures.fetch_add(1);
      return;
    }
    seqs.push_back(seq);
  }
  for (std::size_t k = 0; k < seqs.size(); ++k) {
    std::vector<double> predicted;
    std::uint32_t seq = 0;
    if (!client.recv_predict(predicted, seq) || seq != seqs[k] ||
        predicted.size() != info.n_rem) {
      std::fprintf(stderr, "worker %d: predict %zu failed\n", index, k);
      failures.fetch_add(1);
      return;
    }
  }

  // Thread 0 streams fault-injected dies: a NaN slot (tester dropout) and
  // an explicit invalid mask on another; the robust gate screens them.
  if (index == 0) {
    for (int d = 0; d < args.dies; ++d) {
      std::vector<double> measured(info.n_meas, 1.0 + 0.1 * d);
      std::vector<std::uint8_t> valid(info.n_meas, 1);
      if (info.n_meas > 1) measured[0] = std::nan("");
      if (info.n_meas > 2) valid[1] = 0;
      server::ObserveOutcome outcome;
      if (!client.observe(info.session, measured, valid, outcome)) {
        std::fprintf(stderr, "worker 0: observe %d failed: %s\n", d,
                     client.last_error_message().c_str());
        failures.fetch_add(1);
        return;
      }
      std::printf("die %d: accepted=%d guardband=%.4f drift=%.2f\n", d,
                  outcome.accepted ? 1 : 0, outcome.guardband,
                  outcome.drift_score);
    }
  }
}

}  // namespace

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: example_selection_client <socket-path> "
                 "[--benchmark s1196] [--sessions N] [--predicts N] "
                 "[--dies N] [--metrics-out FILE] [--shutdown]\n");
    return 2;
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < args.sessions; ++i) {
    threads.emplace_back(worker, std::cref(args), i, std::ref(failures));
  }
  for (auto& t : threads) t.join();

  server::Client control;
  if (!control.connect(args.socket_path)) {
    std::fprintf(stderr, "control connection failed\n");
    return 1;
  }
  std::string metrics;
  if (!control.metrics(metrics)) {
    std::fprintf(stderr, "metrics scrape failed\n");
    return 1;
  }
  if (!args.metrics_out.empty()) {
    std::FILE* f = std::fopen(args.metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.metrics_out.c_str());
      return 1;
    }
    std::fwrite(metrics.data(), 1, metrics.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  std::printf("metrics scrape: %zu bytes\n", metrics.size());
  if (args.shutdown && !control.shutdown_server()) {
    std::fprintf(stderr, "shutdown request failed\n");
    return 1;
  }
  if (failures.load() != 0) {
    std::fprintf(stderr, "%d worker(s) failed\n", failures.load());
    return 1;
  }
  std::printf("all %d workers completed\n", args.sessions);
  return 0;
}
