// Full benchmark-scale flow (the Table-1 recipe) on one circuit:
//
//   generate -> place -> STA -> candidate enumeration -> yield filter ->
//   segment decomposition -> variation model -> Algorithm 1 selection ->
//   Theorem-2 predictor -> Monte-Carlo validation.
//
// Usage: example_path_selection_flow [benchmark] [epsilon%]
//        defaults: s1423 5
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/benchmarks.h"
#include "core/effective_rank.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "linalg/gemm.h"
#include "util/stopwatch.h"

using namespace repro;

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "s1423";
  const double eps = (argc > 2 ? std::atof(argv[2]) : 5.0) / 100.0;

  std::printf("=== Representative path selection flow: %s (eps = %.1f%%) ===\n\n",
              bench.c_str(), eps * 100.0);
  util::Stopwatch sw;

  core::ExperimentConfig cfg = core::default_experiment_config(bench);
  const core::Experiment e(cfg);
  std::printf("circuit: %zu gates, %zu launch / %zu capture points\n",
              e.total_gates(), e.netlist().inputs().size(),
              e.netlist().outputs().size());
  std::printf("nominal delay %.1f ps, Tcons %.1f ps, estimated yield %.3f\n",
              e.nominal_delay_ps(), e.t_cons_ps(), e.circuit_yield());
  std::printf("candidates enumerated: %zu -> statistically-critical targets: "
              "%zu\n",
              e.candidates_enumerated(), e.target_paths().size());
  std::printf("covered gates %zu, covered regions %zu (of %zu), parameters "
              "%zu\n",
              e.covered_gates(), e.covered_regions(), e.total_regions(),
              e.model().num_params());
  std::printf("segments: %zu\n\n", e.model().num_segments());

  // Selection.
  const linalg::Matrix gram = linalg::gram(e.model().a());
  const core::SubsetSelector selector =
      core::make_subset_selector(e.model().a(), gram);
  std::printf("rank(A) = %zu (exact selection size, Theorem 1)\n",
              selector.rank());
  std::printf("effective rank at 5%% energy: %zu\n",
              core::effective_rank(selector.singular_values(), 0.05));

  core::PathSelectionOptions opt;
  opt.epsilon = eps;
  const core::PathSelectionResult sel =
      core::select_representative_paths(selector, gram, e.t_cons_ps(), opt);
  std::printf("Algorithm 1 at eps = %.1f%%: |Pr| = %zu "
              "(analytic eps_r = %.2f%%, %zu candidate sizes evaluated)\n",
              eps * 100.0, sel.representatives.size(), sel.eps_r * 100.0,
              sel.candidates_evaluated);

  // Validation.
  const core::LinearPredictor pred = core::make_path_predictor(
      e.model().a(), e.model().mu_paths(), sel.representatives);
  core::McOptions mc;
  mc.samples = core::default_mc_samples();
  const core::McMetrics m = core::evaluate_predictor(e.model(), pred, mc);
  std::printf("\nMonte-Carlo validation over %zu samples:\n", m.samples);
  std::printf("  e1 (avg of per-path max rel err)  = %.2f%%\n", m.e1 * 100.0);
  std::printf("  e2 (avg of per-path mean rel err) = %.2f%%\n", m.e2 * 100.0);
  std::printf("  worst observed rel err            = %.2f%%  (analytic bound "
              "%.2f%%)\n",
              m.worst_eps * 100.0, sel.eps_r * 100.0);
  std::printf("\ntotal %.1f s\n", sw.seconds());
  return 0;
}
