// Selection-phase performance: prefix-sweep evaluator + batched panel error
// model vs the pre-PR per-candidate reference.
//
// Phase A replays the old selection loop on the greedy (nested) order: for
// every candidate r, gather S = W[rep, rep], factor it from scratch, and
// run one forward solve per remaining path (the pre-rewrite
// selection_errors_from_gram, preserved verbatim below as the reference).
// Phase B runs the kGreedySweep driver, which prices every candidate in one
// O(n^2 rank) pass.  Both must select the identical prefix; the headline
// metric is speedup_vs_reference.  A probe phase times the batched panel
// evaluator against the per-path reference on a single candidate and checks
// bit-identical results across thread counts.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/error_model.h"
#include "core/path_selection.h"
#include "core/subset_select.h"
#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "linalg/matrix.h"
#include "linalg/simd/dispatch.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace {

using repro::core::SelectionErrors;
using repro::linalg::Matrix;
using repro::linalg::Vector;

// Path-like matrix: rows share k dominant directions plus small noise
// (steep singular-value decay, like the paper's Figure 2(a)).
Matrix correlated_rows(std::size_t n, std::size_t m, std::size_t k,
                       double noise, std::uint64_t seed) {
  repro::util::Rng rng(seed);
  Matrix base(k, m);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < m; ++j) base(i, j) = rng.normal();
  }
  Matrix a(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < k; ++d) {
      const double w = rng.uniform(0.2, 1.0);
      repro::linalg::axpy(w, base.row(d), a.row(i));
    }
    for (std::size_t j = 0; j < m; ++j) a(i, j) += noise * rng.normal();
  }
  return a;
}

// The pre-rewrite selection_errors_from_gram, kept verbatim as the timing
// and correctness reference: per-candidate Cholesky, then one gathered
// right-hand side + forward solve per remaining path.
SelectionErrors reference_selection_errors(const Matrix& gram,
                                           const std::vector<int>& rep,
                                           double t_cons, double kappa) {
  const std::size_t n = gram.rows();
  SelectionErrors out;
  std::vector<char> is_rep(n, 0);
  for (int i : rep) is_rep[static_cast<std::size_t>(i)] = 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_rep[i]) out.remaining.push_back(static_cast<int>(i));
  }
  const std::size_t r = rep.size();
  Matrix s(r, r);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      s(i, j) = gram(static_cast<std::size_t>(rep[i]),
                     static_cast<std::size_t>(rep[j]));
    }
  }
  const repro::linalg::RegularizedChol rc =
      repro::linalg::chol_factor_regularized(s);
  out.sigma.resize(out.remaining.size());
  out.per_path_eps.resize(out.remaining.size());
  Vector w(r);
  for (std::size_t k = 0; k < out.remaining.size(); ++k) {
    const auto i = static_cast<std::size_t>(out.remaining[k]);
    for (std::size_t j = 0; j < r; ++j) {
      w[j] = gram(i, static_cast<std::size_t>(rep[j]));
    }
    const Vector y = repro::linalg::chol_forward(rc.factors, w);
    double var = gram(i, i);
    for (double v : y) var -= v * v;
    var = std::max(var, 0.0);
    out.sigma[k] = std::sqrt(var);
    const double wc = kappa * out.sigma[k];
    out.per_path_eps[k] = wc / t_cons;
    out.max_wc = std::max(out.max_wc, wc);
  }
  out.eps_r = out.max_wc / t_cons;
  return out;
}

std::uint64_t counter_value(const char* name) {
  for (const auto& c : repro::util::telemetry::snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

bool rel_close(double a, double b, double tol) {
  return std::abs(a - b) <= tol * (1.0 + std::max(std::abs(a), std::abs(b)));
}

}  // namespace

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  using namespace repro;
  bench::Harness h("selection_sweep", argc, argv);
  const int scale = util::repro_scale_mode();

  std::size_t n = 2000, m = 220, k = 48;
  if (scale == 0) {
    n = 400;
    m = 80;
    k = 24;
  } else if (scale == 2) {
    n = 4000;
    m = 300;
    k = 64;
  }
  const double t_cons = 2000.0;
  // Tight enough that the selection stops at a nontrivial r (the paper's 5%
  // would collapse this synthetic fixture to r = 1, hiding the probe cost).
  const double epsilon = 1e-3;
  const double kappa = 3.0;

  std::printf("=== Selection-phase sweep vs per-candidate reference ===\n");
  std::printf("n = %zu paths, m = %zu parameters, %zu dominant directions\n\n",
              n, m, k);

  const Matrix a = correlated_rows(n, m, k, 0.05, 20260805);
  util::Stopwatch sw_gram;
  const Matrix gram = [&] {
    const util::telemetry::Span span("bench.gram");
    return linalg::gram(a);
  }();
  // SYRK throughput under the dispatched tier (the selection path's one big
  // dense kernel): GFLOP/s and the fraction of the tier's nominal peak.
  const double gram_seconds = sw_gram.seconds();
  const double gram_flops = static_cast<double>(m) *
                            static_cast<double>(n) *
                            static_cast<double>(n + 1);
  const double gram_gflops =
      gram_seconds > 0.0 ? gram_flops / gram_seconds * 1e-9 : 0.0;
  const double gram_peak = linalg::simd::theoretical_peak_gflops(
      linalg::simd::active_tier(), util::thread_count());
  const core::SubsetSelector selector = core::make_subset_selector(a, gram);
  const std::size_t rank = selector.rank();
  // Cache the pivot order up front so neither phase is charged for it.
  const std::vector<int>& order = selector.greedy_order(gram);
  const std::size_t effective = std::min(rank, order.size());
  std::printf("rank(A) = %zu\n", rank);

  // Phase A: the pre-PR cost of Algorithm 1's linear decrement over the
  // greedy order — one full factorization + per-path solve pass per
  // candidate, from r = rank down to the first tolerance violation.
  util::Stopwatch sw_ref;
  std::size_t ref_r = effective;
  std::size_t ref_candidates = 1;  // the r = rank start is evaluated too
  SelectionErrors ref_errors = [&] {
    const util::telemetry::Span span("bench.reference_decrement");
    std::vector<int> rep(order.begin(),
                         order.begin() + static_cast<std::ptrdiff_t>(ref_r));
    SelectionErrors best = reference_selection_errors(gram, rep, t_cons, kappa);
    while (ref_r > 1) {
      rep.assign(order.begin(),
                 order.begin() + static_cast<std::ptrdiff_t>(ref_r - 1));
      SelectionErrors next =
          reference_selection_errors(gram, rep, t_cons, kappa);
      ++ref_candidates;
      if (next.eps_r > epsilon) break;
      best = std::move(next);
      --ref_r;
    }
    return best;
  }();
  const double t_ref = sw_ref.seconds();
  std::printf("reference decrement: r = %zu after %zu candidates, %.3f s\n",
              ref_r, ref_candidates, t_ref);

  // Phase B: the kGreedySweep driver prices every candidate in one pass.
  util::Stopwatch sw_sweep;
  core::PathSelectionOptions opt;
  opt.epsilon = epsilon;
  opt.kappa = kappa;
  opt.strategy = core::SelectionStrategy::kGreedySweep;
  const core::PathSelectionResult sel = [&] {
    const util::telemetry::Span span("bench.greedy_sweep");
    return core::select_representative_paths(selector, gram, t_cons, opt);
  }();
  const double t_sweep = sw_sweep.seconds();
  const double speedup = (t_sweep > 0.0) ? t_ref / t_sweep : 0.0;
  std::printf("greedy sweep:        r = %zu after %zu candidates, %.3f s\n",
              sel.representatives.size(), sel.candidates_evaluated, t_sweep);
  std::printf("selection-phase speedup: %.1fx\n\n", speedup);

  bool results_match = sel.representatives.size() == ref_r &&
                       std::equal(sel.representatives.begin(),
                                  sel.representatives.end(), order.begin()) &&
                       rel_close(sel.eps_r, ref_errors.eps_r, 1e-10);
  if (!results_match) {
    std::printf("ERROR: sweep selection differs from reference "
                "(r %zu vs %zu, eps %.17g vs %.17g)\n",
                sel.representatives.size(), ref_r, sel.eps_r,
                ref_errors.eps_r);
  }

  // Probe: batched panel evaluator vs per-path reference on one candidate,
  // plus bit-identity across thread counts.
  const std::size_t r_probe = std::max<std::size_t>(1, ref_r);
  const std::vector<int> probe_rep(
      order.begin(), order.begin() + static_cast<std::ptrdiff_t>(r_probe));
  const int reps = (scale == 0) ? 3 : 5;
  util::Stopwatch sw_probe_ref;
  SelectionErrors probe_ref;
  for (int i = 0; i < reps; ++i) {
    probe_ref = reference_selection_errors(gram, probe_rep, t_cons, kappa);
  }
  const double t_probe_ref = sw_probe_ref.seconds();
  util::Stopwatch sw_probe_new;
  SelectionErrors probe_new;
  for (int i = 0; i < reps; ++i) {
    probe_new = core::selection_errors_from_gram(gram, probe_rep, t_cons,
                                                 kappa);
  }
  const double t_probe_new = sw_probe_new.seconds();
  const double panel_speedup =
      (t_probe_new > 0.0) ? t_probe_ref / t_probe_new : 0.0;
  bool probe_match = rel_close(probe_new.eps_r, probe_ref.eps_r, 1e-10);
  for (std::size_t i = 0; probe_match && i < probe_ref.sigma.size(); ++i) {
    probe_match = rel_close(probe_new.sigma[i], probe_ref.sigma[i], 1e-10);
  }
  std::printf("panel evaluator probe (r = %zu, %d reps): %.1fx, match = %s\n",
              r_probe, reps, panel_speedup, probe_match ? "yes" : "NO");

  const std::size_t saved_threads = util::thread_count();
  util::set_threads(1);
  const SelectionErrors e_t1 =
      core::selection_errors_from_gram(gram, probe_rep, t_cons, kappa);
  const core::SelectionErrorSweep s_t1 =
      core::selection_error_sweep(gram, order, t_cons, kappa, effective);
  util::set_threads(4);
  const SelectionErrors e_t4 =
      core::selection_errors_from_gram(gram, probe_rep, t_cons, kappa);
  const core::SelectionErrorSweep s_t4 =
      core::selection_error_sweep(gram, order, t_cons, kappa, effective);
  util::set_threads(saved_threads);
  bool thread_invariant = e_t1.max_wc == e_t4.max_wc &&
                          e_t1.sigma == e_t4.sigma &&
                          s_t1.eps_r == s_t4.eps_r &&
                          s_t1.max_wc == s_t4.max_wc;
  std::printf("thread invariance (1 vs 4 threads): %s\n",
              thread_invariant ? "bit-identical" : "MISMATCH");

  // O(1) allocations per evaluator call, asserted via the model's own
  // counters (exact ratio 1 when telemetry is recording).
  double allocs_per_call = 1.0;
  bool allocs_ok = true;
  if (util::telemetry::enabled()) {
    const std::uint64_t calls = counter_value("core.error_model.calls");
    const std::uint64_t allocs = counter_value("core.error_model.panel_allocs");
    if (calls > 0) {
      allocs_per_call =
          static_cast<double>(allocs) / static_cast<double>(calls);
      allocs_ok = allocs == calls;
    }
  }
  std::printf("panel allocations per evaluator call: %g\n", allocs_per_call);

  h.metric("n_paths", n);
  h.metric("m_params", m);
  h.metric("rank", rank);
  h.metric("selected_r", sel.representatives.size());
  h.metric("reference_candidates", ref_candidates);
  h.metric("t_reference_s", t_ref);
  h.metric("t_sweep_s", t_sweep);
  h.metric("speedup_vs_reference", speedup);
  h.metric("panel_speedup", panel_speedup);
  h.metric("allocs_per_call", allocs_per_call);
  h.metric("results_match", results_match);
  h.metric("thread_invariant", thread_invariant);
  h.metric("syrk_flops_saved", static_cast<std::size_t>(
                                   counter_value("linalg.syrk.flops_saved")));
  h.metric("kernel_tier",
           linalg::simd::tier_name(linalg::simd::active_tier()));
  h.metric("gram_gflops", gram_gflops);
  h.metric("gram_peak_fraction",
           gram_peak > 0.0 ? gram_gflops / gram_peak : 0.0);

  // The >= 3x acceptance bar applies at representative sizes (n >= 2000);
  // the FAST smoke only checks correctness.
  const bool speed_ok = (scale == 0) || speedup >= 3.0;
  return h.finish(results_match && probe_match && thread_invariant &&
                  allocs_ok && speed_ok);
}
