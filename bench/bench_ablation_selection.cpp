// Ablation D: subset-selection heuristic.
//
// DESIGN.md calls out the choice of row-selection heuristic inside
// Algorithm 1.  This ablation compares, for a range of r on two benchmarks:
//   * Algorithm 2 (paper): QR-with-column-pivoting on U_r^T (SVD-truncated)
//   * greedy residual variance: pivoted-Cholesky order of A A^T
// reporting the achieved analytic worst-case error at each budget.  The SVD
// route aims the pivots at the dominant subspace; the greedy route is
// factorization-cheap but slightly less targeted at small r.
#include <cstdio>

#include "bench_common.h"
#include "core/benchmarks.h"
#include "core/error_model.h"
#include "core/subset_select.h"
#include "linalg/gemm.h"
#include "util/telemetry.h"
#include "util/text.h"

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  using namespace repro;
  bench::Harness h("ablation_selection", argc, argv);
  const int scale = util::repro_scale_mode();
  std::vector<std::string> benches{"s1423", "s5378"};
  if (scale == 0) benches = {"s1423"};

  std::printf("=== Ablation D: Algorithm-2 (SVD+QRCP) vs greedy pivot "
              "selection ===\n\n");
  util::TextTable table({"BENCH", "r", "eps_r(alg2)%", "eps_r(greedy)%"});
  std::size_t points = 0, alg2_wins = 0;
  for (const std::string& name : benches) {
    const util::telemetry::Span bench_span("bench.circuit");
    const core::Experiment e(core::default_experiment_config(name));
    const auto& a = e.model().a();
    const linalg::Matrix gram = linalg::gram(a);
    const core::SubsetSelector selector(a, gram);  // Gram route: both methods
    const std::size_t rank = selector.rank();
    for (double frac : {0.02, 0.05, 0.1, 0.2, 0.4}) {
      const std::size_t r = std::max<std::size_t>(
          1, static_cast<std::size_t>(frac * static_cast<double>(rank)));
      const auto alg2 = selector.select(r);
      const auto greedy = selector.select_greedy(r);
      const core::SelectionErrors e2 = core::selection_errors_from_gram(
          gram, alg2, e.t_cons_ps(), 3.0);
      const core::SelectionErrors eg = core::selection_errors_from_gram(
          gram, greedy, e.t_cons_ps(), 3.0);
      table.add_row({name, std::to_string(r), util::fmt_percent(e2.eps_r, 2),
                     util::fmt_percent(eg.eps_r, 2)});
      if (e2.eps_r <= eg.eps_r) ++alg2_wins;
      ++points;
      std::fflush(stdout);
    }
  }
  std::printf("%s\nCSV\n%s", table.render().c_str(),
              table.render_csv().c_str());
  h.metric("sweep_points", points);
  h.metric("alg2_wins", alg2_wins);
  return h.finish(points > 0);
}
