// Ablation A: effective-rank threshold eta.
//
// DESIGN.md calls out the eta = 5% energy threshold as the knob linking the
// singular-value decay to the selection size.  This ablation sweeps eta and
// reports the effective rank, the matching selection size from Algorithm 1
// run at the corresponding tolerance, and the observed e1 — showing the
// smooth accuracy/effort trade-off the paper's Figure 2 implies.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/benchmarks.h"
#include "core/effective_rank.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "linalg/gemm.h"
#include "linalg/svd.h"
#include "util/telemetry.h"
#include "util/text.h"

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  using namespace repro;
  bench::Harness h("ablation_eta", argc, argv);
  const int scale = util::repro_scale_mode();
  std::vector<std::string> benches{"s1423"};
  if (scale == 2) benches = {"s1423", "s9234"};

  std::printf("=== Ablation A: effective-rank threshold eta ===\n\n");
  util::TextTable table({"BENCH", "eta%", "effrank", "eps_tol%", "|Pr|",
                         "e1%", "e2%"});
  std::size_t points = 0;
  double worst_e1 = 0.0;
  for (const std::string& name : benches) {
    const util::telemetry::Span bench_span("bench.circuit");
    const core::Experiment e(core::default_experiment_config(name));
    const auto& a = e.model().a();
    const linalg::Matrix gram = linalg::gram(a);
    const core::SubsetSelector selector = core::make_subset_selector(a, gram);

    for (double eta : {0.01, 0.02, 0.05, 0.10, 0.20}) {
      const std::size_t eff = core::effective_rank(
          selector.singular_values(), eta);
      // Pair each eta with a proportional selection tolerance.
      core::PathSelectionOptions opt;
      opt.epsilon = eta;
      const core::PathSelectionResult sel =
          core::select_representative_paths(selector, gram, e.t_cons_ps(),
                                            opt);
      const core::LinearPredictor pred = core::make_path_predictor(
          a, e.model().mu_paths(), sel.representatives);
      core::McOptions mc;
      mc.samples = core::default_mc_samples() / 2;
      const core::McMetrics m = core::evaluate_predictor(e.model(), pred, mc);
      table.add_row({name, util::fmt_percent(eta, 0), std::to_string(eff),
                     util::fmt_percent(opt.epsilon, 0),
                     std::to_string(sel.representatives.size()),
                     util::fmt_percent(m.e1, 2), util::fmt_percent(m.e2, 2)});
      worst_e1 = std::max(worst_e1, m.e1);
      ++points;
      std::fflush(stdout);
    }
  }
  std::printf("%s\nCSV\n%s", table.render().c_str(),
              table.render_csv().c_str());
  h.metric("sweep_points", points);
  h.metric("worst_e1", worst_e1);
  return h.finish(points > 0);
}
