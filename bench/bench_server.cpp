// Selection-service throughput bench: an in-process Server driven over
// socketpairs (no filesystem socket, no child process), emitting
// BENCH_server.json.
//
// Three timed phases:
//   * bench.sessions — S connections, each with its OWN session (distinct
//     configs), issuing synchronous predicts concurrently: the headline
//     requests_per_s at >= 8 concurrent sessions;
//   * bench.serial  — one connection, one shared session, strict
//     request/response predicts: the per-roundtrip baseline;
//   * bench.batched — S connections hammering the SAME shared session with
//     pipelined predicts: the panel path.  batched_speedup_vs_serial is the
//     per-request wall-clock ratio of the two legs over the same inputs.
//
// Correctness rides along: every response from both legs is compared bit
// for bit against the in-process LinearPredictor (bit_identical), and a
// repeat open of the shared config must leave linalg.qr_colpivot.calls
// untouched (cache_hit_zero_refactor) — the same pins the protocol tests
// enforce, here at bench scale.
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/session.h"
#include "util/socket.h"
#include "util/stopwatch.h"

namespace repro {
namespace {

struct Scale {
  int sessions;       // concurrent sessions (and connections) in every phase
  int session_predicts;  // sync predicts per connection, sessions phase
  int leg_predicts;      // total predicts in each of the serial/batched legs
};

Scale pick_scale() {
  switch (util::repro_scale_mode()) {
    case 0: return {4, 25, 400};     // fast: smoke only, gate does not bind
    case 2: return {8, 100, 4000};   // full
    default: return {8, 50, 1600};
  }
}

server::SessionConfig bench_config(int variant) {
  server::SessionConfig cfg;
  cfg.benchmark = "s1196";
  // Distinct epsilon per variant => distinct cache key => distinct session.
  cfg.epsilon = 0.05 + 0.002 * static_cast<double>(variant);
  cfg.max_target_paths = 250;
  cfg.max_candidates = 4000;
  cfg.yield_samples = 300;
  return cfg;
}

// Deterministic per-request measurement vector (no RNG in benches).
std::vector<double> die_vector(std::size_t n_meas, int conn, int k) {
  std::vector<double> m(n_meas);
  for (std::size_t j = 0; j < n_meas; ++j) {
    m[j] = 250.0 + 3.0 * conn + 0.5 * k + 0.125 * static_cast<double>(j);
  }
  return m;
}

bool connect_client(server::Server& srv, server::Client& client) {
  auto [ours, theirs] = util::socket_pair();
  if (!ours.valid() || !theirs.valid()) return false;
  srv.serve_fd(std::move(theirs));
  return client.adopt(std::move(ours));
}

std::uint64_t counter_value(std::string_view name) {
  const auto snap = util::telemetry::snapshot();
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

}  // namespace

int run(int argc, char** argv) {
  bench::Harness h("server", argc, argv);
  util::telemetry::set_enabled(true);
  const Scale scale = pick_scale();

  server::Server srv;
  bool ok = true;

  // ---- open S distinct sessions (one per connection), concurrently ----
  std::vector<server::Client> clients(scale.sessions);
  std::vector<server::SessionInfo> infos(scale.sessions);
  {
    util::telemetry::Span span("bench.open_sessions");
    std::vector<std::thread> threads;
    std::vector<char> open_ok(scale.sessions, 0);
    for (int c = 0; c < scale.sessions; ++c) {
      threads.emplace_back([&, c] {
        open_ok[c] = connect_client(srv, clients[c]) &&
                     clients[c].open_session(bench_config(c), infos[c]);
      });
    }
    for (auto& t : threads) t.join();
    for (int c = 0; c < scale.sessions; ++c) {
      if (!open_ok[c]) {
        std::printf("open_session %d failed: %s\n", c,
                    clients[c].last_error_message().c_str());
        ok = false;
      }
    }
  }
  if (!ok) return h.finish(false);
  // Each variant's config selects its own measurement-slot count; the
  // shared-session legs below all use session 0's.
  const std::size_t n_meas = infos[0].n_meas;

  // ---- phase 1: requests/s with every session active ----
  double sessions_wall = 0.0;
  {
    util::telemetry::Span span("bench.sessions");
    util::Stopwatch sw;
    std::vector<std::thread> threads;
    std::vector<char> phase_ok(scale.sessions, 1);
    for (int c = 0; c < scale.sessions; ++c) {
      threads.emplace_back([&, c] {
        std::vector<double> predicted;
        for (int k = 0; k < scale.session_predicts; ++k) {
          if (!clients[c].predict(infos[c].session,
                                  die_vector(infos[c].n_meas, c, k),
                                  predicted)) {
            phase_ok[c] = 0;
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    sessions_wall = sw.seconds();
    for (int c = 0; c < scale.sessions; ++c) {
      if (phase_ok[c] == 0) {
        std::printf("sessions conn %d failed: %s\n", c,
                    clients[c].last_error_message().c_str());
      }
      ok = ok && phase_ok[c] != 0;
    }
  }
  const double total_session_requests =
      static_cast<double>(scale.sessions) *
      static_cast<double>(scale.session_predicts);
  const double requests_per_s =
      sessions_wall > 0.0 ? total_session_requests / sessions_wall : 0.0;

  // The shared session every remaining phase uses (variant 0's config).
  const std::uint32_t shared = infos[0].session;
  const std::shared_ptr<server::Session> shared_session =
      srv.sessions().find(shared);
  if (shared_session == nullptr) return h.finish(false);

  // Each leg runs kLegReps times and keeps the fastest repetition: the legs
  // are ~10-20 ms of wall each, so a single scheduler hiccup would
  // otherwise swing the measured ratio.  The outputs are identical across
  // repetitions (same inputs, deterministic predictor), so the bitwise
  // comparison below is unaffected by which repetition's results survive.
  constexpr int kLegReps = 5;

  // ---- phase 2: serial leg (one connection, strict request/response) ----
  std::vector<std::vector<double>> serial_out(
      static_cast<std::size_t>(scale.leg_predicts));
  double serial_wall = 0.0;
  {
    util::telemetry::Span span("bench.serial");
    for (int rep = 0; rep < kLegReps && ok; ++rep) {
      util::Stopwatch sw;
      for (int k = 0; k < scale.leg_predicts; ++k) {
        if (!clients[0].predict(shared, die_vector(n_meas, k % 7, k),
                                serial_out[static_cast<std::size_t>(k)])) {
          std::printf("serial predict %d failed: %s\n", k,
                      clients[0].last_error_message().c_str());
          ok = false;
          break;
        }
      }
      const double wall = sw.seconds();
      if (rep == 0 || wall < serial_wall) serial_wall = wall;
    }
  }

  // ---- phase 3: batched leg (S connections pipelining the same total) ----
  const int per_conn = scale.leg_predicts / scale.sessions;
  std::vector<std::vector<std::vector<double>>> batched_out(
      static_cast<std::size_t>(scale.sessions));
  const std::uint64_t panels_before = shared_session->batcher->panels();
  const std::uint64_t dies_before = shared_session->batcher->dies();
  double batched_wall = 0.0;
  {
    util::telemetry::Span span("bench.batched");
    for (int rep = 0; rep < kLegReps && ok; ++rep) {
      util::Stopwatch sw;
      std::vector<std::thread> threads;
      std::vector<char> phase_ok(scale.sessions, 1);
      for (int c = 0; c < scale.sessions; ++c) {
        threads.emplace_back([&, c] {
          auto& outs = batched_out[static_cast<std::size_t>(c)];
          outs.resize(static_cast<std::size_t>(per_conn));
          // Write the whole burst first (request frames are tiny and fit
          // the socket buffer), then drain the responses in order.
          std::uint32_t seq = 0;
          for (int k = 0; k < per_conn; ++k) {
            if (!clients[c].send_predict(shared, die_vector(n_meas, c, k),
                                         seq)) {
              phase_ok[c] = 0;
              return;
            }
          }
          for (int k = 0; k < per_conn; ++k) {
            if (!clients[c].recv_predict(outs[static_cast<std::size_t>(k)],
                                         seq)) {
              phase_ok[c] = 0;
              return;
            }
          }
        });
      }
      for (auto& t : threads) t.join();
      const double wall = sw.seconds();
      if (rep == 0 || wall < batched_wall) batched_wall = wall;
      for (int c = 0; c < scale.sessions; ++c) {
        if (phase_ok[c] == 0) {
          std::printf("batched conn %d failed: %s\n", c,
                      clients[c].last_error_message().c_str());
        }
        ok = ok && phase_ok[c] != 0;
      }
    }
  }
  const std::uint64_t leg_panels = shared_session->batcher->panels() -
                                   panels_before;
  const std::uint64_t leg_dies = shared_session->batcher->dies() - dies_before;
  const double batch_mean_size =
      leg_panels > 0 ? static_cast<double>(leg_dies) /
                           static_cast<double>(leg_panels)
                     : 0.0;
  const double serial_per_req =
      serial_wall / static_cast<double>(scale.leg_predicts);
  const double batched_total =
      static_cast<double>(per_conn) * static_cast<double>(scale.sessions);
  const double batched_per_req =
      batched_total > 0.0 ? batched_wall / batched_total : 0.0;
  const double speedup =
      batched_per_req > 0.0 ? serial_per_req / batched_per_req : 0.0;

  // ---- correctness pins (outside the timed windows) ----
  bool bit_identical = ok;
  for (int k = 0; k < scale.leg_predicts && bit_identical; ++k) {
    const linalg::Vector ref =
        shared_session->predictor.predict(die_vector(n_meas, k % 7, k));
    const auto& got = serial_out[static_cast<std::size_t>(k)];
    bit_identical = got.size() == ref.size() &&
                    std::memcmp(got.data(), ref.data(),
                                ref.size() * sizeof(double)) == 0;
    if (!bit_identical) {
      std::printf("serial leg result %d differs from in-process predict\n", k);
    }
  }
  for (int c = 0; c < scale.sessions && bit_identical; ++c) {
    for (int k = 0; k < per_conn && bit_identical; ++k) {
      const linalg::Vector ref =
          shared_session->predictor.predict(die_vector(n_meas, c, k));
      const auto& got =
          batched_out[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)];
      bit_identical = got.size() == ref.size() &&
                      std::memcmp(got.data(), ref.data(),
                                  ref.size() * sizeof(double)) == 0;
      if (!bit_identical) {
        std::printf(
            "batched leg result %d/%d differs from in-process predict\n", c,
            k);
      }
    }
  }

  // Re-open of the shared config: cache hit, zero re-factorizations.
  bool cache_hit_zero_refactor = false;
  {
    const std::uint64_t qr_before = counter_value("linalg.qr_colpivot.calls");
    server::Client fresh;
    server::SessionInfo again;
    if (connect_client(srv, fresh) &&
        fresh.open_session(bench_config(0), again)) {
      cache_hit_zero_refactor =
          again.cached && again.session == shared &&
          counter_value("linalg.qr_colpivot.calls") == qr_before;
    }
  }

  srv.stop();
  ok = ok && bit_identical && cache_hit_zero_refactor;

  h.metric("benchmark", "s1196");
  h.metric("requests_per_s", requests_per_s);
  h.metric("concurrent_sessions", static_cast<std::size_t>(scale.sessions));
  h.metric("batched_speedup_vs_serial", speedup);
  h.metric("batch_mean_size", batch_mean_size);
  h.metric("bit_identical", bit_identical);
  h.metric("cache_hit_zero_refactor", cache_hit_zero_refactor);
  h.metric("serial_us_per_request", serial_per_req * 1e6);
  h.metric("batched_us_per_request", batched_per_req * 1e6);
  h.metric("leg_predicts", static_cast<std::size_t>(scale.leg_predicts));
  h.metric("session_predicts_each",
           static_cast<std::size_t>(scale.session_predicts));

  std::printf("[server] %d sessions, %.0f req/s; serial %.1f us/req, "
              "batched %.1f us/req (x%.2f, mean panel %.1f)\n",
              scale.sessions, requests_per_s, serial_per_req * 1e6,
              batched_per_req * 1e6, speedup, batch_mean_size);
  return h.finish(ok);
}

}  // namespace repro

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) { return repro::run(argc, argv); }
