// Figure 2: normalized singular values of the transformation matrix A for
// S1423, (a) under the base configuration and (b) with the random-variation
// sensitivity scaled 3x.  The paper reads the effective rank off the decay:
// a steep drop means few representative paths suffice; scaling the random
// component flattens the decay.
#include <cstdio>

#include "bench_common.h"
#include "core/benchmarks.h"
#include "core/effective_rank.h"
#include "linalg/svd.h"
#include "util/telemetry.h"
#include "util/text.h"

namespace {

using namespace repro;

struct Series {
  std::string label;
  linalg::Vector normalized;
  std::size_t rank;
  std::size_t eff_rank_5;
  std::size_t eff_rank_1;
  std::size_t paths;
  std::size_t params;
};

Series summarize(const core::Experiment& e, const char* label) {
  const linalg::SvdResult f = linalg::svd(e.model().a(), /*want_uv=*/false);
  Series s;
  s.label = label;
  s.normalized = core::normalized_singular_values(f.s);
  s.rank = linalg::svd_rank(f, e.model().a().rows(), e.model().a().cols());
  s.eff_rank_5 = core::effective_rank(f.s, 0.05);
  s.eff_rank_1 = core::effective_rank(f.s, 0.01);
  s.paths = e.model().num_paths();
  s.params = e.model().num_params();
  return s;
}

}  // namespace

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  using namespace repro;
  bench::Harness h("fig2_singular_values", argc, argv);
  std::printf("=== Figure 2: normalized singular values of A (s1423) ===\n\n");

  // Both configurations build concurrently on the shared pool.
  std::vector<core::ExperimentConfig> cfgs(2,
      core::default_experiment_config("s1423"));
  cfgs[0].random_scale = 1.0;
  cfgs[1].random_scale = 3.0;
  const auto experiments = [&] {
    const util::telemetry::Span span("bench.build_experiment");
    return core::build_experiments(cfgs);
  }();
  const Series a = summarize(*experiments[0], "fig2a_base");
  const Series b = summarize(*experiments[1], "fig2b_random_x3");

  std::printf("config            |Ptar|  m(params)  rank(A)  effrank(5%%)  "
              "effrank(1%%)\n");
  for (const Series* s : {&a, &b}) {
    std::printf("%-16s  %6zu  %9zu  %7zu  %11zu  %11zu\n", s->label.c_str(),
                s->paths, s->params, s->rank, s->eff_rank_5, s->eff_rank_1);
  }

  std::printf("\nFirst 30 normalized singular values (lambda_i / sum):\n");
  std::printf("%5s  %14s  %14s\n", "index", a.label.c_str(), b.label.c_str());
  for (std::size_t i = 0; i < 30; ++i) {
    const double va = i < a.normalized.size() ? a.normalized[i] : 0.0;
    const double vb = i < b.normalized.size() ? b.normalized[i] : 0.0;
    std::printf("%5zu  %14.6e  %14.6e\n", i + 1, va, vb);
  }

  // CSV block for plotting.
  std::printf("\nCSV,index,%s,%s\n", a.label.c_str(), b.label.c_str());
  const std::size_t n = std::max(a.normalized.size(), b.normalized.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(n, 100); ++i) {
    const double va = i < a.normalized.size() ? a.normalized[i] : 0.0;
    const double vb = i < b.normalized.size() ? b.normalized[i] : 0.0;
    std::printf("CSV,%zu,%.9e,%.9e\n", i + 1, va, vb);
  }
  h.metric("paths", a.paths);
  h.metric("params", a.params);
  h.metric("rank_base", a.rank);
  h.metric("rank_random_x3", b.rank);
  h.metric("eff_rank_5_base", a.eff_rank_5);
  h.metric("eff_rank_5_random_x3", b.eff_rank_5);
  h.metric("eff_rank_1_base", a.eff_rank_1);
  h.metric("eff_rank_1_random_x3", b.eff_rank_1);
  // The paper's qualitative claim: scaling the random component flattens
  // the singular-value decay, so the effective rank must not shrink.
  return h.finish(b.eff_rank_5 >= a.eff_rank_5);
}
