// Table 2: hybrid path/segment selection vs approximate path selection at
// eps = 8% under a enlarged target-path pools (the paper relaxes the synthesis constraint).
//
// Columns follow the paper: benchmark, |G|, |R|, |G_C|, |R_C|, |Ptar|, then
// approximate path selection (|Pr|, e1, e2), then the hybrid approach
// (|Pr|, |Sr|, |Pr|+|Sr|, e1, e2).  eps' is swept and the minimum
// |Pr|+|Sr| kept, as in the paper.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/benchmarks.h"
#include "core/hybrid_selection.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "linalg/gemm.h"
#include "util/stopwatch.h"
#include "util/text.h"

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  using namespace repro;
  bench::Harness h("table2_hybrid", argc, argv);
  const int scale = util::repro_scale_mode();
  std::vector<std::string> benches = circuit::known_benchmarks();
  if (scale == 0) benches = {"s1196", "s1423", "s1488"};

  constexpr double kEps = 0.08;
  // eps' sweep: the paper parallelizes this at design stage; serially we
  // sweep 3 values at full scale and 2 in the default mode.
  const std::vector<double> eps_prime_sweep =
      (scale == 2) ? std::vector<double>{0.02, 0.04, 0.06}
                   : std::vector<double>{0.05};

  std::printf(
      "=== Table 2: Hybrid Path/Segment Selection (eps = 8%%, enlarged pool) "
      "===\n\n");

  util::TextTable table({"BENCH", "|G|", "|R|", "|G_C|", "|R_C|", "|Ptar|",
                         "P:|Pr|", "P:e1%", "P:e2%", "H:|Pr|", "H:|Sr|",
                         "H:|Pr|+|Sr|", "H:e1%", "H:e2%", "sec"});
  double s_pe1 = 0, s_pe2 = 0, s_he1 = 0, s_he2 = 0;
  double s_ppr = 0, s_hpr = 0, s_hsr = 0;
  int rows = 0;

  for (const std::string& name : benches) {
    util::Stopwatch sw;
    const util::telemetry::Span bench_span("bench.circuit");
    core::ExperimentConfig cfg = core::default_experiment_config(name);
    // The paper obtains its larger Table-2 pools by re-synthesizing under a
    // relaxed timing constraint; our substitute is a larger extraction cap
    // over the same netlist (see EXPERIMENTS.md).  The 2x pool runs at full
    // scale; the default mode keeps the Table-1 pool to bound the ADMM cost.
    if (scale == 2) {
      cfg.max_target_paths *= 2;
    } else {
      // Bound the default-mode ADMM cost on the large circuits.
      cfg.max_target_paths = std::min<std::size_t>(cfg.max_target_paths, 1200);
    }
    const core::Experiment e(cfg);
    const auto& m = e.model();

    // Approximate path selection at eps = 8%.
    const linalg::Matrix gram = linalg::gram(m.a());
    const core::SubsetSelector selector = core::make_subset_selector(m.a(), gram);
    core::PathSelectionOptions popt;
    popt.epsilon = kEps;
    const core::PathSelectionResult psel =
        core::select_representative_paths(selector, gram, e.t_cons_ps(),
                                          popt);
    const core::LinearPredictor ppred = core::make_path_predictor(
        m.a(), m.mu_paths(), psel.representatives);
    core::McOptions mc;
    mc.samples = core::default_mc_samples() / (scale == 2 ? 1 : 2);
    const core::McMetrics pmet = core::evaluate_predictor(m, ppred, mc);

    // Hybrid selection with eps' sweep.
    core::HybridOptions hopt;
    hopt.epsilon = kEps;
    // ADMM budget by scale mode: the refit step repairs feasibility, so
    // fewer iterations only trade a slightly larger |Sr| for time.
    hopt.group_sparse.max_iterations = (scale == 2) ? 120 : 25;
    const core::HybridResult hyb = core::sweep_hybrid_selection(
        m.a(), m.mu_paths(), m.g(), m.sigma(), m.mu_segments(),
        e.t_cons_ps(), eps_prime_sweep, hopt);
    const core::McMetrics hmet =
        core::evaluate_predictor(m, hyb.predictor, mc);

    table.add_row(
        {name, std::to_string(e.total_gates()),
         std::to_string(e.total_regions()), std::to_string(e.covered_gates()),
         std::to_string(e.covered_regions()),
         std::to_string(e.target_paths().size()),
         std::to_string(psel.representatives.size()),
         util::fmt_percent(pmet.e1, 2), util::fmt_percent(pmet.e2, 2),
         std::to_string(hyb.rep_paths.size()),
         std::to_string(hyb.rep_segments.size()),
         std::to_string(hyb.rep_paths.size() + hyb.rep_segments.size()),
         util::fmt_percent(hmet.e1, 2), util::fmt_percent(hmet.e2, 2),
         util::fmt_double(sw.seconds(), 1)});
    s_pe1 += pmet.e1;
    s_pe2 += pmet.e2;
    s_he1 += hmet.e1;
    s_he2 += hmet.e2;
    s_ppr += static_cast<double>(psel.representatives.size());
    s_hpr += static_cast<double>(hyb.rep_paths.size());
    s_hsr += static_cast<double>(hyb.rep_segments.size());
    ++rows;
    std::fflush(stdout);
  }
  if (rows > 0) {
    const double n = rows;
    table.add_row({"Ave", "", "", "", "", "", util::fmt_double(s_ppr / n, 1),
                   util::fmt_percent(s_pe1 / n, 2),
                   util::fmt_percent(s_pe2 / n, 2),
                   util::fmt_double(s_hpr / n, 1),
                   util::fmt_double(s_hsr / n, 1),
                   util::fmt_double((s_hpr + s_hsr) / n, 1),
                   util::fmt_percent(s_he1 / n, 2),
                   util::fmt_percent(s_he2 / n, 2), ""});
  }
  std::printf("%s\nCSV\n%s", table.render().c_str(),
              table.render_csv().c_str());
  if (rows > 0) {
    const double n = rows;
    h.metric("benches", static_cast<std::size_t>(rows));
    h.metric("avg_path_pr", s_ppr / n);
    h.metric("avg_path_e1", s_pe1 / n);
    h.metric("avg_path_e2", s_pe2 / n);
    h.metric("avg_hybrid_pr", s_hpr / n);
    h.metric("avg_hybrid_sr", s_hsr / n);
    h.metric("avg_hybrid_e1", s_he1 / n);
    h.metric("avg_hybrid_e2", s_he2 / n);
  }
  return h.finish(rows > 0);
}
