// Shared bench harness: every binary in bench/ funnels its run through a
// Harness so the cross-PR perf trajectory is a uniform, schema-versioned
// BENCH_<name>.json record instead of free-form stdout.
//
// Record shape (schema_version 1):
//
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "git": "<git describe --always --dirty>",
//     "threads": <pool concurrency>,
//     "scale_mode": "fast" | "default" | "full",
//     "wall_s": <total wall-clock>,
//     "ok": true | false,
//     "telemetry_enabled": true | false,
//     "metrics": { ... bench-specific scalars, insertion order ... },
//     "telemetry": { "counters": {...}, "gauges": {...}, "spans": {...} }
//   }
//
// The telemetry block is the process-wide registry snapshot (see
// util/telemetry.h): per-phase wall-clock comes from spans the bench (and
// the instrumented library layers) opened during the run.  The harness
// resets the registry at construction so the record covers exactly one run.
//
// Output path: argv[1] when present and not a flag, else
// BENCH_<name>.json in the current directory.  Phases inside a bench wrap
// their work in `util::telemetry::Span span("bench.<phase>")`.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/stopwatch.h"
#include "util/telemetry.h"
#include "util/text.h"
#include "util/thread_pool.h"

#ifndef REPRO_GIT_DESCRIBE
#define REPRO_GIT_DESCRIBE "unknown"
#endif

namespace repro::bench {

inline constexpr int kSchemaVersion = 1;

class Harness {
 public:
  Harness(std::string name, int argc, char** argv)
      : name_(std::move(name)) {
    json_path_ = "BENCH_" + name_ + ".json";
    if (argc > 1 && argv[1][0] != '-') json_path_ = argv[1];
    util::telemetry::reset();
  }

  const std::string& json_path() const { return json_path_; }

  // Bench-specific metrics, emitted under "metrics" in insertion order.
  // Doubles render round-trip exact (%.15g..%.17g, shortest that re-parses
  // to the same bits): %.9g truncated small error metrics (an e1 of
  // 3.2e-05 lost digits; anything below the precision floor flattened), and
  // the cross-PR perf trajectory compares these values.  Non-finite values
  // render as null — nan/inf are not JSON and the validator rejects them.
  void metric(std::string_view key, double v) {
    metrics_.emplace_back(std::string(key), util::json::json_double(v));
  }
  void metric(std::string_view key, std::size_t v) {
    metrics_.emplace_back(std::string(key), std::to_string(v));
  }
  void metric(std::string_view key, int v) {
    metrics_.emplace_back(std::string(key), std::to_string(v));
  }
  void metric(std::string_view key, bool v) {
    metrics_.emplace_back(std::string(key), v ? "true" : "false");
  }
  void metric(std::string_view key, const std::string& v) {
    std::string quoted = "\"";
    quoted += util::telemetry::json_escape(v);
    quoted += '"';
    metrics_.emplace_back(std::string(key), std::move(quoted));
  }
  void metric(std::string_view key, const char* v) {
    metric(key, std::string(v));
  }
  // Pre-rendered JSON value (arrays/objects a bench assembles itself, e.g.
  // the robustness sweeps).  The caller guarantees `raw_json` is valid JSON.
  void metric_json(std::string_view key, std::string raw_json) {
    metrics_.emplace_back(std::string(key), std::move(raw_json));
  }

  // Prints the telemetry report, writes the JSON record, and returns the
  // process exit code (0 on ok and a successful write).
  int finish(bool ok = true) {
    const double wall_s = sw_.seconds();
    std::string js;
    js += "{\n  \"schema_version\": ";
    js += std::to_string(kSchemaVersion);
    js += ",\n  \"bench\": \"";
    js += util::telemetry::json_escape(name_);
    js += "\",\n  \"git\": \"";
    js += util::telemetry::json_escape(REPRO_GIT_DESCRIBE);
    js += "\",\n  \"threads\": ";
    js += std::to_string(util::thread_count());
    js += ",\n  \"scale_mode\": \"";
    js += scale_mode_name();
    js += "\",\n  \"wall_s\": ";
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f", wall_s);
    js += buf;
    js += ",\n  \"ok\": ";
    js += ok ? "true" : "false";
    // Lets the validator distinguish "telemetry off" from "snapshot lost":
    // an enabled run with an empty telemetry block is a broken record.
    js += ",\n  \"telemetry_enabled\": ";
    js += util::telemetry::enabled() ? "true" : "false";
    js += ",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      js += (i == 0) ? "\n" : ",\n";
      js += "    \"";
      js += util::telemetry::json_escape(metrics_[i].first);
      js += "\": ";
      js += metrics_[i].second;
    }
    js += metrics_.empty() ? "}" : "\n  }";
    js += ",\n  \"telemetry\": ";
    js += util::telemetry::to_json();
    js += "\n}\n";

    std::printf("\n[%s] wall %.1f s\n", name_.c_str(), wall_s);
    if (util::telemetry::enabled()) {
      const auto snap = util::telemetry::snapshot();
      std::printf("[%s] telemetry: %zu spans, %zu counters\n", name_.c_str(),
                  snap.spans.size(), snap.counters.size());
    }
    bool wrote = false;
    if (std::FILE* f = std::fopen(json_path_.c_str(), "w")) {
      wrote = std::fputs(js.c_str(), f) >= 0;
      std::fclose(f);
    }
    if (wrote) {
      std::printf("[%s] wrote %s\n", name_.c_str(), json_path_.c_str());
    } else {
      std::printf("[%s] ERROR: could not write %s\n", name_.c_str(),
                  json_path_.c_str());
    }
    return (ok && wrote) ? 0 : 1;
  }

 private:
  static const char* scale_mode_name() {
    switch (util::repro_scale_mode()) {
      case 0: return "fast";
      case 2: return "full";
      default: return "default";
    }
  }

  std::string name_;
  std::string json_path_;
  util::Stopwatch sw_;
  std::vector<std::pair<std::string, std::string>> metrics_;
};

}  // namespace repro::bench
