// Ablation C: the Section-4.4 clustering speedup.
//
// Compares direct Algorithm-1 selection against the clustered variant for
// several cluster counts: wall-clock time, selection size, achieved
// worst-case error, and Monte-Carlo e1.  Clustering cuts the factorization
// cost ~k^2-fold at the price of a somewhat larger representative set.
#include <cstdio>

#include "bench_common.h"
#include "core/benchmarks.h"
#include "core/clustering.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "util/stopwatch.h"
#include "util/telemetry.h"
#include "util/text.h"

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  using namespace repro;
  bench::Harness h("ablation_clustering", argc, argv);
  const int scale = util::repro_scale_mode();
  const std::string bench = (scale == 2) ? "s9234" : "s1423";

  std::printf("=== Ablation C: clustered selection speedup (%s, eps = 5%%) "
              "===\n\n",
              bench.c_str());
  const core::Experiment e(core::default_experiment_config(bench));
  const auto& a = e.model().a();
  std::printf("|Ptar| = %zu, m = %zu\n\n", a.rows(), a.cols());

  util::TextTable table(
      {"method", "clusters", "|Pr|", "eps_r%", "greedy_adds", "e1%", "sec"});

  core::McOptions mc;
  mc.samples = core::default_mc_samples() / 2;

  double direct_secs = 0.0;
  std::size_t direct_pr = 0;
  {
    util::Stopwatch sw;
    const util::telemetry::Span span("bench.direct");
    core::PathSelectionOptions opt;
    opt.epsilon = 0.05;
    const core::PathSelectionResult direct =
        core::select_representative_paths(a, e.t_cons_ps(), opt);
    const double secs = sw.seconds();
    direct_secs = secs;
    direct_pr = direct.representatives.size();
    const core::LinearPredictor pred = core::make_path_predictor(
        a, e.model().mu_paths(), direct.representatives);
    const core::McMetrics m = core::evaluate_predictor(e.model(), pred, mc);
    table.add_row({"direct", "1", std::to_string(direct.representatives.size()),
                   util::fmt_percent(direct.eps_r, 2), "0",
                   util::fmt_percent(m.e1, 2), util::fmt_double(secs, 2)});
    std::fflush(stdout);
  }

  double best_clustered_secs = 0.0;
  std::size_t clustered_runs = 0;
  for (std::size_t k : {2u, 4u, 8u, 16u}) {
    util::Stopwatch sw;
    const util::telemetry::Span span("bench.clustered");
    core::ClusteredSelectionOptions copt;
    copt.num_clusters = k;
    copt.selection.epsilon = 0.05;
    const core::ClusteredSelectionResult r =
        core::select_paths_clustered(a, e.t_cons_ps(), copt);
    const double secs = sw.seconds();
    const core::LinearPredictor pred = core::make_path_predictor(
        a, e.model().mu_paths(), r.representatives);
    const core::McMetrics m = core::evaluate_predictor(e.model(), pred, mc);
    table.add_row({"clustered", std::to_string(k),
                   std::to_string(r.representatives.size()),
                   util::fmt_percent(r.eps_r, 2),
                   std::to_string(r.greedy_additions),
                   util::fmt_percent(m.e1, 2), util::fmt_double(secs, 2)});
    if (clustered_runs == 0 || secs < best_clustered_secs) {
      best_clustered_secs = secs;
    }
    ++clustered_runs;
    std::fflush(stdout);
  }
  std::printf("%s\nCSV\n%s", table.render().c_str(),
              table.render_csv().c_str());
  h.metric("direct_pr", direct_pr);
  h.metric("direct_secs", direct_secs);
  h.metric("best_clustered_secs", best_clustered_secs);
  h.metric("clustered_runs", clustered_runs);
  return h.finish(clustered_runs > 0);
}
