// Ablation B: independent random-variation share.
//
// Figure 2(b) shows the singular-value decay flattening when the random
// sensitivities triple.  This ablation turns that single comparison into a
// curve: scale in {1, 2, 3, 4}, reporting effective rank, selection size at
// eps = 5%, and observed errors — the paper's claim that "the number of
// representative paths would dramatically grow" with random variation.
#include <cstdio>

#include "bench_common.h"
#include "core/benchmarks.h"
#include "core/effective_rank.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "linalg/gemm.h"
#include "util/telemetry.h"
#include "util/text.h"

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  using namespace repro;
  bench::Harness h("ablation_random_scale", argc, argv);
  const int scale_mode = util::repro_scale_mode();
  const std::string bench = "s1423";
  std::vector<double> scales{1.0, 2.0, 3.0, 4.0};
  if (scale_mode == 0) scales = {1.0, 3.0};

  std::printf(
      "=== Ablation B: random-variation scale (Figure 2 trend as curve) "
      "===\n\n");
  util::TextTable table({"scale", "|Ptar|", "m", "rank(A)", "effrank(5%)",
                         "|Pr|(eps=5%)", "e1%", "e2%"});
  // One experiment per scale, built concurrently on the shared pool; the
  // per-scale analysis below then runs in input order.
  std::vector<core::ExperimentConfig> cfgs;
  for (double s : scales) {
    cfgs.push_back(core::default_experiment_config(bench));
    cfgs.back().random_scale = s;
  }
  const auto experiments = [&] {
    const util::telemetry::Span span("bench.build_experiment");
    return core::build_experiments(cfgs);
  }();
  std::size_t first_pr = 0, last_pr = 0;
  for (std::size_t ei = 0; ei < experiments.size(); ++ei) {
    const double s = scales[ei];
    const core::Experiment& e = *experiments[ei];
    const auto& a = e.model().a();
    const linalg::Matrix gram = linalg::gram(a);
    const core::SubsetSelector selector = core::make_subset_selector(a, gram);
    core::PathSelectionOptions opt;
    opt.epsilon = 0.05;
    const core::PathSelectionResult sel =
        core::select_representative_paths(selector, gram, e.t_cons_ps(), opt);
    const core::LinearPredictor pred = core::make_path_predictor(
        a, e.model().mu_paths(), sel.representatives);
    core::McOptions mc;
    mc.samples = core::default_mc_samples() / 2;
    const core::McMetrics m = core::evaluate_predictor(e.model(), pred, mc);
    table.add_row({util::fmt_double(s, 1),
                   std::to_string(e.target_paths().size()),
                   std::to_string(e.model().num_params()),
                   std::to_string(selector.rank()),
                   std::to_string(core::effective_rank(
                       selector.singular_values(), 0.05)),
                   std::to_string(sel.representatives.size()),
                   util::fmt_percent(m.e1, 2), util::fmt_percent(m.e2, 2)});
    if (ei == 0) first_pr = sel.representatives.size();
    last_pr = sel.representatives.size();
    std::fflush(stdout);
  }
  std::printf("%s\nCSV\n%s", table.render().c_str(),
              table.render_csv().c_str());
  h.metric("sweep_points", experiments.size());
  h.metric("pr_at_min_scale", first_pr);
  h.metric("pr_at_max_scale", last_pr);
  // The paper's claim: more random variation needs more representatives.
  return h.finish(!experiments.empty() && last_pr >= first_pr);
}
