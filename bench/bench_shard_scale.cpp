// Sharded out-of-core selection at production pool sizes.
//
// The monolithic Algorithm 1 materializes the n x m sensitivity matrix and
// an n x n Gram; at n = 1M that is hundreds of GB and out of reach.  This
// bench drives core::select_paths_sharded over a generator-backed
// FunctionPanelSource — rows are synthesized on demand from
// util::Rng::stream(seed, path_id), so the full matrix never exists — and
// reports wall time, the peak resident panel footprint against a memory
// budget, and shard/repair telemetry.  A side run at a monolithically
// feasible size checks eps_r parity between the sharded pipeline (both
// shard policies) and the monolithic greedy sweep, plus bit-identity of the
// sharded result across thread counts.  validate_bench_json.py gates the
// memory ceiling and the parity flag.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/panel_source.h"
#include "core/path_selection.h"
#include "core/sharded_selection.h"
#include "linalg/matrix.h"
#include "linalg/simd/dispatch.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace {

using repro::linalg::Matrix;

// Shared dominant directions of the synthetic pool (the paper's Figure 2(a)
// spectral shape): every path mixes k base directions plus idiosyncratic
// noise.  Bases come from their own Rng streams so they are independent of
// the per-path streams.
Matrix base_directions(std::size_t k, std::size_t m, std::uint64_t seed) {
  Matrix base(k, m);
  for (std::size_t d = 0; d < k; ++d) {
    repro::util::Rng rng = repro::util::Rng::stream(seed, (1u << 24) + d);
    for (std::size_t j = 0; j < m; ++j) base(d, j) = rng.normal();
  }
  return base;
}

// Deterministic per-path row: a pure function of (seed, id), independent of
// which block materializes it — the property that makes the out-of-core
// pipeline bit-reproducible.  Writes every cell of `row`; allocates nothing.
void synth_row(const Matrix& base, double noise, std::uint64_t seed, int id,
               std::span<double> row) {
  repro::util::Rng rng =
      repro::util::Rng::stream(seed, static_cast<std::uint64_t>(id));
  std::fill(row.begin(), row.end(), 0.0);
  for (std::size_t d = 0; d < base.rows(); ++d) {
    const double w = rng.uniform(0.2, 1.0);
    repro::linalg::axpy(w, base.row(d), row);
  }
  for (double& v : row) v += noise * rng.normal();
}

// Synthetic gate count in [8, 48) for the gate-balanced policy.
double synth_gate_weight(std::uint64_t seed, int id) {
  repro::util::Rng rng =
      repro::util::Rng::stream(seed + 1, static_cast<std::uint64_t>(id));
  return static_cast<double>(8 + rng.uniform_index(40));
}

double span_total_ms(const char* name) {
  for (const auto& s : repro::util::telemetry::snapshot().spans) {
    if (s.name == name) return s.total_ms;
  }
  return 0.0;
}

}  // namespace

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  using namespace repro;
  bench::Harness h("shard_scale", argc, argv);
  const int scale = util::repro_scale_mode();

  std::size_t n = 1'000'000, m = 64, k = 32, n_small = 3000;
  if (scale == 0) {
    n = 20'000;
    m = 32;
    k = 16;
    n_small = 1200;
  } else if (scale == 2) {
    n = 2'000'000;
    m = 96;
    k = 48;
    n_small = 4000;
  }
  const double noise = 0.05;
  const double t_cons = 2000.0;
  const double epsilon = 1e-3;  // tight enough for a nontrivial selection
  const std::uint64_t seed = 20260808;

  std::printf("=== Sharded out-of-core selection scale run ===\n");
  std::printf("pool: n = %zu paths x m = %zu parameters (%zu directions)\n",
              n, m, k);

  const Matrix base = base_directions(k, m, seed);
  const core::FunctionPanelSource source(
      n, m,
      [&](int id, std::span<double> row) {
        synth_row(base, noise, seed, id, row);
      },
      [&](int id) { return synth_gate_weight(seed, id); });

  // Memory ceiling: the dense n x m sensitivity matrix is what the
  // monolithic route would materialize before even forming its Gram; the
  // sharded pipeline must stay under a quarter of it (with a 64 MiB floor so
  // the FAST smoke, whose dense baseline is tiny, gates against a fixed
  // absolute ceiling instead).  The same figure is handed to the pipeline as
  // its SELECT-phase wave cap, so the gate holds on any worker count — an
  // uncapped run's peak scales with the number of concurrently selecting
  // shards.
  const std::size_t dense_bytes = n * m * sizeof(double);
  const std::size_t mem_budget_bytes =
      std::max<std::size_t>(64u << 20, dense_bytes / 4);

  core::ShardedSelectionOptions opt;
  opt.selection.epsilon = epsilon;
  opt.selection.strategy = core::SelectionStrategy::kGreedySweep;
  opt.seed = seed;
  opt.memory_cap_bytes = mem_budget_bytes;

  util::Stopwatch sw;
  const core::ShardedSelectionResult big = [&] {
    const util::telemetry::Span span("bench.shard_scale");
    return core::select_paths_sharded(source, t_cons, opt);
  }();
  const double wall_s = sw.seconds();

  const bool mem_ok = big.peak_panel_bytes <= mem_budget_bytes;

  std::printf("wall: %.1f s | shards: %zu | levels: %zu | union: %zu\n",
              wall_s, big.shards, big.levels, big.union_paths);
  std::printf(
      "selected r = %zu, eps_r = %.3g (tolerance %s), repair: %zu "
      "promotions in %zu rounds\n",
      big.representatives.size(), big.eps_r,
      big.tolerance_met ? "met" : "NOT MET", big.repair_promotions,
      big.repair_rounds);
  std::printf("peak panel bytes: %.1f MiB (budget %.1f MiB, dense %.1f MiB)\n",
              big.peak_panel_bytes / 1048576.0, mem_budget_bytes / 1048576.0,
              dense_bytes / 1048576.0);

  // Parity probe at a monolithically feasible size: same generator, pool
  // small enough for the dense route; the sharded pipeline (both policies)
  // must land within the pinned factor of the monolithic greedy sweep.
  const double parity_factor = 2.0;
  Matrix a_small(n_small, m);
  std::vector<double> gates(n_small);
  for (std::size_t i = 0; i < n_small; ++i) {
    synth_row(base, noise, seed, static_cast<int>(i), a_small.row(i));
    gates[i] = synth_gate_weight(seed, static_cast<int>(i));
  }
  core::PathSelectionOptions mono_opt = opt.selection;
  const core::PathSelectionResult mono =
      core::select_representative_paths(a_small, t_cons, mono_opt);

  const core::MatrixPanelSource small_source(a_small, gates);
  double parity_ratio_path = 0.0, parity_ratio_gate = 0.0;
  bool parity_ok = true;
  for (const core::ShardPolicy policy :
       {core::ShardPolicy::kPathBalanced, core::ShardPolicy::kGateBalanced}) {
    core::ShardedSelectionOptions small_opt = opt;
    small_opt.policy = policy;
    small_opt.num_shards = 4;
    const core::ShardedSelectionResult s =
        core::select_paths_sharded(small_source, t_cons, small_opt);
    // Monolithic eps can sit at a rank cliff near zero, so the parity bound
    // is relative to max(eps_mono, epsilon) and the ratio reported against
    // the same floor.
    const double floor = std::max(mono.eps_r, epsilon);
    const double ratio = s.eps_r / floor;
    parity_ok = parity_ok && s.tolerance_met &&
                s.eps_r <= parity_factor * floor &&
                s.representatives.size() <=
                    static_cast<std::size_t>(
                        parity_factor *
                        static_cast<double>(mono.representatives.size())) +
                        1;
    if (policy == core::ShardPolicy::kPathBalanced) {
      parity_ratio_path = ratio;
    } else {
      parity_ratio_gate = ratio;
    }
  }
  std::printf(
      "parity @ n = %zu: mono r = %zu eps = %.3g | ratio path = %.3f, "
      "gate = %.3f -> %s\n",
      n_small, mono.representatives.size(), mono.eps_r, parity_ratio_path,
      parity_ratio_gate, parity_ok ? "ok" : "VIOLATED");

  // Thread-count invariance of the sharded result (fixed plan, 1 vs 4
  // threads) — the out-of-core pipeline inherits the repo-wide determinism
  // guarantee.
  const std::size_t saved_threads = util::thread_count();
  core::ShardedSelectionOptions inv_opt = opt;
  inv_opt.num_shards = 4;
  util::set_threads(1);
  const core::ShardedSelectionResult inv1 =
      core::select_paths_sharded(small_source, t_cons, inv_opt);
  util::set_threads(4);
  const core::ShardedSelectionResult inv4 =
      core::select_paths_sharded(small_source, t_cons, inv_opt);
  util::set_threads(saved_threads);
  const bool thread_invariant = inv1.representatives == inv4.representatives &&
                                inv1.eps_r == inv4.eps_r &&
                                inv1.union_paths == inv4.union_paths;
  std::printf("thread invariance (1 vs 4 threads): %s\n",
              thread_invariant ? "bit-identical" : "MISMATCH");

  h.metric("n_paths", n);
  h.metric("m_params", m);
  h.metric("wall_s", wall_s);
  h.metric("shards", big.shards);
  h.metric("levels", big.levels);
  h.metric("union_paths", big.union_paths);
  h.metric("selected_r", big.representatives.size());
  h.metric("eps_r", big.eps_r);
  h.metric("tolerance_met", big.tolerance_met);
  h.metric("repair_promotions", big.repair_promotions);
  h.metric("repair_rounds", big.repair_rounds);
  h.metric("peak_panel_bytes", big.peak_panel_bytes);
  h.metric("mem_budget_bytes", mem_budget_bytes);
  h.metric("dense_bytes", dense_bytes);
  h.metric("mem_ok", mem_ok);
  h.metric("t_select_ms", span_total_ms("core.shard.select"));
  h.metric("t_verify_ms", span_total_ms("core.shard.verify"));
  h.metric("parity_n", n_small);
  h.metric("parity_factor", parity_factor);
  h.metric("parity_ratio_path", parity_ratio_path);
  h.metric("parity_ratio_gate", parity_ratio_gate);
  h.metric("parity_ok", parity_ok);
  h.metric("thread_invariant", thread_invariant);
  h.metric("kernel_tier",
           linalg::simd::tier_name(linalg::simd::active_tier()));

  return h.finish(big.tolerance_met && mem_ok && parity_ok &&
                  thread_invariant);
}
