// Section 6.3: guard-band analysis.
//
// For the Table-1 configuration (eps = 5%) and the Table-2 configuration
// (eps = 8%), reports the analytic guard-bands (avg/max eps_i), the observed
// e1/e2, and failure-detection quality when predictions are inflated by the
// per-path guard-band: missed failures (must be ~0) and false alarms.
#include <cstdio>

#include "core/benchmarks.h"
#include "core/guardband.h"
#include "core/path_selection.h"
#include "linalg/gemm.h"
#include "util/text.h"

namespace {

void run_config(const std::string& name, double eps, double tcons_factor,
                repro::util::TextTable& table) {
  using namespace repro;
  core::ExperimentConfig cfg = core::default_experiment_config(name);
  cfg.tcons_factor = tcons_factor;
  const core::Experiment e(cfg);
  const auto& m = e.model();

  core::PathSelectionOptions popt;
  popt.epsilon = eps;
  const core::PathSelectionResult sel =
      core::select_representative_paths(m.a(), e.t_cons_ps(), popt);
  const core::LinearPredictor pred =
      core::make_path_predictor(m.a(), m.mu_paths(), sel.representatives);
  core::McOptions mc;
  mc.samples = core::default_mc_samples();
  const core::GuardbandReport rep = core::guardband_analysis(
      m, pred, sel.errors.per_path_eps, e.t_cons_ps(), eps, mc);

  table.add_row({name, util::fmt_percent(eps, 0),
                 util::fmt_double(tcons_factor, 2),
                 std::to_string(sel.representatives.size()),
                 util::fmt_percent(rep.avg_guardband, 2),
                 util::fmt_percent(rep.max_guardband, 2),
                 util::fmt_percent(rep.mc.e1, 2),
                 util::fmt_percent(rep.mc.e2, 2),
                 std::to_string(rep.true_fails), std::to_string(rep.flagged),
                 std::to_string(rep.missed),
                 std::to_string(rep.false_alarms)});
  std::fflush(stdout);
}

}  // namespace

int main() {
  using namespace repro;
  const int scale = util::repro_scale_mode();
  std::vector<std::string> benches{"s1196", "s1423"};
  if (scale == 2) benches = {"s1196", "s1423", "s5378", "s9234"};
  if (scale == 0) benches = {"s1196", "s1423"};

  std::printf("=== Section 6.3: Guard-band analysis ===\n");
  std::printf(
      "Flag rule: predicted/(1-eps_i) > Tcons, eps_i = per-path analytic "
      "worst-case error.\n\n");
  util::TextTable table({"BENCH", "eps%", "TconsX", "|Pr|", "avg_gb%",
                         "max_gb%", "e1%", "e2%", "true_fails", "flagged",
                         "missed", "false_alarms"});
  for (const std::string& b : benches) {
    run_config(b, 0.05, 1.00, table);  // Table-1 configuration
    run_config(b, 0.08, 1.05, table);  // Table-2 configuration
  }
  std::printf("%s\nCSV\n%s", table.render().c_str(),
              table.render_csv().c_str());
  std::printf(
      "\nInterpretation: missed == 0 validates the worst-case guard-band;\n"
      "avg_gb <= eps shows the average band is tighter than the configured\n"
      "tolerance (paper Sec. 6.3).\n");
  return 0;
}
