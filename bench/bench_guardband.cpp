// Section 6.3: guard-band analysis.
//
// For the Table-1 configuration (eps = 5%) and the Table-2 configuration
// (eps = 8%), reports the analytic guard-bands (avg/max eps_i), the observed
// e1/e2, and failure-detection quality when predictions are inflated by the
// per-path guard-band: missed failures (must be ~0) and false alarms.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/benchmarks.h"
#include "core/guardband.h"
#include "core/path_selection.h"
#include "linalg/gemm.h"
#include "util/telemetry.h"
#include "util/text.h"

namespace {

struct ConfigStats {
  std::size_t missed = 0;
  std::size_t false_alarms = 0;
  std::size_t true_fails = 0;
  double max_guardband = 0.0;
};

ConfigStats run_config(const std::string& name, double eps,
                       double tcons_factor, repro::util::TextTable& table) {
  using namespace repro;
  const util::telemetry::Span bench_span("bench.config");
  core::ExperimentConfig cfg = core::default_experiment_config(name);
  cfg.tcons_factor = tcons_factor;
  const core::Experiment e(cfg);
  const auto& m = e.model();

  core::PathSelectionOptions popt;
  popt.epsilon = eps;
  const core::PathSelectionResult sel =
      core::select_representative_paths(m.a(), e.t_cons_ps(), popt);
  const core::LinearPredictor pred =
      core::make_path_predictor(m.a(), m.mu_paths(), sel.representatives);
  core::McOptions mc;
  mc.samples = core::default_mc_samples();
  const core::GuardbandReport rep = core::guardband_analysis(
      m, pred, sel.errors.per_path_eps, e.t_cons_ps(), eps, mc);

  table.add_row({name, util::fmt_percent(eps, 0),
                 util::fmt_double(tcons_factor, 2),
                 std::to_string(sel.representatives.size()),
                 util::fmt_percent(rep.avg_guardband, 2),
                 util::fmt_percent(rep.max_guardband, 2),
                 util::fmt_percent(rep.mc.e1, 2),
                 util::fmt_percent(rep.mc.e2, 2),
                 std::to_string(rep.true_fails), std::to_string(rep.flagged),
                 std::to_string(rep.missed),
                 std::to_string(rep.false_alarms)});
  std::fflush(stdout);
  return {rep.missed, rep.false_alarms, rep.true_fails, rep.max_guardband};
}

}  // namespace

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  using namespace repro;
  bench::Harness h("guardband", argc, argv);
  const int scale = util::repro_scale_mode();
  std::vector<std::string> benches{"s1196", "s1423"};
  if (scale == 2) benches = {"s1196", "s1423", "s5378", "s9234"};
  if (scale == 0) benches = {"s1196", "s1423"};

  std::printf("=== Section 6.3: Guard-band analysis ===\n");
  std::printf(
      "Flag rule: predicted/(1-eps_i) > Tcons, eps_i = per-path analytic "
      "worst-case error.\n\n");
  util::TextTable table({"BENCH", "eps%", "TconsX", "|Pr|", "avg_gb%",
                         "max_gb%", "e1%", "e2%", "true_fails", "flagged",
                         "missed", "false_alarms"});
  std::size_t total_missed = 0, total_false_alarms = 0, configs = 0;
  std::size_t total_true_fails = 0;
  double worst_gb = 0.0;
  for (const std::string& b : benches) {
    for (const ConfigStats& s :
         {run_config(b, 0.05, 1.00, table),    // Table-1 configuration
          run_config(b, 0.08, 1.05, table)}) { // Table-2 configuration
      total_missed += s.missed;
      total_false_alarms += s.false_alarms;
      total_true_fails += s.true_fails;
      worst_gb = std::max(worst_gb, s.max_guardband);
      ++configs;
    }
  }
  std::printf("%s\nCSV\n%s", table.render().c_str(),
              table.render_csv().c_str());
  std::printf(
      "\nInterpretation: missed == 0 validates the worst-case guard-band;\n"
      "avg_gb <= eps shows the average band is tighter than the configured\n"
      "tolerance (paper Sec. 6.3).\n");
  // The kappa-sigma guard-band is a 3-sigma bound, not absolute: rare tail
  // dies can still slip past, so accept a miss rate under 0.1% of the true
  // failures rather than demanding exactly zero.
  const double miss_rate =
      total_true_fails > 0 ? static_cast<double>(total_missed) /
                                 static_cast<double>(total_true_fails)
                           : 0.0;
  h.metric("configs", configs);
  h.metric("total_true_fails", total_true_fails);
  h.metric("total_missed", total_missed);
  h.metric("total_false_alarms", total_false_alarms);
  h.metric("miss_rate", miss_rate);
  h.metric("worst_max_guardband", worst_gb);
  return h.finish(configs > 0 && miss_rate < 1e-3);
}
