// Streaming recalibration protocol on the Figure-2 circuit (s1423).
//
// Feeds the StreamingCalibrator the same guarded selection and default
// noisy-silicon fault spec as bench_robustness, one die at a time, in two
// scenarios:
//
//   clean — no model drift.  Reports streaming-vs-batch e1 parity (the
//           streaming posterior must not cost accuracy: e1 within 1.1x of
//           the batch robust calibrator), the adaptive guard-band
//           trajectory (monotonically non-inflating as information
//           accumulates), and the CUSUM false-alarm count (must be zero);
//   shift — the same stream with a common-mode parameter drift injected at
//           mid-stream.  Reports the drift-detection latency in dies
//           against the budget.
//
// Both the parity ratio and the detection latency are enforced by
// tools/validate_bench_json.py, so a drift-detector regression fails CI the
// same way a kernel perf regression does.  Everything is recorded as JSON
// (argv[1], default BENCH_streaming.json).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/benchmarks.h"
#include "core/measurement.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "core/predictor.h"
#include "core/streaming_calibrator.h"
#include "linalg/gemm.h"
#include "util/telemetry.h"
#include "util/text.h"

namespace {

using namespace repro;

// Trajectories are emitted downsampled (every stride-th die plus the last)
// so the record stays compact at full scale.
std::string json_trajectory(const linalg::Vector& t, std::size_t points) {
  if (t.empty()) return "[]";
  const std::size_t stride = std::max<std::size_t>(1, t.size() / points);
  std::string js = "[";
  for (std::size_t i = 0; i < t.size(); i += stride) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%s%.6g", i == 0 ? "" : ", ", t[i]);
    js += buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, ", %.6g]", t.back());
  js += buf;
  return js;
}

std::string json_gate_counts(const core::StreamStatus& s) {
  std::string js = "{";
  for (std::size_t g = 0; g < core::kNumStreamGates; ++g) {
    if (s.gate_counts[g] == 0) continue;
    if (js.size() > 1) js += ", ";
    js += "\"";
    js += core::to_string(static_cast<core::StreamGate>(g));
    js += "\": " + std::to_string(s.gate_counts[g]);
  }
  js += "}";
  return js;
}

}  // namespace

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  bench::Harness h("streaming", argc, argv);
  std::printf("=== Streaming recalibration: guard-band + drift detection on "
              "s1423 ===\n\n");

  const core::Experiment e(core::default_experiment_config("s1423"));
  const auto& model = e.model();
  const linalg::Matrix gram = linalg::gram(model.a());
  const core::SubsetSelector selector =
      core::make_subset_selector(model.a(), gram);
  core::PathSelectionOptions popt;
  popt.epsilon = 0.05;
  const core::PathSelectionResult sel =
      core::select_representative_paths(selector, gram, e.t_cons_ps(), popt);
  // The robust-flow measured set: eps-selection plus guard slots from the
  // same Algorithm-2 pivot order (see bench_robustness).
  constexpr std::size_t kGuardPaths = 8;
  const std::vector<int> guarded = selector.select(
      std::min(selector.rank(), sel.representatives.size() + kGuardPaths));
  const std::vector<int> backup_order = selector.select(
      std::min(selector.rank(), guarded.size() + 8));

  const core::FaultSpec spec = core::default_fault_spec();
  std::vector<int> dead_paths;
  for (int slot : spec.dead_slots) {
    if (slot >= 0 && static_cast<std::size_t>(slot) < guarded.size()) {
      dead_paths.push_back(guarded[static_cast<std::size_t>(slot)]);
    }
  }
  core::RobustOptions ropt;
  ropt.backup_order = backup_order;
  ropt.measurement_sigma_ps =
      core::expected_noise_sigma(spec, model.mu_paths());
  const core::RobustPredictor predictor = core::make_robust_path_predictor(
      model.a(), model.mu_paths(), guarded, dead_paths, ropt);

  const std::size_t dies = core::default_mc_samples();
  core::StreamingMcOptions sopt;
  sopt.mc.samples = dies;
  sopt.faults = core::without_dead_slots(spec);
  std::printf("|Pr| = %zu, guarded = %zu, stream = %zu dies, "
              "fault spec = default (1%% noise, 5%% outliers, 1 dead)\n\n",
              sel.representatives.size(), guarded.size(), dies);

  // Batch reference: the same predictor under the same fault stream.
  double batch_e1 = 0.0;
  {
    util::telemetry::Span span("bench.batch_reference");
    core::FaultyMcOptions fopt;
    fopt.mc.samples = dies;
    fopt.faults = sopt.faults;
    batch_e1 = core::evaluate_predictor_under_faults(model, predictor, fopt)
                   .metrics.e1;
  }

  // Clean stream: parity, guard-band trajectory, false alarms.
  core::StreamingMcMetrics clean;
  {
    util::telemetry::Span span("bench.clean_stream");
    clean = core::evaluate_predictor_streaming(model, predictor, sopt);
  }
  const double ratio =
      batch_e1 > 0.0 ? clean.metrics.e1 / batch_e1 : 0.0;
  const std::size_t clean_false_alarms =
      clean.status.drift_flagged ? 1u : 0u;
  std::printf("clean stream: streaming e1 = %s vs batch e1 = %s "
              "(ratio %.3f, budget 1.10)\n",
              util::fmt_percent(clean.metrics.e1, 2).c_str(),
              util::fmt_percent(batch_e1, 2).c_str(), ratio);
  std::printf("  guard-band %.4f -> %.4f (%s), accepted %zu / rejected %zu "
              "/ quarantined %zu, false alarms %zu\n",
              clean.initial_guardband, clean.final_guardband,
              clean.guardband_monotone ? "monotone" : "INFLATED",
              clean.status.dies_accepted, clean.status.dies_rejected,
              clean.status.dies_quarantined, clean_false_alarms);

  // Shift scenario: common-mode drift injected at mid-stream.
  constexpr double kDriftMagnitude = 10.0;  // parameter-space norm (~0.4 sigma/param)
  constexpr std::size_t kDriftBudget = 50;  // dies to detection
  core::StreamingMcOptions dopt = sopt;
  dopt.drift.start_die = dies / 2;
  dopt.drift.magnitude = kDriftMagnitude;
  core::StreamingMcMetrics drifted;
  {
    util::telemetry::Span span("bench.shift_stream");
    drifted = core::evaluate_predictor_streaming(model, predictor, dopt);
  }
  const bool drift_detected =
      drifted.drift_flag_die != core::kNoDie &&
      drifted.drift_flag_die >= dopt.drift.start_die;
  const std::size_t latency =
      drift_detected ? drifted.drift_flag_die - dopt.drift.start_die
                     : static_cast<std::size_t>(-1);
  if (drift_detected) {
    std::printf("shift stream: %.1f-sigma drift at die %zu flagged at die "
                "%zu (latency %zu dies, budget %zu)\n",
                kDriftMagnitude, dopt.drift.start_die,
                drifted.drift_flag_die, latency, kDriftBudget);
  } else {
    std::printf("shift stream: %.1f-sigma drift at die %zu NOT flagged\n",
                kDriftMagnitude, dopt.drift.start_die);
  }

  const bool pass = ratio <= 1.1 && clean.guardband_monotone &&
                    clean_false_alarms == 0 && drift_detected &&
                    latency <= kDriftBudget;
  std::printf("\nacceptance: %s\n", pass ? "PASS" : "FAIL");

  h.metric("benchmark", "s1423");
  h.metric("dies", dies);
  h.metric("representatives", sel.representatives.size());
  h.metric("guarded", guarded.size());
  h.metric("batch_e1", batch_e1);
  h.metric("streaming_e1", clean.metrics.e1);
  h.metric("streaming_e2", clean.metrics.e2);
  h.metric("e1_ratio", ratio);
  h.metric("e1_ratio_budget", 1.1);
  h.metric("guardband_initial", clean.initial_guardband);
  h.metric("guardband_final", clean.final_guardband);
  h.metric("guardband_monotone", clean.guardband_monotone);
  h.metric("clean_false_alarms", clean_false_alarms);
  h.metric("dies_accepted", clean.status.dies_accepted);
  h.metric("dies_rejected", clean.status.dies_rejected);
  h.metric("dies_quarantined", clean.status.dies_quarantined);
  h.metric("final_shift_norm", clean.status.shift_norm);
  h.metric("drift_start_die", dopt.drift.start_die);
  h.metric("drift_magnitude", kDriftMagnitude);
  h.metric("drift_detected", drift_detected);
  h.metric("drift_flag_die",
           drift_detected ? static_cast<int>(drifted.drift_flag_die) : -1);
  h.metric("drift_latency_dies",
           drift_detected ? static_cast<int>(latency) : -1);
  h.metric("drift_budget_dies", kDriftBudget);
  h.metric("pass", pass);
  h.metric_json("clean_gate_counts", json_gate_counts(clean.status));
  h.metric_json("guardband_trajectory",
                json_trajectory(clean.guardband_trajectory, 64));
  h.metric_json("clean_drift_trajectory",
                json_trajectory(clean.drift_trajectory, 64));
  h.metric_json("shift_drift_trajectory",
                json_trajectory(drifted.drift_trajectory, 64));
  return h.finish(pass);
}
