// Noisy-silicon robustness protocol on the Figure-2 circuit (s1423).
//
// Compares three evaluation regimes:
//
//   clean   — the paper protocol: the eps = 5% representative selection,
//             exact measurements, Theorem-2 predictor;
//   robust  — the noisy-silicon protocol: the same pivot-order selection
//             plus kGuardPaths redundant guard measurements (next paths in
//             the Algorithm-2 column-pivot order); measurements pass the
//             core/measurement.h fault model (sensor noise, outliers,
//             dead/dropped slots) and prediction uses the IRLS/Huber robust
//             calibration with dead-path degradation.  The guards matter:
//             with a minimal (rank-matching) measured set every slot has
//             leverage ~1, so an outlier is absorbed instead of detected and
//             sensor noise propagates unaveraged;
//   naive   — the same faulty measurements (same guarded slot set) pushed
//             through the plain linear map, i.e. a pipeline unaware of
//             measurement faults.
//
// Acceptance target: under the default fault spec (1% sensor noise, 5%
// outliers at 10x, one dead representative path) the robust e1 stays below
// 2x the clean baseline while the naive e1 is demonstrably worse.  Also
// sweeps the noise sigma and the dropout rate, and records everything as
// JSON (argv[1], default BENCH_robustness.json).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/benchmarks.h"
#include "core/measurement.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "core/predictor.h"
#include "linalg/gemm.h"
#include "util/stopwatch.h"
#include "util/text.h"

namespace {

using namespace repro;

struct RegimePair {
  std::string label;
  core::FaultyMcMetrics robust;
  core::FaultyMcMetrics naive;
  core::PredictorStatus status;  // of the robust-flow predictor
};

// Robust flow: dead representative paths are excluded at build time (backups
// promoted from the pivot order) and the surviving predictor is evaluated
// with the dead slots stripped from the schedule — its measurement vector no
// longer contains them.  Naive flow: the original predictor sees the full
// fault schedule, dead slots included.
RegimePair run_regime(const core::Experiment& e, const std::vector<int>& rep,
                      const std::vector<int>& backup_order,
                      const core::FaultSpec& spec, std::string label,
                      std::size_t samples) {
  RegimePair out;
  out.label = std::move(label);
  const auto& model = e.model();

  std::vector<int> dead_paths;
  for (int slot : spec.dead_slots) {
    if (slot >= 0 && static_cast<std::size_t>(slot) < rep.size()) {
      dead_paths.push_back(rep[static_cast<std::size_t>(slot)]);
    }
  }
  core::RobustOptions ropt;
  ropt.backup_order = backup_order;
  ropt.measurement_sigma_ps =
      core::expected_noise_sigma(spec, model.mu_paths());

  const core::RobustPredictor robust = core::make_robust_path_predictor(
      model.a(), model.mu_paths(), rep, dead_paths, ropt);
  out.status = robust.status;
  core::FaultyMcOptions rmc;
  rmc.mc.samples = samples;
  rmc.faults = core::without_dead_slots(spec);
  out.robust = core::evaluate_predictor_under_faults(model, robust, rmc);

  const core::RobustPredictor plain =
      core::make_robust_path_predictor(model.a(), model.mu_paths(), rep);
  core::FaultyMcOptions nmc;
  nmc.mc.samples = samples;
  nmc.faults = spec;
  nmc.naive = true;
  out.naive = core::evaluate_predictor_under_faults(model, plain, nmc);
  return out;
}

void add_table_row(util::TextTable& table, const RegimePair& r) {
  table.add_row({r.label, util::fmt_percent(r.robust.metrics.e1, 2),
                 util::fmt_percent(r.robust.metrics.e2, 2),
                 util::fmt_percent(r.naive.metrics.e1, 2),
                 util::fmt_percent(r.naive.metrics.e2, 2),
                 util::fmt_double(r.robust.mean_screened, 2),
                 util::fmt_double(r.robust.mean_missing, 2),
                 std::to_string(r.robust.failed_dies),
                 core::to_string(r.status.health)});
}

void json_metrics(std::string& js, const char* key,
                  const core::FaultyMcMetrics& m) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "\"%s\": {\"e1\": %.9e, \"e2\": %.9e, \"worst_eps\": %.9e, "
                "\"failed_dies\": %zu, \"mean_screened\": %.4f, "
                "\"mean_missing\": %.4f, \"mean_outliers\": %.4f}",
                key, m.metrics.e1, m.metrics.e2, m.metrics.worst_eps,
                m.failed_dies, m.mean_screened, m.mean_missing,
                m.mean_outliers);
  js += buf;
}

std::string json_regime(const RegimePair& r) {
  std::string js = "    {\"label\": \"" + r.label + "\", ";
  json_metrics(js, "robust", r.robust);
  js += ", ";
  json_metrics(js, "naive", r.naive);
  char buf[192];
  std::snprintf(buf, sizeof buf,
                ", \"status\": {\"health\": \"%s\", \"gram_condition\": %.3e, "
                "\"ridge\": %.3e, \"dropped\": %zu, \"promoted\": %zu, "
                "\"sigma_inflation\": %.4f}}",
                core::to_string(r.status.health), r.status.gram_condition,
                r.status.ridge, r.status.dropped_paths.size(),
                r.status.promoted_paths.size(), r.status.sigma_inflation);
  js += buf;
  return js;
}

}  // namespace

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  bench::Harness h("robustness", argc, argv);
  std::printf("=== Robustness: fault-injected e1/e2 on s1423 (Figure-2 "
              "circuit) ===\n\n");

  const core::Experiment e(core::default_experiment_config("s1423"));
  const auto& a = e.model().a();
  const linalg::Matrix gram = linalg::gram(a);
  const core::SubsetSelector selector = core::make_subset_selector(a, gram);
  core::PathSelectionOptions popt;
  popt.epsilon = 0.05;
  const core::PathSelectionResult sel =
      core::select_representative_paths(selector, gram, e.t_cons_ps(), popt);
  const std::vector<int>& rep = sel.representatives;
  // Guarded measured set for the fault regimes: the pivot-order selection of
  // size |Pr| + kGuardPaths.  Its prefix plays the role of the eps-selection
  // (same Algorithm-2 ranking); the tail adds the redundancy the robust
  // calibration needs to detect outliers and average sensor noise.
  constexpr std::size_t kGuardPaths = 8;
  const std::vector<int> guarded = selector.select(
      std::min(selector.rank(), rep.size() + kGuardPaths));
  const std::vector<int> backup_order = selector.select(
      std::min(selector.rank(), guarded.size() + 8));
  const std::size_t samples = core::default_mc_samples();
  std::printf("|Ptar| = %zu, |Pr| = %zu (eps = 5%%), guarded |Pr|+%zu = %zu, "
              "rank(A) = %zu, MC samples = %zu\n\n",
              e.target_paths().size(), rep.size(), kGuardPaths,
              guarded.size(), sel.exact_rank, samples);

  // Clean baseline: the exact-measurement paper protocol.
  const core::LinearPredictor clean_pred =
      core::make_path_predictor(a, e.model().mu_paths(), rep);
  core::McOptions cmc;
  cmc.samples = samples;
  const core::McMetrics clean =
      core::evaluate_predictor(e.model(), clean_pred, cmc);
  std::printf("clean baseline: e1 = %s, e2 = %s\n\n",
              util::fmt_percent(clean.e1, 2).c_str(),
              util::fmt_percent(clean.e2, 2).c_str());

  util::TextTable table({"regime", "e1(robust)", "e2(robust)", "e1(naive)",
                         "e2(naive)", "scr/die", "miss/die", "failed",
                         "health"});

  // Default noisy-silicon regime (the acceptance criterion).
  const core::FaultSpec def = core::default_fault_spec();
  const RegimePair base =
      run_regime(e, guarded, backup_order, def, "default(1%,5%outl,1dead)",
                 samples);
  add_table_row(table, base);

  // Noise-sigma sweep (5% outliers, no dead slots).
  std::vector<RegimePair> noise_sweep;
  for (double frac : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    core::FaultSpec spec;
    spec.noise_sigma_frac = frac;
    spec.outlier_rate = 0.05;
    char label[64];
    std::snprintf(label, sizeof label, "noise sigma %.1f%%", 100.0 * frac);
    noise_sweep.push_back(
        run_regime(e, guarded, backup_order, spec, label, samples));
    add_table_row(table, noise_sweep.back());
  }

  // Dropout-rate sweep (1% noise, 5% outliers).
  std::vector<RegimePair> dropout_sweep;
  for (double rate : {0.0, 0.05, 0.1, 0.2}) {
    core::FaultSpec spec;
    spec.noise_sigma_frac = 0.01;
    spec.outlier_rate = 0.05;
    spec.dropout_rate = rate;
    char label[64];
    std::snprintf(label, sizeof label, "dropout %.0f%%", 100.0 * rate);
    dropout_sweep.push_back(
        run_regime(e, guarded, backup_order, spec, label, samples));
    add_table_row(table, dropout_sweep.back());
  }

  std::printf("%s\nCSV\n%s\n", table.render().c_str(),
              table.render_csv().c_str());

  const double robust_factor =
      clean.e1 > 0.0 ? base.robust.metrics.e1 / clean.e1 : 0.0;
  const double naive_factor =
      clean.e1 > 0.0 ? base.naive.metrics.e1 / clean.e1 : 0.0;
  std::printf("default regime: robust e1 = %.2fx clean (target < 2x), "
              "naive e1 = %.2fx clean\n",
              robust_factor, naive_factor);
  const bool pass = robust_factor < 2.0 &&
                    base.naive.metrics.e1 > base.robust.metrics.e1;
  std::printf("acceptance: %s\n", pass ? "PASS" : "FAIL");

  // Scalars go through the harness; the per-regime records (objects the
  // schema does not know about) ride along as pre-rendered JSON values.
  h.metric("benchmark", "s1423");
  h.metric("targets", e.target_paths().size());
  h.metric("representatives", rep.size());
  h.metric("rank", sel.exact_rank);
  h.metric("mc_samples", samples);
  h.metric("clean_e1", clean.e1);
  h.metric("clean_e2", clean.e2);
  h.metric("robust_vs_clean", robust_factor);
  h.metric("naive_vs_clean", naive_factor);
  h.metric("pass", pass);
  h.metric_json("default_regime", json_regime(base));
  std::string sweep = "[\n";
  for (std::size_t i = 0; i < noise_sweep.size(); ++i) {
    sweep += json_regime(noise_sweep[i]);
    sweep += (i + 1 < noise_sweep.size()) ? ",\n" : "\n";
  }
  sweep += "    ]";
  h.metric_json("noise_sweep", sweep);
  sweep = "[\n";
  for (std::size_t i = 0; i < dropout_sweep.size(); ++i) {
    sweep += json_regime(dropout_sweep[i]);
    sweep += (i + 1 < dropout_sweep.size()) ? ",\n" : "\n";
  }
  sweep += "    ]";
  h.metric_json("dropout_sweep", sweep);
  return h.finish(pass);
}
