// Kernel microbenchmarks (google-benchmark): the numerical workhorses behind
// the selection algorithms — GEMM/Gram, SVD, pivoted QR, symmetric eigen,
// Cholesky-based error evaluation, and the l1-ball projection — plus the
// execution-layer comparisons (pooled vs spawn-per-call GEMM, pooled
// Monte-Carlo evaluation across thread counts).
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>

#include "bench_common.h"
#include "circuit/generator.h"
#include "circuit/placement.h"
#include "core/error_model.h"
#include "core/group_sparse.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "core/subset_select.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/gemm.h"
#include "linalg/qr_colpivot.h"
#include "linalg/simd/dispatch.h"
#include "linalg/svd.h"
#include "linalg/trsm.h"
#include "timing/segments.h"
#include "util/cpu.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "variation/variation_model.h"

namespace {

using namespace repro;

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(n, n, 1);
  const linalg::Matrix b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::multiply(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Reference point for the execution-layer change: the pre-pool GEMM spawned
// a fresh std::thread vector on every call.  Same row partitioning, same
// inner loops — the delta against BM_Gemm is pure spawn/join overhead.
linalg::Matrix gemm_spawn_per_call(const linalg::Matrix& a,
                                   const linalg::Matrix& b,
                                   std::size_t threads) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  linalg::Matrix c(m, n);
  auto rows = [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      double* ci = &c(i, 0);
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = a(i, p);
        if (aip == 0.0) continue;
        const double* bp = b.row(p).data();
        for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  };
  const std::size_t nt = std::min(threads, m);
  if (nt <= 1) {
    rows(0, m);
    return c;
  }
  std::vector<std::thread> workers;
  workers.reserve(nt);
  const std::size_t chunk = (m + nt - 1) / nt;
  for (std::size_t t = 0; t < nt; ++t) {
    const std::size_t rb = t * chunk;
    const std::size_t re = std::min(m, rb + chunk);
    if (rb >= re) break;
    workers.emplace_back([&rows, rb, re] { rows(rb, re); });
  }
  for (auto& w : workers) w.join();
  return c;
}

void BM_GemmSpawnPerCall(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(n, n, 1);
  const linalg::Matrix b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gemm_spawn_per_call(a, b, util::thread_count()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmSpawnPerCall)->Arg(64)->Arg(128)->Arg(256);

void BM_Gram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(n, 2 * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::gram(a));
  }
}
BENCHMARK(BM_Gram)->Arg(128)->Arg(256);

void BM_SvdValuesOnly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(2 * n, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::svd(a, /*want_uv=*/false));
  }
}
BENCHMARK(BM_SvdValuesOnly)->Arg(64)->Arg(128)->Arg(256);

void BM_SvdFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(2 * n, n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::svd(a));
  }
}
BENCHMARK(BM_SvdFull)->Arg(64)->Arg(128);

void BM_QrColPivot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(n, 2 * n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::qr_colpivot(a));
  }
}
BENCHMARK(BM_QrColPivot)->Arg(64)->Arg(128)->Arg(256);

void BM_EigenSym(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = linalg::gram(random_matrix(n, n, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigen_sym(a));
  }
}
BENCHMARK(BM_EigenSym)->Arg(64)->Arg(128)->Arg(256);

void BM_SelectionErrorEvaluation(benchmark::State& state) {
  // The Algorithm-1 inner loop: one candidate-r error evaluation from the
  // precomputed Gram matrix.
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(n, n / 2, 8);
  const linalg::Matrix w = linalg::gram(a);
  std::vector<int> rep;
  for (std::size_t i = 0; i < n / 8; ++i) rep.push_back(static_cast<int>(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::selection_errors_from_gram(w, rep, 1000.0, 3.0));
  }
}
BENCHMARK(BM_SelectionErrorEvaluation)->Arg(128)->Arg(512);

void BM_SubsetSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(n, n / 2, 9);
  const core::SubsetSelector selector(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(n / 8));
  }
}
BENCHMARK(BM_SubsetSelect)->Arg(128)->Arg(512);

void BM_L1BallProjection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(10);
  linalg::Vector v(n);
  for (double& x : v) x = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::project_l1_ball(v, 1.0));
  }
}
BENCHMARK(BM_L1BallProjection)->Arg(256)->Arg(4096);

void BM_GroupSparseAdmm(benchmark::State& state) {
  // Small-but-representative Eqn (10) instance.
  const auto r1 = static_cast<std::size_t>(state.range(0));
  const std::size_t ns = r1 * 2;
  util::Rng rng(11);
  linalg::Matrix g(r1, ns);
  for (std::size_t i = 0; i < r1; ++i) {
    for (std::size_t j = 0; j < ns; ++j) {
      g(i, j) = rng.uniform() < 0.2 ? 1.0 : 0.0;
    }
    g(i, i % ns) = 1.0;
  }
  const linalg::Matrix sigma = random_matrix(ns, ns * 2, 12);
  linalg::Vector mu(ns, 50.0);
  core::GroupSparseOptions opt;
  opt.max_iterations = 60;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::select_segments(g, sigma, mu, 200.0, opt));
  }
}
BENCHMARK(BM_GroupSparseAdmm)->Arg(16)->Arg(48);

// Pooled Monte-Carlo predictor evaluation at bench_baseline_rcp-scale
// inputs; Arg = thread count, so the recorded trajectory shows the parallel
// speedup directly (thread count 1 is the serial reference).  The sampled
// values are bit-identical across all Args by construction.
struct McFixture {
  std::unique_ptr<variation::VariationModel> model;
  core::LinearPredictor predictor;

  McFixture() {
    circuit::Netlist nl = circuit::generate_benchmark("s1423");
    circuit::place(nl);
    const circuit::GateLibrary lib;
    const timing::TimingGraph tg(nl, lib);
    const std::vector<timing::Path> paths =
        timing::enumerate_worst_paths(tg, {.max_paths = 400});
    const timing::SegmentDecomposition dec = timing::extract_segments(nl, paths);
    const variation::SpatialModel spatial(3);
    model = std::make_unique<variation::VariationModel>(
        tg, spatial, paths, dec, variation::VariationOptions{});
    const core::SubsetSelector sel(model->a());
    predictor = core::make_path_predictor(
        model->a(), model->mu_paths(),
        sel.select(std::max<std::size_t>(1, sel.rank() / 4)));
  }
};

void BM_MonteCarloEvaluate(benchmark::State& state) {
  static const McFixture fixture;  // built once, shared across Args
  const std::size_t saved_threads = util::thread_count();
  util::set_threads(static_cast<std::size_t>(state.range(0)));
  core::McOptions opt;
  opt.samples = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::evaluate_predictor(*fixture.model, fixture.predictor, opt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(opt.samples));
  util::set_threads(saved_threads);
}
BENCHMARK(BM_MonteCarloEvaluate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Dispatch-tier throughput sweep: GFLOP/s-vs-peak for GEMM, SYRK, and
// multi-RHS trsm at n = 512 on every tier the host can run.  These are the
// CI perf-gate metrics: tools/validate_bench_json.py checks that the
// gflops/peak_fraction numbers exist and that the dispatched tier clears
// its speedup-vs-scalar floor (clock-independent, so it holds on any
// throttled runner).  A forced REPRO_KERNEL restricts the sweep to exactly
// that tier, so no scalar leg is timed and the speedups degenerate to 1.0;
// the record says so via scalar_timed = 0 (and forced_tier), which the
// validator uses to exempt the floor check.
// ---------------------------------------------------------------------------

struct KernelTimes {
  double gemm_s = 0.0;
  double syrk_s = 0.0;
  double trsm_s = 0.0;
};

// Best-of-reps wall time per kernel under the currently active tier.
KernelTimes time_kernels(std::size_t n, const linalg::Matrix& a,
                         const linalg::Matrix& b, const linalg::Matrix& l,
                         const linalg::Matrix& rhs) {
  KernelTimes best;
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    util::Stopwatch sw;
    benchmark::DoNotOptimize(linalg::multiply(a, b));
    const double tg = sw.seconds();
    sw.reset();
    benchmark::DoNotOptimize(linalg::gram(a));
    const double ts = sw.seconds();
    sw.reset();
    linalg::Matrix x = rhs;
    linalg::trsm_lower_inplace(l, x);
    benchmark::DoNotOptimize(x.row(0).data());
    const double tt = sw.seconds();
    if (rep == 0 || tg < best.gemm_s) best.gemm_s = tg;
    if (rep == 0 || ts < best.syrk_s) best.syrk_s = ts;
    if (rep == 0 || tt < best.trsm_s) best.trsm_s = tt;
  }
  (void)n;
  return best;
}

void run_tier_sweep(repro::bench::Harness& h) {
  namespace simd = linalg::simd;
  const std::size_t n = 512;
  const linalg::Matrix a = random_matrix(n, n, 21);
  const linalg::Matrix b = random_matrix(n, n, 22);
  linalg::Matrix w = linalg::gram(a);
  for (std::size_t i = 0; i < n; ++i) w(i, i) += static_cast<double>(n);
  const linalg::CholFactors f = linalg::chol_factor(std::move(w));
  const linalg::Matrix rhs = random_matrix(n, n, 23);

  const double gemm_flops = 2.0 * static_cast<double>(n * n * n);
  const double syrk_flops = static_cast<double>(n * n * (n + 1));
  const double trsm_flops = static_cast<double>(n * n * n);
  const std::size_t threads = util::thread_count();

  // The dispatched tier is what a plain run uses; a REPRO_KERNEL override
  // restricts the sweep to exactly that tier (the reference leg must not
  // also time the tiers it was told not to use).
  const std::string forced = simd::env_forced_tier();
  const simd::Tier dispatched =
      forced.empty() ? simd::best_available_tier() : simd::active_tier();
  std::vector<simd::Tier> tiers;
  if (forced.empty()) {
    tiers = simd::available_tiers();
  } else {
    tiers = {dispatched};
  }

  std::string tier_list;
  double scalar_gemm_s = 0.0, scalar_syrk_s = 0.0, scalar_trsm_s = 0.0;
  KernelTimes dispatched_times;
  for (simd::Tier t : tiers) {
    const char* name = simd::tier_name(t);
    if (!simd::set_tier(name)) continue;
    const KernelTimes kt = time_kernels(n, a, b, f.l, rhs);
    if (!tier_list.empty()) tier_list += ',';
    tier_list += name;
    const double peak = simd::theoretical_peak_gflops(t, threads);
    h.metric(std::string("gemm_gflops_") + name,
             gemm_flops / kt.gemm_s * 1e-9);
    h.metric(std::string("gemm_peak_fraction_") + name,
             gemm_flops / kt.gemm_s * 1e-9 / peak);
    h.metric(std::string("syrk_gflops_") + name,
             syrk_flops / kt.syrk_s * 1e-9);
    h.metric(std::string("syrk_peak_fraction_") + name,
             syrk_flops / kt.syrk_s * 1e-9 / peak);
    h.metric(std::string("trsm_gflops_") + name,
             trsm_flops / kt.trsm_s * 1e-9);
    h.metric(std::string("trsm_peak_fraction_") + name,
             trsm_flops / kt.trsm_s * 1e-9 / peak);
    if (t == simd::Tier::kScalar) {
      scalar_gemm_s = kt.gemm_s;
      scalar_syrk_s = kt.syrk_s;
      scalar_trsm_s = kt.trsm_s;
    }
    if (t == dispatched) dispatched_times = kt;
  }
  simd::set_tier(simd::tier_name(dispatched));

  const double dispatched_peak =
      simd::theoretical_peak_gflops(dispatched, threads);
  // Whether a scalar leg was actually timed decides if the speedup ratios
  // mean anything: a forced non-scalar tier never times scalar and reports
  // 1.0, which must not trip the validator's floor.
  const bool have_scalar = scalar_gemm_s > 0.0;
  h.metric("kernel_n", n);
  h.metric("dispatched_tier", simd::tier_name(dispatched));
  h.metric("forced_tier", forced.empty() ? "none" : forced);
  h.metric("scalar_timed", have_scalar);
  h.metric("tiers_timed", tier_list);
  h.metric("nominal_cpu_ghz", util::nominal_cpu_ghz());
  h.metric("gemm_gflops", gemm_flops / dispatched_times.gemm_s * 1e-9);
  h.metric("gemm_peak_fraction",
           gemm_flops / dispatched_times.gemm_s * 1e-9 / dispatched_peak);
  h.metric("syrk_gflops", syrk_flops / dispatched_times.syrk_s * 1e-9);
  h.metric("syrk_peak_fraction",
           syrk_flops / dispatched_times.syrk_s * 1e-9 / dispatched_peak);
  h.metric("trsm_gflops", trsm_flops / dispatched_times.trsm_s * 1e-9);
  h.metric("trsm_peak_fraction",
           trsm_flops / dispatched_times.trsm_s * 1e-9 / dispatched_peak);
  // Speedup ratios cancel the clock estimate entirely; 1.0 when the sweep
  // had no scalar leg to compare against (forced non-scalar tier).
  h.metric("gemm_speedup_vs_scalar",
           have_scalar ? scalar_gemm_s / dispatched_times.gemm_s : 1.0);
  h.metric("syrk_speedup_vs_scalar",
           have_scalar ? scalar_syrk_s / dispatched_times.syrk_s : 1.0);
  h.metric("trsm_speedup_vs_scalar",
           have_scalar ? scalar_trsm_s / dispatched_times.trsm_s : 1.0);
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark consumes its
// --benchmark_* flags first, then the harness takes what is left (so an
// explicit JSON output path still works) and wraps the run in the same
// schema-versioned record as every other bench.
// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  repro::bench::Harness h("kernels", argc, argv);
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  h.metric("benchmarks_run", ran);
  {
    const util::telemetry::Span span("bench.tier_sweep");
    run_tier_sweep(h);
  }
  return h.finish(ran > 0);
}
