// Kernel microbenchmarks (google-benchmark): the numerical workhorses behind
// the selection algorithms — GEMM/Gram, SVD, pivoted QR, symmetric eigen,
// Cholesky-based error evaluation, and the l1-ball projection — plus the
// execution-layer comparisons (pooled vs spawn-per-call GEMM, pooled
// Monte-Carlo evaluation across thread counts).
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>

#include "bench_common.h"
#include "circuit/generator.h"
#include "circuit/placement.h"
#include "core/error_model.h"
#include "core/group_sparse.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "core/subset_select.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/gemm.h"
#include "linalg/qr_colpivot.h"
#include "linalg/svd.h"
#include "timing/segments.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "variation/variation_model.h"

namespace {

using namespace repro;

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(n, n, 1);
  const linalg::Matrix b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::multiply(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Reference point for the execution-layer change: the pre-pool GEMM spawned
// a fresh std::thread vector on every call.  Same row partitioning, same
// inner loops — the delta against BM_Gemm is pure spawn/join overhead.
linalg::Matrix gemm_spawn_per_call(const linalg::Matrix& a,
                                   const linalg::Matrix& b,
                                   std::size_t threads) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  linalg::Matrix c(m, n);
  auto rows = [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      double* ci = &c(i, 0);
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = a(i, p);
        if (aip == 0.0) continue;
        const double* bp = b.row(p).data();
        for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  };
  const std::size_t nt = std::min(threads, m);
  if (nt <= 1) {
    rows(0, m);
    return c;
  }
  std::vector<std::thread> workers;
  workers.reserve(nt);
  const std::size_t chunk = (m + nt - 1) / nt;
  for (std::size_t t = 0; t < nt; ++t) {
    const std::size_t rb = t * chunk;
    const std::size_t re = std::min(m, rb + chunk);
    if (rb >= re) break;
    workers.emplace_back([&rows, rb, re] { rows(rb, re); });
  }
  for (auto& w : workers) w.join();
  return c;
}

void BM_GemmSpawnPerCall(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(n, n, 1);
  const linalg::Matrix b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gemm_spawn_per_call(a, b, util::thread_count()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmSpawnPerCall)->Arg(64)->Arg(128)->Arg(256);

void BM_Gram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(n, 2 * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::gram(a));
  }
}
BENCHMARK(BM_Gram)->Arg(128)->Arg(256);

void BM_SvdValuesOnly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(2 * n, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::svd(a, /*want_uv=*/false));
  }
}
BENCHMARK(BM_SvdValuesOnly)->Arg(64)->Arg(128)->Arg(256);

void BM_SvdFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(2 * n, n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::svd(a));
  }
}
BENCHMARK(BM_SvdFull)->Arg(64)->Arg(128);

void BM_QrColPivot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(n, 2 * n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::qr_colpivot(a));
  }
}
BENCHMARK(BM_QrColPivot)->Arg(64)->Arg(128)->Arg(256);

void BM_EigenSym(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = linalg::gram(random_matrix(n, n, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigen_sym(a));
  }
}
BENCHMARK(BM_EigenSym)->Arg(64)->Arg(128)->Arg(256);

void BM_SelectionErrorEvaluation(benchmark::State& state) {
  // The Algorithm-1 inner loop: one candidate-r error evaluation from the
  // precomputed Gram matrix.
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(n, n / 2, 8);
  const linalg::Matrix w = linalg::gram(a);
  std::vector<int> rep;
  for (std::size_t i = 0; i < n / 8; ++i) rep.push_back(static_cast<int>(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::selection_errors_from_gram(w, rep, 1000.0, 3.0));
  }
}
BENCHMARK(BM_SelectionErrorEvaluation)->Arg(128)->Arg(512);

void BM_SubsetSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(n, n / 2, 9);
  const core::SubsetSelector selector(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(n / 8));
  }
}
BENCHMARK(BM_SubsetSelect)->Arg(128)->Arg(512);

void BM_L1BallProjection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(10);
  linalg::Vector v(n);
  for (double& x : v) x = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::project_l1_ball(v, 1.0));
  }
}
BENCHMARK(BM_L1BallProjection)->Arg(256)->Arg(4096);

void BM_GroupSparseAdmm(benchmark::State& state) {
  // Small-but-representative Eqn (10) instance.
  const auto r1 = static_cast<std::size_t>(state.range(0));
  const std::size_t ns = r1 * 2;
  util::Rng rng(11);
  linalg::Matrix g(r1, ns);
  for (std::size_t i = 0; i < r1; ++i) {
    for (std::size_t j = 0; j < ns; ++j) {
      g(i, j) = rng.uniform() < 0.2 ? 1.0 : 0.0;
    }
    g(i, i % ns) = 1.0;
  }
  const linalg::Matrix sigma = random_matrix(ns, ns * 2, 12);
  linalg::Vector mu(ns, 50.0);
  core::GroupSparseOptions opt;
  opt.max_iterations = 60;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::select_segments(g, sigma, mu, 200.0, opt));
  }
}
BENCHMARK(BM_GroupSparseAdmm)->Arg(16)->Arg(48);

// Pooled Monte-Carlo predictor evaluation at bench_baseline_rcp-scale
// inputs; Arg = thread count, so the recorded trajectory shows the parallel
// speedup directly (thread count 1 is the serial reference).  The sampled
// values are bit-identical across all Args by construction.
struct McFixture {
  std::unique_ptr<variation::VariationModel> model;
  core::LinearPredictor predictor;

  McFixture() {
    circuit::Netlist nl = circuit::generate_benchmark("s1423");
    circuit::place(nl);
    const circuit::GateLibrary lib;
    const timing::TimingGraph tg(nl, lib);
    const std::vector<timing::Path> paths =
        timing::enumerate_worst_paths(tg, {.max_paths = 400});
    const timing::SegmentDecomposition dec = timing::extract_segments(nl, paths);
    const variation::SpatialModel spatial(3);
    model = std::make_unique<variation::VariationModel>(
        tg, spatial, paths, dec, variation::VariationOptions{});
    const core::SubsetSelector sel(model->a());
    predictor = core::make_path_predictor(
        model->a(), model->mu_paths(),
        sel.select(std::max<std::size_t>(1, sel.rank() / 4)));
  }
};

void BM_MonteCarloEvaluate(benchmark::State& state) {
  static const McFixture fixture;  // built once, shared across Args
  const std::size_t saved_threads = util::thread_count();
  util::set_threads(static_cast<std::size_t>(state.range(0)));
  core::McOptions opt;
  opt.samples = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::evaluate_predictor(*fixture.model, fixture.predictor, opt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(opt.samples));
  util::set_threads(saved_threads);
}
BENCHMARK(BM_MonteCarloEvaluate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark consumes its
// --benchmark_* flags first, then the harness takes what is left (so an
// explicit JSON output path still works) and wraps the run in the same
// schema-versioned record as every other bench.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  repro::bench::Harness h("kernels", argc, argv);
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  h.metric("benchmarks_run", ran);
  return h.finish(ran > 0);
}
