// Baseline comparison: representative critical path (Liu & Sapatnekar,
// ISPD'09 — the paper's reference [7]) vs this framework.
//
// RCP measures ONE synthesized path and predicts the chip delay; the paper's
// framework measures |Pr| paths and predicts EVERY target path.  This bench
// quantifies both sides on the same circuits: chip-delay prediction error of
// the RCP regressor (where RCP is good) and per-path worst-case error of a
// single-path predictor (where RCP cannot go), next to the framework's
// numbers at eps = 5%.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/baseline_rcp.h"
#include "core/benchmarks.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "timing/ssta.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/telemetry.h"
#include "util/text.h"

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  using namespace repro;
  bench::Harness h("baseline_rcp", argc, argv);
  const int scale = util::repro_scale_mode();
  std::vector<std::string> benches{"s1196", "s1423", "s5378"};
  if (scale == 0) benches = {"s1196"};

  std::printf("=== Baseline: representative critical path (ref [7]) vs "
              "framework ===\n\n");
  util::TextTable table({"BENCH", "rcp_corr", "chip_err%", "rcp_path_e1%",
                         "fw_|Pr|", "fw_e1%"});
  double s_corr = 0, s_chip = 0, s_rcp_e1 = 0, s_fw_e1 = 0;
  int rows = 0;
  for (const std::string& name : benches) {
    const util::telemetry::Span bench_span("bench.circuit");
    const core::Experiment e(core::default_experiment_config(name));
    const auto& m = e.model();
    const timing::SstaResult ssta =
        timing::run_ssta(e.graph(), e.spatial(), e.config().random_scale);
    const core::RcpResult rcp =
        core::select_representative_critical_path(m, e.spatial(), ssta);

    // Chip-delay prediction error of the RCP regressor (Monte Carlo).
    util::Rng rng(11);
    linalg::Vector x(m.num_params());
    util::RunningStats chip_err;
    for (int s = 0; s < 2000; ++s) {
      for (double& v : x) v = rng.normal();
      const linalg::Vector d = m.path_delays(x);
      double chip = 0.0;
      for (double v : d) chip = std::max(chip, v);
      const double pred =
          rcp.slope * d[static_cast<std::size_t>(rcp.path_index)] +
          rcp.intercept;
      chip_err.add(std::abs(pred - chip) / chip);
    }

    // Per-path prediction from the single RCP measurement (what RCP cannot
    // do) vs the framework at eps = 5%.
    const core::LinearPredictor single =
        core::make_path_predictor(m.a(), m.mu_paths(), {rcp.path_index});
    core::McOptions mc;
    mc.samples = core::default_mc_samples() / 2;
    const core::McMetrics rcp_paths = core::evaluate_predictor(m, single, mc);

    core::PathSelectionOptions opt;
    opt.epsilon = 0.05;
    const core::PathSelectionResult sel =
        core::select_representative_paths(m.a(), e.t_cons_ps(), opt);
    const core::LinearPredictor fw = core::make_path_predictor(
        m.a(), m.mu_paths(), sel.representatives);
    const core::McMetrics fw_paths = core::evaluate_predictor(m, fw, mc);

    table.add_row({name, util::fmt_double(rcp.correlation, 3),
                   util::fmt_percent(chip_err.mean(), 2),
                   util::fmt_percent(rcp_paths.e1, 2),
                   std::to_string(sel.representatives.size()),
                   util::fmt_percent(fw_paths.e1, 2)});
    s_corr += rcp.correlation;
    s_chip += chip_err.mean();
    s_rcp_e1 += rcp_paths.e1;
    s_fw_e1 += fw_paths.e1;
    ++rows;
    std::fflush(stdout);
  }
  std::printf("%s\nCSV\n%s", table.render().c_str(),
              table.render_csv().c_str());
  std::printf(
      "\nReading: the RCP predicts the chip delay well (chip_err) but its\n"
      "single measurement leaves large per-path errors (rcp_path_e1); the\n"
      "framework's |Pr| measurements bring every path under eps = 5%%.\n");
  if (rows > 0) {
    const double n = rows;
    h.metric("benches", static_cast<std::size_t>(rows));
    h.metric("avg_rcp_correlation", s_corr / n);
    h.metric("avg_rcp_chip_err", s_chip / n);
    h.metric("avg_rcp_path_e1", s_rcp_e1 / n);
    h.metric("avg_fw_e1", s_fw_e1 / n);
  }
  return h.finish(rows > 0);
}
