// Table 1: exact vs approximate representative path selection (eps = 5%).
//
// Columns follow the paper: benchmark, |G| (gates), |R| (regions), |Ptar|
// (target paths), |Pr| exact (= rank(A)), |Pr| approximate, and the
// Monte-Carlo prediction errors e1/e2 (%) of the approximate selection.
#include <cstdio>

#include "bench_common.h"
#include "core/benchmarks.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "linalg/gemm.h"
#include "util/stopwatch.h"
#include "util/telemetry.h"
#include "util/text.h"

// An uncaught exception aborting through the libstdc++ terminate
// message is an acceptable failure mode for a bench/demo binary.
// NOLINTNEXTLINE(bugprone-exception-escape)
int main(int argc, char** argv) {
  using namespace repro;
  bench::Harness h("table1_path_selection", argc, argv);
  const int scale = util::repro_scale_mode();
  std::vector<std::string> benches = circuit::known_benchmarks();
  if (scale == 0) {
    benches = {"s1196", "s1423", "s1488"};  // REPRO_FAST smoke subset
  }

  std::printf(
      "=== Table 1: Results for Approximate Path Selection (eps = 5%%) ===\n");
  std::printf("(scale mode: %s; see EXPERIMENTS.md)\n\n",
              scale == 0 ? "REPRO_FAST" : scale == 2 ? "REPRO_FULL" : "default");

  util::TextTable table({"BENCH", "|G|", "|R|", "|Ptar|", "|Pr|(exact)",
                         "|Pr|(eps=5%)", "e1%", "e2%", "sec"});
  double sum_e1 = 0.0, sum_e2 = 0.0;
  double sum_exact = 0.0, sum_approx = 0.0;
  int rows = 0;

  for (const std::string& name : benches) {
    util::Stopwatch sw;
    const core::Experiment e = [&] {
      const util::telemetry::Span span("bench.build_experiment");
      return core::Experiment(core::default_experiment_config(name));
    }();
    const auto& a = e.model().a();

    const linalg::Matrix gram = [&] {
      const util::telemetry::Span span("bench.gram");
      return linalg::gram(a);
    }();
    const core::SubsetSelector selector = core::make_subset_selector(a, gram);
    core::PathSelectionOptions opt;
    opt.epsilon = 0.05;
    const core::PathSelectionResult sel =
        core::select_representative_paths(selector, gram, e.t_cons_ps(), opt);

    const core::LinearPredictor pred = core::make_path_predictor(
        a, e.model().mu_paths(), sel.representatives);
    core::McOptions mc;
    mc.samples = core::default_mc_samples();
    const core::McMetrics m = core::evaluate_predictor(e.model(), pred, mc);

    table.add_row({name, std::to_string(e.total_gates()),
                   std::to_string(e.total_regions()),
                   std::to_string(e.target_paths().size()),
                   std::to_string(sel.exact_rank),
                   std::to_string(sel.representatives.size()),
                   util::fmt_percent(m.e1, 2), util::fmt_percent(m.e2, 2),
                   util::fmt_double(sw.seconds(), 1)});
    sum_e1 += m.e1;
    sum_e2 += m.e2;
    sum_exact += static_cast<double>(sel.exact_rank);
    sum_approx += static_cast<double>(sel.representatives.size());
    ++rows;
    std::fflush(stdout);
  }
  if (rows > 0) {
    const double n = rows;
    table.add_row({"Ave", "", "", "", util::fmt_double(sum_exact / n, 1),
                   util::fmt_double(sum_approx / n, 1),
                   util::fmt_percent(sum_e1 / n, 2),
                   util::fmt_percent(sum_e2 / n, 2), ""});
  }
  std::printf("%s\nCSV\n%s", table.render().c_str(),
              table.render_csv().c_str());

  if (rows > 0) {
    const double n = rows;
    h.metric("benches", static_cast<std::size_t>(rows));
    h.metric("avg_exact_rank", sum_exact / n);
    h.metric("avg_approx_size", sum_approx / n);
    h.metric("avg_e1", sum_e1 / n);
    h.metric("avg_e2", sum_e2 / n);
  }
  return h.finish(rows > 0);
}
