# Empty dependencies file for example_guardband_analysis.
# This may be replaced when dependencies are built.
