file(REMOVE_RECURSE
  "CMakeFiles/example_guardband_analysis.dir/guardband_analysis.cpp.o"
  "CMakeFiles/example_guardband_analysis.dir/guardband_analysis.cpp.o.d"
  "example_guardband_analysis"
  "example_guardband_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_guardband_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
