# Empty compiler generated dependencies file for example_hybrid_segment_flow.
# This may be replaced when dependencies are built.
