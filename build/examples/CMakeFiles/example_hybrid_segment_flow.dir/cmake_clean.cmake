file(REMOVE_RECURSE
  "CMakeFiles/example_hybrid_segment_flow.dir/hybrid_segment_flow.cpp.o"
  "CMakeFiles/example_hybrid_segment_flow.dir/hybrid_segment_flow.cpp.o.d"
  "example_hybrid_segment_flow"
  "example_hybrid_segment_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hybrid_segment_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
