# Empty compiler generated dependencies file for example_bench_netlist_flow.
# This may be replaced when dependencies are built.
