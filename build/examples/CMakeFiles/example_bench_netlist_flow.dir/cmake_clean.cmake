file(REMOVE_RECURSE
  "CMakeFiles/example_bench_netlist_flow.dir/bench_netlist_flow.cpp.o"
  "CMakeFiles/example_bench_netlist_flow.dir/bench_netlist_flow.cpp.o.d"
  "example_bench_netlist_flow"
  "example_bench_netlist_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bench_netlist_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
