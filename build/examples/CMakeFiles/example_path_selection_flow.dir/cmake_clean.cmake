file(REMOVE_RECURSE
  "CMakeFiles/example_path_selection_flow.dir/path_selection_flow.cpp.o"
  "CMakeFiles/example_path_selection_flow.dir/path_selection_flow.cpp.o.d"
  "example_path_selection_flow"
  "example_path_selection_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_path_selection_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
