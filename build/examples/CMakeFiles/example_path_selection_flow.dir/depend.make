# Empty dependencies file for example_path_selection_flow.
# This may be replaced when dependencies are built.
