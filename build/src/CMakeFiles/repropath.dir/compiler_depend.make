# Empty compiler generated dependencies file for repropath.
# This may be replaced when dependencies are built.
