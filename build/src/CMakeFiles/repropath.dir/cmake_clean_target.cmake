file(REMOVE_RECURSE
  "librepropath.a"
)
