
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/bench_io.cpp" "src/CMakeFiles/repropath.dir/circuit/bench_io.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/circuit/bench_io.cpp.o.d"
  "/root/repo/src/circuit/gate_library.cpp" "src/CMakeFiles/repropath.dir/circuit/gate_library.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/circuit/gate_library.cpp.o.d"
  "/root/repo/src/circuit/generator.cpp" "src/CMakeFiles/repropath.dir/circuit/generator.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/circuit/generator.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/repropath.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/placement.cpp" "src/CMakeFiles/repropath.dir/circuit/placement.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/circuit/placement.cpp.o.d"
  "/root/repo/src/core/baseline_rcp.cpp" "src/CMakeFiles/repropath.dir/core/baseline_rcp.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/core/baseline_rcp.cpp.o.d"
  "/root/repo/src/core/benchmarks.cpp" "src/CMakeFiles/repropath.dir/core/benchmarks.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/core/benchmarks.cpp.o.d"
  "/root/repo/src/core/clustering.cpp" "src/CMakeFiles/repropath.dir/core/clustering.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/core/clustering.cpp.o.d"
  "/root/repo/src/core/diagnosis.cpp" "src/CMakeFiles/repropath.dir/core/diagnosis.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/core/diagnosis.cpp.o.d"
  "/root/repo/src/core/effective_rank.cpp" "src/CMakeFiles/repropath.dir/core/effective_rank.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/core/effective_rank.cpp.o.d"
  "/root/repo/src/core/error_model.cpp" "src/CMakeFiles/repropath.dir/core/error_model.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/core/error_model.cpp.o.d"
  "/root/repo/src/core/group_sparse.cpp" "src/CMakeFiles/repropath.dir/core/group_sparse.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/core/group_sparse.cpp.o.d"
  "/root/repo/src/core/guardband.cpp" "src/CMakeFiles/repropath.dir/core/guardband.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/core/guardband.cpp.o.d"
  "/root/repo/src/core/hybrid_selection.cpp" "src/CMakeFiles/repropath.dir/core/hybrid_selection.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/core/hybrid_selection.cpp.o.d"
  "/root/repo/src/core/monte_carlo.cpp" "src/CMakeFiles/repropath.dir/core/monte_carlo.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/core/monte_carlo.cpp.o.d"
  "/root/repo/src/core/path_selection.cpp" "src/CMakeFiles/repropath.dir/core/path_selection.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/core/path_selection.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/CMakeFiles/repropath.dir/core/predictor.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/core/predictor.cpp.o.d"
  "/root/repo/src/core/subset_select.cpp" "src/CMakeFiles/repropath.dir/core/subset_select.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/core/subset_select.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "src/CMakeFiles/repropath.dir/linalg/cholesky.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/linalg/cholesky.cpp.o.d"
  "/root/repo/src/linalg/eigen_sym.cpp" "src/CMakeFiles/repropath.dir/linalg/eigen_sym.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/linalg/eigen_sym.cpp.o.d"
  "/root/repo/src/linalg/gemm.cpp" "src/CMakeFiles/repropath.dir/linalg/gemm.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/linalg/gemm.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/CMakeFiles/repropath.dir/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/linalg/lu.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/repropath.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/CMakeFiles/repropath.dir/linalg/qr.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/linalg/qr.cpp.o.d"
  "/root/repo/src/linalg/qr_colpivot.cpp" "src/CMakeFiles/repropath.dir/linalg/qr_colpivot.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/linalg/qr_colpivot.cpp.o.d"
  "/root/repo/src/linalg/randomized_eig.cpp" "src/CMakeFiles/repropath.dir/linalg/randomized_eig.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/linalg/randomized_eig.cpp.o.d"
  "/root/repo/src/linalg/solve.cpp" "src/CMakeFiles/repropath.dir/linalg/solve.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/linalg/solve.cpp.o.d"
  "/root/repo/src/linalg/svd.cpp" "src/CMakeFiles/repropath.dir/linalg/svd.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/linalg/svd.cpp.o.d"
  "/root/repo/src/timing/path_enum.cpp" "src/CMakeFiles/repropath.dir/timing/path_enum.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/timing/path_enum.cpp.o.d"
  "/root/repo/src/timing/segments.cpp" "src/CMakeFiles/repropath.dir/timing/segments.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/timing/segments.cpp.o.d"
  "/root/repo/src/timing/sizing.cpp" "src/CMakeFiles/repropath.dir/timing/sizing.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/timing/sizing.cpp.o.d"
  "/root/repo/src/timing/ssta.cpp" "src/CMakeFiles/repropath.dir/timing/ssta.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/timing/ssta.cpp.o.d"
  "/root/repo/src/timing/sta.cpp" "src/CMakeFiles/repropath.dir/timing/sta.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/timing/sta.cpp.o.d"
  "/root/repo/src/timing/timing_graph.cpp" "src/CMakeFiles/repropath.dir/timing/timing_graph.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/timing/timing_graph.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/repropath.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/repropath.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/text.cpp" "src/CMakeFiles/repropath.dir/util/text.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/util/text.cpp.o.d"
  "/root/repo/src/variation/spatial_model.cpp" "src/CMakeFiles/repropath.dir/variation/spatial_model.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/variation/spatial_model.cpp.o.d"
  "/root/repo/src/variation/variation_model.cpp" "src/CMakeFiles/repropath.dir/variation/variation_model.cpp.o" "gcc" "src/CMakeFiles/repropath.dir/variation/variation_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
