file(REMOVE_RECURSE
  "CMakeFiles/bench_guardband.dir/bench_guardband.cpp.o"
  "CMakeFiles/bench_guardband.dir/bench_guardband.cpp.o.d"
  "bench_guardband"
  "bench_guardband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_guardband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
