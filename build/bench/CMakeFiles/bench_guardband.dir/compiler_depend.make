# Empty compiler generated dependencies file for bench_guardband.
# This may be replaced when dependencies are built.
