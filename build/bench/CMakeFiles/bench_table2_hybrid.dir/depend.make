# Empty dependencies file for bench_table2_hybrid.
# This may be replaced when dependencies are built.
