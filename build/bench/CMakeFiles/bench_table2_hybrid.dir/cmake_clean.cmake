file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hybrid.dir/bench_table2_hybrid.cpp.o"
  "CMakeFiles/bench_table2_hybrid.dir/bench_table2_hybrid.cpp.o.d"
  "bench_table2_hybrid"
  "bench_table2_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
