# Empty compiler generated dependencies file for bench_ablation_random_scale.
# This may be replaced when dependencies are built.
