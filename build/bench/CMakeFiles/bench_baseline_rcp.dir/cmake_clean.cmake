file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_rcp.dir/bench_baseline_rcp.cpp.o"
  "CMakeFiles/bench_baseline_rcp.dir/bench_baseline_rcp.cpp.o.d"
  "bench_baseline_rcp"
  "bench_baseline_rcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_rcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
