# Empty dependencies file for bench_baseline_rcp.
# This may be replaced when dependencies are built.
