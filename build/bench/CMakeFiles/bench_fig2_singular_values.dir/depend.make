# Empty dependencies file for bench_fig2_singular_values.
# This may be replaced when dependencies are built.
