file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_singular_values.dir/bench_fig2_singular_values.cpp.o"
  "CMakeFiles/bench_fig2_singular_values.dir/bench_fig2_singular_values.cpp.o.d"
  "bench_fig2_singular_values"
  "bench_fig2_singular_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_singular_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
