# Empty compiler generated dependencies file for bench_table1_path_selection.
# This may be replaced when dependencies are built.
