# Empty dependencies file for test_variation_model.
# This may be replaced when dependencies are built.
