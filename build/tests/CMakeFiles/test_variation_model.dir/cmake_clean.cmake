file(REMOVE_RECURSE
  "CMakeFiles/test_variation_model.dir/test_variation_model.cpp.o"
  "CMakeFiles/test_variation_model.dir/test_variation_model.cpp.o.d"
  "test_variation_model"
  "test_variation_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variation_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
