file(REMOVE_RECURSE
  "CMakeFiles/test_guardband.dir/test_guardband.cpp.o"
  "CMakeFiles/test_guardband.dir/test_guardband.cpp.o.d"
  "test_guardband"
  "test_guardband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guardband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
