# Empty compiler generated dependencies file for test_guardband.
# This may be replaced when dependencies are built.
