# Empty dependencies file for test_baseline_rcp.
# This may be replaced when dependencies are built.
