file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_rcp.dir/test_baseline_rcp.cpp.o"
  "CMakeFiles/test_baseline_rcp.dir/test_baseline_rcp.cpp.o.d"
  "test_baseline_rcp"
  "test_baseline_rcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_rcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
