# Empty dependencies file for test_randomized_eig.
# This may be replaced when dependencies are built.
