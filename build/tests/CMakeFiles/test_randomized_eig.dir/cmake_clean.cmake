file(REMOVE_RECURSE
  "CMakeFiles/test_randomized_eig.dir/test_randomized_eig.cpp.o"
  "CMakeFiles/test_randomized_eig.dir/test_randomized_eig.cpp.o.d"
  "test_randomized_eig"
  "test_randomized_eig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_randomized_eig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
