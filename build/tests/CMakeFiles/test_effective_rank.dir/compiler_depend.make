# Empty compiler generated dependencies file for test_effective_rank.
# This may be replaced when dependencies are built.
