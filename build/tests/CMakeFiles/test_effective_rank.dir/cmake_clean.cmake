file(REMOVE_RECURSE
  "CMakeFiles/test_effective_rank.dir/test_effective_rank.cpp.o"
  "CMakeFiles/test_effective_rank.dir/test_effective_rank.cpp.o.d"
  "test_effective_rank"
  "test_effective_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_effective_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
