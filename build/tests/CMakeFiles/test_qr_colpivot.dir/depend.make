# Empty dependencies file for test_qr_colpivot.
# This may be replaced when dependencies are built.
