file(REMOVE_RECURSE
  "CMakeFiles/test_qr_colpivot.dir/test_qr_colpivot.cpp.o"
  "CMakeFiles/test_qr_colpivot.dir/test_qr_colpivot.cpp.o.d"
  "test_qr_colpivot"
  "test_qr_colpivot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qr_colpivot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
