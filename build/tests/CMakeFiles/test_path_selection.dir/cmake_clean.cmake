file(REMOVE_RECURSE
  "CMakeFiles/test_path_selection.dir/test_path_selection.cpp.o"
  "CMakeFiles/test_path_selection.dir/test_path_selection.cpp.o.d"
  "test_path_selection"
  "test_path_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
