# Empty dependencies file for test_path_selection.
# This may be replaced when dependencies are built.
