file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_selection.dir/test_hybrid_selection.cpp.o"
  "CMakeFiles/test_hybrid_selection.dir/test_hybrid_selection.cpp.o.d"
  "test_hybrid_selection"
  "test_hybrid_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
