file(REMOVE_RECURSE
  "CMakeFiles/test_group_sparse.dir/test_group_sparse.cpp.o"
  "CMakeFiles/test_group_sparse.dir/test_group_sparse.cpp.o.d"
  "test_group_sparse"
  "test_group_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_group_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
