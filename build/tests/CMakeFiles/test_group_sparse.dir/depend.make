# Empty dependencies file for test_group_sparse.
# This may be replaced when dependencies are built.
