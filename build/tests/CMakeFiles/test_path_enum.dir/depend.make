# Empty dependencies file for test_path_enum.
# This may be replaced when dependencies are built.
