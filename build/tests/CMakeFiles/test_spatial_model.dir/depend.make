# Empty dependencies file for test_spatial_model.
# This may be replaced when dependencies are built.
