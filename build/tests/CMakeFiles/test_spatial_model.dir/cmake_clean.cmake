file(REMOVE_RECURSE
  "CMakeFiles/test_spatial_model.dir/test_spatial_model.cpp.o"
  "CMakeFiles/test_spatial_model.dir/test_spatial_model.cpp.o.d"
  "test_spatial_model"
  "test_spatial_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spatial_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
