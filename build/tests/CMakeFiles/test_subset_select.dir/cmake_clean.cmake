file(REMOVE_RECURSE
  "CMakeFiles/test_subset_select.dir/test_subset_select.cpp.o"
  "CMakeFiles/test_subset_select.dir/test_subset_select.cpp.o.d"
  "test_subset_select"
  "test_subset_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subset_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
