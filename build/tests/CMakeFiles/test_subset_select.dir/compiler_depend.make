# Empty compiler generated dependencies file for test_subset_select.
# This may be replaced when dependencies are built.
