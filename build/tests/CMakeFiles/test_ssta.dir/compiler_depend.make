# Empty compiler generated dependencies file for test_ssta.
# This may be replaced when dependencies are built.
