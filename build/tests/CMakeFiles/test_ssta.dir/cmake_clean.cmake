file(REMOVE_RECURSE
  "CMakeFiles/test_ssta.dir/test_ssta.cpp.o"
  "CMakeFiles/test_ssta.dir/test_ssta.cpp.o.d"
  "test_ssta"
  "test_ssta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
