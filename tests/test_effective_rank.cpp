#include "core/effective_rank.h"

#include <gtest/gtest.h>

namespace repro::core {
namespace {

TEST(EffectiveRank, AllEnergyInOneValue) {
  linalg::Vector s{10.0, 0.0, 0.0};
  EXPECT_EQ(effective_rank(s, 0.05), 1u);
}

TEST(EffectiveRank, UniformValuesNeedAlmostAll) {
  linalg::Vector s(10, 1.0);
  // 95% of energy needs ceil(9.5) = 10 values.
  EXPECT_EQ(effective_rank(s, 0.05), 10u);
  // 20% threshold -> 80% energy -> 8 values.
  EXPECT_EQ(effective_rank(s, 0.2), 8u);
}

TEST(EffectiveRank, GeometricDecayIsCompact) {
  linalg::Vector s;
  double v = 1.0;
  for (int i = 0; i < 30; ++i) {
    s.push_back(v);
    v *= 0.5;
  }
  // sum = ~2.0; first 5 values already carry > 95%.
  EXPECT_LE(effective_rank(s, 0.05), 5u);
  // Tighter threshold needs more values.
  EXPECT_GT(effective_rank(s, 0.0001), effective_rank(s, 0.05));
}

TEST(EffectiveRank, EtaZeroCountsNonzeros) {
  linalg::Vector s{5.0, 3.0, 1.0, 0.0, 0.0};
  EXPECT_EQ(effective_rank(s, 0.0), 3u);
}

TEST(EffectiveRank, ZeroEnergyIsRankZero) {
  EXPECT_EQ(effective_rank(linalg::Vector(4, 0.0), 0.05), 0u);
  EXPECT_EQ(effective_rank({}, 0.05), 0u);
}

TEST(EffectiveRank, InvalidInputsThrow) {
  EXPECT_THROW((void)effective_rank({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)effective_rank({1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW((void)effective_rank({-1.0}, 0.1), std::invalid_argument);
}

TEST(EffectiveRank, MonotoneInEta) {
  linalg::Vector s;
  for (int i = 0; i < 50; ++i) s.push_back(1.0 / (1.0 + i));
  std::size_t prev = 50;
  for (double eta : {0.01, 0.05, 0.10, 0.20, 0.40}) {
    const std::size_t k = effective_rank(s, eta);
    EXPECT_LE(k, prev);
    prev = k;
  }
}

TEST(EffectiveRank, NeverExceedsLength) {
  linalg::Vector s{1.0, 1.0};
  EXPECT_LE(effective_rank(s, 0.001), 2u);
}

TEST(NormalizedSingularValues, SumsToOne) {
  linalg::Vector s{4.0, 3.0, 2.0, 1.0};
  const linalg::Vector n = normalized_singular_values(s);
  double sum = 0.0;
  for (double x : n) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(n[0], 0.4, 1e-12);
}

TEST(NormalizedSingularValues, ZeroVectorStaysZero) {
  const linalg::Vector n = normalized_singular_values(linalg::Vector(3, 0.0));
  for (double x : n) EXPECT_DOUBLE_EQ(x, 0.0);
}

}  // namespace
}  // namespace repro::core
