#include "core/measurement.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

namespace repro::core {
namespace {

linalg::Vector make_nominal(std::size_t n) {
  linalg::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = 100.0 + 10.0 * double(i);
  return v;
}

TEST(FaultSpec, CleanDetection) {
  EXPECT_TRUE(FaultSpec{}.clean());
  EXPECT_FALSE(default_fault_spec().clean());
  FaultSpec dead_only;
  dead_only.dead_slots = {2};
  EXPECT_FALSE(dead_only.clean());
}

TEST(FaultSpec, WithoutDeadSlotsClearsOnlyDeadSlots) {
  FaultSpec spec = default_fault_spec();
  const FaultSpec stripped = without_dead_slots(spec);
  EXPECT_TRUE(stripped.dead_slots.empty());
  EXPECT_DOUBLE_EQ(stripped.noise_sigma_frac, spec.noise_sigma_frac);
  EXPECT_DOUBLE_EQ(stripped.outlier_rate, spec.outlier_rate);
  EXPECT_EQ(stripped.seed, spec.seed);
}

TEST(FaultSpec, ExpectedNoiseSigma) {
  FaultSpec spec;
  spec.noise_sigma_ps = 2.0;
  spec.noise_sigma_frac = 0.01;
  const linalg::Vector nominal{100.0, 300.0};  // mean |nominal| = 200
  EXPECT_NEAR(expected_noise_sigma(spec, nominal), 2.0 + 0.01 * 200.0, 1e-12);
  EXPECT_DOUBLE_EQ(expected_noise_sigma(spec, {}), 2.0);
}

TEST(ApplyFaults, CleanSpecIsIdentity) {
  const linalg::Vector nominal = make_nominal(5);
  linalg::Vector clean = nominal;
  clean[2] += 3.5;
  const NoisyMeasurements out = apply_faults(clean, nominal, FaultSpec{}, 7);
  ASSERT_EQ(out.values.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.values[i], clean[i]);
    EXPECT_TRUE(out.valid[i]);
  }
  EXPECT_EQ(out.dropped, 0);
  EXPECT_EQ(out.outliers, 0);
}

TEST(ApplyFaults, DeterministicPerSpecAndDie) {
  const linalg::Vector nominal = make_nominal(8);
  const FaultSpec spec = default_fault_spec();
  const NoisyMeasurements a = apply_faults(nominal, nominal, spec, 11);
  const NoisyMeasurements b = apply_faults(nominal, nominal, spec, 11);
  for (std::size_t i = 0; i < nominal.size(); ++i) {
    EXPECT_EQ(a.values[i], b.values[i]);
    EXPECT_EQ(a.valid[i], b.valid[i]);
  }
  // A different die draws a different schedule.
  const NoisyMeasurements c = apply_faults(nominal, nominal, spec, 12);
  bool any_diff = false;
  for (std::size_t i = 0; i < nominal.size(); ++i) {
    any_diff = any_diff || a.values[i] != c.values[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(ApplyFaults, DeadSlotsInvalidAndHoldNominal) {
  const linalg::Vector nominal = make_nominal(4);
  linalg::Vector clean = nominal;
  for (double& v : clean) v += 5.0;
  FaultSpec spec;
  spec.noise_sigma_ps = 1.0;
  spec.dead_slots = {1, 3, 99, -2};  // out-of-range entries are ignored
  const NoisyMeasurements out = apply_faults(clean, nominal, spec, 0);
  EXPECT_FALSE(out.valid[1]);
  EXPECT_FALSE(out.valid[3]);
  EXPECT_DOUBLE_EQ(out.values[1], nominal[1]);
  EXPECT_DOUBLE_EQ(out.values[3], nominal[3]);
  EXPECT_TRUE(out.valid[0]);
  EXPECT_TRUE(out.valid[2]);
  EXPECT_EQ(out.dropped, 2);
}

TEST(ApplyFaults, FullDropoutInvalidatesEverySlot) {
  const linalg::Vector nominal = make_nominal(6);
  FaultSpec spec;
  spec.dropout_rate = 1.0;
  const NoisyMeasurements out = apply_faults(nominal, nominal, spec, 3);
  for (std::size_t i = 0; i < nominal.size(); ++i) {
    EXPECT_FALSE(out.valid[i]);
    EXPECT_DOUBLE_EQ(out.values[i], nominal[i]);
  }
  EXPECT_EQ(out.dropped, 6);
}

TEST(ApplyFaults, QuantizationSnapsToLsb) {
  const linalg::Vector nominal = make_nominal(5);
  linalg::Vector clean = nominal;
  clean[0] += 0.37;
  FaultSpec spec;
  spec.quantization_ps = 0.25;
  const NoisyMeasurements out = apply_faults(clean, nominal, spec, 0);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const double steps = out.values[i] / spec.quantization_ps;
    EXPECT_NEAR(steps, std::round(steps), 1e-9);
    EXPECT_NEAR(out.values[i], clean[i], spec.quantization_ps / 2 + 1e-12);
  }
}

TEST(ApplyFaults, OutlierMixtureScalesNoise) {
  const linalg::Vector nominal = make_nominal(64);
  FaultSpec base;
  base.noise_sigma_ps = 1.0;
  FaultSpec heavy = base;
  heavy.outlier_rate = 1.0;  // every slot draws the outlier component
  heavy.outlier_scale = 10.0;
  const NoisyMeasurements a = apply_faults(nominal, nominal, base, 5);
  const NoisyMeasurements b = apply_faults(nominal, nominal, heavy, 5);
  EXPECT_EQ(a.outliers, 0);
  EXPECT_EQ(b.outliers, 64);
  // Same seed/die => same underlying deviate, scaled by outlier_scale.
  for (std::size_t i = 0; i < nominal.size(); ++i) {
    const double noise_a = a.values[i] - nominal[i];
    const double noise_b = b.values[i] - nominal[i];
    EXPECT_NEAR(noise_b, 10.0 * noise_a, 1e-9);
  }
}

TEST(ApplyFaults, NoiseSigmaScalesWithNominal) {
  // Per-slot sigma = noise_sigma_ps + frac * |nominal|: the first slot of a
  // given die consumes the same deviates whatever the nominal delay is, so a
  // 10x nominal gives exactly 10x the noise.
  const linalg::Vector small{100.0}, large{1000.0};
  FaultSpec spec;
  spec.noise_sigma_frac = 0.01;
  for (std::uint64_t die = 0; die < 16; ++die) {
    const NoisyMeasurements a = apply_faults(small, small, spec, die);
    const NoisyMeasurements b = apply_faults(large, large, spec, die);
    EXPECT_NEAR(b.values[0] - large[0], 10.0 * (a.values[0] - small[0]), 1e-9);
  }
}

TEST(ApplyFaults, SizeMismatchThrows) {
  const linalg::Vector nominal = make_nominal(3);
  const linalg::Vector clean = make_nominal(4);
  EXPECT_THROW(apply_faults(clean, nominal, FaultSpec{}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace repro::core
