#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace repro::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SeedFromStringStable) {
  const auto s1 = Rng::seed_from("s1423");
  const auto s2 = Rng::seed_from("s1423");
  const auto s3 = Rng::seed_from("s38417");
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, s3);
  EXPECT_NE(Rng::seed_from("s1423", 1), s1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexBoundsAndCoverage) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(10);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(13);
  Rng child = a.fork();
  // Parent continues; child stream should not replicate parent outputs.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace repro::util
